//! End-to-end demo of the paper's workload through the public API: an
//! address space as a `RangeMap`, page faults as concurrent lock-free
//! lookups, `mmap`/`munmap` as writer mutations.
//!
//! Run with: `cargo run --release -p bonsai --example addrspace`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bonsai::RangeMap;
use rcukit::Collector;

const PAGE: u64 = 0x1000;

fn main() {
    let collector = Collector::new();
    let space: Arc<RangeMap<String>> = Arc::new(RangeMap::new(collector.clone()));

    // "mmap" a text segment, a heap, and a stack.
    assert!(space.map(0x0040_0000, 0x0040_0000 + 16 * PAGE, "text".into()));
    assert!(space.map(0x0060_0000, 0x0060_0000 + 64 * PAGE, "heap".into()));
    assert!(space.map(0x7fff_0000, 0x7fff_0000 + 8 * PAGE, "stack".into()));

    // Four fault handlers translate addresses while the main thread grows
    // and shrinks the heap.
    let stop = Arc::new(AtomicBool::new(false));
    let faults = Arc::new(AtomicU64::new(0));
    let handlers: Vec<_> = (0..4)
        .map(|t| {
            let space = space.clone();
            let stop = stop.clone();
            let faults = faults.clone();
            thread::spawn(move || {
                let mut addr = 0x0040_0000u64 + t * PAGE;
                while !stop.load(SeqCst) {
                    let guard = space.pin();
                    if let Some((start, end, seg)) = space.translate(addr, &guard) {
                        assert!(start <= addr && addr < end, "bogus translation for {seg}");
                        faults.fetch_add(1, SeqCst);
                    }
                    drop(guard);
                    addr = addr.wrapping_add(PAGE) % 0x8000_0000;
                }
            })
        })
        .collect();

    for round in 0..200u64 {
        let brk = 0x0060_0000 + (64 + round) * PAGE;
        assert!(space.unmap(0x0060_0000).is_some(), "heap vanished");
        assert!(space.map(0x0060_0000, brk, "heap".into()), "remap failed");
        thread::sleep(Duration::from_micros(200));
    }

    stop.store(true, SeqCst);
    for h in handlers {
        h.join().unwrap();
    }

    collector.synchronize();
    let stats = collector.stats();
    let guard = space.pin();
    println!(
        "segments={} faults_served={} stack_at_0x7fff2000={:?}",
        space.len(),
        faults.load(SeqCst),
        space.lookup(0x7fff_2000, &guard)
    );
    println!(
        "epoch={} retired={} freed={} pending={}",
        stats.global_epoch, stats.objects_retired, stats.objects_freed, stats.pending_objects
    );
    assert_eq!(stats.objects_retired, stats.objects_freed);
    println!("OK: address space consistent, all retired nodes reclaimed");
}
