//! A backend abstraction over address-space implementations.
//!
//! The paper's evaluation compares the RCU Bonsai-tree address space
//! against a lock-serialized one by running the *same* page-fault/mmap/
//! munmap workload over both. [`AddressSpace`] is that seam: anything
//! that can resolve a fault and mutate its mapping set can be driven by
//! the `rcukit-bench` workload replayer, so the RCU [`RangeMap`] and a
//! `RwLock<BTreeMap>` baseline are interchangeable behind one trait.
//!
//! The trait is deliberately guard-free: `fault` takes a bare address and
//! returns whether a mapped region contains it. The [`RangeMap`]
//! implementation pins internally per fault — exactly what a page-fault
//! handler would do — so the cost of entering a read-side critical
//! section is part of what the benchmark measures.

use crate::range_map::RangeMap;

/// An address space that can serve page faults and `mmap`/`munmap`-style
/// mutations.
///
/// Implementations must be shareable across threads; the benchmark drives
/// one instance from many faulting **and mutating** threads concurrently —
/// since the range-locked writer rework, disjoint-span mutations on the
/// [`RangeMap`] backend genuinely run in parallel.
///
/// Region semantics follow [`RangeMap`]: ranges are half-open
/// `[start, end)`, `map` refuses overlaps, `unmap` removes the region
/// whose start is exactly `start`, and [`unmap_range`](Self::unmap_range)
/// clears a whole span, splitting and truncating straddling regions.
///
/// # Snapshot semantics under concurrent writers
///
/// Every method linearizes per call, but values derived from multiple
/// reads — [`regions`](Self::regions) most visibly — are *snapshots*: by
/// the time the caller inspects the result, concurrent writers may have
/// changed the mapping set. Likewise a composite mutation (`unmap_range`
/// splitting a region) is atomic against other writers but may expose
/// intermediate states to concurrent `fault`s, exactly as a kernel RCU VMA
/// walk can observe a partially applied `munmap`. Benchmark invariants are
/// therefore asserted only at quiescent points (after joins / a final
/// `synchronize`), never mid-replay.
pub trait AddressSpace: Send + Sync {
    /// Serves a page fault at `addr`: returns `true` if a mapped region
    /// contains the address (the fault would succeed), `false` if it would
    /// be a segmentation fault.
    fn fault(&self, addr: u64) -> bool;

    /// Maps `[start, end)`. Returns `false` (mapping nothing) if the range
    /// overlaps an existing region.
    fn map(&self, start: u64, end: u64) -> bool;

    /// Unmaps the region starting exactly at `start`, returning whether a
    /// region was removed.
    fn unmap(&self, start: u64) -> bool;

    /// Unmaps every byte in `[start, end)`, removing regions inside the
    /// span and splitting/truncating regions straddling its edges. Returns
    /// the number of regions removed or truncated (`0`: nothing mapped
    /// there).
    fn unmap_range(&self, start: u64, end: u64) -> usize;

    /// Number of currently mapped regions.
    fn regions(&self) -> usize;

    /// Forks the address space: the child starts with an identical mapping
    /// set and the two diverge independently — the `fork()` of the process
    /// analogy. On the [`RangeMap`] backend this is an O(depth) structural-
    /// sharing snapshot (see [`RangeMap::fork`]); a lock-serialized
    /// implementation deep-copies under its exclusive lock, which is
    /// exactly the asymmetry the fork-storm benchmark profile measures.
    fn fork(&self) -> Box<dyn AddressSpace>;
}

impl<V> AddressSpace for RangeMap<V>
where
    V: Default + Clone + Send + Sync + 'static,
{
    fn fault(&self, addr: u64) -> bool {
        self.contains(addr)
    }

    fn map(&self, start: u64, end: u64) -> bool {
        RangeMap::map(self, start, end, V::default())
    }

    fn unmap(&self, start: u64) -> bool {
        RangeMap::unmap(self, start).is_some()
    }

    fn unmap_range(&self, start: u64, end: u64) -> usize {
        RangeMap::unmap_range(self, start, end)
    }

    fn regions(&self) -> usize {
        self.len()
    }

    fn fork(&self) -> Box<dyn AddressSpace> {
        Box::new(RangeMap::fork(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcukit::Collector;

    #[test]
    fn range_map_behind_trait_object() {
        let space: Box<dyn AddressSpace> = Box::new(RangeMap::<()>::new(Collector::new()));
        assert!(space.map(0x1000, 0x3000));
        assert!(!space.map(0x2000, 0x4000));
        assert!(space.fault(0x2fff));
        assert!(!space.fault(0x3000));
        assert_eq!(space.regions(), 1);
        assert!(space.unmap(0x1000));
        assert!(!space.unmap(0x1000));
        assert!(!space.fault(0x2fff));
        // The multi-region span path is reachable through the trait too.
        assert!(space.map(0x1000, 0x3000));
        assert_eq!(space.unmap_range(0x2000, 0x4000), 1);
        assert!(space.fault(0x1fff));
        assert!(!space.fault(0x2000));
    }
}
