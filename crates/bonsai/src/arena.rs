//! A slab arena for copy-on-write tree nodes, recycled through the
//! collector's grace periods.
//!
//! Every update of the Bonsai tree allocates O(log n) node boxes and
//! retires as many; with plain `Box` each of those is a malloc/free pair
//! on the writer's hot path. The arena replaces them with fixed-size
//! *blocks* carved from chunks it owns:
//!
//! * **alloc** pops the lock-free recycle list (a Treiber stack threaded
//!   through the free blocks themselves), falling back to carving a new
//!   chunk only while the arena is still warming up;
//! * **recycle** happens through the collector: a committed update ships
//!   its replaced nodes as one [`RecycleBatch`] via
//!   [`Guard::defer_recycle`](rcukit::Guard), and after the grace period
//!   the arena (as the batch's [`Recycler`]) drops each payload in place
//!   and pushes the block back onto the recycle list — a node returns to
//!   an arena only after its grace period;
//! * the **batch buffers** themselves are pooled here too, so the retire
//!   step is also allocation-free once warm.
//!
//! # Ownership and lifetime
//!
//! One arena lives in each [`WriterScratch`](crate::tree::WriterScratch) —
//! the tree's mutex-owned scratch and every scratch pooled by a
//! [`RangeLocks`](crate::range_lock::RangeLocks) table — so allocation
//! needs no sharing: exactly one writer holds a given scratch (and its
//! arena) at a time, which is what makes the single-consumer pop below
//! sound.
//!
//! Blocks may migrate between sibling arenas: a writer holding scratch A
//! can retire nodes that were allocated from scratch B's arena, and they
//! recycle into A's free list. Chunk *storage* is therefore deliberately
//! not per-arena: every arena of one family (one `RangeMap`'s pool, or a
//! standalone tree's single scratch) shares one [`ChunkStore`], and every
//! arena — plus, transitively, **every in-flight deferred batch**, which
//! holds an `Arc` to its recycling arena — pins the store. So a block's
//! backing chunk stays allocated as long as *any* family arena or *any*
//! pending batch exists, wherever the block was allocated and whichever
//! free list it rests on: an arena (and the chunks behind it) outlives
//! its range lock's pool slot, and dropping the whole map with
//! retirements still waiting out their grace period leaves the batch's
//! blocks in live memory until the batch fires. Which arena's free list
//! a block sits on does not matter — only that its chunk is alive, and
//! the `Arc` web above guarantees exactly that.
//!
//! Migration is additionally *capped*: an arena's private free list stops
//! accepting blocks at [`FREE_CAP`]; the excess lands on the family
//! store's shared overflow shelf, which any sibling's `alloc` drains
//! before growing a chunk. This bounds the pathological churn pattern
//! where one scratch does all the retiring (concentrating every free
//! block on a list only its own writer can pop) while the allocating
//! siblings grow the family's chunk count without limit.

use std::mem::ManuallyDrop;
use std::ptr;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::Arc;

use rcukit::{RecycleBatch, Recycler};

use crate::sync::atomic::{AtomicPtr, AtomicUsize};
use crate::sync::Mutex;

/// Blocks carved per chunk. Amortizes the chunk allocation to 1/64th of a
/// warming-up update's allocations; steady state allocates no chunks.
const CHUNK_BLOCKS: usize = 64;

/// Cap on pooled batch buffers (one is in use per in-flight retirement; a
/// single writer rarely has more than a handful pending).
const BATCH_POOL_MAX: usize = 32;

/// Cap on one arena's private free list. Blocks recycled past the cap are
/// diverted to the family [`ChunkStore`]'s shared overflow shelf, where
/// *any* sibling's `alloc` can take them. Without the cap, pathological
/// churn (one scratch doing all the retiring while others do the
/// allocating) concentrates every free block on one arena's list — a list
/// only its own writer can pop — and the allocating siblings grow fresh
/// chunks without bound even though the family is swimming in free blocks.
const FREE_CAP: usize = 2 * CHUNK_BLOCKS;

/// One arena block: either a live value or a link in the recycle list.
/// `repr(C)` so both fields sit at offset zero — a `*mut Block<T>` and the
/// `*mut T` handed to the tree are the same address.
#[repr(C)]
union Block<T> {
    value: ManuallyDrop<T>,
    next: *mut Block<T>,
}

/// Chunk storage shared by every arena of one family (see the module
/// docs): raw leaked slices, not `Box`es in place — moving a `Box`, as a
/// `Vec` does on growth, would invalidate the block pointers derived from
/// it under stacked borrows. Grows during warm-up, never shrinks; freed by
/// `Drop`, i.e. only when the last family arena *and* the last pending
/// batch (each of which pins its arena, which pins the store) are gone.
pub(crate) struct ChunkStore<T> {
    chunks: Mutex<Vec<*mut [Block<T>]>>,
    /// The family-wide overflow shelf: free blocks diverted from arenas
    /// whose private lists hit [`FREE_CAP`]. Any sibling's `alloc` drains
    /// it before growing a chunk, which is what keeps the family's chunk
    /// count flat when churn concentrates retirements in one arena.
    overflow: Mutex<Vec<*mut Block<T>>>,
}

// Safety: the store only owns raw storage; blocks' payloads cross threads
// under the arena protocol (`T: Send`), and all mutation is under the
// mutex.
unsafe impl<T: Send> Send for ChunkStore<T> {}
// Safety: as above.
unsafe impl<T: Send> Sync for ChunkStore<T> {}

impl<T> ChunkStore<T> {
    pub(crate) fn new() -> Self {
        Self {
            chunks: Mutex::new(Vec::new()),
            overflow: Mutex::new(Vec::new()),
        }
    }
}

impl<T> Drop for ChunkStore<T> {
    fn drop(&mut self) {
        // Runs only once no family arena and no pending batch holds the
        // store: every block's payload has already been dropped (in place
        // by the owning structure's drop, or by `reclaim_block`), and
        // `Block` has no drop glue of its own, so this only releases the
        // storage.
        for &raw in self.chunks.get_mut().unwrap().iter() {
            // Safety: leaked by `Arena::grow`, freed exactly once here.
            unsafe { drop(Box::from_raw(raw)) };
        }
    }
}

/// The shared arena state: recycle list, handle on the family chunk
/// store, batch-buffer pool.
pub(crate) struct ArenaShared<T> {
    /// Treiber stack of free blocks, threaded through the blocks
    /// themselves. Multi-producer (any reclaiming thread pushes),
    /// single-consumer (only the writer holding the owning scratch pops).
    free: AtomicPtr<Block<T>>,
    /// Approximate length of `free` — the [`FREE_CAP`] gauge. Heuristic:
    /// racing pushers may briefly overshoot the cap by their count, which
    /// only delays a handful of diversions.
    free_len: AtomicUsize,
    /// The family chunk store backing this arena's blocks — and, because
    /// blocks migrate, possibly blocks on sibling free lists too. Held by
    /// `Arc` so a pending batch (which holds an `Arc` to this arena) pins
    /// every chunk any of its blocks could live in.
    store: Arc<ChunkStore<T>>,
    /// Drained batch buffers awaiting reuse by the next commit.
    batches: Mutex<Vec<RecycleBatch>>,
}

// Safety: the raw pointers are either free blocks owned by the family's
// store or are handed out under the writer protocol; payloads cross
// threads only on the recycle path, which drops a `T` on the reclaiming
// thread — hence `T: Send`.
unsafe impl<T: Send> Send for ArenaShared<T> {}
// Safety: as above; all shared mutation goes through the atomic free-list
// head or the internal mutexes.
unsafe impl<T: Send> Sync for ArenaShared<T> {}

impl<T> ArenaShared<T> {
    /// Pushes a free block (multi-producer half of the recycle list),
    /// diverting to the family overflow shelf once the private list is at
    /// [`FREE_CAP`] — see the field docs for why concentration must not
    /// go unbounded.
    fn push_free(&self, block: *mut Block<T>) {
        // ordering: Relaxed — occupancy heuristic; over- or under-reading
        // only shifts which shelf the block lands on, never its safety.
        if self.free_len.load(Relaxed) >= FREE_CAP {
            self.store.overflow.lock().unwrap().push(block);
            return;
        }
        // ordering: Relaxed — same heuristic counter.
        self.free_len.fetch_add(1, Relaxed);
        // ordering: Relaxed — only a seed for the CAS below, which
        // re-validates it; the link write is published by the CAS's
        // Release, not by this read.
        let mut head = self.free.load(Relaxed);
        loop {
            // Safety: `block` is exclusively owned by this call (freshly
            // carved, discarded by the owning writer, or past its grace
            // period); writing its link field cannot race.
            unsafe { (*block).next = head };
            // ordering: Release success — publishes the link write above
            // (and the payload drop in `reclaim_block`) to the consumer's
            // Acquire in `pop_free` before the block becomes reachable.
            // Relaxed failure — a lost race just reseeds the loop.
            match self.free.compare_exchange(head, block, Release, Relaxed) {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Pops a free block. Sound only for the single consumer (the writer
    /// holding the owning scratch): with one popper, the head observed
    /// here cannot be removed and re-pushed by anyone else mid-CAS, so the
    /// ABA hazard of a multi-consumer Treiber pop does not arise.
    fn pop_free(&self) -> Option<*mut Block<T>> {
        // ordering: Acquire — pairs with `push_free`'s Release CAS: the
        // block's link write (and any payload drop before it) happens-
        // before this consumer reads the link or reuses the block.
        let mut head = self.free.load(Acquire);
        loop {
            if head.is_null() {
                return None;
            }
            // Safety: `head` is on the free list; its link field was
            // written before the block became reachable and only this
            // (single) consumer can unlink it.
            let next = unsafe { (*head).next };
            // ordering: Acquire success and failure — the failure reload
            // reseeds the loop with the same pairing as the initial load;
            // on success the observed head is the very store the Acquire
            // load already synchronized with (single consumer, so no ABA
            // can substitute a different push of the same pointer).
            match self.free.compare_exchange(head, next, Acquire, Acquire) {
                Ok(_) => {
                    // ordering: Relaxed — occupancy heuristic (see
                    // `free_len`).
                    self.free_len.fetch_sub(1, Relaxed);
                    return Some(head);
                }
                Err(h) => head = h,
            }
        }
    }

    /// Takes one block off the family overflow shelf, if any sibling's
    /// capped list diverted one there.
    fn pop_overflow(&self) -> Option<*mut Block<T>> {
        self.store.overflow.lock().unwrap().pop()
    }

    /// Drops the payload of a retired block and returns the block to the
    /// free list.
    ///
    /// # Safety
    ///
    /// `block` must hold an initialized `T` that no thread can still
    /// observe, retired exactly once.
    unsafe fn reclaim_block(&self, block: *mut Block<T>) {
        // Safety: per the contract, the payload is initialized and ours.
        // Raw projection (`addr_of_mut!`), never a reference: the sibling
        // union field is a dead link word.
        unsafe { ptr::drop_in_place(ptr::addr_of_mut!((*block).value).cast::<T>()) };
        self.push_free(block);
    }
}

// The recycle half: after a grace period the collector hands a retired
// batch back, and the arena turns each pointer into a free block.
impl<T: Send> Recycler for ArenaShared<T> {
    unsafe fn recycle(&self, mut batch: RecycleBatch) {
        for p in batch.drain() {
            // Safety: `defer_recycle`'s contract (each pointer is an
            // arena-family block holding an initialized node, past its
            // grace period, retired exactly once) is exactly
            // `reclaim_block`'s.
            unsafe { self.reclaim_block(p as *mut Block<T>) };
        }
        let mut pool = self.batches.lock().unwrap();
        if pool.len() < BATCH_POOL_MAX {
            pool.push(batch);
        }
    }

    unsafe fn recycle_one(&self, ptr: *mut ()) {
        // The hazard-pointer scan reclaims per pointer; going straight to
        // the block keeps that path free of the default method's
        // one-element batch allocation.
        //
        // Safety: forwarded contract — identical to a batch entry's.
        unsafe { self.reclaim_block(ptr as *mut Block<T>) };
    }
}

/// A writer-owned handle to a slab arena of `T` blocks. See the module
/// docs for the ownership story; the handle itself must only be used by
/// one writer at a time (it lives inside a lock-guarded scratch).
pub(crate) struct Arena<T> {
    shared: Arc<ArenaShared<T>>,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// A standalone arena over its own (single-member) family store.
    pub(crate) fn new() -> Self {
        Self::with_store(Arc::new(ChunkStore::new()))
    }

    /// An arena joining an existing family: blocks it allocates live in
    /// `store`, and retirements recycled here may carry blocks from any
    /// sibling over the same store.
    pub(crate) fn with_store(store: Arc<ChunkStore<T>>) -> Self {
        Self {
            shared: Arc::new(ArenaShared {
                free: AtomicPtr::new(ptr::null_mut()),
                free_len: AtomicUsize::new(0),
                store,
                batches: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Allocates a block holding `value`: recycle list first, then the
    /// family overflow shelf, a fresh chunk only when both are dry
    /// (warm-up). Returns a pointer valid until the block is reclaimed
    /// (and stable across publication — the tree hands it to readers).
    pub(crate) fn alloc(&self, value: T) -> *mut T {
        // Failpoint: models allocation failure (as Rust's infallible
        // allocator surfaces it — an unwind) before any free-list state
        // moves, so an injected failure leaves the arena untouched.
        rcukit::faults::maybe_panic(rcukit::faults::site::ARENA_ALLOC);
        let block = match self
            .shared
            .pop_free()
            .or_else(|| self.shared.pop_overflow())
        {
            Some(b) => b,
            None => self.grow(),
        };
        // Safety: `block` is free (popped or freshly carved), so writing
        // the payload cannot race or overwrite a live value. Raw
        // projection only — a `&mut` to the uninitialized payload would
        // assert validity it does not have.
        unsafe { ptr::write(ptr::addr_of_mut!((*block).value).cast::<T>(), value) };
        block as *mut T
    }

    /// Carves a new chunk, pushing all but one block onto the free list
    /// and returning that one.
    fn grow(&self) -> *mut Block<T> {
        let chunk: Box<[Block<T>]> = (0..CHUNK_BLOCKS)
            .map(|_| Block {
                next: ptr::null_mut(),
            })
            .collect();
        let raw = Box::into_raw(chunk);
        let base = raw as *mut Block<T>;
        for i in 1..CHUNK_BLOCKS {
            // Safety: in-bounds blocks of the just-leaked chunk, each
            // reachable exactly once.
            self.shared.push_free(unsafe { base.add(i) });
        }
        self.shared.store.chunks.lock().unwrap().push(raw);
        base
    }

    /// Drops the payload and returns the block to the free list
    /// immediately, with no grace period — for speculative nodes a failed
    /// CAS proved no reader ever saw.
    ///
    /// # Safety
    ///
    /// `ptr` must come from an arena sharing this arena's owner (see the
    /// module docs on block migration), hold an initialized `T`, be
    /// unreachable by any thread, and be reclaimed exactly once.
    pub(crate) unsafe fn reclaim_now(&self, ptr: *mut T) {
        // Safety: forwarded contract.
        unsafe { self.shared.reclaim_block(ptr as *mut Block<T>) };
    }

    /// Pops a pooled (drained, warm-capacity) batch buffer for the next
    /// retirement, or a fresh empty one during warm-up.
    pub(crate) fn take_batch(&self) -> RecycleBatch {
        self.shared
            .batches
            .lock()
            .unwrap()
            .pop()
            .unwrap_or_default()
    }

    /// Returns a drained batch buffer to the pool — the counterpart of
    /// [`Self::take_batch`] for updates that turned out to retire nothing
    /// (an insert into an untouched spot of a shared tree, say), so the
    /// warm capacity is not lost.
    pub(crate) fn put_batch(&self, batch: RecycleBatch) {
        debug_assert!(batch.is_empty());
        let mut pool = self.shared.batches.lock().unwrap();
        if pool.len() < BATCH_POOL_MAX {
            pool.push(batch);
        }
    }

    /// The family chunk store this arena belongs to — how a forked tree's
    /// scratch joins its parent's block-lifetime family.
    pub(crate) fn store(&self) -> Arc<ChunkStore<T>> {
        self.shared.store.clone()
    }

    /// Number of chunks allocated by the whole family so far — the
    /// capacity-flat proxy for the allocation-diet tests: steady-state
    /// churn must stop moving this.
    pub(crate) fn chunks(&self) -> usize {
        self.shared.store.chunks.lock().unwrap().len()
    }

    /// Approximate length of this arena's private free list (test probe
    /// for the [`FREE_CAP`] diversion).
    #[cfg(test)]
    fn free_len(&self) -> usize {
        // ordering: Relaxed — test probe of the heuristic counter.
        self.shared.free_len.load(Relaxed)
    }

    /// Number of blocks on the family overflow shelf (test probe).
    #[cfg(test)]
    fn overflow_len(&self) -> usize {
        self.shared.store.overflow.lock().unwrap().len()
    }
}

impl<T: Send + 'static> Arena<T> {
    /// The `Arc` handed to [`rcukit::Guard::defer_recycle`]; each pending
    /// batch holds one, keeping the arena's chunks alive until the batch
    /// fires.
    pub(crate) fn recycler(&self) -> Arc<dyn Recycler> {
        self.shared.clone()
    }
}

impl<T> std::fmt::Debug for Arena<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("chunks", &self.chunks())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_reclaim_now_reuses_blocks() {
        let arena: Arena<u64> = Arena::new();
        let a = arena.alloc(7);
        // Safety: `a` is ours alone; reclaimed exactly once.
        unsafe { arena.reclaim_now(a) };
        let b = arena.alloc(9);
        assert_eq!(a, b, "recycled block not reused");
        // Safety: as above.
        unsafe { assert_eq!(*b, 9) };
        unsafe { arena.reclaim_now(b) };
        assert_eq!(arena.chunks(), 1);
    }

    #[test]
    fn steady_churn_allocates_no_new_chunks() {
        let arena: Arena<[u64; 4]> = Arena::new();
        // Warm up past one chunk.
        let mut live: Vec<*mut [u64; 4]> = (0..3 * CHUNK_BLOCKS as u64)
            .map(|i| arena.alloc([i; 4]))
            .collect();
        let warm = arena.chunks();
        assert!(warm >= 3);
        for _ in 0..10_000 {
            // Safety: each pointer is live, owned here, reclaimed once.
            unsafe { arena.reclaim_now(live.pop().unwrap()) };
            live.push(arena.alloc([0; 4]));
        }
        assert_eq!(arena.chunks(), warm, "steady churn grew the arena");
        for p in live {
            // Safety: as above.
            unsafe { arena.reclaim_now(p) };
        }
    }

    /// The concentration cap (ROADMAP watch-item): churn that allocates
    /// from one family arena but retires everything through a sibling
    /// must not grow the family's chunk count without bound. Before the
    /// [`FREE_CAP`] overflow shelf, every freed block piled up on the
    /// retiring arena's private list — unreachable to the allocating
    /// sibling, which grew a fresh chunk set per round.
    #[test]
    fn concentrated_churn_keeps_chunk_count_flat() {
        const ROUNDS: usize = 10;
        const BLOCKS: usize = 6 * CHUNK_BLOCKS;
        let store = Arc::new(ChunkStore::new());
        let a: Arena<u64> = Arena::with_store(store.clone());
        let b: Arena<u64> = Arena::with_store(store);
        let mut settled = 0;
        for round in 0..ROUNDS {
            // A allocates; everything retires through B (the worst-case
            // one-directional migration under cross-stripe churn).
            let live: Vec<*mut u64> = (0..BLOCKS as u64).map(|i| a.alloc(i)).collect();
            let recycler = b.recycler();
            for group in live.chunks(CHUNK_BLOCKS) {
                let mut batch = b.take_batch();
                for &p in group {
                    batch.push(p as *mut ());
                }
                // Safety: every block is unreachable (the test is the
                // sole owner) and retired exactly once.
                unsafe { recycler.recycle(batch) };
            }
            // B's private list never exceeds its cap; the rest of the
            // family's free blocks sit on the shared shelf.
            assert!(
                b.free_len() <= FREE_CAP,
                "round {round}: private list above cap ({})",
                b.free_len()
            );
            if round == 2 {
                // By now A has grown the one-time make-up for the blocks
                // parked on B's capped list; from here the shelf recirculates.
                settled = a.chunks();
            }
            if round > 2 {
                assert_eq!(
                    a.chunks(),
                    settled,
                    "round {round}: concentrated churn regrew the family"
                );
            }
        }
        assert!(settled > 0);
        assert!(b.overflow_len() > 0, "diversion never engaged");
    }

    #[test]
    fn recycle_one_returns_the_block_directly() {
        let arena: Arena<u64> = Arena::new();
        let p = arena.alloc(11);
        let recycler = arena.recycler();
        // Safety: `p` is unreachable and retired exactly once; this test
        // plays the hazard-pointer scan's per-pointer reclaim role.
        unsafe { recycler.recycle_one(p as *mut ()) };
        let q = arena.alloc(12);
        assert_eq!(p, q, "recycled block not reused");
        // Safety: as above.
        unsafe { arena.reclaim_now(q) };
    }

    #[test]
    fn payloads_are_dropped_on_reclaim() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let arena: Arena<Counted> = Arena::new();
        let p = arena.alloc(Counted);
        assert_eq!(DROPS.load(Ordering::SeqCst), 0);
        // Safety: live, owned, reclaimed once.
        unsafe { arena.reclaim_now(p) };
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn recycler_returns_blocks_and_pools_the_buffer() {
        let arena: Arena<u64> = Arena::new();
        let a = arena.alloc(1);
        let b = arena.alloc(2);
        let mut batch = arena.take_batch();
        batch.push(a as *mut ());
        batch.push(b as *mut ());
        let recycler = arena.recycler();
        // Safety: both blocks are unreachable and retired exactly once;
        // this test plays the role of the post-grace-period collector.
        unsafe { recycler.recycle(batch) };
        // Both blocks back on the free list…
        let x = arena.alloc(3);
        let y = arena.alloc(4);
        assert!((x == a || x == b) && (y == a || y == b) && x != y);
        // …and the buffer pooled with its capacity.
        assert!(arena.take_batch().capacity() >= 2);
        // Safety: as above.
        unsafe {
            arena.reclaim_now(x);
            arena.reclaim_now(y);
        }
    }
}
