//! # bonsai — an RCU-balanced binary tree
//!
//! Reproduction of the *Bonsai tree* from Clements, Kaashoek and Zeldovich,
//! ["Scalable Address Spaces Using RCU Balanced
//! Trees"](https://pdos.csail.mit.edu/papers/bonsai:asplos12.pdf)
//! (ASPLOS'12): a balanced binary search tree whose lookups run lock-free
//! inside an RCU read-side critical section while a single writer rebuilds
//! the update path out of freshly-allocated immutable nodes and retires the
//! replaced nodes to an [`rcukit`] collector.
//!
//! Three layers are provided:
//!
//! * [`BonsaiTree`] — the ordered map itself: `get`/`get_le`/`get_ge`
//!   under a [`Guard`](rcukit::Guard), `insert`/`remove` behind an internal
//!   single-writer lock; the commit itself is a CAS-with-retry, which is
//!   what lets `RangeMap` run several writers at once.
//!
//!   Both layers are generic over the *reclamation backend*
//!   ([`rcukit::ReclaimBackend`]): epoch (the default), QSBR, or hazard
//!   pointers. Guard-based reads are the epoch read protocol; the
//!   `*_owned` lookups ([`BonsaiTree::get_owned`],
//!   [`RangeMap::lookup_owned`], `contains`) work on every backend, each
//!   traversal protected by whatever that backend prescribes.
//! * [`RangeMap`] — a VMA-style interval map over the tree, modeling the
//!   paper's page-fault workload: `lookup(addr)` finds the mapped region
//!   containing an address without taking any lock, while mutations take
//!   a *range lock* on exactly the byte span they touch — disjoint
//!   `map`/`unmap`/`unmap_range` calls from different threads commit in
//!   parallel, only overlapping spans serialize.
//! * [`AddressSpace`] — the backend abstraction the benchmark harness
//!   drives, so the same fault/map/unmap trace runs against [`RangeMap`]
//!   and against a lock-serialized baseline for the paper's comparison.
//!
//! The full concurrency design — epoch lifecycle, the writer session
//! ordering invariant, the range-lock coverage rule and its
//! deadlock-freedom argument — is written up once, in prose, in
//! `docs/CONCURRENCY.md` at the repository root.
//!
//! ```
//! use bonsai::RangeMap;
//!
//! let vmas: RangeMap<&'static str> = RangeMap::with_default();
//! assert!(vmas.map(0x1000, 0x3000, "text"));
//! assert!(vmas.map(0x4000, 0x5000, "stack"));
//! assert!(!vmas.map(0x2000, 0x6000, "overlaps"));
//!
//! let guard = vmas.pin();
//! assert_eq!(vmas.lookup(0x2fff, &guard), Some(&"text"));
//! assert_eq!(vmas.lookup(0x3000, &guard), None);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(unsafe_op_in_unsafe_fn)]

mod addrspace;
mod arena;
mod range_lock;
mod range_map;
mod sync;
mod tree;

pub use addrspace::AddressSpace;
pub use range_map::RangeMap;
pub use tree::BonsaiTree;
