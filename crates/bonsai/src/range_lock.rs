//! A range-lock manager: writer mutual exclusion by address span.
//!
//! This is the paper's "split the per-address-space lock" direction taken
//! to its conclusion: instead of one writer mutex serializing every
//! `map`/`unmap`, a writer acquires a lock on exactly the byte span
//! `[start, end)` it is about to mutate. Disjoint spans proceed fully in
//! parallel (including the copy-on-write path rebuild — only the root CAS
//! serializes, see `tree.rs`); overlapping spans serialize by blocking
//! until the conflicting holder releases.
//!
//! # Structure
//!
//! Held spans live in a sorted interval set (a `BTreeMap` keyed by span
//! start) behind one table mutex, with a condvar for waiters. The table
//! mutex is held only for the O(log n) overlap check and insert/remove —
//! never across the tree mutation itself — so its critical sections are a
//! few dozen nanoseconds where the old design held its mutex for the whole
//! O(log n) copy-on-write rebuild including allocations. (A sharded or
//! skip-list table would remove even that point of serialization; the
//! ROADMAP tracks it.)
//!
//! # Deadlock freedom
//!
//! Two facts make the manager deadlock-free by construction; the full
//! proof sketch lives in `docs/CONCURRENCY.md`:
//!
//! 1. **No hold-and-wait on spans.** A thread blocks in
//!    [`RangeLocks::acquire`] only while holding *no* range lock: every
//!    `RangeMap` operation takes exactly one span at a time, and the
//!    span-widening retry loops release their lock before re-acquiring a
//!    wider one. No cycle can form among span waiters.
//! 2. **The table mutex never nests.** It is acquired only inside
//!    `acquire`/release, which take no other lock while holding it, and a
//!    condvar wait releases it atomically.
//!
//! Writers also never *pin* while blocked: the writer session pins only
//! after `acquire` returns (see `with_write_session` in `tree.rs`), so a
//! queued writer cannot stall epoch advance or reclamation.
//!
//! The guard also carries a pooled scratch (`S`, in practice the tree's
//! `WriterScratch`), so each concurrently held lock has its own retired /
//! fresh buffers and the allocation-diet property survives the move from
//! one mutex-owned scratch to N lock-owned ones.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering::SeqCst;

use crate::sync::atomic::AtomicU64;
use crate::sync::{Condvar, Mutex};

/// The lock table: held spans plus the scratch pool.
struct Table<S> {
    /// Held spans, `start -> end`, pairwise disjoint (an insert happens
    /// only after the overlap check under the same lock).
    held: BTreeMap<u64, u64>,
    /// Scratches not currently lent to a held lock. Bounded by the peak
    /// number of concurrently held locks.
    pool: Vec<S>,
}

/// A manager of non-overlapping address-span locks, each lending a pooled
/// scratch `S` to its holder.
pub(crate) struct RangeLocks<S> {
    table: Mutex<Table<S>>,
    /// Signalled on every release; waiters re-run their overlap check.
    released: Condvar,
    /// Diagnostic: acquisitions that had to wait for an overlapping holder
    /// at least once. Tests assert overlap ⇒ contention and disjoint ⇒
    /// (usually) none.
    contended: AtomicU64,
    /// Number of threads currently parked in [`Self::acquire`]'s condvar
    /// wait. Lets tests rendezvous with a contender deterministically
    /// (poll until it is observably blocked) instead of sleeping.
    waiting: AtomicU64,
}

impl<S: Default> RangeLocks<S> {
    pub(crate) fn new() -> Self {
        Self {
            table: Mutex::new(Table {
                held: BTreeMap::new(),
                pool: Vec::new(),
            }),
            released: Condvar::new(),
            contended: AtomicU64::new(0),
            waiting: AtomicU64::new(0),
        }
    }

    /// Acquires an exclusive lock on the span `[start, end)`, blocking
    /// while any held span overlaps it. Returns a RAII guard carrying a
    /// pooled scratch; dropping it releases the span and wakes waiters.
    ///
    /// `start < end` is required (empty spans could not exclude anything).
    pub(crate) fn acquire(&self, start: u64, end: u64) -> RangeWriteGuard<'_, S> {
        debug_assert!(start < end, "empty or inverted lock span");
        let mut table = self.table.lock().unwrap();
        let mut waited = false;
        loop {
            if !Self::overlaps(&table.held, start, end) {
                table.held.insert(start, end);
                let scratch = table.pool.pop().unwrap_or_default();
                drop(table);
                if waited {
                    self.contended.fetch_add(1, SeqCst);
                }
                return RangeWriteGuard {
                    locks: self,
                    start,
                    scratch: Some(scratch),
                };
            }
            waited = true;
            // Releases the table mutex while parked; re-check on wake
            // (another waiter may have grabbed a conflicting span first).
            self.waiting.fetch_add(1, SeqCst);
            table = self.released.wait(table).unwrap();
            self.waiting.fetch_sub(1, SeqCst);
        }
    }

    /// Whether any held span intersects `[start, end)`. Same predecessor/
    /// successor probe as the region-overlap check in `RangeMap::map`.
    fn overlaps(held: &BTreeMap<u64, u64>, start: u64, end: u64) -> bool {
        if let Some((_, &held_end)) = held.range(..=start).next_back() {
            if held_end > start {
                return true;
            }
        }
        if let Some((&held_start, _)) = held.range(start..).next() {
            if held_start < end {
                return true;
            }
        }
        false
    }

    /// Total acquisitions that waited at least once (diagnostic).
    pub(crate) fn contended_acquires(&self) -> u64 {
        self.contended.load(SeqCst)
    }

    /// Threads currently parked waiting for a span (test rendezvous aid).
    #[cfg(test)]
    fn waiting_now(&self) -> u64 {
        self.waiting.load(SeqCst)
    }

    /// The largest `capacity()` among pooled scratches, via `probe`.
    /// Test aid for the allocation-diet regression; spans currently held
    /// (and their lent scratches) are not visible to it, so call it only
    /// while no writer is active.
    pub(crate) fn max_pooled(&self, probe: impl Fn(&S) -> usize) -> usize {
        let table = self.table.lock().unwrap();
        table.pool.iter().map(probe).max().unwrap_or(0)
    }
}

/// Exclusive ownership of the span `[start, …)` recorded in a
/// [`RangeLocks`] table, plus a borrowed pooled scratch. Released on drop.
pub(crate) struct RangeWriteGuard<'a, S> {
    locks: &'a RangeLocks<S>,
    start: u64,
    /// `Some` for the guard's whole life; `Option` only so drop can move
    /// the scratch back into the pool.
    scratch: Option<S>,
}

impl<S> RangeWriteGuard<'_, S> {
    /// The scratch lent to this lock holder.
    pub(crate) fn scratch(&mut self) -> &mut S {
        self.scratch.as_mut().expect("scratch taken before drop")
    }
}

impl<S> Drop for RangeWriteGuard<'_, S> {
    fn drop(&mut self) {
        let scratch = self.scratch.take().expect("scratch already returned");
        let mut table = self.locks.table.lock().unwrap();
        let removed = table.held.remove(&self.start);
        debug_assert!(removed.is_some(), "span vanished while held");
        // The scratch is always clean here, even when the writer unwound
        // mid-update: the tree's commit entry points drain it on unwind
        // (see `DrainOnUnwind` in `tree.rs` — the pooled-scratch
        // replacement for the old mutex's poisoning), so lending it to the
        // next holder is sound.
        table.pool.push(scratch);
        drop(table);
        // Wake every waiter: which spans became acquirable depends on
        // geometry only the waiters themselves can re-check.
        self.locks.released.notify_all();
    }
}

impl<S> std::fmt::Debug for RangeLocks<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let table = self.table.lock().unwrap();
        f.debug_struct("RangeLocks")
            .field("held", &table.held.len())
            .field("pooled", &table.pool.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering::SeqCst as Seq};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn disjoint_spans_are_both_grantable() {
        let locks: RangeLocks<()> = RangeLocks::new();
        let a = locks.acquire(0x1000, 0x2000);
        let b = locks.acquire(0x2000, 0x3000); // adjacent, not overlapping
        drop(a);
        drop(b);
        assert_eq!(locks.contended_acquires(), 0);
    }

    #[test]
    fn overlapping_span_waits_for_release() {
        let locks: Arc<RangeLocks<()>> = Arc::new(RangeLocks::new());
        let held = locks.acquire(0x1000, 0x3000);
        let entered = Arc::new(AtomicBool::new(false));
        let t = {
            let locks = Arc::clone(&locks);
            let entered = Arc::clone(&entered);
            thread::spawn(move || {
                let _g = locks.acquire(0x2000, 0x4000); // overlaps [1000,3000)
                entered.store(true, Seq);
            })
        };
        // Deterministic rendezvous: wait until the contender is observably
        // parked (no sleep — a loaded box just takes longer to get here).
        while locks.waiting_now() == 0 {
            thread::yield_now();
        }
        // Parked means not granted: `entered` can only be set after the
        // wait completes, which needs our release.
        assert!(!entered.load(Seq), "overlapping span granted concurrently");
        drop(held);
        t.join().unwrap();
        assert!(entered.load(Seq));
        assert_eq!(locks.contended_acquires(), 1);
    }

    #[test]
    fn scratch_is_pooled_across_holders() {
        let locks: RangeLocks<Vec<u8>> = RangeLocks::new();
        {
            let mut g = locks.acquire(0, 10);
            g.scratch().reserve(1024);
        }
        assert!(
            locks.max_pooled(Vec::capacity) >= 1024,
            "scratch not pooled"
        );
        {
            let mut g = locks.acquire(5, 15);
            assert!(g.scratch().capacity() >= 1024, "pooled scratch not reused");
        }
    }
}
