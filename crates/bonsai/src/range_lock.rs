//! A striped range-lock manager: writer mutual exclusion by address span,
//! with the interval bookkeeping itself partitioned so disjoint writers
//! touch disjoint cache lines.
//!
//! This is the paper's "split the per-address-space lock" direction taken
//! to its conclusion: instead of one writer mutex serializing every
//! `map`/`unmap`, a writer acquires a lock on exactly the byte span
//! `[start, end)` it is about to mutate. Disjoint spans proceed fully in
//! parallel (including the copy-on-write path rebuild — only the root CAS
//! serializes, see `tree.rs`); overlapping spans serialize by blocking
//! until the conflicting holder releases.
//!
//! # Structure: stripes by address slab
//!
//! The old design kept all held spans in one sorted interval set behind a
//! single table mutex — held only for O(log n) bookkeeping, but still one
//! cache line every writer bounced twice per op. The table is now
//! *striped*: addresses are divided into [`SLAB_BYTES`]-sized slabs, slab
//! `i` maps to stripe `i & (stripes - 1)` (stripe count a power of two
//! derived from [`std::thread::available_parallelism`], overridable via
//! [`RangeLocks::with_stripes`] for tests and model checking), and each
//! stripe holds — behind its own mutex, with its own condvar and scratch
//! pool — the spans that intersect any of its slabs. A span is recorded in
//! **every** stripe it covers. Writers whose spans share no stripe never
//! touch the same line; writers that collide on a stripe but not in bytes
//! contend only for the nanoseconds of one stripe's bookkeeping.
//!
//! *Why per-stripe overlap checks suffice:* two overlapping spans share at
//! least one byte; that byte lies in some slab, both spans cover that
//! slab, so both are recorded in — and both check — that slab's stripe.
//! Conversely a span that passes its check in every covering stripe
//! overlaps no held span. (Two *disjoint* spans may share a stripe via
//! slab aliasing — the check compares exact byte ranges, so they are
//! granted concurrently; aliasing costs momentary mutex contention, never
//! false serialization.)
//!
//! # Deadlock freedom under multi-stripe acquisition
//!
//! Three facts make the manager deadlock-free by construction; the full
//! proof sketch lives in `docs/CONCURRENCY.md` §5:
//!
//! 1. **Stripes are acquired in ascending index order** — a total order —
//!    whatever the address order of the slabs that produced them, so no
//!    cycle can form among stripe-mutex holders.
//! 2. **A blocked acquirer holds exactly one stripe mutex**: on finding a
//!    conflict it releases every other stripe it had locked and parks on
//!    the conflicting stripe's condvar (which releases that last mutex
//!    atomically); on wake it restarts from the lowest stripe. While
//!    parked it holds no range lock at all — every `RangeMap` operation
//!    takes one span at a time, and the span-widening retry loops release
//!    before re-acquiring — so no hold-and-wait on spans either.
//! 3. **Release never blocks**: it removes the span one stripe at a time
//!    (ascending) and notifies each stripe's condvar. Incremental removal
//!    is sound because the mutation the span protected is already
//!    complete — a waiter admitted after seeing a partially removed span
//!    races nothing.
//!
//! Writers also never *pin* while blocked: the writer session pins only
//! after `acquire` returns (see `with_write_session` in `tree.rs`), so a
//! queued writer cannot stall epoch advance or reclamation.
//!
//! The guard also carries a pooled scratch (`S`, in practice the tree's
//! `WriterScratch` with its node arena), drawn from the lowest covering
//! stripe's pool, so each concurrently held lock has its own retired /
//! fresh buffers and arena and the allocation-free write path survives the
//! move from one mutex-owned scratch to N lock-owned ones. Held spans are
//! kept in sorted `Vec`s rather than a `BTreeMap`: the per-stripe span
//! count is tiny (bounded by concurrent writers) and a `Vec`'s capacity
//! persists when it empties, where a `BTreeMap` would allocate and free a
//! node every time a stripe's span count toggled between 0 and 1 —
//! breaking the steady-state zero-allocation property.

use std::sync::atomic::Ordering::Relaxed;
use std::thread;

use crate::sync::atomic::AtomicU64;
use crate::sync::{Condvar, Mutex};

/// Bytes per address slab (64 KiB): large enough that a typical mutation
/// span (a few pages) covers one or two slabs, small enough that
/// concurrently active writers land on distinct slabs. A power of two, so
/// the slab divisions below compile to shifts.
const SLAB_BYTES: u64 = 64 * 1024;

/// Upper bound on stripes, so a span's covering-stripe set fits a `u64`
/// bitmask (and the acquire path's guard array stays stack-cheap).
const MAX_STRIPES: usize = 64;

/// One stripe's mutable state: the spans intersecting its slabs, plus the
/// stripe's share of the scratch pool.
struct Table<S> {
    /// Held spans `(start, end)` intersecting this stripe's slabs, sorted
    /// by start, pairwise disjoint (inserts happen only after the overlap
    /// check, under this same lock in concert with the other covering
    /// stripes' locks).
    held: Vec<(u64, u64)>,
    /// Scratches not currently lent to a held lock. A scratch is popped
    /// from (and returned to) the *lowest* covering stripe of the span
    /// that borrows it, so single-stripe spans — the common case — never
    /// touch another stripe's pool.
    pool: Vec<S>,
}

/// One stripe: its table, its waiters, and its park counter.
struct Stripe<S> {
    table: Mutex<Table<S>>,
    /// Signalled on every release of a span covering this stripe; waiters
    /// re-run their full overlap check.
    released: Condvar,
    /// Threads currently parked in [`RangeLocks::acquire`] on *this
    /// stripe's* condvar. Lets tests rendezvous with a contender
    /// deterministically — polling the stripe it actually parks on, not a
    /// table-wide aggregate — instead of sleeping.
    waiting: AtomicU64,
}

/// A manager of non-overlapping address-span locks over a striped interval
/// table, each granted span lending a pooled scratch `S` to its holder.
pub(crate) struct RangeLocks<S> {
    /// Power-of-two number of stripes, at most [`MAX_STRIPES`].
    stripes: Box<[Stripe<S>]>,
    /// Diagnostic: acquisitions that had to wait for an overlapping holder
    /// at least once. Tests assert overlap ⇒ contention and disjoint ⇒
    /// none (stripe aliasing between disjoint spans never parks).
    contended: AtomicU64,
    /// Creates a scratch on a pool miss (cold path — the pool serves the
    /// steady state). A factory rather than `S: Default` so every scratch
    /// of one manager can share family-wide backing state — in practice
    /// the arena chunk store, whose lifetime argument (a pending batch
    /// pins every chunk its blocks could live in) depends on all pooled
    /// scratches drawing on one store.
    make: Box<dyn Fn() -> S + Send + Sync>,
}

/// Default stripe count: one per hardware thread, rounded up to a power of
/// two, clamped to [`MAX_STRIPES`].
fn default_stripes() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .next_power_of_two()
        .min(MAX_STRIPES)
}

impl<S> RangeLocks<S> {
    pub(crate) fn new(make: impl Fn() -> S + Send + Sync + 'static) -> Self {
        Self::with_stripes(default_stripes(), make)
    }

    /// Creates a manager with an explicit stripe count (rounded up to a
    /// power of two, clamped to `1..=`[`MAX_STRIPES`]). [`new`](Self::new)
    /// sizes it automatically; this exists for tests and model checking,
    /// which want specific (usually small) stripe geometries.
    pub(crate) fn with_stripes(
        stripes: usize,
        make: impl Fn() -> S + Send + Sync + 'static,
    ) -> Self {
        let stripes = stripes.clamp(1, MAX_STRIPES).next_power_of_two();
        Self {
            stripes: (0..stripes)
                .map(|_| Stripe {
                    table: Mutex::new(Table {
                        held: Vec::new(),
                        pool: Vec::new(),
                    }),
                    released: Condvar::new(),
                    waiting: AtomicU64::new(0),
                })
                .collect(),
            contended: AtomicU64::new(0),
            make: Box::new(make),
        }
    }

    /// Number of stripes (diagnostic).
    pub(crate) fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Bitmask of the stripes covering `[start, end)`: one bit per
    /// distinct `slab & (stripes - 1)` value. A span covering at least
    /// `stripes` slabs covers every stripe.
    fn stripe_mask(&self, start: u64, end: u64) -> u64 {
        let n = self.stripes.len() as u64;
        let full: u64 = if n == 64 { !0 } else { (1 << n) - 1 };
        let first = start / SLAB_BYTES;
        let last = (end - 1) / SLAB_BYTES;
        if last - first >= n - 1 {
            return full;
        }
        let mut mask = 0u64;
        for slab in first..=last {
            mask |= 1 << (slab & (n - 1));
        }
        mask
    }

    /// Acquires an exclusive lock on the span `[start, end)`, blocking
    /// while any held span overlaps it. Returns a RAII guard carrying a
    /// pooled scratch; dropping it releases the span and wakes waiters.
    ///
    /// `start < end` is required (empty spans could not exclude anything).
    pub(crate) fn acquire(&self, start: u64, end: u64) -> RangeWriteGuard<'_, S> {
        debug_assert!(start < end, "empty or inverted lock span");
        let mask = self.stripe_mask(start, end);
        let mut waited = false;
        // One slot per stripe; only the covering stripes' slots are used.
        // Ascending index order throughout — the total order that makes
        // multi-stripe acquisition deadlock-free.
        let mut guards: [Option<crate::sync::MutexGuard<'_, Table<S>>>; MAX_STRIPES] =
            std::array::from_fn(|_| None);
        'retry: loop {
            let mut bits = mask;
            while bits != 0 {
                let idx = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let table = self.stripes[idx].table.lock().unwrap();
                if Self::overlaps(&table.held, start, end) {
                    // Conflict: drop the lower stripes' locks, then park on
                    // this stripe — the conflicting span is recorded here,
                    // so its release must take this stripe's mutex and will
                    // signal this condvar; holding the mutex from the check
                    // to the wait closes the lost-wakeup window.
                    for g in guards.iter_mut() {
                        *g = None;
                    }
                    waited = true;
                    let stripe = &self.stripes[idx];
                    // ordering: Relaxed (both) — test-rendezvous counter;
                    // the waiter state that matters for correctness lives
                    // in the condvar/mutex, and the polling test only needs
                    // eventual visibility of the count.
                    stripe.waiting.fetch_add(1, Relaxed);
                    drop(stripe.released.wait(table).unwrap());
                    stripe.waiting.fetch_sub(1, Relaxed);
                    continue 'retry;
                }
                guards[idx] = Some(table);
            }
            // No covering stripe holds an overlapping span, and we hold
            // every covering stripe's mutex, so that is simultaneously
            // true: record the span everywhere and borrow a scratch from
            // the lowest stripe's pool.
            let mut scratch = None;
            let mut bits = mask;
            while bits != 0 {
                let idx = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let table = guards[idx].as_mut().expect("covering stripe not locked");
                let pos = table.held.partition_point(|&(s, _)| s < start);
                table.held.insert(pos, (start, end));
                if scratch.is_none() {
                    scratch = Some(table.pool.pop().unwrap_or_else(|| (self.make)()));
                }
            }
            for g in guards.iter_mut() {
                *g = None;
            }
            if waited {
                // ordering: Relaxed — diagnostic counter.
                self.contended.fetch_add(1, Relaxed);
            }
            return RangeWriteGuard {
                locks: self,
                start,
                mask,
                scratch,
            };
        }
    }

    /// Whether any span in a stripe's sorted held list intersects
    /// `[start, end)`. Same predecessor/successor probe as the
    /// region-overlap check in `RangeMap::map`, on a sorted `Vec`.
    fn overlaps(held: &[(u64, u64)], start: u64, end: u64) -> bool {
        let pos = held.partition_point(|&(s, _)| s <= start);
        if pos > 0 && held[pos - 1].1 > start {
            return true;
        }
        pos < held.len() && held[pos].0 < end
    }

    /// Total held-span records across all stripes (a span is recorded
    /// once per covering stripe). Chaos-tier probe: at quiescence this
    /// must be zero — an unwinding writer releases its span through the
    /// guard's drop, so a panicked operation can never leak one.
    pub(crate) fn held_records(&self) -> usize {
        self.stripes
            .iter()
            .map(|stripe| {
                // Poison-recoverable for the same reason the table stays
                // consistent under unwinds: no failpoint sits inside a
                // stripe-mutex critical section.
                let table = stripe.table.lock().unwrap_or_else(|e| e.into_inner());
                table.held.len()
            })
            .sum()
    }

    /// Total acquisitions that waited at least once (diagnostic).
    pub(crate) fn contended_acquires(&self) -> u64 {
        // ordering: Relaxed — diagnostic snapshot.
        self.contended.load(Relaxed)
    }

    /// Threads currently parked on stripe `idx`'s condvar (test rendezvous
    /// aid — poll the stripe a contender actually parks on).
    #[cfg(test)]
    fn waiting_on(&self, idx: usize) -> u64 {
        // ordering: Relaxed — test-rendezvous poll; see `waiting`.
        self.stripes[idx].waiting.load(Relaxed)
    }

    /// The stripe a span conflicting in `[start, end)` would park on: the
    /// lowest-indexed covering stripe holding the conflict — which, for a
    /// single-slab span, is simply its only stripe.
    #[cfg(test)]
    fn lowest_stripe(&self, start: u64, end: u64) -> usize {
        self.stripe_mask(start, end).trailing_zeros() as usize
    }

    /// The largest `capacity()` among pooled scratches across all stripes,
    /// via `probe`. Test aid for the allocation-diet regression; spans
    /// currently held (and their lent scratches) are not visible to it, so
    /// call it only while no writer is active.
    pub(crate) fn max_pooled(&self, probe: impl Fn(&S) -> usize) -> usize {
        self.stripes
            .iter()
            .map(|stripe| {
                let table = stripe.table.lock().unwrap();
                table.pool.iter().map(&probe).max().unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }
}

/// Exclusive ownership of the span `[start, …)` recorded in every covering
/// stripe of a [`RangeLocks`] table, plus a borrowed pooled scratch.
/// Released on drop.
pub(crate) struct RangeWriteGuard<'a, S> {
    locks: &'a RangeLocks<S>,
    start: u64,
    /// The covering-stripe bitmask computed at acquire time.
    mask: u64,
    /// `Some` for the guard's whole life; `Option` only so drop can move
    /// the scratch back into the pool.
    scratch: Option<S>,
}

impl<S> RangeWriteGuard<'_, S> {
    /// The scratch lent to this lock holder.
    pub(crate) fn scratch(&mut self) -> &mut S {
        self.scratch.as_mut().expect("scratch taken before drop")
    }
}

impl<S> Drop for RangeWriteGuard<'_, S> {
    fn drop(&mut self) {
        // Remove the span stripe by stripe, ascending, returning the
        // scratch to the lowest stripe's pool and waking each stripe's
        // waiters. No two stripe mutexes are held at once; incremental
        // removal is sound because the protected mutation is already done
        // (see the module docs).
        //
        // The scratch is always clean here, even when the writer unwound
        // mid-update: the tree's commit entry points drain it on unwind
        // (see `DrainOnUnwind` in `tree.rs` — the pooled-scratch
        // replacement for the old mutex's poisoning), so lending it to the
        // next holder is sound.
        let mut scratch = self.scratch.take();
        let mut bits = self.mask;
        while bits != 0 {
            let idx = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let stripe = &self.locks.stripes[idx];
            {
                let mut table = stripe.table.lock().unwrap();
                let pos = table.held.partition_point(|&(s, _)| s < self.start);
                debug_assert!(
                    table.held.get(pos).is_some_and(|&(s, _)| s == self.start),
                    "span vanished from stripe {idx} while held"
                );
                table.held.remove(pos);
                if let Some(s) = scratch.take() {
                    table.pool.push(s);
                }
            }
            // Wake every waiter parked on this stripe: which spans became
            // acquirable depends on geometry only the waiters themselves
            // can re-check.
            stripe.released.notify_all();
        }
    }
}

impl<S> std::fmt::Debug for RangeLocks<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (mut held, mut pooled) = (0, 0);
        for stripe in self.stripes.iter() {
            let table = stripe.table.lock().unwrap();
            held += table.held.len();
            pooled += table.pool.len();
        }
        f.debug_struct("RangeLocks")
            .field("stripes", &self.stripes.len())
            .field("held_records", &held)
            .field("pooled", &pooled)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering::SeqCst as Seq};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn disjoint_spans_are_both_grantable() {
        let locks: RangeLocks<()> = RangeLocks::new(Default::default);
        let a = locks.acquire(0x1000, 0x2000);
        let b = locks.acquire(0x2000, 0x3000); // adjacent, not overlapping
        drop(a);
        drop(b);
        assert_eq!(locks.contended_acquires(), 0);
    }

    /// Disjoint spans that alias to the same stripe (same slab) must both
    /// be granted concurrently: aliasing may contend on the stripe mutex,
    /// never on the spans themselves.
    #[test]
    fn stripe_aliasing_does_not_serialize_disjoint_spans() {
        let locks: RangeLocks<()> = RangeLocks::with_stripes(2, Default::default);
        // Slabs 0 and 2 both map to stripe 0 with two stripes.
        let a = locks.acquire(0, 0x1000);
        let b = locks.acquire(2 * SLAB_BYTES, 2 * SLAB_BYTES + 0x1000);
        assert_eq!(
            locks.lowest_stripe(0, 0x1000),
            locks.lowest_stripe(2 * SLAB_BYTES, 2 * SLAB_BYTES + 0x1000)
        );
        drop(a);
        drop(b);
        assert_eq!(locks.contended_acquires(), 0);
    }

    /// A span covering several slabs is recorded in every covering stripe:
    /// a later span overlapping only its *last* slab must still block.
    #[test]
    fn multi_stripe_span_excludes_on_every_stripe() {
        let locks: Arc<RangeLocks<()>> = Arc::new(RangeLocks::with_stripes(4, Default::default));
        // Covers slabs 0..=2 → stripes {0, 1, 2}.
        let held = locks.acquire(0, 3 * SLAB_BYTES);
        let entered = Arc::new(AtomicBool::new(false));
        let t = {
            let locks = Arc::clone(&locks);
            let entered = Arc::clone(&entered);
            thread::spawn(move || {
                // Overlaps only the tail slab (stripe 2).
                let _g = locks.acquire(2 * SLAB_BYTES + 0x1000, 2 * SLAB_BYTES + 0x2000);
                entered.store(true, Seq);
            })
        };
        let park = locks.lowest_stripe(2 * SLAB_BYTES + 0x1000, 2 * SLAB_BYTES + 0x2000);
        assert_eq!(park, 2);
        while locks.waiting_on(park) == 0 {
            thread::yield_now();
        }
        assert!(!entered.load(Seq), "tail-slab overlap granted concurrently");
        drop(held);
        t.join().unwrap();
        assert!(entered.load(Seq));
        assert_eq!(locks.contended_acquires(), 1);
    }

    /// Two multi-stripe spans whose slabs alias the same stripe pair in
    /// *opposite address order* must both be grantable without deadlock —
    /// the ascending-index acquisition order at work. (With 2 stripes,
    /// slabs (0,1) give stripe order 0→1 by address, slabs (3,4) give
    /// 1→0; address-order acquisition would deadlock here.)
    #[test]
    fn opposite_stripe_order_spans_do_not_deadlock() {
        let locks: Arc<RangeLocks<()>> = Arc::new(RangeLocks::with_stripes(2, Default::default));
        let threads: Vec<_> = [(0u64, 2 * SLAB_BYTES), (3 * SLAB_BYTES, 5 * SLAB_BYTES)]
            .into_iter()
            .map(|(lo, hi)| {
                let locks = Arc::clone(&locks);
                thread::spawn(move || {
                    for _ in 0..200 {
                        drop(locks.acquire(lo, hi));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap(); // a deadlock would hang the harness timeout
        }
        assert_eq!(locks.contended_acquires(), 0, "disjoint spans contended");
    }

    #[test]
    fn overlapping_span_waits_for_release() {
        let locks: Arc<RangeLocks<()>> = Arc::new(RangeLocks::new(Default::default));
        let held = locks.acquire(0x1000, 0x3000);
        let entered = Arc::new(AtomicBool::new(false));
        let t = {
            let locks = Arc::clone(&locks);
            let entered = Arc::clone(&entered);
            thread::spawn(move || {
                let _g = locks.acquire(0x2000, 0x4000); // overlaps [1000,3000)
                entered.store(true, Seq);
            })
        };
        // Deterministic rendezvous: wait until the contender is observably
        // parked on the stripe where it found the conflict — the lowest
        // covering stripe of its span, since the held span shares the
        // contender's first slab (no sleep — a loaded box just takes
        // longer to get here).
        let park = locks.lowest_stripe(0x2000, 0x4000);
        while locks.waiting_on(park) == 0 {
            thread::yield_now();
        }
        // Parked means not granted: `entered` can only be set after the
        // wait completes, which needs our release.
        assert!(!entered.load(Seq), "overlapping span granted concurrently");
        drop(held);
        t.join().unwrap();
        assert!(entered.load(Seq));
        assert_eq!(locks.contended_acquires(), 1);
    }

    #[test]
    fn scratch_is_pooled_across_holders() {
        let locks: RangeLocks<Vec<u8>> = RangeLocks::new(Default::default);
        {
            let mut g = locks.acquire(0, 10);
            g.scratch().reserve(1024);
        }
        assert!(
            locks.max_pooled(Vec::capacity) >= 1024,
            "scratch not pooled"
        );
        {
            let mut g = locks.acquire(5, 15);
            assert!(g.scratch().capacity() >= 1024, "pooled scratch not reused");
        }
    }

    /// The scratch returns to the *lowest covering stripe*'s pool, so a
    /// same-slab successor finds it even on a multi-stripe table.
    #[test]
    fn scratch_returns_to_the_lowest_covering_stripe() {
        let locks: RangeLocks<Vec<u8>> = RangeLocks::with_stripes(4, Default::default);
        {
            // Covers slabs 1..=2 → lowest stripe 1.
            let mut g = locks.acquire(SLAB_BYTES, 3 * SLAB_BYTES);
            g.scratch().reserve(512);
        }
        {
            // Single-slab span in slab 1 → pops stripe 1's pool.
            let mut g = locks.acquire(SLAB_BYTES, SLAB_BYTES + 0x1000);
            assert!(g.scratch().capacity() >= 512, "pooled scratch not reused");
        }
    }

    #[test]
    fn stripe_mask_covers_wraparound_and_full_table() {
        let locks: RangeLocks<()> = RangeLocks::with_stripes(4, Default::default);
        assert_eq!(locks.stripe_count(), 4);
        // One slab → one stripe.
        assert_eq!(locks.stripe_mask(0, SLAB_BYTES), 0b0001);
        // Slabs 3..=5 wrap: stripes {3, 0, 1}.
        assert_eq!(locks.stripe_mask(3 * SLAB_BYTES, 6 * SLAB_BYTES), 0b1011);
        // >= 4 slabs → all stripes.
        assert_eq!(locks.stripe_mask(0, 64 * SLAB_BYTES), 0b1111);
        // The 64-stripe full mask must not overflow the shift.
        let wide: RangeLocks<()> = RangeLocks::with_stripes(64, Default::default);
        assert_eq!(wide.stripe_mask(0, u64::MAX), !0u64);
    }
}
