//! A VMA-style interval map over the Bonsai tree, with range-locked
//! parallel writers.
//!
//! Models the paper's address-space workload: page faults translate an
//! address to the mapped region containing it (`lookup`), concurrently with
//! `mmap`/`munmap`-style mutations (`map`/`unmap`/`unmap_range`). Lookups
//! are lock-free reads of the underlying [`BonsaiTree`]; mutations acquire
//! a [`RangeLocks`](crate::range_lock) span covering exactly the bytes they
//! decide over and mutate, so **disjoint mutations run in parallel** and
//! only overlapping spans serialize — the finer-grained successor to the
//! paper's single per-address-space writer lock.
//!
//! # The lock-coverage invariant
//!
//! Every mutation holds range locks covering (a) every byte of every
//! region it inserts, (b) every byte of every region it removes or
//! replaces, and (c) every byte whose coverage status its decision depends
//! on. Since any region overlapping a span `[start, end)` necessarily
//! covers at least one byte *inside* the span, holding `[start, end)`
//! freezes the span's coverage: no concurrent writer can create or destroy
//! coverage of any byte in it. That is exactly what makes `map`'s
//! check-then-insert atomic against other writers, while the tree-level
//! CAS commit (see `tree.rs`) keeps concurrent disjoint commits physically
//! sound. Operations whose affected extent is discovered dynamically
//! (`unmap` of an unknown-length region, `unmap_range` hitting straddling
//! regions) use a *widening retry*: if the discovered extent escapes the
//! held span, release, re-acquire the wider monotonically-grown span, and
//! revalidate — never extending a held lock, so the no-hold-and-wait
//! deadlock-freedom argument (`docs/CONCURRENCY.md`) is preserved.
//!
//! # What readers observe
//!
//! Individual tree updates are atomic (one root CAS each), but a composite
//! mutation — an `unmap_range` that removes several regions, or a
//! truncation's remove+reinsert pair — is atomic only with respect to
//! *writers*. A concurrent lock-free reader may observe intermediate
//! states (e.g. a region missing the instant before its truncated
//! remainder is republished), exactly as a kernel RCU VMA walk may observe
//! a partially applied `munmap`.

use std::fmt;
use std::sync::Arc;

use rcukit::{Collector, Guard, ReclaimBackend};

use crate::arena::ChunkStore;
use crate::range_lock::{RangeLocks, RangeWriteGuard};
use crate::tree::{with_write_session, BonsaiTree, Node, Probe, WriteSess, WriterScratch};

/// A mapped region: keyed in the tree by its start address, carrying its
/// exclusive end and a payload.
#[derive(Clone)]
struct Extent<V> {
    end: u64,
    value: V,
}

/// The scratch type pooled by the map's range-lock manager.
type Scratch<V> = WriterScratch<u64, Extent<V>>;

/// Outcome of one locked attempt at an operation whose affected extent is
/// discovered under the lock: either it completed, or the extent escaped
/// the held span and the caller must retry with the wider one.
enum Attempt<T> {
    Done(T),
    Widen(u64, u64),
}

/// An interval map of non-overlapping half-open ranges `[start, end)`,
/// backed by a [`BonsaiTree`] keyed on range start.
///
/// The address-space analogy: `map` is `mmap`, `unmap` is `munmap`
/// (exact-start), [`unmap_range`](Self::unmap_range) is a multi-region
/// `munmap` that splits and truncates straddling regions, and `lookup` is
/// the page-fault handler's VMA search — the operation the paper makes
/// scale by running it under RCU instead of a lock. Mutations on disjoint
/// spans commit in parallel under per-span range locks; see the module
/// docs and `docs/CONCURRENCY.md`.
pub struct RangeMap<V> {
    tree: BonsaiTree<u64, Extent<V>>,
    /// The arena family every scratch of this map — the tree's mutex-owned
    /// one and the range-lock pool's alike — allocates from. Held here so
    /// [`fork`](Self::fork) can put the child lineage's scratches in the
    /// same family: lineages share nodes, so they must share the blocks'
    /// lifetime story too (a pending recycle batch pins only its own
    /// arena's store).
    store: Arc<ChunkStore<Node<u64, Extent<V>>>>,
    /// The range-lock manager: writer mutual exclusion by byte span, plus
    /// the pool of per-holder scratch buffers (the map's share of the
    /// writer-path allocation diet).
    locks: RangeLocks<Scratch<V>>,
}

impl<V> RangeMap<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Creates an empty map reclaiming through `collector`. The range-lock
    /// table is striped by the machine's available parallelism.
    pub fn new(collector: Collector) -> Self {
        Self::with_backend(ReclaimBackend::Epoch(collector))
    }

    /// Creates an empty map reclaiming through any [`ReclaimBackend`]
    /// (epoch, QSBR, or hazard pointers). The backend decides the
    /// read-side protocol available: guard-based [`lookup`](Self::lookup)
    /// requires the epoch backend, while the owned lookups and
    /// [`contains`](Self::contains) work on every backend.
    pub fn with_backend(backend: ReclaimBackend) -> Self {
        Self::build(backend, None)
    }

    /// [`new`](Self::new) with an explicit range-lock stripe count
    /// (rounded up to a power of two, clamped to `1..=64`). Test and
    /// model-checking aid: small stripe tables force multi-stripe span
    /// geometries a machine-sized table would spread out.
    #[doc(hidden)]
    pub fn with_stripes(collector: Collector, stripes: usize) -> Self {
        Self::with_backend_and_stripes(ReclaimBackend::Epoch(collector), stripes)
    }

    /// [`with_backend`](Self::with_backend) with an explicit range-lock
    /// stripe count (see [`with_stripes`](Self::with_stripes)).
    #[doc(hidden)]
    pub fn with_backend_and_stripes(backend: ReclaimBackend, stripes: usize) -> Self {
        Self::build(backend, Some(stripes))
    }

    /// Shared constructor body: one fresh arena family (one chunk store)
    /// for the whole map, joined by the tree's mutex-owned scratch and
    /// every pooled range-lock scratch, so retired blocks may migrate
    /// between them while any pending recycle batch keeps all their
    /// backing chunks alive (see `crate::arena`).
    fn build(backend: ReclaimBackend, stripes: Option<usize>) -> Self {
        let store: Arc<ChunkStore<Node<u64, Extent<V>>>> = Arc::new(ChunkStore::new());
        let tree = BonsaiTree::with_scratch(backend, Scratch::with_store(store.clone()));
        Self::assemble(tree, store, stripes)
    }

    /// Wraps an already-built tree (fresh or forked) in a map whose
    /// pool-miss scratch factory joins `store`'s family.
    fn assemble(
        tree: BonsaiTree<u64, Extent<V>>,
        store: Arc<ChunkStore<Node<u64, Extent<V>>>>,
        stripes: Option<usize>,
    ) -> Self {
        let factory = {
            let store = store.clone();
            move || Scratch::with_store(store.clone())
        };
        let locks = match stripes {
            Some(n) => RangeLocks::with_stripes(n, factory),
            None => RangeLocks::new(factory),
        };
        Self { tree, store, locks }
    }

    /// Snapshots the map in O(1) — the `fork()` of the paper's
    /// address-space analogy: the child starts as an identical map sharing
    /// every tree node with the parent, and the two diverge copy-on-write
    /// from there (see [`BonsaiTree::fork`]). The child keeps the parent's
    /// backend, arena family, and stripe geometry.
    ///
    /// The fork acquires the *full* address range, excluding every
    /// concurrent writer: a composite mutation (`unmap_range` removing
    /// several regions, a truncation's remove+reinsert pair) is atomic
    /// only with respect to writers, and the child must never be born
    /// inside one's intermediate state. Readers of the parent are
    /// undisturbed.
    pub fn fork(&self) -> Self {
        with_write_session(
            &self.tree,
            || self.locks.acquire(0, u64::MAX),
            |sess, _lock| {
                let tree = self
                    .tree
                    .fork_in(sess, Scratch::with_store(self.store.clone()));
                Self::assemble(tree, self.store.clone(), Some(self.locks.stripe_count()))
            },
        )
    }

    /// Creates an empty map on the process-wide default collector.
    pub fn with_default() -> Self {
        Self::new(rcukit::default_collector().clone())
    }

    /// The reclamation backend this map retires through.
    pub fn backend(&self) -> &ReclaimBackend {
        self.tree.backend()
    }

    /// The collector backing this map.
    ///
    /// # Panics
    ///
    /// Panics if the map was built on a non-epoch backend.
    pub fn collector(&self) -> &Collector {
        self.tree.collector()
    }

    /// Pins the current thread against the map's collector. The guard
    /// borrows the map, so the map cannot be dropped while it is live.
    ///
    /// # Panics
    ///
    /// Panics if the map was built on a non-epoch backend; use the owned
    /// lookups ([`lookup_owned`](Self::lookup_owned),
    /// [`translate_owned`](Self::translate_owned),
    /// [`contains`](Self::contains)) there instead.
    pub fn pin(&self) -> Guard<'_> {
        self.tree.pin()
    }

    /// Largest capacity among the pooled writer scratch buffers (see
    /// `BonsaiTree::writer_scratch_capacity`). Test aid; call while no
    /// writer is active.
    #[doc(hidden)]
    pub fn writer_scratch_capacity(&self) -> usize {
        self.locks.max_pooled(Scratch::<V>::capacity)
    }

    /// Number of range-lock acquisitions that had to wait for an
    /// overlapping holder. Test aid: disjoint-writer workloads should keep
    /// this at (or near) zero, overlapping ones must move it.
    #[doc(hidden)]
    pub fn contended_acquires(&self) -> u64 {
        self.locks.contended_acquires()
    }

    /// Number of stripes in the range-lock table.
    #[doc(hidden)]
    pub fn lock_stripes(&self) -> usize {
        self.locks.stripe_count()
    }

    /// Held range-lock records across all stripes. Chaos-tier probe: at
    /// quiescence this must be zero even after injected panics — an
    /// unwinding writer's guard releases its span on drop.
    #[doc(hidden)]
    pub fn held_range_locks(&self) -> usize {
        self.locks.held_records()
    }

    /// Largest arena chunk count among the pooled writer scratches — the
    /// capacity-flat proxy for the zero-allocation write path. Call while
    /// no writer is active (lent scratches are invisible to the probe).
    #[doc(hidden)]
    pub fn writer_arena_chunks(&self) -> usize {
        self.locks.max_pooled(Scratch::<V>::arena_chunks)
    }

    /// Root-CAS commits that lost to a concurrent writer and rebuilt
    /// (surfaced as the sweep's `cas_retries`; see `BonsaiTree`).
    #[doc(hidden)]
    pub fn cas_retries(&self) -> u64 {
        self.tree.cas_retries()
    }

    /// Speculative nodes discarded by failed root-CAS commits.
    #[doc(hidden)]
    pub fn cas_wasted_nodes(&self) -> u64 {
        self.tree.cas_wasted_nodes()
    }

    /// Number of mapped regions.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether no region is mapped.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Runs `f` holding the range lock on `[lo, hi)` inside a write
    /// session for the map's backend, in the writer session order
    /// (backend gate → lock → protect → mutate → unlock → unprotect; see
    /// `with_write_session`).
    fn locked<R>(
        &self,
        lo: u64,
        hi: u64,
        f: impl FnOnce(&WriteSess<'_>, &mut RangeWriteGuard<'_, Scratch<V>>) -> R,
    ) -> R {
        with_write_session(&self.tree, || self.locks.acquire(lo, hi), f)
    }

    /// Maps `[start, end)` to `value`. Returns `false` (and maps nothing)
    /// if the range overlaps an existing region.
    ///
    /// Runs under the range lock for exactly `[start, end)`: concurrent
    /// `map`s of disjoint ranges proceed in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn map(&self, start: u64, end: u64, value: V) -> bool {
        assert!(start < end, "empty or inverted range {start:#x}..{end:#x}");
        self.locked(start, end, |sess, lock| {
            // Predecessor overlap: a region starting at or before `start`
            // that has not ended by `start`. (Reading the predecessor is
            // covered by the invariant: its overlap status is a fact about
            // coverage of byte `start`, which our lock freezes.)
            if let Some((_, extent)) = self.tree.get_le_in(&start, sess) {
                if extent.end > start {
                    return false;
                }
            }
            // Successor overlap: a region starting inside `[start, end)`.
            if let Some((succ_start, _)) = self.tree.get_ge_in(&start, sess) {
                if *succ_start < end {
                    return false;
                }
            }
            self.tree
                .insert_with(start, Extent { end, value }, sess, lock.scratch());
            true
        })
    }

    /// Unmaps the region that starts exactly at `start`, returning its
    /// payload.
    ///
    /// The coverage invariant requires holding the lock over the whole
    /// region being destroyed, whose end is only discoverable by reading
    /// the tree — so the span is sized by an optimistic lock-free read and
    /// revalidated under the lock, widening and retrying if the region
    /// grew in between.
    pub fn unmap(&self, start: u64) -> Option<V> {
        // A lock-free miss here is a valid linearization point: no region
        // starts at `start` as of this read.
        let mut hi = self
            .tree
            .read_map(&start, Probe::Eq, |_, extent| extent.end)?;
        loop {
            let attempt = self.locked(start, hi, |sess, lock| {
                match self.tree.get_in(&start, sess) {
                    None => Attempt::Done(None),
                    Some(extent) if extent.end <= hi => Attempt::Done(
                        self.tree
                            .remove_with(&start, sess, lock.scratch())
                            .map(|extent| extent.value),
                    ),
                    // Remapped longer since the optimistic read: the held
                    // span no longer covers the region.
                    Some(extent) => Attempt::Widen(start, extent.end),
                }
            });
            match attempt {
                Attempt::Done(v) => return v,
                Attempt::Widen(_, end) => hi = end,
            }
        }
    }

    /// Unmaps every byte in `[start, end)`, kernel-`munmap` style: regions
    /// fully inside the span are removed; a region straddling `start` is
    /// truncated; one straddling `end` keeps its tail; a region enclosing
    /// the whole span is split in two. Returns the number of regions
    /// removed or truncated (`0` if the span touched nothing).
    ///
    /// Atomic with respect to other writers (the lock span is widened to
    /// cover every affected region); concurrent readers may observe
    /// intermediate states of the split — including, briefly, a
    /// straddler's tail piece coexisting with its not-yet-removed source
    /// region (consistent answers either way) — as under kernel RCU.
    ///
    /// If a `V::clone` panics mid-operation, the composite may be left
    /// partially applied (some regions in the span still mapped, possibly
    /// a duplicated tail piece), but coverage of bytes **outside**
    /// `[start, end)` is never lost and every individual commit is intact
    /// — the commits are ordered so preserved pieces publish before their
    /// paired removals. Retrying the call completes the unmap.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn unmap_range(&self, start: u64, end: u64) -> usize {
        assert!(start < end, "empty or inverted range {start:#x}..{end:#x}");
        let (mut lo, mut hi) = (start, end);
        loop {
            let attempt = self.locked(lo, hi, |sess, lock| {
                // Discovery: the affected regions and the byte extent the
                // invariant requires us to hold for them.
                let (mut need_lo, mut need_hi) = (lo, hi);
                // A region starting strictly before `start` that reaches
                // into the span.
                let head = match start
                    .checked_sub(1)
                    .and_then(|p| self.tree.get_le_in(&p, sess))
                {
                    Some((&a, extent)) if extent.end > start => {
                        need_lo = need_lo.min(a);
                        need_hi = need_hi.max(extent.end);
                        Some(a)
                    }
                    _ => None,
                };
                // Regions starting inside `[start, end)`, collected into
                // the scratch's reusable address buffer (taken out for the
                // duration so `lock.scratch()` stays borrowable; returned
                // on every exit path) — composite unmaps allocate nothing
                // once the buffer is warm.
                let mut inside = std::mem::take(&mut lock.scratch().addrs);
                inside.clear();
                let mut probe = start;
                while let Some((&s, extent)) = self.tree.get_ge_in(&probe, sess) {
                    if s >= end {
                        break;
                    }
                    // Failpoint: unwind mid-discovery, while the address
                    // buffer is checked out of the pooled scratch and the
                    // range lock is held — nothing is mutated yet, so the
                    // map must come out untouched, the lock released, and
                    // the next writer lent a clean scratch (the taken
                    // buffer is dropped; the scratch keeps the fresh empty
                    // one `take` left, merely cold).
                    rcukit::faults::maybe_panic(rcukit::faults::site::UNMAP_DISCOVERY);
                    need_hi = need_hi.max(extent.end);
                    inside.push(s);
                    probe = s + 1; // s < end <= u64::MAX: no overflow
                }
                if need_lo < lo || need_hi > hi {
                    lock.scratch().addrs = inside;
                    return Attempt::Widen(need_lo, need_hi);
                }

                // Mutation: the held span covers every affected byte, so
                // no concurrent writer can touch these regions now. The
                // commits are ordered so coverage of bytes *outside*
                // `[start, end)` is never lost even if a `V::clone`
                // panics between them: every piece that preserves outside
                // bytes (a straddler's tail beyond `end`, the head piece
                // below `start`) is published *before* — or, for the head,
                // *in the same single commit as* — the removal it pairs
                // with. A panic mid-sequence can only leave the span
                // partially unmapped plus (until the tail's source region
                // is removed) transiently duplicated tail coverage, which
                // readers resolve consistently; it can never unmap bytes
                // the caller did not name. The fallible clones also run
                // before their commit, so the common panic aborts with
                // the tree fully unchanged (`DrainOnUnwind` in `tree.rs`
                // frees the speculative path).
                let mut affected = 0;
                if let Some(a) = head {
                    // Copy the fields out *before* the first commit: a
                    // commit may retire the node behind this reference,
                    // and the hazard-pointer backend can reclaim retired
                    // nodes mid-session (no grace period covers writer
                    // references across mutations).
                    let (old_end, head_value) = {
                        let extent = self
                            .tree
                            .get_in(&a, sess)
                            .expect("straddling region vanished under its range lock");
                        (extent.end, extent.value.clone())
                    };
                    if old_end > end {
                        // Region encloses the whole span: publish the tail
                        // piece [end, old_end) first.
                        self.tree.insert_with(
                            end,
                            Extent {
                                end: old_end,
                                value: head_value.clone(),
                            },
                            sess,
                            lock.scratch(),
                        );
                    }
                    // Truncate [a, old_end) to [a, start) as one in-place
                    // replace at key `a` — a single root CAS, so the head
                    // piece can never be lost between a remove and a
                    // reinsert (and one tree update instead of two).
                    self.tree.insert_with(
                        a,
                        Extent {
                            end: start,
                            value: head_value,
                        },
                        sess,
                        lock.scratch(),
                    );
                    affected += 1;
                }
                for &s in &inside {
                    let extent = self
                        .tree
                        .get_in(&s, sess)
                        .expect("inside region vanished under its range lock");
                    if extent.end > end {
                        // Tail straddler: publish [end, old_end) before
                        // removing its source region.
                        let tail = Extent {
                            end: extent.end,
                            value: extent.value.clone(),
                        };
                        self.tree.insert_with(end, tail, sess, lock.scratch());
                    }
                    self.tree
                        .remove_with(&s, sess, lock.scratch())
                        .expect("inside region vanished under its range lock");
                    affected += 1;
                }
                inside.clear();
                lock.scratch().addrs = inside;
                Attempt::Done(affected)
            });
            match attempt {
                Attempt::Done(n) => return n,
                Attempt::Widen(new_lo, new_hi) => {
                    // Monotone widening: the span only ever grows, so the
                    // retry loop terminates.
                    lo = lo.min(new_lo);
                    hi = hi.max(new_hi);
                }
            }
        }
    }

    /// Finds the region containing `addr` (the page-fault path). Lock-free;
    /// the reference is valid for the guard's critical section and borrows
    /// the map, so the map cannot be dropped while it is live.
    ///
    /// Epoch backend only (the guard *is* the epoch read-side protocol);
    /// on other backends use [`lookup_owned`](Self::lookup_owned).
    pub fn lookup<'g>(&'g self, addr: u64, guard: &'g Guard<'_>) -> Option<&'g V> {
        let (_, extent) = self.tree.get_le(&addr, guard)?;
        if addr < extent.end {
            Some(&extent.value)
        } else {
            None
        }
    }

    /// Whether any mapped region contains `addr`. Protects itself for the
    /// duration of the check using whatever read-side protocol the map's
    /// backend prescribes (pin / online access / hazard traversal) — the
    /// self-contained page-fault probe used by the
    /// [`AddressSpace`](crate::AddressSpace) backend abstraction. Use
    /// [`lookup`](Self::lookup) with an explicit guard when the payload is
    /// needed or when batching many probes under one pin (epoch backend).
    pub fn contains(&self, addr: u64) -> bool {
        self.tree
            .read_map(&addr, Probe::Le, |_, extent| addr < extent.end)
            .unwrap_or(false)
    }

    /// Clones out the payload of the region containing `addr`. Works on
    /// every backend (this is the only payload lookup available on the
    /// QSBR and hazard-pointer backends, whose read protocols cannot hand
    /// out long-lived references).
    pub fn lookup_owned(&self, addr: u64) -> Option<V> {
        self.tree
            .read_map(&addr, Probe::Le, |_, extent| {
                (addr < extent.end).then(|| extent.value.clone())
            })
            .flatten()
    }

    /// Like [`lookup`](Self::lookup), also returning the region bounds.
    ///
    /// Epoch backend only; on other backends use
    /// [`translate_owned`](Self::translate_owned).
    pub fn translate<'g>(&'g self, addr: u64, guard: &'g Guard<'_>) -> Option<(u64, u64, &'g V)> {
        let (start, extent) = self.tree.get_le(&addr, guard)?;
        if addr < extent.end {
            Some((*start, extent.end, &extent.value))
        } else {
            None
        }
    }

    /// Like [`translate`](Self::translate) but cloning the payload out;
    /// works on every backend.
    pub fn translate_owned(&self, addr: u64) -> Option<(u64, u64, V)> {
        self.tree
            .read_map(&addr, Probe::Le, |start, extent| {
                (addr < extent.end).then(|| (*start, extent.end, extent.value.clone()))
            })
            .flatten()
    }

    /// Clones the regions in address order as `(start, end, value)`.
    /// Intended for tests and debugging.
    pub fn to_vec(&self) -> Vec<(u64, u64, V)> {
        self.tree
            .to_vec()
            .into_iter()
            .map(|(start, extent)| (start, extent.end, extent.value))
            .collect()
    }
}

impl<V> fmt::Debug for RangeMap<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RangeMap")
            .field("tree", &self.tree)
            .field("locks", &self.locks)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_lookup_unmap() {
        let m: RangeMap<u32> = RangeMap::new(Collector::new());
        assert!(m.map(0x1000, 0x2000, 1));
        assert!(m.map(0x3000, 0x5000, 2));
        assert_eq!(m.len(), 2);

        let g = m.pin();
        assert_eq!(m.lookup(0x0fff, &g), None);
        assert_eq!(m.lookup(0x1000, &g), Some(&1));
        assert_eq!(m.lookup(0x1fff, &g), Some(&1));
        assert_eq!(m.lookup(0x2000, &g), None);
        assert_eq!(m.translate(0x4000, &g), Some((0x3000, 0x5000, &2)));
        drop(g);

        assert_eq!(m.unmap(0x1000), Some(1));
        assert_eq!(m.unmap(0x1000), None);
        let g = m.pin();
        assert_eq!(m.lookup(0x1500, &g), None);
    }

    #[test]
    fn overlaps_are_rejected() {
        let m: RangeMap<u32> = RangeMap::new(Collector::new());
        assert!(m.map(0x2000, 0x4000, 1));
        // Overlapping the middle, start, end, and enclosing.
        assert!(!m.map(0x2800, 0x3000, 2));
        assert!(!m.map(0x1000, 0x2001, 2));
        assert!(!m.map(0x3fff, 0x5000, 2));
        assert!(!m.map(0x1000, 0x6000, 2));
        assert!(!m.map(0x2000, 0x4000, 2));
        // Exactly adjacent ranges are fine.
        assert!(m.map(0x1000, 0x2000, 3));
        assert!(m.map(0x4000, 0x5000, 4));
        assert_eq!(m.len(), 3);
        assert_eq!(
            m.to_vec()
                .into_iter()
                .map(|(s, e, _)| (s, e))
                .collect::<Vec<_>>(),
            vec![(0x1000, 0x2000), (0x2000, 0x4000), (0x4000, 0x5000)]
        );
    }

    /// The full map/lookup/unmap/unmap_range surface replayed on each
    /// reclamation backend through the owned read API, ending with the
    /// backend's retired==freed exit invariant.
    #[test]
    fn map_roundtrip_on_every_backend() {
        use rcukit::{ReclaimBackend, ReclaimKind};
        for kind in [
            ReclaimKind::Epoch,
            ReclaimKind::Qsbr,
            ReclaimKind::Hp,
            ReclaimKind::Hybrid,
        ] {
            let backend = ReclaimBackend::new(kind);
            let m: RangeMap<u32> = RangeMap::with_backend(backend.clone());
            assert_eq!(m.backend().kind(), kind);
            assert!(m.map(0x1000, 0x3000, 1), "{kind:?}");
            assert!(m.map(0x4000, 0x6000, 2), "{kind:?}");
            assert!(!m.map(0x2000, 0x5000, 3), "{kind:?} overlap accepted");
            assert!(m.contains(0x2fff), "{kind:?}");
            assert!(!m.contains(0x3000), "{kind:?}");
            assert_eq!(m.lookup_owned(0x1000), Some(1), "{kind:?}");
            assert_eq!(m.lookup_owned(0x0fff), None, "{kind:?}");
            assert_eq!(
                m.translate_owned(0x5000),
                Some((0x4000, 0x6000, 2)),
                "{kind:?}"
            );
            assert_eq!(m.unmap(0x1000), Some(1), "{kind:?}");
            assert_eq!(m.unmap(0x1000), None, "{kind:?}");
            // Straddling span: truncates [0x4000,0x6000) to [0x4000,0x5000).
            assert_eq!(m.unmap_range(0x5000, 0x7000), 1, "{kind:?}");
            assert_eq!(m.to_vec(), vec![(0x4000, 0x5000, 2)], "{kind:?}");
            drop(m);
            backend.synchronize();
            let s = backend.stats();
            assert_eq!(
                s.objects_retired, s.objects_freed,
                "{kind:?} leaked retired objects"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty or inverted range")]
    fn empty_range_panics() {
        let m: RangeMap<u32> = RangeMap::new(Collector::new());
        m.map(0x1000, 0x1000, 1);
    }

    #[test]
    fn unmap_range_removes_inside_regions() {
        let m: RangeMap<u32> = RangeMap::new(Collector::new());
        assert!(m.map(0x1000, 0x2000, 1));
        assert!(m.map(0x3000, 0x4000, 2));
        assert!(m.map(0x5000, 0x6000, 3));
        // Span covering the middle two entirely.
        assert_eq!(m.unmap_range(0x3000, 0x6000), 2);
        assert_eq!(
            m.to_vec()
                .into_iter()
                .map(|(s, e, _)| (s, e))
                .collect::<Vec<_>>(),
            vec![(0x1000, 0x2000)]
        );
        // Nothing left in the span: a miss.
        assert_eq!(m.unmap_range(0x3000, 0x6000), 0);
    }

    #[test]
    fn unmap_range_truncates_head_straddler() {
        let m: RangeMap<u32> = RangeMap::new(Collector::new());
        assert!(m.map(0x1000, 0x4000, 7));
        // Span starts inside the region: it is truncated to [0x1000,0x2000).
        assert_eq!(m.unmap_range(0x2000, 0x5000), 1);
        assert_eq!(m.to_vec(), vec![(0x1000, 0x2000, 7)]);
        let g = m.pin();
        assert_eq!(m.lookup(0x1fff, &g), Some(&7));
        assert_eq!(m.lookup(0x2000, &g), None);
    }

    #[test]
    fn unmap_range_keeps_tail_straddler() {
        let m: RangeMap<u32> = RangeMap::new(Collector::new());
        assert!(m.map(0x2000, 0x5000, 7));
        // Span ends inside the region: the tail [0x3000,0x5000) survives.
        assert_eq!(m.unmap_range(0x1000, 0x3000), 1);
        assert_eq!(m.to_vec(), vec![(0x3000, 0x5000, 7)]);
    }

    #[test]
    fn unmap_range_splits_enclosing_region() {
        let m: RangeMap<u32> = RangeMap::new(Collector::new());
        assert!(m.map(0x1000, 0x6000, 9));
        // Span strictly inside one region: it splits into two pieces.
        assert_eq!(m.unmap_range(0x3000, 0x4000), 1);
        assert_eq!(m.to_vec(), vec![(0x1000, 0x3000, 9), (0x4000, 0x6000, 9)]);
        // The freed hole is mappable again.
        assert!(m.map(0x3000, 0x4000, 10));
    }

    #[test]
    fn unmap_range_mixed_head_inside_tail() {
        let m: RangeMap<u32> = RangeMap::new(Collector::new());
        assert!(m.map(0x1000, 0x3000, 1)); // head straddler
        assert!(m.map(0x3000, 0x4000, 2)); // fully inside
        assert!(m.map(0x5000, 0x8000, 3)); // tail straddler
        assert_eq!(m.unmap_range(0x2000, 0x6000), 3);
        assert_eq!(m.to_vec(), vec![(0x1000, 0x2000, 1), (0x6000, 0x8000, 3)]);
    }

    #[test]
    fn unmap_range_at_address_zero() {
        let m: RangeMap<u32> = RangeMap::new(Collector::new());
        assert!(m.map(0x0, 0x2000, 1));
        assert_eq!(m.unmap_range(0x0, 0x1000), 1);
        assert_eq!(m.to_vec(), vec![(0x1000, 0x2000, 1)]);
    }

    /// A `V::clone` panicking mid-rebuild must be contained: the aborted
    /// attempt's speculative nodes are freed on unwind (`DrainOnUnwind`),
    /// the pooled scratch returns clean, the tree is unchanged, and later
    /// writers proceed — the pooled-scratch replacement for the old writer
    /// mutex's poisoning. Without the drain, a release build's next commit
    /// would defer the aborted attempt's still-published replaced nodes
    /// (use-after-free); a debug build would fire the is-drained assert.
    #[test]
    fn panicking_value_clone_mid_rebuild_is_contained() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
        static ARMED: AtomicBool = AtomicBool::new(false);
        #[derive(Debug)]
        struct Fuse(u64);
        impl Clone for Fuse {
            fn clone(&self) -> Self {
                if ARMED.swap(false, SeqCst) {
                    panic!("fuse blown mid-rebuild");
                }
                Fuse(self.0)
            }
        }
        let m: RangeMap<Fuse> = RangeMap::new(Collector::new());
        for i in 0..8u64 {
            assert!(m.map(i * 0x2000, i * 0x2000 + 0x1000, Fuse(i)));
        }
        // The next map rebuilds a path through existing nodes, cloning
        // their values; the armed fuse panics on the first such clone.
        ARMED.store(true, SeqCst);
        let blown = catch_unwind(AssertUnwindSafe(|| {
            m.map(8 * 0x2000, 8 * 0x2000 + 0x1000, Fuse(8))
        }));
        assert!(blown.is_err(), "the armed clone must panic mid-rebuild");
        // No trace of the aborted attempt: unchanged map, working writers,
        // full reclamation.
        assert_eq!(m.len(), 8);
        assert!(m.map(8 * 0x2000, 8 * 0x2000 + 0x1000, Fuse(8)));
        assert_eq!(m.unmap(0).map(|f| f.0), Some(0));
        m.collector().synchronize();
        let s = m.collector().stats();
        assert_eq!(s.objects_retired, s.objects_freed);
    }

    /// Dropping the map while retirements are still waiting out their
    /// grace period must be safe even when retired blocks were allocated
    /// by a *different* pooled scratch than the one that retired them:
    /// the pending batch pins its recycler arena, which pins the family
    /// chunk store, so every block's backing chunk stays alive until the
    /// collector's final drain fires the batch. (Regression test for a
    /// cross-arena use-after-free: per-scratch chunk ownership freed a
    /// sibling's chunks while a batch still pointed into them.)
    #[test]
    fn drop_with_pending_batches_is_safe() {
        let collector = Collector::new();
        {
            let m: RangeMap<u64> = RangeMap::new(collector.clone());
            // A long-lived reader pin keeps every retirement queued.
            let outer = collector.register();
            let pin = outer.pin();
            // Churn through *many* sequential writer sessions; scratches
            // cycle through stripe pools, so later sessions retire nodes
            // earlier sessions' arenas allocated.
            for round in 0..8u64 {
                for slot in 0..64u64 {
                    let start = slot * 0x4000;
                    if m.unmap(start).is_none() {
                        assert!(m.map(start, start + 0x2000, round));
                    }
                }
            }
            drop(pin);
            // Map (and all its arenas' handles) drop here with batches
            // still pending on the collector.
        }
        // The final drain reclaims into (and frees) the still-pinned
        // family store; a use-after-free here dies under Miri/ASan and
        // corrupts the heap in plain runs.
        collector.synchronize();
        let s = collector.stats();
        assert_eq!(s.objects_retired, s.objects_freed);
        assert!(s.objects_retired > 0);
    }

    /// A `V::clone` panicking inside `unmap_range` must never cost bytes
    /// outside the requested span: the fallible clones run before their
    /// commits (common case: tree unchanged entirely), and preserved
    /// pieces publish before their paired removals.
    #[test]
    fn panicking_clone_in_unmap_range_loses_no_outside_bytes() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
        static ARMED: AtomicBool = AtomicBool::new(false);
        #[derive(Debug)]
        struct Fuse(u64);
        impl Clone for Fuse {
            fn clone(&self) -> Self {
                if ARMED.swap(false, SeqCst) {
                    panic!("fuse blown mid-unmap_range");
                }
                Fuse(self.0)
            }
        }
        let m: RangeMap<Fuse> = RangeMap::new(Collector::new());
        assert!(m.map(0x1000, 0x6000, Fuse(7)));
        // Split attempt whose first fallible clone (the tail piece of the
        // enclosing region) panics: the tree must be fully unchanged.
        ARMED.store(true, SeqCst);
        let blown = catch_unwind(AssertUnwindSafe(|| m.unmap_range(0x3000, 0x4000)));
        assert!(blown.is_err(), "armed clone must panic");
        assert_eq!(
            m.to_vec()
                .into_iter()
                .map(|(s, e, v)| (s, e, v.0))
                .collect::<Vec<_>>(),
            vec![(0x1000, 0x6000, 7)],
            "aborted unmap_range changed the map"
        );
        // Retrying (fuse disarmed) completes the split; outside bytes
        // [0x1000,0x3000) and [0x4000,0x6000) were never lost.
        assert_eq!(m.unmap_range(0x3000, 0x4000), 1);
        assert_eq!(
            m.to_vec()
                .into_iter()
                .map(|(s, e, _)| (s, e))
                .collect::<Vec<_>>(),
            vec![(0x1000, 0x3000), (0x4000, 0x6000)]
        );
        m.collector().synchronize();
        let s = m.collector().stats();
        assert_eq!(s.objects_retired, s.objects_freed);
    }

    /// The map's pooled writer scratches (distinct from the tree's, which
    /// the range-locked entry points bypass) must stop growing on a
    /// steady-state map/unmap churn — the `RangeMap` half of the
    /// writer-path allocation diet.
    #[test]
    fn steady_state_churn_does_not_regrow_scratch() {
        const PAGE: u64 = 0x1000;
        const SLOTS: u64 = 128;
        let m: RangeMap<u64> = RangeMap::new(Collector::new());
        let toggle = |rounds: usize| {
            for _ in 0..rounds {
                for slot in 0..SLOTS {
                    let start = slot * 4 * PAGE;
                    if m.unmap(start).is_none() {
                        assert!(m.map(start, start + 2 * PAGE, slot));
                    }
                }
            }
        };
        toggle(8); // warm-up: reach the workload's peak path length
        let warm = m.writer_scratch_capacity();
        assert!(warm > 0, "warm-up retired nothing");
        toggle(20);
        assert_eq!(
            m.writer_scratch_capacity(),
            warm,
            "steady-state churn regrew the map's writer scratch buffer"
        );
    }
}
