//! A VMA-style interval map over the Bonsai tree.
//!
//! Models the paper's address-space workload: page faults translate an
//! address to the mapped region containing it (`lookup`), concurrently with
//! `mmap`/`munmap`-style mutations (`map`/`unmap`). Lookups are lock-free
//! reads of the underlying [`BonsaiTree`]; mutations serialize on the map's
//! writer lock so the overlap check and the tree update are atomic with
//! respect to other writers.

use std::fmt;
use std::sync::Mutex;

use rcukit::{Collector, Guard};

use crate::tree::{with_writer, BonsaiTree, WriterScratch};

/// A mapped region: keyed in the tree by its start address, carrying its
/// exclusive end and a payload.
#[derive(Clone)]
struct Extent<V> {
    end: u64,
    value: V,
}

/// An interval map of non-overlapping half-open ranges `[start, end)`,
/// backed by a [`BonsaiTree`] keyed on range start.
///
/// The address-space analogy: `map` is `mmap`, `unmap` is `munmap`, and
/// `lookup` is the page-fault handler's VMA search — the operation the
/// paper makes scale by running it under RCU instead of a lock.
pub struct RangeMap<V> {
    tree: BonsaiTree<u64, Extent<V>>,
    /// Serializes `map`'s check-then-insert against other mutators and owns
    /// the map's retired-node scratch buffer. This is the *only* writer
    /// lock on the mutation path: the tree is updated through its unlocked
    /// crate-private entry points, so each `map`/`unmap` pays a single lock
    /// acquisition (the tree's own writer lock — and its scratch — go
    /// unused).
    writer: Mutex<WriterScratch<u64, Extent<V>>>,
}

impl<V> RangeMap<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Creates an empty map reclaiming through `collector`.
    pub fn new(collector: Collector) -> Self {
        Self {
            tree: BonsaiTree::new(collector),
            writer: Mutex::new(WriterScratch::new()),
        }
    }

    /// Creates an empty map on the process-wide default collector.
    pub fn with_default() -> Self {
        Self::new(rcukit::default_collector().clone())
    }

    /// The collector backing this map.
    pub fn collector(&self) -> &Collector {
        self.tree.collector()
    }

    /// Pins the current thread against the map's collector. The guard
    /// borrows the map, so the map cannot be dropped while it is live.
    pub fn pin(&self) -> Guard<'_> {
        self.tree.pin()
    }

    /// Capacity of the map's retired-node scratch buffer (see
    /// `BonsaiTree::writer_scratch_capacity`). Test aid.
    #[doc(hidden)]
    pub fn writer_scratch_capacity(&self) -> usize {
        self.writer.lock().unwrap().capacity()
    }

    /// Number of mapped regions.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether no region is mapped.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Maps `[start, end)` to `value`. Returns `false` (and maps nothing)
    /// if the range overlaps an existing region.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn map(&self, start: u64, end: u64, value: V) -> bool {
        assert!(start < end, "empty or inverted range {start:#x}..{end:#x}");
        with_writer(&self.writer, self.tree.collector(), |guard, scratch| {
            // Predecessor overlap: a region starting at or before `start`
            // that has not ended by `start`.
            if let Some((_, extent)) = self.tree.get_le(&start, guard) {
                if extent.end > start {
                    return false;
                }
            }
            // Successor overlap: a region starting inside `[start, end)`.
            if let Some((succ_start, _)) = self.tree.get_ge(&start, guard) {
                if *succ_start < end {
                    return false;
                }
            }
            // Safety: `with_writer` holds `self.writer`, serializing every
            // tree mutation (all mutations go through `map`/`unmap`), and
            // `guard` is pinned against the tree's collector.
            unsafe {
                self.tree
                    .insert_unlocked(start, Extent { end, value }, guard, scratch)
            };
            true
        })
    }

    /// Unmaps the region that starts exactly at `start`, returning its
    /// payload.
    pub fn unmap(&self, start: u64) -> Option<V> {
        with_writer(&self.writer, self.tree.collector(), |guard, scratch| {
            // Safety: as in `map`.
            unsafe { self.tree.remove_unlocked(&start, guard, scratch) }.map(|extent| extent.value)
        })
    }

    /// Finds the region containing `addr` (the page-fault path). Lock-free;
    /// the reference is valid for the guard's critical section and borrows
    /// the map, so the map cannot be dropped while it is live.
    pub fn lookup<'g>(&'g self, addr: u64, guard: &'g Guard<'_>) -> Option<&'g V> {
        let (_, extent) = self.tree.get_le(&addr, guard)?;
        if addr < extent.end {
            Some(&extent.value)
        } else {
            None
        }
    }

    /// Whether any mapped region contains `addr`. Pins internally for the
    /// duration of the check — the self-contained page-fault probe used by
    /// the [`AddressSpace`](crate::AddressSpace) backend abstraction. Use
    /// [`lookup`](Self::lookup) with an explicit guard when the payload is
    /// needed or when batching many probes under one pin.
    pub fn contains(&self, addr: u64) -> bool {
        let guard = self.pin();
        self.lookup(addr, &guard).is_some()
    }

    /// Like [`lookup`](Self::lookup), also returning the region bounds.
    pub fn translate<'g>(&'g self, addr: u64, guard: &'g Guard<'_>) -> Option<(u64, u64, &'g V)> {
        let (start, extent) = self.tree.get_le(&addr, guard)?;
        if addr < extent.end {
            Some((*start, extent.end, &extent.value))
        } else {
            None
        }
    }

    /// Clones the regions in address order as `(start, end, value)`.
    /// Intended for tests and debugging.
    pub fn to_vec(&self) -> Vec<(u64, u64, V)> {
        self.tree
            .to_vec()
            .into_iter()
            .map(|(start, extent)| (start, extent.end, extent.value))
            .collect()
    }
}

impl<V> fmt::Debug for RangeMap<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RangeMap")
            .field("tree", &self.tree)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_lookup_unmap() {
        let m: RangeMap<u32> = RangeMap::new(Collector::new());
        assert!(m.map(0x1000, 0x2000, 1));
        assert!(m.map(0x3000, 0x5000, 2));
        assert_eq!(m.len(), 2);

        let g = m.pin();
        assert_eq!(m.lookup(0x0fff, &g), None);
        assert_eq!(m.lookup(0x1000, &g), Some(&1));
        assert_eq!(m.lookup(0x1fff, &g), Some(&1));
        assert_eq!(m.lookup(0x2000, &g), None);
        assert_eq!(m.translate(0x4000, &g), Some((0x3000, 0x5000, &2)));
        drop(g);

        assert_eq!(m.unmap(0x1000), Some(1));
        assert_eq!(m.unmap(0x1000), None);
        let g = m.pin();
        assert_eq!(m.lookup(0x1500, &g), None);
    }

    #[test]
    fn overlaps_are_rejected() {
        let m: RangeMap<u32> = RangeMap::new(Collector::new());
        assert!(m.map(0x2000, 0x4000, 1));
        // Overlapping the middle, start, end, and enclosing.
        assert!(!m.map(0x2800, 0x3000, 2));
        assert!(!m.map(0x1000, 0x2001, 2));
        assert!(!m.map(0x3fff, 0x5000, 2));
        assert!(!m.map(0x1000, 0x6000, 2));
        assert!(!m.map(0x2000, 0x4000, 2));
        // Exactly adjacent ranges are fine.
        assert!(m.map(0x1000, 0x2000, 3));
        assert!(m.map(0x4000, 0x5000, 4));
        assert_eq!(m.len(), 3);
        assert_eq!(
            m.to_vec()
                .into_iter()
                .map(|(s, e, _)| (s, e))
                .collect::<Vec<_>>(),
            vec![(0x1000, 0x2000), (0x2000, 0x4000), (0x4000, 0x5000)]
        );
    }

    #[test]
    #[should_panic(expected = "empty or inverted range")]
    fn empty_range_panics() {
        let m: RangeMap<u32> = RangeMap::new(Collector::new());
        m.map(0x1000, 0x1000, 1);
    }

    /// The map's own writer scratch (distinct from the tree's, which its
    /// unlocked entry points bypass) must also stop growing on a
    /// steady-state map/unmap churn — the `RangeMap` half of the
    /// writer-path allocation diet.
    #[test]
    fn steady_state_churn_does_not_regrow_scratch() {
        const PAGE: u64 = 0x1000;
        const SLOTS: u64 = 128;
        let m: RangeMap<u64> = RangeMap::new(Collector::new());
        let toggle = |rounds: usize| {
            for _ in 0..rounds {
                for slot in 0..SLOTS {
                    let start = slot * 4 * PAGE;
                    if m.unmap(start).is_none() {
                        assert!(m.map(start, start + 2 * PAGE, slot));
                    }
                }
            }
        };
        toggle(8); // warm-up: reach the workload's peak path length
        let warm = m.writer_scratch_capacity();
        assert!(warm > 0, "warm-up retired nothing");
        toggle(20);
        assert_eq!(
            m.writer_scratch_capacity(),
            warm,
            "steady-state churn regrew the map's writer scratch buffer"
        );
    }
}
