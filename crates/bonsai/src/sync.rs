//! Synchronization-primitive facade: `std` in normal builds, the
//! [`loomette`] model checker's instrumented types under `--cfg loom` —
//! the same pattern as `rcukit`'s internal `sync` module, so the loom test
//! tier explores the *real* range-lock and tree-commit code.
//!
//! The shimmed surface is what the writer path touches: the range-lock
//! table's mutex + condvar, the tree's root pointer (CAS-published) and
//! length counter, and the writer mutex behind the tree's public
//! single-writer API.
//!
//! [`loomette`]: https://docs.rs/loom (API-compatible subset, vendored
//! in-tree as `crates/loomette` because this build environment is offline)

#[cfg(not(loom))]
pub(crate) use std::sync::{Condvar, Mutex, MutexGuard};

#[cfg(not(loom))]
pub(crate) mod atomic {
    pub(crate) use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize};
}

#[cfg(loom)]
pub(crate) use loomette::sync::{Condvar, Mutex, MutexGuard};

#[cfg(loom)]
pub(crate) mod atomic {
    pub(crate) use loomette::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize};
}
