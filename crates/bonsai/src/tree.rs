//! The RCU-balanced Bonsai tree.
//!
//! # Structure
//!
//! The tree is a weight-balanced BST (Adams' bounded-balance variant with
//! `DELTA = 3`, `RATIO = 2`, the parameters proven sound for one-element
//! updates). Every node is immutable after publication: an update clones the
//! key/value pairs along the root-to-site path into freshly allocated nodes,
//! rebalancing copy-on-write, and finally swings the root pointer with a
//! release store. Replaced nodes are retired to the tree's
//! [`Collector`] with [`Guard::defer_free`] and reclaimed only after a grace
//! period, so concurrent readers traversing the old path never touch freed
//! memory.
//!
//! # Concurrency contract
//!
//! * Lookups ([`BonsaiTree::get`], [`get_le`](BonsaiTree::get_le),
//!   [`get_ge`](BonsaiTree::get_ge)) take a pinned [`Guard`] from the tree's
//!   collector and are lock-free: they only load the root pointer and walk
//!   immutable nodes.
//! * Updates ([`insert`](BonsaiTree::insert),
//!   [`remove`](BonsaiTree::remove)) serialize on an internal writer mutex,
//!   mirroring the paper's single-writer address-space lock.

use std::cmp::Ordering as Cmp;
use std::fmt;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

use rcukit::{Collector, Guard};

/// Weight-balance factor: a subtree may be at most `DELTA` times heavier
/// than its sibling.
const DELTA: usize = 3;
/// Rotation selector: single vs. double rotation threshold.
const RATIO: usize = 2;

/// An immutable tree node. Published nodes are never mutated; readers walk
/// `left`/`right` as plain loads under a pinned guard.
struct Node<K, V> {
    /// Number of nodes in the subtree rooted here (including this node).
    size: usize,
    key: K,
    value: V,
    left: *mut Node<K, V>,
    right: *mut Node<K, V>,
}

// Safety: a retired node is dropped as a `Box<Node>` on whichever thread
// runs the deferred callback. Dropping a node drops only its own key and
// value — the child pointers are plain data, never followed — so sending a
// node requires exactly `K: Send + V: Send`.
unsafe impl<K: Send, V: Send> Send for Node<K, V> {}

/// The paper's RCU-balanced tree: lock-free lookups, single-writer
/// copy-on-write updates with grace-period reclamation.
///
/// See the [module docs](self) for the concurrency contract.
pub struct BonsaiTree<K, V> {
    root: AtomicPtr<Node<K, V>>,
    /// Serializes writers (the paper's per-address-space update lock).
    writer: Mutex<()>,
    collector: Collector,
    len: AtomicUsize,
}

// Safety: the raw node pointers are owned by the tree (plus the collector's
// deferred-free queue) and all cross-thread access is mediated by the
// epoch protocol; sharing the tree is sound whenever K and V themselves can
// be shared and sent (nodes are dropped on reclaiming threads).
unsafe impl<K: Send + Sync, V: Send + Sync> Send for BonsaiTree<K, V> {}
// Safety: see the `Send` justification above.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for BonsaiTree<K, V> {}

impl<K, V> BonsaiTree<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Creates an empty tree whose nodes are reclaimed through `collector`.
    pub fn new(collector: Collector) -> Self {
        Self {
            root: AtomicPtr::new(ptr::null_mut()),
            writer: Mutex::new(()),
            collector,
            len: AtomicUsize::new(0),
        }
    }

    /// Creates an empty tree on the process-wide default collector.
    pub fn with_default() -> Self {
        Self::new(rcukit::default_collector().clone())
    }

    /// The collector this tree retires nodes to.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Pins the current thread against the tree's collector.
    pub fn pin(&self) -> Guard {
        self.collector.pin()
    }

    /// Number of keys in the tree.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Panics unless `guard` is pinned against this tree's collector; a
    /// foreign guard would not protect our nodes from reclamation.
    fn check_guard(&self, guard: &Guard) {
        assert!(
            *guard.collector() == self.collector,
            "guard is pinned against a different collector than this tree"
        );
    }

    /// Looks up `key`. The returned reference is valid for the guard's
    /// critical section.
    pub fn get<'g>(&self, key: &K, guard: &'g Guard) -> Option<&'g V> {
        self.check_guard(guard);
        let mut cur = self.root.load(Ordering::Acquire);
        while !cur.is_null() {
            // Safety: `cur` is a published node; the pinned guard keeps it
            // from being reclaimed, and published nodes are immutable.
            let node = unsafe { &*cur };
            match key.cmp(&node.key) {
                Cmp::Less => cur = node.left,
                Cmp::Greater => cur = node.right,
                Cmp::Equal => return Some(&node.value),
            }
        }
        None
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        let guard = self.pin();
        self.get(key, &guard).is_some()
    }

    /// Finds the greatest entry with key `<= key` (predecessor query, the
    /// primitive behind VMA lookup).
    pub fn get_le<'g>(&self, key: &K, guard: &'g Guard) -> Option<(&'g K, &'g V)> {
        self.check_guard(guard);
        let mut cur = self.root.load(Ordering::Acquire);
        let mut best: *mut Node<K, V> = ptr::null_mut();
        while !cur.is_null() {
            // Safety: as in `get`.
            let node = unsafe { &*cur };
            if *key < node.key {
                cur = node.left;
            } else {
                best = cur;
                cur = node.right;
            }
        }
        if best.is_null() {
            None
        } else {
            // Safety: `best` is a published node protected by the guard.
            let node = unsafe { &*best };
            Some((&node.key, &node.value))
        }
    }

    /// Finds the least entry with key `>= key` (successor query).
    pub fn get_ge<'g>(&self, key: &K, guard: &'g Guard) -> Option<(&'g K, &'g V)> {
        self.check_guard(guard);
        let mut cur = self.root.load(Ordering::Acquire);
        let mut best: *mut Node<K, V> = ptr::null_mut();
        while !cur.is_null() {
            // Safety: as in `get`.
            let node = unsafe { &*cur };
            if *key > node.key {
                cur = node.right;
            } else {
                best = cur;
                cur = node.left;
            }
        }
        if best.is_null() {
            None
        } else {
            // Safety: `best` is a published node protected by the guard.
            let node = unsafe { &*best };
            Some((&node.key, &node.value))
        }
    }

    /// Inserts `key -> value`, returning the previous value for `key` if it
    /// was present. Takes the writer lock.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let _w = self.writer.lock().unwrap();
        let guard = self.collector.pin();
        let root = self.root.load(Ordering::Relaxed);
        // Safety: writer lock held; `root` is the current published tree.
        let (new_root, old) = unsafe { Self::insert_rec(root, &key, &value, &guard) };
        self.root.store(new_root, Ordering::Release);
        if old.is_none() {
            self.len.fetch_add(1, Ordering::Release);
        }
        old
    }

    /// Removes `key`, returning its value if it was present. Takes the
    /// writer lock.
    pub fn remove(&self, key: &K) -> Option<V> {
        let _w = self.writer.lock().unwrap();
        let guard = self.collector.pin();
        let root = self.root.load(Ordering::Relaxed);
        // Safety: writer lock held; `root` is the current published tree.
        let (new_root, old) = unsafe { Self::remove_rec(root, key, &guard) };
        if old.is_some() {
            self.root.store(new_root, Ordering::Release);
            self.len.fetch_sub(1, Ordering::Release);
        }
        old
    }

    /// Clones the tree contents in key order. Intended for tests and
    /// debugging; runs under a single pinned guard.
    pub fn to_vec(&self) -> Vec<(K, V)> {
        let guard = self.pin();
        self.check_guard(&guard);
        let mut out = Vec::with_capacity(self.len());
        // Safety: traversal of published immutable nodes under the guard.
        unsafe { Self::inorder(self.root.load(Ordering::Acquire), &mut out) };
        out
    }

    /// Verifies the BST ordering, cached sizes, and the weight-balance
    /// bound. Panics on violation. Test/debug aid; call while no writer is
    /// active.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let guard = self.pin();
        self.check_guard(&guard);
        // Safety: traversal of published immutable nodes under the guard.
        let n = unsafe { Self::check_rec(self.root.load(Ordering::Acquire), None, None) };
        assert_eq!(n, self.len(), "cached len disagrees with node count");
    }

    // ---- internal copy-on-write machinery (writer side) ----

    /// `size` of a possibly-null subtree.
    #[inline]
    fn size_of(n: *mut Node<K, V>) -> usize {
        if n.is_null() {
            0
        } else {
            // Safety: non-null nodes passed here are live (writer-owned or
            // guard-protected) and immutable.
            unsafe { (*n).size }
        }
    }

    /// Allocates a new node over the given children.
    fn mk(left: *mut Node<K, V>, key: K, value: V, right: *mut Node<K, V>) -> *mut Node<K, V> {
        Box::into_raw(Box::new(Node {
            size: 1 + Self::size_of(left) + Self::size_of(right),
            key,
            value,
            left,
            right,
        }))
    }

    /// Retires a replaced node to the collector. Also used for nodes created
    /// and then discarded within the same update — deferring their free is
    /// merely a little lazy, never wrong.
    ///
    /// # Safety
    ///
    /// `n` must be unlinked from the (about-to-be-published) tree and not
    /// retired twice.
    unsafe fn retire(n: *mut Node<K, V>, guard: &Guard) {
        // Safety: forwarded contract.
        unsafe { guard.defer_free(n) };
    }

    /// Builds a balanced node over `l`, `(key, value)`, `r`, where the two
    /// subtrees' weights differ by at most one element from a balanced
    /// state (the single-update invariant).
    ///
    /// # Safety
    ///
    /// `l`/`r` are valid subtree roots owned by the current update (or
    /// published and guard-protected); rotated-away nodes are retired.
    unsafe fn balance(
        l: *mut Node<K, V>,
        key: K,
        value: V,
        r: *mut Node<K, V>,
        guard: &Guard,
    ) -> *mut Node<K, V> {
        let sl = Self::size_of(l);
        let sr = Self::size_of(r);
        if sl + sr <= 1 {
            return Self::mk(l, key, value, r);
        }
        if sr > DELTA * sl {
            // Right-heavy: rotate left. `r` is non-null since sr >= 2.
            // Safety: `r` is a valid node per the function contract.
            let (rl, rr) = unsafe { ((*r).left, (*r).right) };
            if Self::size_of(rl) < RATIO * Self::size_of(rr) {
                // Single left rotation.
                // Safety: `r` valid; its fields are cloned, not moved.
                let (rk, rv) = unsafe { ((*r).key.clone(), (*r).value.clone()) };
                let out = Self::mk(Self::mk(l, key, value, rl), rk, rv, rr);
                // Safety: `r` is replaced by `out` and unlinked.
                unsafe { Self::retire(r, guard) };
                out
            } else {
                // Double left rotation; `rl` is non-null because
                // size(rl) >= RATIO * size(rr) and sizes sum to >= 2.
                // Safety: `r` and `rl` are valid nodes.
                let (rk, rv) = unsafe { ((*r).key.clone(), (*r).value.clone()) };
                let (rlk, rlv) = unsafe { ((*rl).key.clone(), (*rl).value.clone()) };
                let (rll, rlr) = unsafe { ((*rl).left, (*rl).right) };
                let out = Self::mk(
                    Self::mk(l, key, value, rll),
                    rlk,
                    rlv,
                    Self::mk(rlr, rk, rv, rr),
                );
                // Safety: both are replaced by `out` and unlinked.
                unsafe {
                    Self::retire(rl, guard);
                    Self::retire(r, guard);
                }
                out
            }
        } else if sl > DELTA * sr {
            // Left-heavy: rotate right (mirror image).
            // Safety: `l` is a valid node since sl >= 2.
            let (ll, lr) = unsafe { ((*l).left, (*l).right) };
            if Self::size_of(lr) < RATIO * Self::size_of(ll) {
                // Safety: `l` valid; fields cloned.
                let (lk, lv) = unsafe { ((*l).key.clone(), (*l).value.clone()) };
                let out = Self::mk(ll, lk, lv, Self::mk(lr, key, value, r));
                // Safety: `l` is replaced by `out` and unlinked.
                unsafe { Self::retire(l, guard) };
                out
            } else {
                // Safety: `l` and `lr` are valid nodes.
                let (lk, lv) = unsafe { ((*l).key.clone(), (*l).value.clone()) };
                let (lrk, lrv) = unsafe { ((*lr).key.clone(), (*lr).value.clone()) };
                let (lrl, lrr) = unsafe { ((*lr).left, (*lr).right) };
                let out = Self::mk(
                    Self::mk(ll, lk, lv, lrl),
                    lrk,
                    lrv,
                    Self::mk(lrr, key, value, r),
                );
                // Safety: both are replaced by `out` and unlinked.
                unsafe {
                    Self::retire(lr, guard);
                    Self::retire(l, guard);
                }
                out
            }
        } else {
            Self::mk(l, key, value, r)
        }
    }

    /// Copy-on-write insert. Returns the new subtree root and the displaced
    /// value, retiring every replaced node.
    ///
    /// # Safety
    ///
    /// Caller holds the writer lock and a pinned guard; `n` is the current
    /// (published) subtree root or null.
    unsafe fn insert_rec(
        n: *mut Node<K, V>,
        key: &K,
        value: &V,
        guard: &Guard,
    ) -> (*mut Node<K, V>, Option<V>) {
        if n.is_null() {
            return (
                Self::mk(ptr::null_mut(), key.clone(), value.clone(), ptr::null_mut()),
                None,
            );
        }
        // Safety: `n` is a valid published node, immutable under the guard.
        let node = unsafe { &*n };
        match key.cmp(&node.key) {
            Cmp::Equal => {
                let old = node.value.clone();
                let out = Self::mk(node.left, key.clone(), value.clone(), node.right);
                // Safety: `n` is replaced by `out`.
                unsafe { Self::retire(n, guard) };
                (out, Some(old))
            }
            Cmp::Less => {
                // Safety: recursing with the same contract.
                let (nl, old) = unsafe { Self::insert_rec(node.left, key, value, guard) };
                let out =
                    // Safety: `nl` is owned by this update, `node.right` is
                    // published; both valid.
                    unsafe { Self::balance(nl, node.key.clone(), node.value.clone(), node.right, guard) };
                // Safety: `n` is replaced by `out`.
                unsafe { Self::retire(n, guard) };
                (out, old)
            }
            Cmp::Greater => {
                // Safety: recursing with the same contract.
                let (nr, old) = unsafe { Self::insert_rec(node.right, key, value, guard) };
                let out =
                    // Safety: as in the `Less` arm, mirrored.
                    unsafe { Self::balance(node.left, node.key.clone(), node.value.clone(), nr, guard) };
                // Safety: `n` is replaced by `out`.
                unsafe { Self::retire(n, guard) };
                (out, old)
            }
        }
    }

    /// Copy-on-write remove. If the key is absent the original subtree is
    /// returned untouched (no reallocation along the path).
    ///
    /// # Safety
    ///
    /// Same contract as [`Self::insert_rec`].
    unsafe fn remove_rec(
        n: *mut Node<K, V>,
        key: &K,
        guard: &Guard,
    ) -> (*mut Node<K, V>, Option<V>) {
        if n.is_null() {
            return (n, None);
        }
        // Safety: `n` is a valid published node.
        let node = unsafe { &*n };
        match key.cmp(&node.key) {
            Cmp::Equal => {
                let old = node.value.clone();
                // Safety: joining the two published child subtrees.
                let out = unsafe { Self::join(node.left, node.right, guard) };
                // Safety: `n` is replaced by `out`.
                unsafe { Self::retire(n, guard) };
                (out, Some(old))
            }
            Cmp::Less => {
                // Safety: recursing with the same contract.
                let (nl, old) = unsafe { Self::remove_rec(node.left, key, guard) };
                if old.is_none() {
                    return (n, None);
                }
                // Safety: `nl` owned by this update, `node.right` published.
                let out = unsafe {
                    Self::balance(nl, node.key.clone(), node.value.clone(), node.right, guard)
                };
                // Safety: `n` is replaced by `out`.
                unsafe { Self::retire(n, guard) };
                (out, old)
            }
            Cmp::Greater => {
                // Safety: recursing with the same contract.
                let (nr, old) = unsafe { Self::remove_rec(node.right, key, guard) };
                if old.is_none() {
                    return (n, None);
                }
                // Safety: as in the `Less` arm, mirrored.
                let out = unsafe {
                    Self::balance(node.left, node.key.clone(), node.value.clone(), nr, guard)
                };
                // Safety: `n` is replaced by `out`.
                unsafe { Self::retire(n, guard) };
                (out, old)
            }
        }
    }

    /// Joins two subtrees whose every key in `l` is less than every key in
    /// `r`, where the pair was balanced around a now-removed root.
    ///
    /// # Safety
    ///
    /// Same contract as [`Self::insert_rec`].
    unsafe fn join(l: *mut Node<K, V>, r: *mut Node<K, V>, guard: &Guard) -> *mut Node<K, V> {
        if l.is_null() {
            return r;
        }
        if r.is_null() {
            return l;
        }
        // Safety: `r` is a valid non-null subtree.
        let (k, v, r2) = unsafe { Self::extract_min(r, guard) };
        // Safety: `l` published, `r2` owned by this update.
        unsafe { Self::balance(l, k, v, r2, guard) }
    }

    /// Removes and returns the minimum entry of non-null subtree `n`,
    /// retiring the path.
    ///
    /// # Safety
    ///
    /// `n` must be a valid non-null subtree root; same contract as
    /// [`Self::insert_rec`].
    unsafe fn extract_min(n: *mut Node<K, V>, guard: &Guard) -> (K, V, *mut Node<K, V>) {
        // Safety: `n` is valid and non-null per the contract.
        let node = unsafe { &*n };
        if node.left.is_null() {
            let out = (node.key.clone(), node.value.clone(), node.right);
            // Safety: `n` is unlinked; its right child is reused.
            unsafe { Self::retire(n, guard) };
            out
        } else {
            // Safety: `node.left` is non-null and valid.
            let (k, v, nl) = unsafe { Self::extract_min(node.left, guard) };
            // Safety: `nl` owned by this update, `node.right` published.
            let out = unsafe {
                Self::balance(nl, node.key.clone(), node.value.clone(), node.right, guard)
            };
            // Safety: `n` is replaced by `out`.
            unsafe { Self::retire(n, guard) };
            (k, v, out)
        }
    }

    // ---- read-side helpers ----

    /// In-order traversal cloning entries into `out`.
    ///
    /// # Safety
    ///
    /// `n` must be null or a guard-protected published subtree.
    unsafe fn inorder(n: *mut Node<K, V>, out: &mut Vec<(K, V)>) {
        if n.is_null() {
            return;
        }
        // Safety: valid published node per the contract.
        let node = unsafe { &*n };
        // Safety: children satisfy the same contract.
        unsafe { Self::inorder(node.left, out) };
        out.push((node.key.clone(), node.value.clone()));
        // Safety: children satisfy the same contract.
        unsafe { Self::inorder(node.right, out) };
    }

    /// Recursive invariant check; returns the subtree's node count.
    ///
    /// # Safety
    ///
    /// `n` must be null or a guard-protected published subtree.
    unsafe fn check_rec(n: *mut Node<K, V>, lo: Option<&K>, hi: Option<&K>) -> usize {
        if n.is_null() {
            return 0;
        }
        // Safety: valid published node per the contract.
        let node = unsafe { &*n };
        if let Some(lo) = lo {
            assert!(*lo < node.key, "BST order violated (low bound)");
        }
        if let Some(hi) = hi {
            assert!(node.key < *hi, "BST order violated (high bound)");
        }
        // Safety: children satisfy the same contract.
        let sl = unsafe { Self::check_rec(node.left, lo, Some(&node.key)) };
        // Safety: children satisfy the same contract.
        let sr = unsafe { Self::check_rec(node.right, Some(&node.key), hi) };
        assert_eq!(node.size, 1 + sl + sr, "cached size wrong");
        if sl + sr > 1 {
            assert!(
                sl <= DELTA * sr && sr <= DELTA * sl,
                "weight balance violated: sl={sl} sr={sr}"
            );
        }
        1 + sl + sr
    }
}

impl<K, V> Drop for BonsaiTree<K, V> {
    fn drop(&mut self) {
        // Frees the published tree immediately, without a grace period:
        // `&mut self` proves no reader can reach the root anymore (a live
        // guard does not keep the tree alive, and lookups require `&self`).
        // Nodes already retired to the collector are owned by its deferred
        // callbacks and are NOT freed here.
        fn free<K, V>(n: *mut Node<K, V>) {
            if n.is_null() {
                return;
            }
            // Safety: exclusive access per the reasoning above; each node
            // is reachable exactly once.
            let node = unsafe { Box::from_raw(n) };
            free(node.left);
            free(node.right);
        }
        free(*self.root.get_mut());
    }
}

impl<K, V> fmt::Debug for BonsaiTree<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BonsaiTree")
            .field("len", &self.len.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Small deterministic RNG (xorshift64*), since the workspace carries no
    /// external dependencies.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let t: BonsaiTree<u64, u64> = BonsaiTree::new(Collector::new());
        assert!(t.is_empty());
        assert_eq!(t.insert(5, 50), None);
        assert_eq!(t.insert(3, 30), None);
        assert_eq!(t.insert(7, 70), None);
        assert_eq!(t.insert(5, 55), Some(50));
        assert_eq!(t.len(), 3);
        let g = t.pin();
        assert_eq!(t.get(&5, &g), Some(&55));
        assert_eq!(t.get(&4, &g), None);
        drop(g);
        assert_eq!(t.remove(&3), Some(30));
        assert_eq!(t.remove(&3), None);
        assert_eq!(t.len(), 2);
        t.check_invariants();
    }

    #[test]
    fn ordered_queries() {
        let t: BonsaiTree<u64, &str> = BonsaiTree::new(Collector::new());
        for k in [10u64, 20, 30, 40] {
            t.insert(k, "x");
        }
        let g = t.pin();
        assert_eq!(t.get_le(&25, &g).map(|(k, _)| *k), Some(20));
        assert_eq!(t.get_le(&20, &g).map(|(k, _)| *k), Some(20));
        assert_eq!(t.get_le(&5, &g), None);
        assert_eq!(t.get_ge(&25, &g).map(|(k, _)| *k), Some(30));
        assert_eq!(t.get_ge(&40, &g).map(|(k, _)| *k), Some(40));
        assert_eq!(t.get_ge(&41, &g), None);
    }

    #[test]
    fn matches_btreemap_under_random_ops() {
        let collector = Collector::new();
        let t: BonsaiTree<u64, u64> = BonsaiTree::new(collector.clone());
        let mut model = BTreeMap::new();
        let mut rng = Rng(0xDEADBEEF);
        for i in 0..4000u64 {
            let k = rng.next() % 512;
            if rng.next().is_multiple_of(3) {
                assert_eq!(t.remove(&k), model.remove(&k), "op {i}: remove {k}");
            } else {
                assert_eq!(t.insert(k, i), model.insert(k, i), "op {i}: insert {k}");
            }
            if i % 512 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
        let got = t.to_vec();
        let want: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(got, want);
        // Everything replaced along the way is eventually reclaimed.
        collector.synchronize();
        let s = collector.stats();
        assert_eq!(s.objects_retired, s.objects_freed);
    }

    #[test]
    fn sequential_insert_stays_balanced() {
        let t: BonsaiTree<u64, u64> = BonsaiTree::new(Collector::new());
        for k in 0..2000u64 {
            t.insert(k, k);
        }
        t.check_invariants();
        for k in (0..2000u64).rev().step_by(2) {
            t.remove(&k);
        }
        t.check_invariants();
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn foreign_guard_is_rejected() {
        let t: BonsaiTree<u64, u64> = BonsaiTree::new(Collector::new());
        let other = Collector::new();
        let g = other.pin();
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| { t.get(&1, &g) })).is_err()
        );
    }
}
