//! The RCU-balanced Bonsai tree.
//!
//! # Structure
//!
//! The tree is a weight-balanced BST (Adams' bounded-balance variant with
//! `DELTA = 3`, `RATIO = 2`, the parameters proven sound for one-element
//! updates). Every node is immutable after publication: an update clones the
//! key/value pairs along the root-to-site path into freshly allocated nodes,
//! rebalancing copy-on-write, and finally swings the root pointer with a
//! compare-and-swap against the snapshot it rebuilt from. Only *after* a
//! successful publication are the replaced nodes retired to the tree's
//! reclamation backend — retiring earlier would let a reader pin after
//! the retirement yet still reach the nodes through the still-published old
//! root. Retired nodes are reclaimed only once the backend proves no reader
//! can still hold them, so concurrent readers traversing the old path never
//! touch freed memory.
//!
//! # Structural sharing and forks
//!
//! Every node carries a reference count: one reference per parent link
//! (across every published version and every forked lineage that reaches
//! it) plus one per tree whose root pointer is exactly that node.
//! [`BonsaiTree::fork`] snapshots a tree in O(1) by taking one extra
//! reference on the current root; the two lineages then diverge
//! copy-on-write, sharing every untouched subtree. A committed update does
//! not retire "the replaced path" by listing it — it *releases* the old
//! version's root reference ([`release`]), and the resulting cascade
//! retires exactly the nodes no remaining root can reach, stopping at
//! subtrees another lineage still shares. Reclamation *timing* is
//! unchanged: a node whose count hits zero ships to the backend's grace
//! period like before, because a reader that pinned before the unlinking
//! commit may still be traversing it. See `docs/CONCURRENCY.md` §9 for
//! the per-backend lifetime argument.
//!
//! # Concurrency contract
//!
//! The tree is generic over [`ReclaimBackend`]: the copy-on-write update
//! machinery is shared, while read-side protection and the retire path
//! dispatch per backend.
//!
//! * **Epoch** (the default, [`BonsaiTree::new`]): lookups
//!   ([`BonsaiTree::get`], [`get_le`](BonsaiTree::get_le),
//!   [`get_ge`](BonsaiTree::get_ge)) take a pinned [`Guard`] from the
//!   tree's collector and are lock-free: they only load the root pointer
//!   and walk immutable nodes. The `*_owned` lookups pin internally.
//! * **QSBR**: the `*_owned` lookups run on the calling thread's cached
//!   domain handle, which stays online and announces quiescence only at
//!   operation boundaries — protection is ambient, so the traversal itself
//!   costs no atomics at all. Guard-based lookups panic.
//! * **Hazard pointers**: the `*_owned` lookups run the publish-and-
//!   validate protocol (see [`BonsaiTree::hp_find`]); writers serialize on
//!   a per-tree gate so the copy-on-write path needs no hazards of its
//!   own. Guard-based lookups panic.
//! * **Hybrid**: the `*_owned` lookups pin an era interval and validate
//!   the root once (see [`BonsaiTree::hybrid_find`]) — the whole snapshot
//!   is then covered, so the walk itself is plain loads; writers
//!   serialize on the same per-tree gate as HP. Guard-based lookups
//!   panic.
//! * Updates ([`insert`](BonsaiTree::insert),
//!   [`remove`](BonsaiTree::remove)) serialize on an internal writer mutex,
//!   mirroring the paper's single-writer address-space lock. The *commit*
//!   itself, though, is a CAS-with-retry ([`BonsaiTree::insert_with`] /
//!   [`BonsaiTree::remove_with`]), so crate-internal callers that provide
//!   their own finer-grained serialization — `RangeMap`'s range locks —
//!   may run several writers concurrently: a failed CAS frees the
//!   never-published speculative path and rebuilds from the new root.
//!   ABA on the root pointer is impossible because the write session
//!   protects the load→CAS window per backend: an epoch writer holds a
//!   pinned guard (the snapshot root cannot be freed, let alone
//!   reallocated, until it drops), a QSBR writer is online and announces
//!   no quiescent state mid-update, and HP writers are serialized outright
//!   by the gate, so the root cannot change at all. See
//!   `docs/CONCURRENCY.md` at the repo root for the full protocol
//!   walkthrough.

use std::cmp::Ordering as Cmp;
use std::fmt;
use std::ptr;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use rcukit::{
    Collector, Guard, HpDomain, HybridDomain, QsbrDomain, ReclaimBackend, RecycleBatch, Recycler,
};

use crate::arena::{Arena, ChunkStore};
use crate::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize};
use crate::sync::Mutex;

/// Weight-balance factor: a subtree may be at most `DELTA` times heavier
/// than its sibling.
const DELTA: usize = 3;
/// Rotation selector: single vs. double rotation threshold.
const RATIO: usize = 2;

/// QSBR writer cadence: every Nth committed update announces a quiescent
/// state and drives one reclaim pass. Writers are the only retirers, so
/// tying the reclaim pass to their cadence bounds garbage at roughly
/// N writer batches per thread without a dedicated reclaim thread.
const QSBR_WRITE_TICK: usize = 8;
/// QSBR reader cadence: every Nth `*_owned` lookup announces a quiescent
/// state (readers retire nothing, so they only need to announce often
/// enough not to stall the writers' grace periods).
const QSBR_READ_TICK: usize = 64;

/// An immutable tree node. Published nodes are never mutated; readers walk
/// `left`/`right` as plain loads under a pinned guard. Crate-visible only
/// so `RangeMap` can name the arena chunk-store type its scratch family
/// shares.
pub(crate) struct Node<K, V> {
    /// Number of nodes in the subtree rooted here (including this node).
    size: usize,
    /// References on this node: one per parent link across every
    /// published version and forked lineage that reaches it, plus one per
    /// tree whose root pointer is exactly this node. Links are counted at
    /// *commit* time, never speculatively: a node is born at zero (the
    /// not-yet-accounted marker, visible to no other thread) and receives
    /// its counts in the publishing commit's accounting walk, under the
    /// tree's commit gate — so a count can only be incremented by a
    /// thread whose own lineage already holds a counted chain to the
    /// node, never resurrected from zero. The node is retired when the
    /// count returns to zero ([`release`]), which is what makes
    /// structural sharing across forks sound: replacing or dropping a
    /// node in one lineage can never free state another lineage still
    /// reaches.
    rc: AtomicUsize,
    /// Era the node was created in, sampled from the hybrid domain at the
    /// start of the writer entry that built it (0 under the other
    /// backends). An under-approximation of the publish era, which is the
    /// safe direction for the hybrid interval rule — and what lets churn
    /// reclaim past a stalled reader: nodes born after its pinned interval
    /// can never be blocked by it.
    birth: u64,
    key: K,
    value: V,
    left: *mut Node<K, V>,
    right: *mut Node<K, V>,
}

// Safety: a retired node's payload is dropped in place on whichever thread
// runs the deferred recycle (see [`crate::arena`]). Dropping a node drops
// only its own key and value — the child pointers are plain data, never
// followed — so sending a node requires exactly `K: Send + V: Send`.
unsafe impl<K: Send, V: Send> Send for Node<K, V> {}

/// Takes one reference to `n` (a committed child link, or a root pointer
/// being published or forked). No-op on null.
///
/// # Safety
///
/// `n` must be null or a node whose count the caller can prove is
/// *currently positive and cannot concurrently reach zero*: the caller's
/// own lineage holds a counted chain to `n` that no concurrent release
/// can sever (the old version's, until this commit itself releases it),
/// or writer exclusion rules releases out entirely (fork). Incrementing
/// from zero would resurrect a node another thread already batched.
unsafe fn acquire<K, V>(n: *mut Node<K, V>) {
    if !n.is_null() {
        // ordering: Relaxed — as in `Arc::clone`: the new reference only
        // becomes visible to other threads through a later Release (the
        // publishing root CAS, or the lock handoff protecting a fork),
        // which carries the count with it; the count synchronizes nothing
        // itself until the paired `release`'s AcqRel decrement.
        unsafe { (*n).rc.fetch_add(1, Ordering::Relaxed) };
    }
}

/// Drops one reference to `n`. When the last reference is gone the node
/// leaves the graph: it is pushed into `batch` for reclamation and its
/// child references die with it (the cascade recurses, stopping at any
/// subtree some other version or lineage still references). No-op on null.
///
/// # Safety
///
/// `n` must be null or a live node the caller holds one reference to,
/// which this call consumes. Every pointer that lands in `batch` has
/// refcount zero — unreachable from every root — and must be handed to
/// grace-period reclamation (or, for provably unpublished nodes, freed
/// directly) exactly once.
unsafe fn release<K, V>(n: *mut Node<K, V>, batch: &mut RecycleBatch) {
    if n.is_null() {
        return;
    }
    // ordering: AcqRel — as in `Arc::drop`: Release so this holder's
    // accesses to the node happen-before the reclamation the final
    // decrement triggers; Acquire (effective on the final decrement,
    // through the RMW chain over all decrements) so the retiring thread
    // sees every prior holder's accesses as complete before the payload
    // drops.
    if unsafe { (*n).rc.fetch_sub(1, Ordering::AcqRel) } == 1 {
        // Safety: we held the last reference, so the node (still live
        // until its batch fires) is ours to read and its child links are
        // ours to consume.
        let (left, right) = unsafe { ((*n).left, (*n).right) };
        batch.push(n as *mut ());
        unsafe { release(left, batch) };
        unsafe { release(right, batch) };
    }
}

/// The publishing commit's accounting walk: descends from the just-
/// published root, entering only this update's fresh nodes (count still
/// zero, the birth marker). Each fresh node reached takes exactly one
/// reference — its parent link in the new tree, or the root pointer — and
/// each *published* node newly linked from a fresh parent (or republished
/// untouched as the root) gains one. Fresh nodes the walk never reaches
/// were rotated away within the update and stay at zero for the caller to
/// free. Runs before the old version's release, so every published node
/// it acquires still holds its old-version chain.
///
/// # Safety
///
/// `n` must be null or the root the caller just published (or a fresh
/// node's child) on a tree whose commit gate the caller holds: the gate
/// orders accounting in version order, so zero counts here mean "this
/// update's fresh node" and every positive count is held up by the
/// still-unreleased old version.
unsafe fn account<K, V>(n: *mut Node<K, V>) {
    if n.is_null() {
        return;
    }
    // ordering: Relaxed — the zero marker is thread-private until this
    // walk assigns the real count (fresh nodes become reachable to other
    // committers only through the gate handoff, which orders these plain
    // stores before their loads; readers never touch counts).
    if unsafe { (*n).rc.load(Ordering::Relaxed) } == 0 {
        // ordering: Relaxed — see above; the node's single new-tree
        // reference (parent link or root pointer).
        unsafe { (*n).rc.store(1, Ordering::Relaxed) };
        let (left, right) = unsafe { ((*n).left, (*n).right) };
        unsafe { account(left) };
        unsafe { account(right) };
    } else {
        // Safety: a positive count here is held up by the old version's
        // still-unreleased chain (see the function contract).
        unsafe { acquire(n) };
    }
}

/// Writer-owned scratch state, only reachable while holding a writer lock
/// (the tree's internal mutex, or one of `RangeMap`'s range locks, whose
/// manager pools one scratch per concurrently held lock).
///
/// The `fresh` buffer is the CAS-retry bookkeeping, and together with the
/// scratch's [`Arena`] it is the whole allocation-free write path:
///
/// * `fresh` records every node the update allocated, each born with a
///   zero reference count (nothing counts speculative links). On a
///   successful commit ([`Self::commit`]) the accounting walk
///   ([`account`]) assigns the new version's counts, rotated-away fresh
///   nodes (still at zero) return to the arena immediately, and releasing
///   the old root retires exactly the nodes no remaining root reaches —
///   replaced *published* nodes are not listed anywhere. On a failed CAS
///   nothing in `fresh` was ever visible to any reader and no count was
///   ever touched, so [`Self::discard`] returns every fresh node to the
///   arena immediately.
/// * `arena` feeds every node allocation ([`BonsaiTree::mk`]) and pools
///   the batch buffers; once warm, an update performs zero heap
///   allocations (the node blocks, the batch buffer, and — see
///   `rcukit::deferred` — the deferred unit itself are all recycled).
///
/// Capacity persists across updates (amortized zero growth once warm).
pub(crate) struct WriterScratch<K, V> {
    fresh: Vec<*mut Node<K, V>>,
    /// The slab arena this scratch allocates nodes from and retires them
    /// to. Sibling scratches' nodes may also recycle here; see
    /// `crate::arena` on block migration.
    arena: Arena<Node<K, V>>,
    /// Reusable address buffer lent to `RangeMap::unmap_range`'s discovery
    /// pass, so composite unmaps stay allocation-free too.
    pub(crate) addrs: Vec<u64>,
    /// Birth era stamped into every node `mk` builds this writer entry —
    /// the hybrid domain's era sampled when the entry began; 0 under the
    /// other backends (they ignore it).
    birth_era: u64,
}

// Safety: the pointer buffer is drained before the writer lock is
// released (every update either commits or discards), so a
// `WriterScratch` observed outside a critical section never carries
// pointers; moving the empty buffer (and the `Send + Sync` arena handle)
// across threads is sound, and inside a critical section the scratch is
// confined to the lock-holding thread.
unsafe impl<K: Send, V: Send> Send for WriterScratch<K, V> {}

impl<K, V> Default for WriterScratch<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> WriterScratch<K, V> {
    /// A standalone scratch over its own single-member arena family (the
    /// tree's mutex-owned scratch).
    pub(crate) fn new() -> Self {
        Self::with_store(Arc::new(ChunkStore::new()))
    }

    /// A scratch joining an existing arena family: its nodes live in
    /// `store`, shared with every sibling scratch of the same owner —
    /// which is what lets retired blocks migrate between pooled scratches
    /// while any pending batch (pinning its arena, pinning the store)
    /// keeps every block's chunk alive. See `crate::arena`.
    pub(crate) fn with_store(store: Arc<ChunkStore<Node<K, V>>>) -> Self {
        Self {
            fresh: Vec::new(),
            arena: Arena::with_store(store),
            addrs: Vec::new(),
            birth_era: 0,
        }
    }

    /// The family chunk store this scratch's arena belongs to — how forked
    /// trees and sibling scratches join the same block-lifetime family.
    pub(crate) fn store(&self) -> Arc<ChunkStore<Node<K, V>>> {
        self.arena.store()
    }

    /// Capacity of the fresh-node buffer — exposed (via doc-hidden tree /
    /// map accessors) so tests can assert steady-state updates stop growing
    /// it (it tracks the workload's peak rebuilt-path length).
    pub(crate) fn capacity(&self) -> usize {
        self.fresh.capacity()
    }

    /// Chunks allocated by this scratch's arena — the capacity-flat proxy
    /// for the zero-allocation write path: steady-state churn must stop
    /// moving it.
    pub(crate) fn arena_chunks(&self) -> usize {
        self.arena.chunks()
    }

    /// Whether the fresh buffer is empty — every update must start and end
    /// in this state.
    fn is_drained(&self) -> bool {
        self.fresh.is_empty()
    }

    /// Publication failed (another writer's CAS won) or the attempt
    /// unwound pre-CAS: return every node this attempt allocated to the
    /// arena — none was ever reachable by a reader, so no grace period is
    /// needed, and no reference count was ever touched (links are counted
    /// only at commit), so there is nothing to unwind.
    ///
    /// # Safety
    ///
    /// Nothing in `fresh` was published (failed CAS, or unwind before the
    /// CAS); each pointer appears exactly once (every allocation site is
    /// [`BonsaiTree::mk`], which records each node once).
    unsafe fn discard(&mut self) {
        for &n in &self.fresh {
            // Safety: allocated by `mk` this attempt from this scratch's
            // arena, never published, reclaimed exactly once here. Only
            // the node payload is dropped; its children may be published
            // nodes and are not followed.
            unsafe { self.arena.reclaim_now(n) };
        }
        self.fresh.clear();
    }
}

/// Unwind guard for a commit attempt: if the attempt leaves the scratch
/// undrained — only possible when a `K`/`V` clone panicked mid-rebuild,
/// before any publication — free the speculative nodes, so the scratch
/// returns to its pool (or poisoned mutex) clean and the next writer
/// inherits no stale pointers.
struct DrainOnUnwind<'a, K, V>(&'a mut WriterScratch<K, V>);

impl<K, V> Drop for DrainOnUnwind<'_, K, V> {
    fn drop(&mut self) {
        if !self.0.is_drained() {
            // Safety: reached only when the attempt neither committed nor
            // explicitly discarded — i.e. it unwound before its CAS — so
            // everything in `fresh` is unpublished.
            unsafe { self.0.discard() };
        }
    }
}

/// Unwind guard for the post-CAS window: once the root CAS succeeds the
/// new version is published, so the commit accounting (retire the
/// replaced version, settle reference counts) and the length update are
/// owed no matter how the attempt exits — an injected `tree.post_cas`
/// panic included. Runs both on drop, while the caller's commit gate is
/// still held (locals unwind innermost-first), preserving version-order
/// accounting; `commit` leaves the scratch drained, so the outer
/// [`DrainOnUnwind`] then has nothing to discard.
struct CommitOnUnwind<'a, 's, K: Send + 'static, V: Send + 'static> {
    scratch: &'a mut WriterScratch<K, V>,
    sess: &'a WriteSess<'s>,
    old_root: *mut Node<K, V>,
    new_root: *mut Node<K, V>,
    len: &'a AtomicUsize,
    /// `+1` for an insert of a new key, `-1` for a remove, `0` for a
    /// replacement.
    delta: i8,
}

impl<K: Send + 'static, V: Send + 'static> Drop for CommitOnUnwind<'_, '_, K, V> {
    fn drop(&mut self) {
        self.scratch.commit(self.sess, self.old_root, self.new_root);
        // ordering: Release — pairs with `len`'s Acquire so an observed
        // count implies the commit behind it.
        match self.delta {
            1 => self.len.fetch_add(1, Ordering::Release),
            -1 => self.len.fetch_sub(1, Ordering::Release),
            _ => 0,
        };
    }
}

impl<K: Send + 'static, V: Send + 'static> WriterScratch<K, V> {
    /// Publication succeeded: settle the reference counts, in the only
    /// sound order and under the tree's commit gate (held by the caller
    /// across CAS → commit, so accounting runs in version order).
    ///
    /// 1. [`account`] the new version from `new_root`: kept fresh nodes
    ///    take their single new-tree reference, published nodes newly
    ///    linked from fresh parents (or republished untouched as the
    ///    root) gain one. This precedes every release — each published
    ///    node acquired here is meanwhile held up by the old version's
    ///    not-yet-released chain.
    /// 2. Free rotated-away fresh nodes (count still zero: absent from
    ///    the new tree, never published) back to the arena immediately.
    /// 3. Release the old version's root reference; the cascade retires
    ///    exactly the nodes no remaining root — this tree's new version,
    ///    or any forked lineage — can reach.
    ///
    /// Everything that hit zero ships as one deferred recycle batch — a
    /// single retire-tag sample (and its StoreLoad fence) per update,
    /// zero allocations once the arena's batch pool is warm (on the HP
    /// backend the batch is split per pointer so each node reclaims as
    /// soon as no slot protects *it*). After the backend's grace
    /// condition the arena drops each payload in place and reclaims the
    /// blocks.
    fn commit(
        &mut self,
        sess: &WriteSess<'_>,
        old_root: *mut Node<K, V>,
        new_root: *mut Node<K, V>,
    ) {
        // Safety: `new_root` was just published under the held commit
        // gate; fresh children are this update's own, published ones are
        // held up by the old version until the release below.
        unsafe { account(new_root) };
        let mut batch = self.arena.take_batch();
        for &n in &self.fresh {
            // ordering: Relaxed — the accounting walk above ran on this
            // thread; zero means it never reached `n`.
            if unsafe { (*n).rc.load(Ordering::Relaxed) } == 0 {
                // Safety: rotated away within this update — absent from
                // the new tree, so never published and never referenced;
                // freed exactly once here.
                unsafe { self.arena.reclaim_now(n) };
            }
        }
        self.fresh.clear();
        // Safety: dropping the replaced version's root-pointer reference;
        // the cascade stops at subtrees the new version or a forked
        // lineage still references.
        unsafe { release(old_root, &mut batch) };
        // Safety: every batched pointer hit a zero count under a
        // still-held write session: no root reaches it anymore, so only
        // readers already inside a critical section can, and the grace
        // period covers exactly those.
        unsafe { self.defer_batch(sess, batch) };
    }

    /// Ships `batch` to the session's backend for grace-period
    /// reclamation, or returns an empty buffer to the arena's pool.
    ///
    /// # Safety
    ///
    /// Every pointer in `batch` is an arena-family block holding an
    /// initialized `Node` at refcount zero (unreachable from every root),
    /// batched exactly once; the payload is `Send` (the bounds here).
    unsafe fn defer_batch(&mut self, sess: &WriteSess<'_>, batch: RecycleBatch) {
        if batch.is_empty() {
            self.arena.put_batch(batch);
            return;
        }
        let bytes = batch.len() * std::mem::size_of::<Node<K, V>>();
        // Safety: forwarded contract. The hybrid arm additionally reads
        // each node's birth stamp out of the retired block — still valid
        // here, its grace period starts with this call — and the stamp
        // never exceeds the publish era (`mk` samples it at writer entry).
        unsafe {
            match sess {
                WriteSess::Epoch(guard) => guard.defer_recycle(self.arena.recycler(), batch, bytes),
                WriteSess::Qsbr(d) => d.defer_recycle(self.arena.recycler(), batch, bytes),
                WriteSess::Hp(d) => d.defer_recycle(self.arena.recycler(), batch, bytes),
                WriteSess::Hybrid(d) => {
                    d.defer_recycle_with(self.arena.recycler(), batch, bytes, node_birth::<K, V>)
                }
            }
        }
    }
}

/// Reads a retired node's birth-era stamp for the hybrid backend's
/// interval rule.
///
/// Sound to call only from `defer_batch`: the batched pointers are
/// initialized nodes whose grace period starts with the defer itself, so
/// they are still valid when the domain samples their births.
fn node_birth<K, V>(p: *mut ()) -> u64 {
    // Safety: see above — an initialized, still-valid `Node` block.
    unsafe { (*p.cast::<Node<K, V>>()).birth }
}

/// Which entry a tree search returns: the exact key, its predecessor
/// (greatest `<=`), or its successor (least `>=`).
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Probe {
    /// Exact match.
    Eq,
    /// Greatest entry with key `<= key`.
    Le,
    /// Least entry with key `>= key`.
    Ge,
}

/// Write-side protection token, one variant per reclamation backend. Held
/// for the whole lock→load→rebuild→CAS→retire window of an update; what it
/// proves differs per backend:
///
/// * `Epoch` — the session pinned a housekeeping-free guard, so the
///   snapshot root (and everything reachable from it) cannot be reclaimed,
///   which is also the commit CAS's ABA argument.
/// * `Qsbr` — the calling thread's cached domain handle is online and will
///   not announce a quiescent state until the session ends, which protects
///   the snapshot the same way.
/// * `Hp` — the caller holds the tree's writer gate: no concurrent commit
///   exists at all, so writer traversals need no hazards and the root CAS
///   cannot lose. (Readers run their own hazard protocol; the gate is
///   writer-to-writer only.)
pub(crate) enum WriteSess<'a> {
    /// Epoch backend: the pinned (quiet) guard.
    Epoch(Guard<'a>),
    /// QSBR backend: the domain (the thread's TLS handle is online).
    Qsbr(&'a QsbrDomain),
    /// HP backend: the domain (the tree's writer gate is held).
    Hp(&'a HpDomain),
    /// Hybrid backend: the domain (the tree's writer gate is held — the
    /// same writer-exclusion argument as HP: a gate-held writer traverses
    /// only current-root-reachable nodes, which its own exclusion keeps
    /// alive, so writers need no era reservation of their own).
    Hybrid(&'a HybridDomain),
}

impl WriteSess<'_> {
    /// Era stamp for the nodes an update builds under this session
    /// ([`Node`]'s `birth` field): the hybrid domain's current era,
    /// sampled at writer entry — so the stamp can only under-approximate
    /// the node's eventual publish era, the safe direction for the
    /// interval rule — or 0 ("born before every era") on the backends
    /// that ignore the field.
    fn birth_era(&self) -> u64 {
        match self {
            WriteSess::Hybrid(d) => d.current_era(),
            _ => 0,
        }
    }
}

/// Runs `f` with a writer lock token held and `tree`'s backend write-side
/// protection established, in the only safe order for a writer entry
/// point (stated for the epoch backend; the other arms mirror it):
///
/// 1. lock first, pin second — a writer queued on a mutex or blocked on a
///    range lock must not hold a pin, or its wait would stall epoch advance
///    (and all reclamation) for the whole collector;
/// 2. the pin is housekeeping-free ([`Collector::pin_quiet`]) — pin-time
///    cache eviction can fire deferred callbacks, and one re-entering a
///    writer entry point would relock a non-reentrant lock this thread
///    already holds;
/// 3. the lock token is dropped before the guard — so it holds even when
///    `f` unwinds — because the outermost unpin may also fire callbacks,
///    and a callback re-entering a writer entry point must find this
///    writer's locks already released;
/// 4. the skipped pin-time housekeeping runs afterwards, once no lock is
///    held and no guard is live.
///
/// On QSBR the "pin" is the thread's cached online handle and the "unpin"
/// is the quiescence announcement, paced by [`QSBR_WRITE_TICK`] and run
/// strictly after the lock token drops (mirroring rule 3: `try_reclaim`
/// executes deferred callbacks). On HP the protection is the per-tree
/// writer gate, taken **before** `acquire` so the lock order
/// gate → writer-mutex/stripe-locks is identical on every path.
///
/// Every writer entry point — the tree's mutex path
/// ([`BonsaiTree::insert`]/[`BonsaiTree::remove`]) and `RangeMap`'s
/// range-locked path — must go through here so the ordering invariants
/// cannot be broken in one call site. The lock token `T` is whatever RAII
/// guard `acquire` produces: a `MutexGuard` over the tree's
/// [`WriterScratch`], or a `RangeWriteGuard` carrying a pooled scratch.
pub(crate) fn with_write_session<K, V, T, R>(
    tree: &BonsaiTree<K, V>,
    acquire: impl FnOnce() -> T,
    f: impl FnOnce(&WriteSess<'_>, &mut T) -> R,
) -> R {
    match &tree.backend {
        ReclaimBackend::Epoch(collector) => {
            struct Session<'a, T> {
                token: T,
                sess: WriteSess<'a>,
            }
            // Struct fields evaluate in written order: lock acquired before
            // the pin. Drop also runs in declaration order: unlock before
            // unpin.
            let mut session = Session {
                token: acquire(),
                sess: WriteSess::Epoch(collector.pin_quiet()),
            };
            let out = {
                let Session { token, sess } = &mut session;
                f(sess, token)
            };
            drop(session);
            collector.housekeep();
            out
        }
        ReclaimBackend::Qsbr(d) => {
            let mut token = acquire();
            let sess = WriteSess::Qsbr(d);
            // The closure keeps the thread's cached handle alive (and
            // online) across `f`; the handle announces nothing until the
            // tick below, so the session's snapshot cannot be reclaimed.
            let out = d.with_tls_handle(|_| f(&sess, &mut token));
            drop(token);
            // Announce + reclaim strictly after the locks drop (rule 3:
            // `try_reclaim` runs deferred callbacks, which may re-enter a
            // writer entry point).
            if d.with_tls_handle(|h| h.tick(QSBR_WRITE_TICK)) {
                d.try_reclaim();
            }
            out
        }
        ReclaimBackend::Hp(d) => {
            // Gate before `acquire`: the one lock order every HP writer
            // path shares (gate → writer mutex, gate → stripe locks), so
            // the gate can never deadlock against the caller's locks.
            let gate = tree.hp_gate.lock().unwrap_or_else(|e| e.into_inner());
            let mut token = acquire();
            let sess = WriteSess::Hp(d);
            let out = f(&sess, &mut token);
            drop(token);
            drop(gate);
            out
        }
        ReclaimBackend::Hybrid(d) => {
            // Same shape as HP: the writer gate is the write-side
            // protection (writers fully serialized; readers run their own
            // pin/protect protocol against the domain).
            let gate = tree.hp_gate.lock().unwrap_or_else(|e| e.into_inner());
            let mut token = acquire();
            let sess = WriteSess::Hybrid(d);
            let out = f(&sess, &mut token);
            drop(token);
            drop(gate);
            out
        }
    }
}

/// The paper's RCU-balanced tree: lock-free lookups, copy-on-write updates
/// with grace-period reclamation.
///
/// # Concurrency contract
///
/// * Lookups ([`get`](Self::get), [`get_le`](Self::get_le),
///   [`get_ge`](Self::get_ge)) take a pinned [`Guard`] from the tree's
///   collector and are lock-free: they only load the root pointer and walk
///   immutable nodes. Returned references stay valid for the shorter of
///   the guard's critical section and the tree's lifetime.
/// * Updates ([`insert`](Self::insert), [`remove`](Self::remove))
///   serialize on an internal writer mutex — the paper's single-writer
///   address-space lock — rebuild the root-to-site path copy-on-write,
///   publish the new root by CAS, and only then retire the replaced nodes
///   to the collector for grace-period reclamation. The CAS commit makes
///   the crate-internal entry points safe under *concurrent* writers
///   (`RangeMap` runs them under per-span range locks); only the public
///   `insert`/`remove` pair takes the serializing mutex.
pub struct BonsaiTree<K, V> {
    root: AtomicPtr<Node<K, V>>,
    /// Serializes writers (the paper's per-address-space update lock) and
    /// owns the reusable retired-node scratch buffer. Lock sites recover
    /// from poisoning (`into_inner`): [`DrainOnUnwind`] guarantees an
    /// unwinding update leaves the scratch drained and the post-CAS guard
    /// completes any published commit, so a poisoned mutex still guards a
    /// clean scratch — the fault-injection tier treats panics as normal
    /// operation and asserts no writer path stays wedged afterwards.
    writer: Mutex<WriterScratch<K, V>>,
    /// The reclamation backend nodes retire to.
    backend: ReclaimBackend,
    /// HP/hybrid-backend writer serialization (see [`WriteSess::Hp`] and
    /// [`WriteSess::Hybrid`]). Uncontended and never touched by the other
    /// backends; on HP it is also taken by whole-tree traversals
    /// ([`Self::to_vec`]), where finitely many hazard slots cannot cover
    /// an unbounded snapshot (hybrid snapshots pin an interval instead).
    hp_gate: Mutex<()>,
    /// Serializes the commit point — each CAS attempt plus, on success,
    /// the reference-count accounting behind it ([`WriterScratch::commit`])
    /// — so accounting runs in version order: version N+1's release
    /// cascade must not run before version N's accounting has counted the
    /// links holding N's nodes up. Held only across CAS → account/release
    /// (O(path)); the expensive speculative rebuild stays outside it, so
    /// disjoint `RangeMap` writers still overlap where it matters. A
    /// *leaf* lock: nothing is acquired while it is held.
    commit_gate: Mutex<()>,
    len: AtomicUsize,
    /// Root-CAS commits that lost to a concurrent writer and rebuilt. Only
    /// the failure path touches these two counters, so an uncontended
    /// writer pays nothing for the telemetry.
    cas_retries: AtomicU64,
    /// Speculative nodes discarded by those failed commits — the wasted
    /// rebuild work the backoff exists to bound.
    cas_wasted: AtomicU64,
    /// The writer scratch's arena recycler, cached at construction (where
    /// the `K: Send + 'static, V: Send + 'static` bounds are in scope) so
    /// the unbounded [`Drop`] impl can defer the final release cascade
    /// through the backend.
    recycler: Arc<dyn Recycler>,
}

// Safety: the raw node pointers are owned by the tree (plus the collector's
// deferred-free queue) and all cross-thread access is mediated by the
// epoch protocol; sharing the tree is sound whenever K and V themselves can
// be shared and sent (nodes are dropped on reclaiming threads).
unsafe impl<K: Send + Sync, V: Send + Sync> Send for BonsaiTree<K, V> {}
// Safety: see the `Send` justification above.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for BonsaiTree<K, V> {}

impl<K, V> BonsaiTree<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Creates an empty tree whose nodes are reclaimed through `collector`
    /// (the epoch backend; use [`with_backend`](Self::with_backend) for
    /// QSBR or hazard pointers).
    pub fn new(collector: Collector) -> Self {
        Self::with_backend(ReclaimBackend::Epoch(collector))
    }

    /// Creates an empty tree over any reclamation backend. Guard-based
    /// lookups work only on the epoch backend; the `*_owned` lookups work
    /// on all three.
    pub fn with_backend(backend: ReclaimBackend) -> Self {
        Self::with_scratch(backend, WriterScratch::new())
    }

    /// Creates an empty tree over `backend` whose mutex-owned writer
    /// scratch is `scratch` — the seam that lets `RangeMap` put the
    /// tree's scratch in the same arena family ([`ChunkStore`]) as its
    /// pooled range-lock scratches, and lets [`Self::fork_in`] put a
    /// child lineage in its parent's.
    pub(crate) fn with_scratch(backend: ReclaimBackend, scratch: WriterScratch<K, V>) -> Self {
        let recycler = scratch.arena.recycler();
        Self {
            root: AtomicPtr::new(ptr::null_mut()),
            writer: Mutex::new(scratch),
            backend,
            hp_gate: Mutex::new(()),
            commit_gate: Mutex::new(()),
            len: AtomicUsize::new(0),
            cas_retries: AtomicU64::new(0),
            cas_wasted: AtomicU64::new(0),
            recycler,
        }
    }

    /// Creates an empty tree on the process-wide default collector.
    pub fn with_default() -> Self {
        Self::new(rcukit::default_collector().clone())
    }

    /// Snapshots the tree in O(1): the child starts at the parent's
    /// current root — one extra reference on one node, no copying — and
    /// the two lineages diverge copy-on-write from there, sharing every
    /// subtree neither has since replaced. The per-node refcounts keep a
    /// shared node alive (and unretired) until the *last* lineage that
    /// reaches it replaces or drops it; see the module docs and
    /// `docs/CONCURRENCY.md` §9.
    ///
    /// The child retires to the same reclamation backend and allocates
    /// from the same arena family as the parent, so shared nodes have a
    /// single block-lifetime story wherever they end up released from.
    /// Concurrent readers of the parent are undisturbed; the fork itself
    /// briefly takes the parent's writer lock (it must observe a root no
    /// in-flight commit is about to replace).
    pub fn fork(&self) -> Self {
        with_write_session(
            self,
            || self.writer.lock().unwrap_or_else(|e| e.into_inner()),
            |sess, w| self.fork_in(sess, WriterScratch::with_store(w.store())),
        )
    }

    /// [`fork`](Self::fork) against a caller-provided scratch and write
    /// session — for `RangeMap`, whose fork runs under a full-range lock.
    ///
    /// The caller must hold, for the duration of the call, whatever lock
    /// excludes this tree's committers (the writer mutex, or every range
    /// lock): that is what makes the loaded root current and keeps its
    /// root reference from being released while the child takes its own.
    /// `scratch` must belong to the parent's arena family — the child's
    /// deferred batches may carry blocks holding nodes the parent
    /// allocated, and a pending batch pins only its *own* arena's chunk
    /// store.
    pub(crate) fn fork_in(&self, sess: &WriteSess<'_>, scratch: WriterScratch<K, V>) -> Self {
        self.check_sess(sess);
        // ordering: Acquire — publication pairing, as in `find`: the child
        // republishes this snapshot to its own readers.
        let root = self.root.load(Ordering::Acquire);
        // Safety: writer exclusion (see above) keeps `root` the current
        // root — its root-pointer reference cannot be released before the
        // child takes its own here.
        unsafe { acquire(root) };
        let recycler = scratch.arena.recycler();
        Self {
            root: AtomicPtr::new(root),
            writer: Mutex::new(scratch),
            backend: self.backend.clone(),
            hp_gate: Mutex::new(()),
            commit_gate: Mutex::new(()),
            // ordering: Acquire — pairs with the commit-path Release; exact
            // under the caller's writer exclusion.
            len: AtomicUsize::new(self.len.load(Ordering::Acquire)),
            cas_retries: AtomicU64::new(0),
            cas_wasted: AtomicU64::new(0),
            recycler,
        }
    }

    /// The reclamation backend this tree retires nodes to.
    pub fn backend(&self) -> &ReclaimBackend {
        &self.backend
    }

    /// The collector this tree retires nodes to.
    ///
    /// # Panics
    ///
    /// Panics unless the tree uses the epoch backend.
    pub fn collector(&self) -> &Collector {
        self.backend
            .as_epoch()
            .expect("tree is not using the epoch backend")
    }

    /// Pins the current thread against the tree's collector. The guard
    /// borrows the tree, so the tree cannot be dropped while it is live.
    ///
    /// # Panics
    ///
    /// Panics unless the tree uses the epoch backend (QSBR and HP readers
    /// use the `*_owned` lookups, which protect internally).
    pub fn pin(&self) -> Guard<'_> {
        self.collector().pin()
    }

    /// Capacity of the writer's fresh-node scratch buffer. Test aid for
    /// the allocation-diet regression: steady-state updates must not keep
    /// growing it.
    #[doc(hidden)]
    pub fn writer_scratch_capacity(&self) -> usize {
        self.writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .capacity()
    }

    /// Chunks allocated by the writer scratch's node arena — the
    /// capacity-flat proxy for the zero-allocation write path.
    #[doc(hidden)]
    pub fn writer_arena_chunks(&self) -> usize {
        self.writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .arena_chunks()
    }

    /// Root-CAS commits that lost to a concurrent writer and had to
    /// rebuild (see the sweep's `cas_retries` field). Telemetry; counted
    /// only on the failure path.
    #[doc(hidden)]
    pub fn cas_retries(&self) -> u64 {
        // ordering: Relaxed — telemetry snapshot.
        self.cas_retries.load(Ordering::Relaxed)
    }

    /// Speculative nodes discarded by failed root-CAS commits — the wasted
    /// copy-on-write work those retries rebuilt.
    #[doc(hidden)]
    pub fn cas_wasted_nodes(&self) -> u64 {
        // ordering: Relaxed — telemetry snapshot.
        self.cas_wasted.load(Ordering::Relaxed)
    }

    /// Records one failed root-CAS commit (`wasted` speculative nodes
    /// discarded) and applies bounded exponential backoff from the second
    /// consecutive failure of one update on: 2^(failures - 2) spin hints,
    /// capped at 64. The first retry stays free — losing one race is the
    /// normal two-writer case and a delay would only add latency — while a
    /// write storm's repeated losers progressively yield the root's cache
    /// line instead of rebuilding whole paths just to lose again.
    /// `failures` counts this update's failures so far, starting at 1.
    fn note_cas_failure(&self, failures: u32, wasted: usize) {
        // ordering: Relaxed (both) — telemetry counters on the commit
        // retry path; nothing is published through them, and a SeqCst RMW
        // here would put two full barriers inside the contention loop.
        self.cas_retries.fetch_add(1, Ordering::Relaxed);
        self.cas_wasted.fetch_add(wasted as u64, Ordering::Relaxed);
        if failures >= 2 {
            let spins = 1u32 << (failures - 2).min(6);
            for _ in 0..spins {
                std::hint::spin_loop();
            }
        }
    }

    /// Number of keys in the tree.
    pub fn len(&self) -> usize {
        // ordering: Acquire — pairs with the commit-path Release updates so
        // a caller that observes a count also observes the tree state that
        // produced it.
        self.len.load(Ordering::Acquire)
    }

    /// Whether the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Panics unless `guard` is pinned against this tree's collector; a
    /// foreign guard would not protect our nodes from reclamation.
    fn check_guard(&self, guard: &Guard<'_>) {
        let collector = self
            .backend
            .as_epoch()
            .expect("guard-based reads require the epoch backend; use the *_owned lookups instead");
        assert!(
            *guard.collector() == *collector,
            "guard is pinned against a different collector than this tree"
        );
    }

    /// Panics unless `sess` was opened against this tree's backend; a
    /// foreign session would not protect our nodes from reclamation.
    fn check_sess(&self, sess: &WriteSess<'_>) {
        match (sess, &self.backend) {
            (WriteSess::Epoch(guard), ReclaimBackend::Epoch(c)) => assert!(
                *guard.collector() == *c,
                "guard is pinned against a different collector than this tree"
            ),
            (WriteSess::Qsbr(d), ReclaimBackend::Qsbr(q)) => assert!(
                **d == *q,
                "session belongs to a different QSBR domain than this tree"
            ),
            (WriteSess::Hp(d), ReclaimBackend::Hp(h)) => assert!(
                **d == *h,
                "session belongs to a different HP domain than this tree"
            ),
            (WriteSess::Hybrid(d), ReclaimBackend::Hybrid(h)) => assert!(
                **d == *h,
                "session belongs to a different hybrid domain than this tree"
            ),
            _ => panic!("write session opened against a different reclamation backend"),
        }
    }

    /// Plain search walk over published immutable nodes. Returns the
    /// matching node, or null on a miss.
    ///
    /// # Safety
    ///
    /// The caller must guarantee every node reachable from the current
    /// root stays live across the call: a pinned epoch guard, an
    /// online-and-silent QSBR handle, a checked [`WriteSess`], or
    /// exclusive access. (The HP read side cannot use this walk — it must
    /// interleave per-node protection — see [`Self::hp_find`].)
    unsafe fn find(&self, key: &K, probe: Probe) -> *mut Node<K, V> {
        // ordering: Acquire — pairs with the commit CAS's Release: the
        // fully built path behind a published root is visible before the
        // traversal dereferences it. This is the weakest sound root-load
        // ordering (a Relaxed load could reach nodes whose fields are not
        // yet visible on non-TSO hardware).
        let root = self.root.load(Ordering::Acquire);
        // Safety: forwarded caller obligation — every node reachable from
        // the loaded root stays live across the walk.
        unsafe { Self::walk_from(root, key, probe) }
    }

    /// The search loop of [`find`](Self::find) against a caller-supplied
    /// snapshot root, for backends that validate the root load themselves
    /// (the hybrid read side protects-and-validates it before walking).
    ///
    /// # Safety
    ///
    /// As in [`find`](Self::find): every node reachable from `root` must
    /// stay live across the call, and `root` must have been loaded with
    /// (at least) `Acquire` so the published path behind it is visible.
    unsafe fn walk_from(root: *mut Node<K, V>, key: &K, probe: Probe) -> *mut Node<K, V> {
        let mut cur = root;
        let mut best: *mut Node<K, V> = ptr::null_mut();
        while !cur.is_null() {
            // Safety: `cur` is a published node the caller's protection
            // keeps live; published nodes are immutable.
            let node = unsafe { &*cur };
            cur = match probe {
                Probe::Eq => match key.cmp(&node.key) {
                    Cmp::Equal => return cur,
                    Cmp::Less => node.left,
                    Cmp::Greater => node.right,
                },
                Probe::Le => {
                    if *key < node.key {
                        node.left
                    } else {
                        best = cur;
                        node.right
                    }
                }
                Probe::Ge => {
                    if *key > node.key {
                        node.right
                    } else {
                        best = cur;
                        node.left
                    }
                }
            };
        }
        best
    }

    /// Hazard-protected search: the publish-and-validate read protocol.
    ///
    /// Slot discipline: slot 0 pins the snapshot root for the whole
    /// traversal, slots 1/2 alternate hand-over-hand down the path, and
    /// slot 3 holds the current best `Le`/`Ge` candidate.
    ///
    /// Validation is by **root re-read**, not by re-reading the parent
    /// link (the textbook HP validation): published nodes are immutable,
    /// so a parent-link re-read can never fail — even after the child was
    /// retired by a newer commit. The root, though, changes on every
    /// commit, and while slot 0 protects the snapshot root its address can
    /// be neither freed nor recycled — so observing the root unchanged
    /// after a protect proves no commit has happened since the snapshot,
    /// hence everything reachable from it (the just-protected node
    /// included) is still unretired. Any root change restarts from
    /// scratch, discarding the candidate.
    ///
    /// Forked lineages do not weaken the argument: every node reachable
    /// from *this* tree's current root has a positive refcount chain down
    /// from that root, so another lineage's commits can never retire it —
    /// a node this tree reaches leaves the graph only through a commit on
    /// this tree, which changes this root, which is exactly what the
    /// re-read detects.
    fn hp_find<R>(
        &self,
        d: &HpDomain,
        key: &K,
        probe: Probe,
        f: impl FnOnce(&K, &V) -> R,
    ) -> Option<R> {
        let session = d.session();
        'restart: loop {
            // ordering: Acquire — publication pairing; see `find`.
            let root = self.root.load(Ordering::Acquire);
            if root.is_null() {
                return None;
            }
            session.protect(0, root.cast());
            // ordering: Acquire — post-protect validation (see the method
            // docs): unchanged root ⇒ the protect beat every retire of
            // nodes it covers.
            if self.root.load(Ordering::Acquire) != root {
                continue 'restart;
            }
            let mut cur = root;
            let mut cur_slot = 0usize;
            let mut best: *mut Node<K, V> = ptr::null_mut();
            let found = loop {
                // Safety: `cur` is protected in slot `cur_slot` and was
                // validated reachable from the still-current root, so it is
                // live; published nodes are immutable.
                let node = unsafe { &*cur };
                let (next, record) = match probe {
                    Probe::Eq => match key.cmp(&node.key) {
                        Cmp::Equal => break cur,
                        Cmp::Less => (node.left, false),
                        Cmp::Greater => (node.right, false),
                    },
                    Probe::Le => {
                        if *key < node.key {
                            (node.left, false)
                        } else {
                            (node.right, true)
                        }
                    }
                    Probe::Ge => {
                        if *key > node.key {
                            (node.right, false)
                        } else {
                            (node.left, true)
                        }
                    }
                };
                if record {
                    // Transfer `cur` into the candidate slot. No
                    // re-validation needed: the pointer never goes
                    // uncovered — slot `cur_slot` still holds it, and is
                    // first overwritten by the hand-over-hand protect
                    // below, after this store's fence completes.
                    session.protect(3, cur.cast());
                    best = cur;
                }
                if next.is_null() {
                    break best;
                }
                let next_slot = if cur_slot == 1 { 2 } else { 1 };
                session.protect(next_slot, next.cast());
                // ordering: Acquire — post-protect validation, as at the
                // root protect above.
                if self.root.load(Ordering::Acquire) != root {
                    continue 'restart;
                }
                cur = next;
                cur_slot = next_slot;
            };
            if found.is_null() {
                return None;
            }
            // Safety: `found`'s slot was never overwritten afterwards (an
            // `Eq` hit breaks immediately; candidates live in slot 3), so
            // it is still protected and live here.
            let node = unsafe { &*found };
            return Some(f(&node.key, &node.value));
        }
    }

    /// Interval-protected search: the hybrid (IBR) read protocol.
    ///
    /// One protected load suffices for the whole walk — unlike HP, which
    /// must re-validate hand-over-hand. `protect` returns a root pointer
    /// validated against the guard's reservation `[lo, hi]`:
    ///
    /// - every node reachable from that root carries a birth era ≤ the
    ///   validated era (COW builds children before parents, and a node's
    ///   birth stamp is taken before its root publishes), so `birth ≤ hi`;
    /// - a reachable node is unretired at validation time, so its eventual
    ///   retire era is ≥ the validated era ≥ `lo`.
    ///
    /// Both interval-overlap conditions hold for the entire subtree, so
    /// the domain's free rule keeps all of it live and the plain
    /// [`walk_from`](Self::walk_from) loop is sound with no per-node
    /// protection.
    fn hybrid_find<R>(
        &self,
        d: &HybridDomain,
        key: &K,
        probe: Probe,
        f: impl FnOnce(&K, &V) -> R,
    ) -> Option<R> {
        let guard = d.pin();
        // Failpoint: slow this reader down while its reservation is live —
        // the stall the degradation protocol must tolerate.
        rcukit::faults::maybe_stall(rcukit::faults::site::READER_STALL);
        // ordering: Acquire — publication pairing; see `find`. `protect`
        // re-runs the load until the era validates, making the returned
        // snapshot covered by the guard's reservation interval.
        let root = guard.protect(|| self.root.load(Ordering::Acquire));
        // Safety: the validated root's whole subtree is covered by the
        // reservation (see the method docs); published nodes are immutable.
        let n = unsafe { Self::walk_from(root, key, probe) };
        (!n.is_null()).then(|| {
            // Safety: `n` is reachable from the protected root, hence live
            // for the guard's lifetime.
            let node = unsafe { &*n };
            f(&node.key, &node.value)
        })
    }

    /// Backend-dispatched protected point read: finds the `probe` entry
    /// for `key`, applies `f` under the backend's read-side protection,
    /// and returns the owned result.
    pub(crate) fn read_map<R>(
        &self,
        key: &K,
        probe: Probe,
        f: impl FnOnce(&K, &V) -> R,
    ) -> Option<R> {
        match &self.backend {
            ReclaimBackend::Epoch(c) => {
                let _guard = c.pin();
                // Failpoint: slow this reader down while pinned — the
                // stall that makes epoch garbage grow unboundedly.
                rcukit::faults::maybe_stall(rcukit::faults::site::READER_STALL);
                // Safety: the pinned guard protects the traversal.
                let n = unsafe { self.find(key, probe) };
                (!n.is_null()).then(|| {
                    // Safety: `n` is a published node the guard protects.
                    let node = unsafe { &*n };
                    f(&node.key, &node.value)
                })
            }
            ReclaimBackend::Qsbr(d) => d.with_tls_handle(|h| {
                // Safety: the cached handle is online and announces
                // quiescence only at the tick below, after the last
                // dereference — ambient protection for the whole walk.
                let n = unsafe { self.find(key, probe) };
                let out = (!n.is_null()).then(|| {
                    // Safety: `n` stays live until this thread announces.
                    let node = unsafe { &*n };
                    f(&node.key, &node.value)
                });
                h.tick(QSBR_READ_TICK);
                out
            }),
            ReclaimBackend::Hp(d) => self.hp_find(d, key, probe, f),
            ReclaimBackend::Hybrid(d) => self.hybrid_find(d, key, probe, f),
        }
    }

    /// Looks up `key`. The returned reference is valid for the guard's
    /// critical section; it also borrows the tree, so the tree cannot be
    /// dropped (which frees all nodes without a grace period) while the
    /// reference is live:
    ///
    /// ```compile_fail,E0505
    /// use bonsai::BonsaiTree;
    /// use rcukit::Collector;
    ///
    /// let t: BonsaiTree<u64, u64> = BonsaiTree::new(Collector::new());
    /// t.insert(1, 10);
    /// let g = t.pin();
    /// let v = t.get(&1, &g).unwrap();
    /// drop(t); // ERROR: `t` is still borrowed by `v`
    /// println!("{v}");
    /// ```
    ///
    /// # Panics
    ///
    /// Panics unless the tree uses the epoch backend (see
    /// [`get_owned`](Self::get_owned) for the backend-agnostic form).
    pub fn get<'g>(&'g self, key: &K, guard: &'g Guard<'_>) -> Option<&'g V> {
        self.check_guard(guard);
        // Safety: the checked guard pins this tree's collector.
        let n = unsafe { self.find(key, Probe::Eq) };
        // Safety: `n` is a published node protected by the guard.
        (!n.is_null()).then(|| unsafe { &(*n).value })
    }

    /// Whether `key` is present. Protects internally; works on every
    /// backend.
    pub fn contains_key(&self, key: &K) -> bool {
        self.read_map(key, Probe::Eq, |_, _| ()).is_some()
    }

    /// Finds the greatest entry with key `<= key` (predecessor query, the
    /// primitive behind VMA lookup). Borrows as in [`get`](Self::get);
    /// panics on non-epoch backends like [`get`](Self::get).
    pub fn get_le<'g>(&'g self, key: &K, guard: &'g Guard<'_>) -> Option<(&'g K, &'g V)> {
        self.check_guard(guard);
        // Safety: the checked guard pins this tree's collector.
        let n = unsafe { self.find(key, Probe::Le) };
        // Safety: `n` is a published node protected by the guard.
        (!n.is_null()).then(|| unsafe { (&(*n).key, &(*n).value) })
    }

    /// Finds the least entry with key `>= key` (successor query). Borrows
    /// as in [`get`](Self::get); panics on non-epoch backends like
    /// [`get`](Self::get).
    pub fn get_ge<'g>(&'g self, key: &K, guard: &'g Guard<'_>) -> Option<(&'g K, &'g V)> {
        self.check_guard(guard);
        // Safety: the checked guard pins this tree's collector.
        let n = unsafe { self.find(key, Probe::Ge) };
        // Safety: `n` is a published node protected by the guard.
        (!n.is_null()).then(|| unsafe { (&(*n).key, &(*n).value) })
    }

    /// [`get`](Self::get) on any backend, returning a clone. Protection is
    /// internal: an epoch pin, the thread's QSBR handle, or the HP
    /// publish-and-validate protocol.
    pub fn get_owned(&self, key: &K) -> Option<V> {
        self.read_map(key, Probe::Eq, |_, v| v.clone())
    }

    /// [`get_le`](Self::get_le) on any backend, returning clones.
    pub fn get_le_owned(&self, key: &K) -> Option<(K, V)> {
        self.read_map(key, Probe::Le, |k, v| (k.clone(), v.clone()))
    }

    /// [`get_ge`](Self::get_ge) on any backend, returning clones.
    pub fn get_ge_owned(&self, key: &K) -> Option<(K, V)> {
        self.read_map(key, Probe::Ge, |k, v| (k.clone(), v.clone()))
    }

    /// [`get`](Self::get) under a checked write session — for writer paths
    /// (`RangeMap`) that read while already holding their backend's
    /// write-side protection. The reference is valid for the shorter of
    /// the session and the tree borrow.
    pub(crate) fn get_in<'t>(&'t self, key: &K, sess: &WriteSess<'_>) -> Option<&'t V> {
        self.check_sess(sess);
        // Safety: a checked session protects the traversal on every
        // backend (pin / online handle / writer gate — see `WriteSess`).
        let n = unsafe { self.find(key, Probe::Eq) };
        // Safety: `n` stays live for the session.
        (!n.is_null()).then(|| unsafe { &(*n).value })
    }

    /// [`get_le`](Self::get_le) under a checked write session.
    pub(crate) fn get_le_in<'t>(&'t self, key: &K, sess: &WriteSess<'_>) -> Option<(&'t K, &'t V)> {
        self.check_sess(sess);
        // Safety: as in `get_in`.
        let n = unsafe { self.find(key, Probe::Le) };
        // Safety: `n` stays live for the session.
        (!n.is_null()).then(|| unsafe { (&(*n).key, &(*n).value) })
    }

    /// [`get_ge`](Self::get_ge) under a checked write session.
    pub(crate) fn get_ge_in<'t>(&'t self, key: &K, sess: &WriteSess<'_>) -> Option<(&'t K, &'t V)> {
        self.check_sess(sess);
        // Safety: as in `get_in`.
        let n = unsafe { self.find(key, Probe::Ge) };
        // Safety: `n` stays live for the session.
        (!n.is_null()).then(|| unsafe { (&(*n).key, &(*n).value) })
    }

    /// Inserts `key -> value`, returning the previous value for `key` if it
    /// was present. Takes the writer lock.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        with_write_session(
            self,
            || self.writer.lock().unwrap_or_else(|e| e.into_inner()),
            |sess, w| self.insert_with(key, value, sess, &mut **w),
        )
    }

    /// [`insert`](Self::insert) against a caller-provided scratch, for
    /// writer paths with their own serialization (`RangeMap`'s range
    /// locks) — or none: the commit is a CAS-with-retry, so concurrent
    /// calls are *safe* (no torn roots, no double retire), they merely
    /// contend on the root. A failed CAS frees the never-published
    /// speculative path ([`WriterScratch::discard`]) and rebuilds from the
    /// winner's root.
    ///
    /// `sess` must have been opened against this tree's backend (checked)
    /// and *before* this call — which is what makes the load→CAS window
    /// ABA-free: under epoch/QSBR the snapshot root cannot be reclaimed
    /// while the session's protection holds, so a re-observed equal
    /// pointer really is the unchanged root; under HP the session holds
    /// the writer gate, so the root cannot change at all.
    ///
    /// # Panics
    ///
    /// Panics if `sess` belongs to a different backend or domain.
    pub(crate) fn insert_with(
        &self,
        key: K,
        value: V,
        sess: &WriteSess<'_>,
        scratch: &mut WriterScratch<K, V>,
    ) -> Option<V> {
        self.check_sess(sess);
        debug_assert!(scratch.is_drained());
        scratch.birth_era = sess.birth_era();
        // Unwind safety: if a K/V clone panics mid-rebuild, `fresh` holds
        // a half-built speculative path. The old mutex-owned scratch was
        // covered by lock poisoning; `RangeMap`'s pooled scratches are
        // not, and lending a dirty scratch to the next writer would leak
        // those nodes (or worse, let stale pointers be freed twice).
        // Discard on the way out instead.
        let scratch = DrainOnUnwind(scratch);
        // ordering: Acquire — publication pairing, as in `get`: the rebuild
        // below dereferences nodes behind this root.
        let mut root = self.root.load(Ordering::Acquire);
        let mut failures = 0u32;
        loop {
            // Safety: `root` was published and the write session keeps
            // every node reachable from it live and immutable.
            let (new_root, old) = unsafe { Self::insert_rec(root, &key, &value, scratch.0) };
            // Failpoint: unwind before anything publishes — must leak
            // nothing (`DrainOnUnwind` discards the speculative path).
            rcukit::faults::maybe_panic(rcukit::faults::site::TREE_PRE_PUBLISH);
            // The commit point is gated so accounting runs in version
            // order (see `commit_gate`); the rebuild above stayed outside.
            // A poisoned gate is recoverable: the post-CAS unwind guard
            // below completes the poisoning attempt's accounting before
            // the gate is released, so the protected state is consistent.
            let gate = self.commit_gate.lock().unwrap_or_else(|e| e.into_inner());
            // Failpoint: a forced CAS failure exercises the retry path
            // without a competing writer — skip the CAS, root unchanged.
            // ordering: AcqRel success — Release publishes the speculative
            // path's node writes to readers' Acquire root loads; Acquire
            // orders this commit after the prior one it replaces. Acquire
            // failure — the reloaded root is dereferenced on the retry.
            let cas = if rcukit::faults::should_fail(rcukit::faults::site::TREE_CAS) {
                Err(root)
            } else {
                self.root
                    .compare_exchange(root, new_root, Ordering::AcqRel, Ordering::Acquire)
            };
            match cas {
                Ok(_) => {
                    // Retire strictly after publication: until the CAS, a
                    // freshly pinned reader could still reach the replaced
                    // nodes through `self.root`. The new root is now
                    // visible, so the accounting and the length update are
                    // owed no matter how this attempt exits — the guard
                    // runs them even if the failpoint below unwinds.
                    let done = CommitOnUnwind {
                        scratch: &mut *scratch.0,
                        sess,
                        old_root: root,
                        new_root,
                        len: &self.len,
                        delta: if old.is_none() { 1 } else { 0 },
                    };
                    // Failpoint: unwind after publication but before
                    // accounting — the atomicity hole the guard closes.
                    rcukit::faults::maybe_panic(rcukit::faults::site::TREE_POST_CAS);
                    drop(done);
                    drop(gate);
                    return old;
                }
                Err(current) => {
                    drop(gate);
                    // Another writer published first. Nothing this attempt
                    // built was ever visible.
                    failures += 1;
                    let wasted = scratch.0.fresh.len();
                    // Safety: the CAS failed, so `fresh` is unpublished.
                    unsafe { scratch.0.discard() };
                    self.note_cas_failure(failures, wasted);
                    root = current;
                }
            }
        }
    }

    /// Removes `key`, returning its value if it was present. Takes the
    /// writer lock.
    pub fn remove(&self, key: &K) -> Option<V> {
        with_write_session(
            self,
            || self.writer.lock().unwrap_or_else(|e| e.into_inner()),
            |sess, w| self.remove_with(key, sess, &mut **w),
        )
    }

    /// [`remove`](Self::remove) against a caller-provided scratch; same
    /// CAS-with-retry contract as [`Self::insert_with`].
    ///
    /// # Panics
    ///
    /// Panics if `sess` belongs to a different backend or domain.
    pub(crate) fn remove_with(
        &self,
        key: &K,
        sess: &WriteSess<'_>,
        scratch: &mut WriterScratch<K, V>,
    ) -> Option<V> {
        self.check_sess(sess);
        debug_assert!(scratch.is_drained());
        scratch.birth_era = sess.birth_era();
        // Unwind safety: as in `insert_with`.
        let scratch = DrainOnUnwind(scratch);
        // ordering: Acquire — publication pairing; see `insert_with`.
        let mut root = self.root.load(Ordering::Acquire);
        let mut failures = 0u32;
        loop {
            // Safety: as in `insert_with`.
            let (new_root, old) = unsafe { Self::remove_rec(root, key, scratch.0) };
            if old.is_none() {
                // A miss rebuilds nothing and therefore replaces nothing;
                // the answer is valid as of the root load, no CAS needed.
                debug_assert!(scratch.0.is_drained());
                return None;
            }
            // Failpoint: pre-publish unwind; see `insert_with`.
            rcukit::faults::maybe_panic(rcukit::faults::site::TREE_PRE_PUBLISH);
            // Commit-point gate (poison-recoverable); see `insert_with`.
            let gate = self.commit_gate.lock().unwrap_or_else(|e| e.into_inner());
            // Failpoint + ordering: AcqRel success / Acquire failure —
            // forced-failure and commit publication pairing; see
            // `insert_with`.
            let cas = if rcukit::faults::should_fail(rcukit::faults::site::TREE_CAS) {
                Err(root)
            } else {
                self.root
                    .compare_exchange(root, new_root, Ordering::AcqRel, Ordering::Acquire)
            };
            match cas {
                Ok(_) => {
                    // Retire strictly after publication, as one batch, via
                    // the post-CAS unwind guard; see `insert_with`.
                    let done = CommitOnUnwind {
                        scratch: &mut *scratch.0,
                        sess,
                        old_root: root,
                        new_root,
                        len: &self.len,
                        delta: -1,
                    };
                    // Failpoint: post-CAS unwind; see `insert_with`.
                    rcukit::faults::maybe_panic(rcukit::faults::site::TREE_POST_CAS);
                    drop(done);
                    drop(gate);
                    return old;
                }
                Err(current) => {
                    drop(gate);
                    failures += 1;
                    let wasted = scratch.0.fresh.len();
                    // Safety: the CAS failed, so `fresh` is unpublished.
                    unsafe { scratch.0.discard() };
                    self.note_cas_failure(failures, wasted);
                    root = current;
                }
            }
        }
    }

    /// Runs `f` on a root snapshot that the backend's protection keeps
    /// live for the duration of the call — the whole-tree-traversal
    /// analogue of [`read_map`](Self::read_map). On HP the snapshot cannot
    /// be covered by finitely many hazard slots, so writers are excluded
    /// via the gate instead (concurrent *scans* are still fine: they free
    /// only retired nodes, which are unreachable from the held root).
    fn with_snapshot<R>(&self, f: impl FnOnce(*mut Node<K, V>) -> R) -> R {
        match &self.backend {
            ReclaimBackend::Epoch(c) => {
                let _guard = c.pin();
                // ordering: Acquire — publication pairing; see `find`.
                f(self.root.load(Ordering::Acquire))
            }
            ReclaimBackend::Qsbr(d) => d.with_tls_handle(|h| {
                // ordering: Acquire — publication pairing; see `find`.
                let out = f(self.root.load(Ordering::Acquire));
                // Announce after the traversal: a whole-tree walk is long,
                // so do not wait for the read-tick cadence.
                h.quiescent();
                out
            }),
            ReclaimBackend::Hp(_) => {
                let _gate = self.hp_gate.lock().unwrap_or_else(|e| e.into_inner());
                // ordering: Acquire — publication pairing; see `find`.
                f(self.root.load(Ordering::Acquire))
            }
            ReclaimBackend::Hybrid(d) => {
                let guard = d.pin();
                // ordering: Acquire — publication pairing; see `find`. The
                // validated snapshot's whole subtree is covered by the
                // guard's interval (see `hybrid_find`), however large — the
                // advantage over finite hazard slots.
                f(guard.protect(|| self.root.load(Ordering::Acquire)))
            }
        }
    }

    /// Clones the tree contents in key order. Intended for tests and
    /// debugging; protects internally (works on every backend).
    pub fn to_vec(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len());
        self.with_snapshot(|root| {
            // Safety: traversal of published immutable nodes under the
            // snapshot's backend protection.
            unsafe { Self::inorder(root, &mut out) }
        });
        out
    }

    /// Verifies the BST ordering, cached sizes, and the weight-balance
    /// bound. Panics on violation. Test/debug aid; call while no writer is
    /// active.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let n = self.with_snapshot(|root| {
            // Safety: traversal of published immutable nodes under the
            // snapshot's backend protection.
            unsafe { Self::check_rec(root, None, None) }
        });
        assert_eq!(n, self.len(), "cached len disagrees with node count");
    }

    // ---- internal copy-on-write machinery (writer side) ----

    /// `size` of a possibly-null subtree.
    #[inline]
    fn size_of(n: *mut Node<K, V>) -> usize {
        if n.is_null() {
            0
        } else {
            // Safety: non-null nodes passed here are live (writer-owned or
            // guard-protected) and immutable.
            unsafe { (*n).size }
        }
    }

    /// Allocates a new node from the scratch's arena over the given
    /// children, recording it in the `fresh` list so a failed publication
    /// can return it (every allocation of an update goes through here,
    /// exactly once each). Steady state this is a free-list pop, not a
    /// heap allocation.
    fn mk(
        scratch: &mut WriterScratch<K, V>,
        left: *mut Node<K, V>,
        key: K,
        value: V,
        right: *mut Node<K, V>,
    ) -> *mut Node<K, V> {
        let n = scratch.arena.alloc(Node {
            size: 1 + Self::size_of(left) + Self::size_of(right),
            // Born unaccounted: links are counted only by a successful
            // commit's accounting walk ([`account`]), so a failed CAS has
            // nothing to unwind.
            rc: AtomicUsize::new(0),
            birth: scratch.birth_era,
            key,
            value,
            left,
            right,
        });
        scratch.fresh.push(n);
        n
    }

    /// Builds a balanced node over `l`, `(key, value)`, `r`, where the two
    /// subtrees' weights differ by at most one element from a balanced
    /// state (the single-update invariant).
    ///
    /// # Safety
    ///
    /// `l`/`r` are valid subtree roots owned by the current update (or
    /// published and guard-protected); rotated-away nodes are pushed onto
    /// the scratch's retired list.
    unsafe fn balance(
        l: *mut Node<K, V>,
        key: K,
        value: V,
        r: *mut Node<K, V>,
        scratch: &mut WriterScratch<K, V>,
    ) -> *mut Node<K, V> {
        let sl = Self::size_of(l);
        let sr = Self::size_of(r);
        if sl + sr <= 1 {
            return Self::mk(scratch, l, key, value, r);
        }
        if sr > DELTA * sl {
            // Right-heavy: rotate left. `r` is non-null since sr >= 2.
            // Safety: `r` is a valid node per the function contract.
            let (rl, rr) = unsafe { ((*r).left, (*r).right) };
            if Self::size_of(rl) < RATIO * Self::size_of(rr) {
                // Single left rotation.
                // Safety: `r` valid; its fields are cloned, not moved.
                let (rk, rv) = unsafe { ((*r).key.clone(), (*r).value.clone()) };
                let inner = Self::mk(scratch, l, key, value, rl);
                // `r` is replaced by `out` and unlinked; the release
                // cascade retires it.
                Self::mk(scratch, inner, rk, rv, rr)
            } else {
                // Double left rotation; `rl` is non-null because
                // size(rl) >= RATIO * size(rr) and sizes sum to >= 2.
                // Safety: `r` and `rl` are valid nodes.
                let (rk, rv) = unsafe { ((*r).key.clone(), (*r).value.clone()) };
                let (rlk, rlv) = unsafe { ((*rl).key.clone(), (*rl).value.clone()) };
                let (rll, rlr) = unsafe { ((*rl).left, (*rl).right) };
                let left = Self::mk(scratch, l, key, value, rll);
                let right = Self::mk(scratch, rlr, rk, rv, rr);
                // `r` and `rl` are replaced by `out` and unlinked; the
                // release cascade retires them.
                Self::mk(scratch, left, rlk, rlv, right)
            }
        } else if sl > DELTA * sr {
            // Left-heavy: rotate right (mirror image).
            // Safety: `l` is a valid node since sl >= 2.
            let (ll, lr) = unsafe { ((*l).left, (*l).right) };
            if Self::size_of(lr) < RATIO * Self::size_of(ll) {
                // Safety: `l` valid; fields cloned.
                let (lk, lv) = unsafe { ((*l).key.clone(), (*l).value.clone()) };
                let inner = Self::mk(scratch, lr, key, value, r);
                // `l` is replaced by `out` and unlinked; the release
                // cascade retires it.
                Self::mk(scratch, ll, lk, lv, inner)
            } else {
                // Safety: `l` and `lr` are valid nodes.
                let (lk, lv) = unsafe { ((*l).key.clone(), (*l).value.clone()) };
                let (lrk, lrv) = unsafe { ((*lr).key.clone(), (*lr).value.clone()) };
                let (lrl, lrr) = unsafe { ((*lr).left, (*lr).right) };
                let left = Self::mk(scratch, ll, lk, lv, lrl);
                let right = Self::mk(scratch, lrr, key, value, r);
                // `l` and `lr` are replaced by `out` and unlinked; the
                // release cascade retires them.
                Self::mk(scratch, left, lrk, lrv, right)
            }
        } else {
            Self::mk(scratch, l, key, value, r)
        }
    }

    /// Copy-on-write insert. Returns the new subtree root and the displaced
    /// value, collecting replaced nodes and fresh allocations into the
    /// scratch.
    ///
    /// # Safety
    ///
    /// Caller holds a pinned guard; `n` is a subtree root that was
    /// published when the guard was already pinned (or null), so every
    /// reachable node is live and immutable.
    unsafe fn insert_rec(
        n: *mut Node<K, V>,
        key: &K,
        value: &V,
        scratch: &mut WriterScratch<K, V>,
    ) -> (*mut Node<K, V>, Option<V>) {
        if n.is_null() {
            let out = Self::mk(
                scratch,
                ptr::null_mut(),
                key.clone(),
                value.clone(),
                ptr::null_mut(),
            );
            return (out, None);
        }
        // Safety: `n` is a valid published node, immutable under the guard.
        let node = unsafe { &*n };
        match key.cmp(&node.key) {
            Cmp::Equal => {
                let old = node.value.clone();
                let out = Self::mk(scratch, node.left, key.clone(), value.clone(), node.right);
                // `n` is replaced by `out`; the old version's release
                // cascade retires it once no root reaches it.
                (out, Some(old))
            }
            Cmp::Less => {
                // Safety: recursing with the same contract.
                let (nl, old) = unsafe { Self::insert_rec(node.left, key, value, scratch) };
                let out =
                    // Safety: `nl` is owned by this update, `node.right` is
                    // published; both valid.
                    unsafe { Self::balance(nl, node.key.clone(), node.value.clone(), node.right, scratch) };
                // `n` is replaced by `out`; the old version's release
                // cascade retires it once no root reaches it.
                (out, old)
            }
            Cmp::Greater => {
                // Safety: recursing with the same contract.
                let (nr, old) = unsafe { Self::insert_rec(node.right, key, value, scratch) };
                let out =
                    // Safety: as in the `Less` arm, mirrored.
                    unsafe { Self::balance(node.left, node.key.clone(), node.value.clone(), nr, scratch) };
                // `n` is replaced by `out`; the old version's release
                // cascade retires it once no root reaches it.
                (out, old)
            }
        }
    }

    /// Copy-on-write remove. If the key is absent the original subtree is
    /// returned untouched (no reallocation along the path).
    ///
    /// # Safety
    ///
    /// Same contract as [`Self::insert_rec`].
    unsafe fn remove_rec(
        n: *mut Node<K, V>,
        key: &K,
        scratch: &mut WriterScratch<K, V>,
    ) -> (*mut Node<K, V>, Option<V>) {
        if n.is_null() {
            return (n, None);
        }
        // Safety: `n` is a valid published node.
        let node = unsafe { &*n };
        match key.cmp(&node.key) {
            Cmp::Equal => {
                let old = node.value.clone();
                // Safety: joining the two published child subtrees.
                let out = unsafe { Self::join(node.left, node.right, scratch) };
                // `n` is replaced by `out`; the old version's release
                // cascade retires it once no root reaches it.
                (out, Some(old))
            }
            Cmp::Less => {
                // Safety: recursing with the same contract.
                let (nl, old) = unsafe { Self::remove_rec(node.left, key, scratch) };
                if old.is_none() {
                    return (n, None);
                }
                // Safety: `nl` owned by this update, `node.right` published.
                let out = unsafe {
                    Self::balance(
                        nl,
                        node.key.clone(),
                        node.value.clone(),
                        node.right,
                        scratch,
                    )
                };
                // `n` is replaced by `out`; the old version's release
                // cascade retires it once no root reaches it.
                (out, old)
            }
            Cmp::Greater => {
                // Safety: recursing with the same contract.
                let (nr, old) = unsafe { Self::remove_rec(node.right, key, scratch) };
                if old.is_none() {
                    return (n, None);
                }
                // Safety: as in the `Less` arm, mirrored.
                let out = unsafe {
                    Self::balance(node.left, node.key.clone(), node.value.clone(), nr, scratch)
                };
                // `n` is replaced by `out`; the old version's release
                // cascade retires it once no root reaches it.
                (out, old)
            }
        }
    }

    /// Joins two subtrees whose every key in `l` is less than every key in
    /// `r`, where the pair was balanced around a now-removed root.
    ///
    /// # Safety
    ///
    /// Same contract as [`Self::insert_rec`].
    unsafe fn join(
        l: *mut Node<K, V>,
        r: *mut Node<K, V>,
        scratch: &mut WriterScratch<K, V>,
    ) -> *mut Node<K, V> {
        if l.is_null() {
            return r;
        }
        if r.is_null() {
            return l;
        }
        // Safety: `r` is a valid non-null subtree.
        let (k, v, r2) = unsafe { Self::extract_min(r, scratch) };
        // Safety: `l` published, `r2` owned by this update.
        unsafe { Self::balance(l, k, v, r2, scratch) }
    }

    /// Removes and returns the minimum entry of non-null subtree `n`,
    /// collecting the replaced path into the scratch.
    ///
    /// # Safety
    ///
    /// `n` must be a valid non-null subtree root; same contract as
    /// [`Self::insert_rec`].
    unsafe fn extract_min(
        n: *mut Node<K, V>,
        scratch: &mut WriterScratch<K, V>,
    ) -> (K, V, *mut Node<K, V>) {
        // Safety: `n` is valid and non-null per the contract.
        let node = unsafe { &*n };
        if node.left.is_null() {
            // `n` is unlinked (its right child is reused); the release
            // cascade retires it.
            (node.key.clone(), node.value.clone(), node.right)
        } else {
            // Safety: `node.left` is non-null and valid.
            let (k, v, nl) = unsafe { Self::extract_min(node.left, scratch) };
            // Safety: `nl` owned by this update, `node.right` published.
            let out = unsafe {
                Self::balance(
                    nl,
                    node.key.clone(),
                    node.value.clone(),
                    node.right,
                    scratch,
                )
            };
            // `n` is replaced by `out`; the release cascade retires it.
            (k, v, out)
        }
    }

    // ---- read-side helpers ----

    /// In-order traversal cloning entries into `out`.
    ///
    /// # Safety
    ///
    /// `n` must be null or a guard-protected published subtree.
    unsafe fn inorder(n: *mut Node<K, V>, out: &mut Vec<(K, V)>) {
        if n.is_null() {
            return;
        }
        // Safety: valid published node per the contract.
        let node = unsafe { &*n };
        // Safety: children satisfy the same contract.
        unsafe { Self::inorder(node.left, out) };
        out.push((node.key.clone(), node.value.clone()));
        // Safety: children satisfy the same contract.
        unsafe { Self::inorder(node.right, out) };
    }

    /// Recursive invariant check; returns the subtree's node count.
    ///
    /// # Safety
    ///
    /// `n` must be null or a guard-protected published subtree.
    unsafe fn check_rec(n: *mut Node<K, V>, lo: Option<&K>, hi: Option<&K>) -> usize {
        if n.is_null() {
            return 0;
        }
        // Safety: valid published node per the contract.
        let node = unsafe { &*n };
        if let Some(lo) = lo {
            assert!(*lo < node.key, "BST order violated (low bound)");
        }
        if let Some(hi) = hi {
            assert!(node.key < *hi, "BST order violated (high bound)");
        }
        // Safety: children satisfy the same contract.
        let sl = unsafe { Self::check_rec(node.left, lo, Some(&node.key)) };
        // Safety: children satisfy the same contract.
        let sr = unsafe { Self::check_rec(node.right, Some(&node.key), hi) };
        assert_eq!(node.size, 1 + sl + sr, "cached size wrong");
        if sl + sr > 1 {
            assert!(
                sl <= DELTA * sr && sr <= DELTA * sl,
                "weight balance violated: sl={sl} sr={sr}"
            );
        }
        1 + sl + sr
    }
}

impl<K, V> Drop for BonsaiTree<K, V> {
    fn drop(&mut self) {
        // Dropping a tree releases its root-pointer reference — it must
        // NOT free the tree outright, for two independent reasons: a
        // forked lineage may still reach any shared subtree (the cascade
        // stops there), and a reader of *that* lineage — pinned before
        // some commit over there unlinked a node both lineages once
        // shared — may still be traversing nodes this release is last to
        // drop. So the cascade's batch takes the backend's grace period
        // like any commit's. `&mut self` guarantees only that *this*
        // tree has no readers or writers left.
        let scratch = self.writer.get_mut().unwrap_or_else(|e| e.into_inner());
        let mut batch = scratch.arena.take_batch();
        // ordering: Relaxed — `&mut self` proves exclusive access, so no
        // concurrent writer exists (and loomette's atomics have no
        // `get_mut`; an unordered load is the same thing here).
        let root = self.root.load(Ordering::Relaxed);
        // Safety: dropping this tree's root-pointer reference, held since
        // the commit (or fork) that published `root`.
        unsafe { release(root, &mut batch) };
        if batch.is_empty() {
            scratch.arena.put_batch(batch);
            return;
        }
        let bytes = batch.len() * std::mem::size_of::<Node<K, V>>();
        let recycler = self.recycler.clone();
        // Safety: every batched pointer hit refcount zero, so no remaining
        // lineage reaches it; only readers of other lineages already
        // inside a critical section can, and the grace period covers
        // exactly those. `recycler` was cached at construction, where the
        // `K: Send + 'static, V: Send + 'static` bounds every constructor
        // carries were in scope — so the payload is `Send`.
        unsafe {
            match &self.backend {
                ReclaimBackend::Epoch(c) => {
                    // Quiet pin: pin-time housekeeping could run deferred
                    // callbacks while we hold `self` half-destroyed.
                    let guard = c.pin_quiet();
                    guard.defer_recycle(recycler, batch, bytes);
                }
                ReclaimBackend::Qsbr(d) => d.defer_recycle(recycler, batch, bytes),
                ReclaimBackend::Hp(d) => d.defer_recycle(recycler, batch, bytes),
                ReclaimBackend::Hybrid(d) => {
                    // Batched nodes are still-valid blocks whose grace
                    // period starts here, so their birth stamps are
                    // readable — the `node_birth` contract.
                    d.defer_recycle_with(recycler, batch, bytes, node_birth::<K, V>)
                }
            }
        }
    }
}

impl<K, V> fmt::Debug for BonsaiTree<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BonsaiTree")
            // ordering: Relaxed — diagnostic snapshot.
            .field("len", &self.len.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Small deterministic RNG (xorshift64*), since the workspace carries no
    /// external dependencies.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let t: BonsaiTree<u64, u64> = BonsaiTree::new(Collector::new());
        assert!(t.is_empty());
        assert_eq!(t.insert(5, 50), None);
        assert_eq!(t.insert(3, 30), None);
        assert_eq!(t.insert(7, 70), None);
        assert_eq!(t.insert(5, 55), Some(50));
        assert_eq!(t.len(), 3);
        let g = t.pin();
        assert_eq!(t.get(&5, &g), Some(&55));
        assert_eq!(t.get(&4, &g), None);
        drop(g);
        assert_eq!(t.remove(&3), Some(30));
        assert_eq!(t.remove(&3), None);
        assert_eq!(t.len(), 2);
        t.check_invariants();
    }

    #[test]
    fn ordered_queries() {
        let t: BonsaiTree<u64, &str> = BonsaiTree::new(Collector::new());
        for k in [10u64, 20, 30, 40] {
            t.insert(k, "x");
        }
        let g = t.pin();
        assert_eq!(t.get_le(&25, &g).map(|(k, _)| *k), Some(20));
        assert_eq!(t.get_le(&20, &g).map(|(k, _)| *k), Some(20));
        assert_eq!(t.get_le(&5, &g), None);
        assert_eq!(t.get_ge(&25, &g).map(|(k, _)| *k), Some(30));
        assert_eq!(t.get_ge(&40, &g).map(|(k, _)| *k), Some(40));
        assert_eq!(t.get_ge(&41, &g), None);
    }

    #[test]
    fn matches_btreemap_under_random_ops() {
        let collector = Collector::new();
        let t: BonsaiTree<u64, u64> = BonsaiTree::new(collector.clone());
        let mut model = BTreeMap::new();
        let mut rng = Rng(0xDEADBEEF);
        const OPS: u64 = if cfg!(miri) { 300 } else { 4000 };
        for i in 0..OPS {
            let k = rng.next() % 512;
            if rng.next().is_multiple_of(3) {
                assert_eq!(t.remove(&k), model.remove(&k), "op {i}: remove {k}");
            } else {
                assert_eq!(t.insert(k, i), model.insert(k, i), "op {i}: insert {k}");
            }
            if i % 512 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
        let got = t.to_vec();
        let want: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(got, want);
        // Everything replaced along the way is eventually reclaimed.
        collector.synchronize();
        let s = collector.stats();
        assert_eq!(s.objects_retired, s.objects_freed);
    }

    #[test]
    fn sequential_insert_stays_balanced() {
        const N: u64 = if cfg!(miri) { 300 } else { 2000 };
        let t: BonsaiTree<u64, u64> = BonsaiTree::new(Collector::new());
        for k in 0..N {
            t.insert(k, k);
        }
        t.check_invariants();
        for k in (0..N).rev().step_by(2) {
            t.remove(&k);
        }
        t.check_invariants();
        assert_eq!(t.len(), N as usize / 2);
    }

    /// The same randomized differential as `matches_btreemap_under_random_ops`,
    /// replayed against each reclamation backend through the owned
    /// (backend-agnostic) read API — the tentpole invariant: tree behavior
    /// is identical whatever reclaims the garbage, and every backend ends
    /// the run with everything it retired reclaimed.
    #[test]
    fn matches_btreemap_on_every_backend() {
        use rcukit::ReclaimKind;
        for kind in [
            ReclaimKind::Epoch,
            ReclaimKind::Qsbr,
            ReclaimKind::Hp,
            ReclaimKind::Hybrid,
        ] {
            let backend = ReclaimBackend::new(kind);
            let t: BonsaiTree<u64, u64> = BonsaiTree::with_backend(backend.clone());
            let mut model = BTreeMap::new();
            let mut rng = Rng(0xC0FFEE ^ kind as u64);
            const OPS: u64 = if cfg!(miri) { 200 } else { 3000 };
            for i in 0..OPS {
                let k = rng.next() % 256;
                if rng.next().is_multiple_of(3) {
                    assert_eq!(
                        t.remove(&k),
                        model.remove(&k),
                        "{kind:?} op {i}: remove {k}"
                    );
                } else {
                    assert_eq!(
                        t.insert(k, i),
                        model.insert(k, i),
                        "{kind:?} op {i}: insert {k}"
                    );
                }
                if i % 512 == 0 {
                    t.check_invariants();
                    let probe = rng.next() % 256;
                    assert_eq!(
                        t.get_owned(&probe),
                        model.get(&probe).copied(),
                        "{kind:?} op {i}: get {probe}"
                    );
                    assert_eq!(
                        t.get_le_owned(&probe),
                        model.range(..=probe).next_back().map(|(&k, &v)| (k, v)),
                        "{kind:?} op {i}: get_le {probe}"
                    );
                    assert_eq!(
                        t.get_ge_owned(&probe),
                        model.range(probe..).next().map(|(&k, &v)| (k, v)),
                        "{kind:?} op {i}: get_ge {probe}"
                    );
                }
            }
            t.check_invariants();
            let got = t.to_vec();
            let want: Vec<(u64, u64)> = model.into_iter().collect();
            assert_eq!(got, want, "{kind:?} final state diverged");
            drop(t);
            backend.synchronize();
            let s = backend.stats();
            assert_eq!(
                s.objects_retired, s.objects_freed,
                "{kind:?} leaked retired objects"
            );
            assert!(s.objects_retired > 0, "{kind:?} retired nothing");
            assert_eq!(s.bytes_retired, s.bytes_freed, "{kind:?} leaked bytes");
            assert!(
                s.peak_unreclaimed_bytes > 0,
                "{kind:?} never measured outstanding garbage"
            );
        }
    }

    /// Guard-based reads are the epoch protocol; the other backends must
    /// reject them loudly instead of handing out unprotected references.
    #[test]
    fn guard_reads_panic_on_non_epoch_backends() {
        use rcukit::ReclaimKind;
        use std::panic::{catch_unwind, AssertUnwindSafe};
        for kind in [ReclaimKind::Qsbr, ReclaimKind::Hp, ReclaimKind::Hybrid] {
            let t: BonsaiTree<u64, u64> = BonsaiTree::with_backend(ReclaimBackend::new(kind));
            t.insert(1, 10);
            assert!(
                catch_unwind(AssertUnwindSafe(|| t.pin())).is_err(),
                "{kind:?}: pin() must panic"
            );
            assert!(
                catch_unwind(AssertUnwindSafe(|| t.collector())).is_err(),
                "{kind:?}: collector() must panic"
            );
            // The owned reads are the supported protocol there.
            assert_eq!(t.get_owned(&1), Some(10));
            assert!(t.contains_key(&1));
        }
    }

    #[test]
    fn foreign_guard_is_rejected() {
        let t: BonsaiTree<u64, u64> = BonsaiTree::new(Collector::new());
        let other = Collector::new();
        let g = other.pin();
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| { t.get(&1, &g) })).is_err()
        );
    }

    /// The writer-path allocation diet: the retired-node buffer lives with
    /// the writer lock and is reused, so a steady-state workload (bounded
    /// key universe, tree size oscillating around a fixed point) must stop
    /// growing its capacity after warm-up — per-update cost is then the
    /// O(log n) node boxes plus one exact-size batch allocation, with no
    /// doubling regrowth.
    #[test]
    fn steady_state_updates_do_not_regrow_scratch() {
        let t: BonsaiTree<u64, u64> = BonsaiTree::new(Collector::new());
        let mut rng = Rng(0x5EED_5EED);
        const KEYS: u64 = if cfg!(miri) { 64 } else { 256 };
        const WARMUP: u64 = if cfg!(miri) { 500 } else { 2_000 };
        const STEADY: u64 = if cfg!(miri) { 1_000 } else { 10_000 };
        // Warm-up: reach steady state and the workload's peak path length.
        for i in 0..WARMUP {
            let k = rng.next() % KEYS;
            if rng.next().is_multiple_of(2) {
                t.insert(k, i);
            } else {
                t.remove(&k);
            }
        }
        let warm = t.writer_scratch_capacity();
        assert!(warm > 0, "warm-up retired nothing");
        // Steady state: same workload shape, thousands more updates.
        for i in 0..STEADY {
            let k = rng.next() % KEYS;
            if rng.next().is_multiple_of(2) {
                t.insert(k, i);
            } else {
                t.remove(&k);
            }
        }
        assert_eq!(
            t.writer_scratch_capacity(),
            warm,
            "steady-state updates regrew the writer scratch buffer"
        );
    }
}
