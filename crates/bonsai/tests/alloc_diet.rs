//! The zero-allocation write path, measured at the global allocator.
//!
//! The tentpole claim is that a steady-state `RangeMap` churn performs
//! **zero heap allocations per update** once the arenas, scratch buffers,
//! stripe tables, and collector bag pools are warm: node blocks come from
//! the per-lock slab arena (recycled through grace periods), the retire
//! batch travels as an allocation-free `Recycle` deferred with a pooled
//! buffer, and every `Vec` on the path keeps its capacity when it
//! empties. This binary installs a counting `GlobalAlloc` and asserts
//! exactly that — not a capacity proxy, the real allocation count.
//!
//! The test is single-threaded, so the whole pipeline (including the
//! collector's throttled unpin collects and grace-period recycling) runs
//! deterministically: a zero count here is a property, not a lucky
//! schedule. The companion capacity-flat assertions (arena chunk counts)
//! live in `range_map.rs`/`tree.rs` unit tests and keep holding under
//! concurrency.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use bonsai::RangeMap;
use rcukit::Collector;

/// Counts every allocation (alloc/realloc/alloc_zeroed) passed through to
/// the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        // Safety: forwarded contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // Safety: forwarded contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        // Safety: forwarded contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        // Safety: forwarded contract.
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const PAGE: u64 = 0x1000;
const SLOTS: u64 = 128;

/// One churn pass over every slot: unmap it if mapped, else map 2 pages —
/// plus a periodic multi-region `unmap_range` exercising the composite
/// path (discovery buffer, truncation re-inserts).
fn churn(m: &RangeMap<u64>, rounds: usize) {
    for round in 0..rounds {
        for slot in 0..SLOTS {
            let start = slot * 4 * PAGE;
            if slot.is_multiple_of(16) && round.is_multiple_of(4) {
                m.unmap_range(start, start + 3 * PAGE);
            } else if m.unmap(start).is_none() {
                assert!(m.map(start, start + 2 * PAGE, slot));
            }
        }
    }
}

// Not run under Miri: the property is global-allocator call counting over
// ~10k updates — interpreter-independent arithmetic, but prohibitively
// slow to interpret. The arena/recycle unsafe paths themselves run under
// Miri through the (cfg(miri)-scaled) tree, range-map, and scenario
// stress tests.
#[cfg_attr(miri, ignore)]
#[test]
fn steady_state_churn_allocates_nothing() {
    let collector = Collector::new();
    let m: RangeMap<u64> = RangeMap::new(collector.clone());

    // Warm-up: grow the arenas to the workload's peak in-flight node count
    // (bounded by the grace-period lag times path length), the scratch and
    // stripe vectors to their peak, and the collector's bag/batch pools.
    churn(&m, 40);
    let chunks_warm = m.writer_arena_chunks();
    assert!(chunks_warm > 0, "warm-up never grew an arena");

    // Steady state: thousands of further updates, same shape. Single
    // thread ⇒ deterministic; the count must be exactly zero.
    let before = ALLOCS.load(Relaxed);
    churn(&m, 40);
    let after = ALLOCS.load(Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state churn hit the heap {} times",
        after - before
    );
    assert_eq!(
        m.writer_arena_chunks(),
        chunks_warm,
        "steady-state churn grew an arena"
    );

    // The diet must not have traded away reclamation: everything retired
    // is freed once quiescent.
    collector.synchronize();
    let stats = collector.stats();
    assert_eq!(stats.objects_retired, stats.objects_freed);
    assert!(stats.objects_retired > 0);
}
