//! The zero-allocation write path, measured at the global allocator.
//!
//! The tentpole claim is that a steady-state `RangeMap` churn performs
//! **zero heap allocations per update** once the arenas, scratch buffers,
//! stripe tables, and collector bag pools are warm: node blocks come from
//! the per-lock slab arena (recycled through grace periods), the retire
//! batch travels as an allocation-free `Recycle` deferred with a pooled
//! buffer, and every `Vec` on the path keeps its capacity when it
//! empties. This binary installs a counting `GlobalAlloc` and asserts
//! exactly that — not a capacity proxy, the real allocation count.
//!
//! The test is single-threaded, so the whole pipeline (including the
//! collector's throttled unpin collects and grace-period recycling) runs
//! deterministically: a zero count here is a property, not a lucky
//! schedule. The companion capacity-flat assertions (arena chunk counts)
//! live in `range_map.rs`/`tree.rs` unit tests and keep holding under
//! concurrency.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use bonsai::{BonsaiTree, RangeMap};
use rcukit::Collector;

/// Counts every allocation (alloc/realloc/alloc_zeroed) passed through to
/// the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        // Safety: forwarded contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // Safety: forwarded contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        // Safety: forwarded contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        // Safety: forwarded contract.
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const PAGE: u64 = 0x1000;
const SLOTS: u64 = 128;

/// One churn pass over every slot: unmap it if mapped, else map 2 pages —
/// plus a periodic multi-region `unmap_range` exercising the composite
/// path (discovery buffer, truncation re-inserts).
fn churn(m: &RangeMap<u64>, rounds: usize) {
    for round in 0..rounds {
        for slot in 0..SLOTS {
            let start = slot * 4 * PAGE;
            if slot.is_multiple_of(16) && round.is_multiple_of(4) {
                m.unmap_range(start, start + 3 * PAGE);
            } else if m.unmap(start).is_none() {
                assert!(m.map(start, start + 2 * PAGE, slot));
            }
        }
    }
}

// Not run under Miri: the property is global-allocator call counting over
// ~10k updates — interpreter-independent arithmetic, but prohibitively
// slow to interpret. The arena/recycle unsafe paths themselves run under
// Miri through the (cfg(miri)-scaled) tree, range-map, and scenario
// stress tests.
#[cfg_attr(miri, ignore)]
#[test]
fn steady_state_churn_allocates_nothing() {
    let collector = Collector::new();
    let m: RangeMap<u64> = RangeMap::new(collector.clone());

    // Warm-up: grow the arenas to the workload's peak in-flight node count
    // (bounded by the grace-period lag times path length), the scratch and
    // stripe vectors to their peak, and the collector's bag/batch pools.
    churn(&m, 40);
    let chunks_warm = m.writer_arena_chunks();
    assert!(chunks_warm > 0, "warm-up never grew an arena");

    // Steady state: thousands of further updates, same shape. Single
    // thread ⇒ deterministic; the count must be exactly zero.
    let before = ALLOCS.load(Relaxed);
    churn(&m, 40);
    let after = ALLOCS.load(Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state churn hit the heap {} times",
        after - before
    );
    assert_eq!(
        m.writer_arena_chunks(),
        chunks_warm,
        "steady-state churn grew an arena"
    );

    // The diet must not have traded away reclamation: everything retired
    // is freed once quiescent.
    collector.synchronize();
    let stats = collector.stats();
    assert_eq!(stats.objects_retired, stats.objects_freed);
    assert!(stats.objects_retired > 0);
}

/// `fork()` must be O(1)/O(depth), not O(n): snapshotting a 100k-entry
/// tree copies **zero nodes** — the child takes one extra reference on
/// the root and shares every subtree — so the allocation count is a
/// small constant, far under the tree's height (~2·log₂ n ≈ 34 for
/// 100k), and identical for a 100k-entry tree and a 100-entry one.
#[cfg_attr(miri, ignore)]
#[test]
fn fork_allocates_o_depth_not_o_n() {
    let collector = Collector::new();
    let big: BonsaiTree<u64, u64> = BonsaiTree::new(collector.clone());
    for k in 0..100_000u64 {
        big.insert(k, k);
    }
    let small: BonsaiTree<u64, u64> = BonsaiTree::new(collector.clone());
    for k in 0..100u64 {
        small.insert(k, k);
    }
    // Warm the fork path once (collector TLS, first-touch laziness), so
    // the measured runs count only what a fork inherently allocates.
    drop(small.fork());

    let before = ALLOCS.load(Relaxed);
    let big_child = big.fork();
    let big_fork_allocs = ALLOCS.load(Relaxed) - before;

    let before = ALLOCS.load(Relaxed);
    let small_child = small.fork();
    let small_fork_allocs = ALLOCS.load(Relaxed) - before;

    assert!(
        big_fork_allocs <= 34,
        "forking a 100k-entry tree allocated {big_fork_allocs} times \
         (> height bound 34 — fork is copying, not sharing)"
    );
    assert_eq!(
        big_fork_allocs, small_fork_allocs,
        "fork cost depends on tree size ({big_fork_allocs} vs {small_fork_allocs} allocs)"
    );

    // The children are real, independent trees over the shared structure.
    assert_eq!(big_child.len(), 100_000);
    assert_eq!(big_child.get_owned(&54_321), Some(54_321));
    big_child.insert(200_000, 1);
    assert_eq!(big.get_owned(&200_000), None);
    drop((big, big_child, small, small_child));
    collector.synchronize();
    let stats = collector.stats();
    assert_eq!(stats.objects_retired, stats.objects_freed);
}

/// Same bound one layer up: `RangeMap::fork` is O(stripes) (the child's
/// pooled per-stripe scratches), never O(regions) — a 100k-region map
/// forks with the same allocation count as a 100-region one.
#[cfg_attr(miri, ignore)]
#[test]
fn range_map_fork_allocates_o_stripes_not_o_regions() {
    let big: RangeMap<u64> = RangeMap::with_default();
    for slot in 0..100_000u64 {
        assert!(big.map(slot * 2 * PAGE, slot * 2 * PAGE + PAGE, slot));
    }
    let small: RangeMap<u64> = RangeMap::with_default();
    for slot in 0..100u64 {
        assert!(small.map(slot * 2 * PAGE, slot * 2 * PAGE + PAGE, slot));
    }
    drop(small.fork());

    let before = ALLOCS.load(Relaxed);
    let big_child = big.fork();
    let big_fork_allocs = ALLOCS.load(Relaxed) - before;

    let before = ALLOCS.load(Relaxed);
    let small_child = small.fork();
    let small_fork_allocs = ALLOCS.load(Relaxed) - before;

    assert_eq!(
        big_fork_allocs, small_fork_allocs,
        "map fork cost depends on region count ({big_fork_allocs} vs {small_fork_allocs} allocs)"
    );
    // Stripe-proportional slack: scratches, lock table, tree handle.
    let bound = 16 * big.lock_stripes() as u64 + 64;
    assert!(
        big_fork_allocs <= bound,
        "forking a 100k-region map allocated {big_fork_allocs} times (> {bound})"
    );

    assert_eq!(big_child.len(), 100_000);
    assert!(big_child.unmap(0).is_some());
    assert!(big.contains(0), "child unmap leaked into the parent");
    drop((big_child, small_child));
}

/// Double-free/leak regression across fork lineages, at byte accuracy:
/// after every lineage is gone — in orderings that drop a forked child
/// early, the parent early, and interleave further mutation in between —
/// the backend's `ReclaimStats` balance exactly (`retired == freed`,
/// objects *and* bytes). A shared node retired twice trips the counters
/// (or the allocator) here; one never retired leaves `freed` short.
#[cfg_attr(miri, ignore)]
#[test]
fn fork_lineages_reclaim_exactly_once() {
    for parent_first in [false, true] {
        let collector = Collector::new();
        let m: RangeMap<u64> = RangeMap::new(collector.clone());
        churn(&m, 8);
        let child = m.fork();
        // Both lineages diverge over the shared snapshot.
        churn(&m, 8);
        churn(&child, 8);
        if parent_first {
            drop(m);
            churn(&child, 4); // the survivor keeps mutating shared subtrees
            drop(child);
        } else {
            drop(child);
            churn(&m, 4);
            drop(m);
        }
        collector.synchronize();
        let stats = collector.stats();
        assert!(stats.objects_retired > 0);
        assert_eq!(
            stats.objects_retired, stats.objects_freed,
            "parent_first={parent_first}: object leak or double retirement"
        );
        assert_eq!(
            stats.bytes_retired, stats.bytes_freed,
            "parent_first={parent_first}: byte accounting diverged"
        );
    }
}
