//! Chaos tier: randomized fault injection over fork/mutate/unmap
//! lineages, diffed against a `BTreeMap` model (the `fork_diff`
//! methodology under injected faults).
//!
//! Builds only with `--features faults`. Each leg arms the process-global
//! failpoint registry (`rcukit::faults`) with a fixed seed, runs a
//! deterministic single-threaded workload in which any write may panic at
//! an injected protocol edge (arena allocation, forced CAS failure,
//! pre-publish / post-CAS panic, mid-discovery panic), catches every
//! unwind, and asserts the panic-atomicity contract after each one:
//!
//! * a panicked tree update left the tree in exactly its pre-op or
//!   post-op state — never torn, never violating the tree invariants;
//! * a panicked map operation leaked no range lock and lent the next
//!   writer a clean scratch (the next operation simply proceeds);
//! * a panicked `unmap_range` never lost coverage of bytes outside the
//!   requested span, and retrying the call converges to the full unmap;
//! * after teardown the backend drains to `retired == freed`, objects
//!   and bytes — no leak, no double free, on all four backends.
//!
//! Every leg prints `FAULT_REPLAY=<token>` if its assertions fail, and
//! the token replays the exact fault schedule via `faults::arm_token`
//! (see `chaos_runs_are_replayable_from_their_token`).

#![cfg(feature = "faults")]

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, Once};

use bonsai::{BonsaiTree, RangeMap};
use rcukit::{faults, HybridDomain, ReclaimBackend, ReclaimKind};

const ALL_KINDS: [ReclaimKind; 4] = [
    ReclaimKind::Epoch,
    ReclaimKind::Qsbr,
    ReclaimKind::Hp,
    ReclaimKind::Hybrid,
];

/// Small deterministic RNG (xorshift64*), as in `fork_diff`.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// The failpoint registry is process-global, so chaos tests serialize on
/// one lock instead of corrupting each other's arming.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Silences the default panic printout for *injected* panics only (the
/// workload catches them; the backtrace spam would drown real failures).
/// Installed once for the whole test binary; genuine assertion panics
/// still print through the previous hook.
fn silence_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.starts_with("injected fault:") {
                prev(info);
            }
        }));
    });
}

/// Prints the replay token if the harness itself fails, so every chaos
/// failure is reproducible: `FAULT_REPLAY=<token>` → `faults::arm_token`.
struct ReplayOnFailure;
impl Drop for ReplayOnFailure {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("FAULT_REPLAY={}", faults::replay_token());
        }
    }
}

const KEY_SPACE: u64 = 256;

fn model_vec(model: &BTreeMap<u64, u64>) -> Vec<(u64, u64)> {
    model.iter().map(|(&k, &v)| (k, v)).collect()
}

/// One fork/mutate lineage chaos run on `kind`, `steps` ops at
/// `per_mille`/1000 fault probability per probe.
fn run_tree_chaos(kind: ReclaimKind, seed: u64, steps: u64, per_mille: u32) {
    let _replay = ReplayOnFailure;
    faults::arm(seed, per_mille);
    let backend = ReclaimBackend::new(kind);
    let mut rng = Rng(seed | 1);
    let mut injected = 0u64;

    let mut lineages: Vec<(BonsaiTree<u64, u64>, BTreeMap<u64, u64>)> =
        vec![(BonsaiTree::with_backend(backend.clone()), BTreeMap::new())];

    for step in 0..steps {
        let roll = rng.next() % 100;
        let li = (rng.next() as usize) % lineages.len();
        if roll < 4 && lineages.len() < 6 {
            // Fork: the child must be a structural twin even when its
            // parent's history includes recovered panics.
            let child_tree = lineages[li].0.fork();
            let child_model = lineages[li].1.clone();
            assert_eq!(
                child_tree.to_vec(),
                model_vec(&child_model),
                "{kind:?}: fork diverged"
            );
            lineages.push((child_tree, child_model));
            continue;
        }
        if roll < 7 && lineages.len() > 1 {
            drop(lineages.swap_remove(li));
            continue;
        }
        let (tree, model) = &mut lineages[li];
        let key = rng.next() % KEY_SPACE;
        let remove = rng.next().is_multiple_of(3);
        let val = rng.next();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if remove {
                tree.remove(&key)
            } else {
                tree.insert(key, val)
            }
        }));
        match outcome {
            Ok(old) => {
                let expect = if remove {
                    model.remove(&key)
                } else {
                    model.insert(key, val)
                };
                assert_eq!(
                    old, expect,
                    "{kind:?} step {step}: clean op diverged from model"
                );
            }
            Err(_) => {
                // Panic-atomicity: the tree is in exactly the pre-op or
                // the post-op state, and structurally intact either way.
                injected += 1;
                tree.check_invariants();
                let mut post = model.clone();
                if remove {
                    post.remove(&key);
                } else {
                    post.insert(key, val);
                }
                let contents = tree.to_vec();
                if contents == model_vec(&post) {
                    *model = post;
                } else {
                    assert_eq!(
                        contents,
                        model_vec(model),
                        "{kind:?} step {step}: injected panic left a torn tree"
                    );
                }
            }
        }
        // Reads after recovered panics stay consistent.
        let probe = rng.next() % KEY_SPACE;
        let (tree, model) = &lineages[li];
        assert_eq!(
            tree.get_owned(&probe),
            model.get(&probe).copied(),
            "{kind:?} step {step}"
        );
        if step % 128 == 0 {
            for (tree, model) in &lineages {
                assert_eq!(
                    tree.to_vec(),
                    model_vec(model),
                    "{kind:?} step {step}: full diff"
                );
            }
        }
    }
    assert!(
        injected > 0,
        "{kind:?}: chaos run injected no faults — probe wiring broken?"
    );
    faults::disarm();

    // Post-chaos liveness: every writer path must still work (no wedged
    // lock, no poisoned-and-unrecoverable mutex) after the panics.
    for (tree, model) in &mut lineages {
        assert_eq!(tree.insert(KEY_SPACE + 1, 7), None);
        model.insert(KEY_SPACE + 1, 7);
        assert_eq!(tree.to_vec(), model_vec(model));
    }

    drop(lineages);
    backend.synchronize();
    let s = backend.stats();
    assert!(s.objects_retired > 0, "{kind:?}: nothing retired");
    assert_eq!(
        s.objects_retired, s.objects_freed,
        "{kind:?}: injected faults leaked or double-retired objects"
    );
    assert_eq!(
        s.bytes_retired, s.bytes_freed,
        "{kind:?}: byte accounting diverged"
    );
}

#[test]
fn tree_chaos_is_panic_atomic_on_every_backend() {
    let _s = serial();
    silence_injected_panics();
    let steps = if cfg!(miri) { 150 } else { 1500 };
    for kind in ALL_KINDS {
        run_tree_chaos(kind, 0xc4a0_0001 ^ kind as u64, steps, 35);
    }
}

// ---- range-map chaos ----

const PAGE: u64 = 0x1000;
const PAGES: u64 = 128;

type MapModel = BTreeMap<u64, (u64, u64)>;

fn map_model_vec(model: &MapModel) -> Vec<(u64, u64, u64)> {
    model.iter().map(|(&s, &(e, v))| (s, e, v)).collect()
}

fn model_overlaps(model: &MapModel, start: u64, end: u64) -> bool {
    if let Some((_, &(pred_end, _))) = model.range(..=start).next_back() {
        if pred_end > start {
            return true;
        }
    }
    model.range(start..end).next().is_some()
}

/// Applies a full `unmap_range` to the model, returning the number of
/// regions removed or truncated (the map's contract).
fn model_unmap_range(model: &mut MapModel, start: u64, end: u64) -> usize {
    let mut affected = 0;
    if let Some((&s, &(e, v))) = model.range(..start).next_back() {
        if e > start {
            model.insert(s, (start, v));
            if e > end {
                model.insert(end, (e, v));
            }
            affected += 1;
        }
    }
    let inside: Vec<u64> = model.range(start..end).map(|(&s, _)| s).collect();
    for s in inside {
        let (e, v) = model.remove(&s).expect("inside key vanished");
        if e > end {
            model.insert(end, (e, v));
        }
        affected += 1;
    }
    affected
}

/// Coverage outside `[start, end)` as a page → value mapping — the thing
/// a panicked `unmap_range` must never change. A mapping (not an interval
/// list) because the documented panic contract allows a transiently
/// duplicated tail piece: the same outside bytes covered by two regions,
/// which must then agree on the value. All chaos boundaries are
/// page-aligned, so page granularity is exact.
fn outside_coverage(contents: &[(u64, u64, u64)], start: u64, end: u64) -> BTreeMap<u64, u64> {
    let mut out = BTreeMap::new();
    for &(s, e, v) in contents {
        let mut page = s;
        while page < e {
            if page < start || page >= end {
                if let Some(prev) = out.insert(page, v) {
                    assert_eq!(prev, v, "duplicated coverage of page {page:#x} disagrees");
                }
            }
            page += PAGE;
        }
    }
    out
}

fn run_map_chaos(kind: ReclaimKind, seed: u64, steps: u64, per_mille: u32) {
    let _replay = ReplayOnFailure;
    faults::arm(seed, per_mille);
    let backend = ReclaimBackend::new(kind);
    let mut rng = Rng(seed | 1);
    let mut injected = 0u64;

    let mut lineages: Vec<(RangeMap<u64>, MapModel)> =
        vec![(RangeMap::with_backend(backend.clone()), MapModel::new())];

    for step in 0..steps {
        let roll = rng.next() % 100;
        let li = (rng.next() as usize) % lineages.len();
        if roll < 4 && lineages.len() < 4 {
            let child = lineages[li].0.fork();
            let model = lineages[li].1.clone();
            assert_eq!(
                child.to_vec(),
                map_model_vec(&model),
                "{kind:?}: fork diverged"
            );
            lineages.push((child, model));
            continue;
        }
        if roll < 7 && lineages.len() > 1 {
            drop(lineages.swap_remove(li));
            continue;
        }
        let (map, model) = &mut lineages[li];
        let start = (rng.next() % PAGES) * PAGE;
        match rng.next() % 4 {
            0 => {
                // map()
                let end = start + (1 + rng.next() % 4) * PAGE;
                let val = rng.next();
                let expect = !model_overlaps(model, start, end);
                match catch_unwind(AssertUnwindSafe(|| map.map(start, end, val))) {
                    Ok(mapped) => {
                        assert_eq!(mapped, expect, "{kind:?} step {step}: map() diverged");
                        if mapped {
                            model.insert(start, (end, val));
                        }
                    }
                    Err(_) => {
                        injected += 1;
                        // Atomic: mapped fully or not at all.
                        let mut post = model.clone();
                        if expect {
                            post.insert(start, (end, val));
                        }
                        let contents = map.to_vec();
                        if contents == map_model_vec(&post) {
                            *model = post;
                        } else {
                            assert_eq!(
                                contents,
                                map_model_vec(model),
                                "{kind:?} step {step}: injected panic tore map()"
                            );
                        }
                    }
                }
            }
            1 => {
                // unmap() — exact-start removal.
                match catch_unwind(AssertUnwindSafe(|| map.unmap(start))) {
                    Ok(got) => {
                        assert_eq!(
                            got,
                            model.remove(&start).map(|(_, v)| v),
                            "{kind:?} step {step}: unmap() diverged"
                        );
                    }
                    Err(_) => {
                        injected += 1;
                        let mut post = model.clone();
                        post.remove(&start);
                        let contents = map.to_vec();
                        if contents == map_model_vec(&post) {
                            *model = post;
                        } else {
                            assert_eq!(
                                contents,
                                map_model_vec(model),
                                "{kind:?} step {step}: injected panic tore unmap()"
                            );
                        }
                    }
                }
            }
            2 => {
                // unmap_range() — composite: a panic may leave it
                // partially applied, but never lose coverage outside the
                // span, and a retry must converge.
                let end = start + (1 + rng.next() % 8) * PAGE;
                match catch_unwind(AssertUnwindSafe(|| map.unmap_range(start, end))) {
                    Ok(n) => {
                        let expect = model_unmap_range(model, start, end);
                        assert_eq!(
                            n, expect,
                            "{kind:?} step {step}: unmap_range count diverged"
                        );
                    }
                    Err(_) => {
                        injected += 1;
                        let outside = outside_coverage(&map_model_vec(model), start, end);
                        let now = outside_coverage(&map.to_vec(), start, end);
                        assert_eq!(
                            now,
                            outside,
                            "{kind:?} step {step}: panicked unmap_range({start:#x}, {end:#x}) \
                             disturbed coverage outside the span; map={:?} model={:?}",
                            map.to_vec(),
                            map_model_vec(model),
                        );
                        // Crash-recovery contract: retrying completes the
                        // unmap (bounded retries — consecutive injected
                        // failures are vanishingly unlikely at this rate).
                        let mut done = false;
                        for _ in 0..64 {
                            if catch_unwind(AssertUnwindSafe(|| map.unmap_range(start, end)))
                                .is_ok()
                            {
                                done = true;
                                break;
                            }
                            injected += 1;
                        }
                        assert!(
                            done,
                            "{kind:?} step {step}: unmap_range retry never converged"
                        );
                        model_unmap_range(model, start, end);
                        assert_eq!(
                            map.to_vec(),
                            map_model_vec(model),
                            "{kind:?} step {step}: unmap_range retry did not converge to the model"
                        );
                    }
                }
            }
            _ => {
                let addr = start + rng.next() % PAGE;
                let expect = model
                    .range(..=addr)
                    .next_back()
                    .and_then(|(_, &(end, v))| (addr < end).then_some(v));
                assert_eq!(
                    map.lookup_owned(addr),
                    expect,
                    "{kind:?} step {step}: lookup"
                );
            }
        }
        // No panicked writer may leak its span: the lock table must be
        // empty whenever no operation is in flight.
        for (map, _) in &lineages {
            assert_eq!(
                map.held_range_locks(),
                0,
                "{kind:?} step {step}: leaked range lock"
            );
        }
        if step % 128 == 0 {
            for (map, model) in &lineages {
                assert_eq!(
                    map.to_vec(),
                    map_model_vec(model),
                    "{kind:?} step {step}: full diff"
                );
            }
        }
    }
    assert!(
        injected > 0,
        "{kind:?}: chaos run injected no faults — probe wiring broken?"
    );
    faults::disarm();

    // Post-chaos liveness, then drain.
    for (map, model) in &mut lineages {
        let s = (PAGES + 32) * PAGE; // beyond any reachable region end
        assert!(map.map(s, s + PAGE, 1));
        model.insert(s, (s + PAGE, 1));
        assert_eq!(map.to_vec(), map_model_vec(model));
        assert_eq!(map.held_range_locks(), 0);
    }
    drop(lineages);
    backend.synchronize();
    let s = backend.stats();
    assert!(s.objects_retired > 0, "{kind:?}: nothing retired");
    assert_eq!(
        s.objects_retired, s.objects_freed,
        "{kind:?}: injected faults leaked or double-retired objects"
    );
    assert_eq!(
        s.bytes_retired, s.bytes_freed,
        "{kind:?}: byte accounting diverged"
    );
}

#[test]
fn range_map_chaos_is_panic_atomic_on_every_backend() {
    let _s = serial();
    silence_injected_panics();
    let steps = if cfg!(miri) { 120 } else { 1200 };
    for kind in ALL_KINDS {
        run_map_chaos(kind, 0xc4a0_0002 ^ kind as u64, steps, 30);
    }
}

/// The PR 5 hole, pinned by a failpoint instead of a hand-built scenario:
/// an allocation-failure panic injected mid-`unmap_range` (first leg:
/// mid-discovery, before any mutation; second leg: mid-mutation, between
/// the composite's commits) must leave no torn state the documented
/// contract does not allow, leak no range lock, and retry to completion.
#[test]
fn unmap_range_survives_injected_failures_mid_flight() {
    let _s = serial();
    silence_injected_panics();
    let _replay = ReplayOnFailure;

    let build = || {
        let m: RangeMap<u64> = RangeMap::new(rcukit::Collector::new());
        assert!(m.map(0x1000, 0x3000, 1)); // head straddler
        assert!(m.map(0x3000, 0x4000, 2)); // inside
        assert!(m.map(0x4000, 0x5000, 3)); // inside
        assert!(m.map(0x6000, 0x9000, 4)); // tail straddler
        m
    };
    let full: Vec<(u64, u64, u64)> = vec![
        (0x1000, 0x3000, 1),
        (0x3000, 0x4000, 2),
        (0x4000, 0x5000, 3),
        (0x6000, 0x9000, 4),
    ];
    let after_unmap: Vec<(u64, u64, u64)> = vec![(0x1000, 0x2000, 1), (0x7000, 0x9000, 4)];

    // Leg 1: panic mid-discovery (second inside region), before any
    // mutation — the map must come out byte-identical.
    let m = build();
    faults::arm_schedule(&[(faults::site::UNMAP_DISCOVERY, 1)]);
    let err = catch_unwind(AssertUnwindSafe(|| m.unmap_range(0x2000, 0x7000)));
    assert!(err.is_err(), "scheduled discovery fault did not fire");
    faults::disarm();
    assert_eq!(m.to_vec(), full, "mid-discovery panic mutated the map");
    assert_eq!(
        m.held_range_locks(),
        0,
        "mid-discovery panic leaked a range lock"
    );
    assert_eq!(
        m.unmap_range(0x2000, 0x7000),
        4,
        "retry after discovery panic"
    );
    assert_eq!(m.to_vec(), after_unmap);

    // Leg 2: allocation failure mid-mutation. First measure how many
    // arena allocations the identical unmap makes (armed at probability
    // zero — hits are counted, nothing fires), then inject halfway.
    let m = build();
    faults::arm(0, 0);
    assert_eq!(m.unmap_range(0x2000, 0x7000), 4);
    let allocs = faults::hits(faults::site::ARENA_ALLOC);
    assert!(allocs >= 2, "unmap_range made too few allocations to split");
    faults::disarm();

    let m = build();
    faults::arm_schedule(&[(faults::site::ARENA_ALLOC, allocs / 2)]);
    let err = catch_unwind(AssertUnwindSafe(|| m.unmap_range(0x2000, 0x7000)));
    assert!(
        err.is_err(),
        "scheduled mid-mutation alloc fault did not fire"
    );
    faults::disarm();
    assert_eq!(
        m.held_range_locks(),
        0,
        "mid-mutation panic leaked a range lock"
    );
    // The composite may be partially applied, but coverage outside the
    // span is untouched...
    assert_eq!(
        outside_coverage(&m.to_vec(), 0x2000, 0x7000),
        outside_coverage(&full, 0x2000, 0x7000),
        "mid-mutation panic disturbed coverage outside the span"
    );
    // ...and the retry completes the unmap.
    m.unmap_range(0x2000, 0x7000);
    assert_eq!(m.to_vec(), after_unmap, "retry did not converge");
}

/// Graceful degradation end-to-end: a reader pinned across heavy churn on
/// the hybrid backend keeps `peak_unreclaimed_bytes` bounded (the epoch
/// backends grow without bound here), and once the blocked garbage
/// crosses the domain's budget the stall is detected and surfaced.
#[test]
fn stalled_reader_on_hybrid_backend_is_bounded_and_detected() {
    let _s = serial();
    silence_injected_panics();
    let _replay = ReplayOnFailure;

    // Small budget so the blocked residue provably crosses it.
    let domain = HybridDomain::with_budget(16 * 1024);
    let backend = ReclaimBackend::Hybrid(domain.clone());
    let tree: BonsaiTree<u64, u64> = BonsaiTree::with_backend(backend.clone());
    let initial = if cfg!(miri) { 256 } else { 2048 };
    for k in 0..initial {
        tree.insert(k, k);
    }

    // Pin a reader and never let it go while the writer churns: every
    // node alive at the pin and retired after it stays blocked, but
    // garbage born *after* the pin's reservation is freed regardless —
    // the interval rule routes around the stalled reader.
    let guard = domain.pin();
    let _root = guard.protect(std::ptr::null_mut::<u8>);
    for k in 0..initial {
        tree.remove(&k); // pre-pin nodes: blocked behind the guard
    }
    let churn = if cfg!(miri) { 2_000 } else { 40_000 };
    for i in 0..churn {
        let k = initial + (i % 64);
        tree.insert(k, i);
        tree.remove(&k);
    }

    let stats = backend.stats();
    // Bounded: the blocked set is at most the pre-pin working set (plus
    // scan-granularity slack) — churn garbage does not accumulate. An
    // unbounded backend would be tens of MB here.
    let node_bytes = 64u64; // generous per-node lower-bound granularity
    let bound = (initial + 4096) * node_bytes * 4;
    assert!(
        stats.peak_unreclaimed_bytes < bound,
        "hybrid stalled-reader garbage not bounded: peak {} >= {}",
        stats.peak_unreclaimed_bytes,
        bound
    );
    // Detected: the blocked bytes crossed the tiny budget, so the scan
    // marked the pin stalled and retirements started counting degraded.
    assert!(guard.is_stalled(), "over-budget pin never marked stalled");
    assert!(stats.stall_events >= 1, "stall not surfaced in stats");
    assert!(stats.degraded_ops > 0, "degraded ops not surfaced in stats");
    assert!(domain.peak_unreclaimed_bytes() == stats.peak_unreclaimed_bytes);

    // Release the reader: everything drains, nothing leaked.
    drop(guard);
    drop(tree);
    backend.synchronize();
    let s = backend.stats();
    assert_eq!(
        s.objects_retired, s.objects_freed,
        "stalled-reader leg leaked"
    );
    assert_eq!(s.bytes_retired, s.bytes_freed);
}

/// Determinism: re-arming from a chaos run's replay token reproduces the
/// exact fault schedule — same fired sites, same hit indices, same final
/// tree state.
#[test]
fn chaos_runs_are_replayable_from_their_token() {
    let _s = serial();
    silence_injected_panics();
    let _replay = ReplayOnFailure;

    let run = || {
        let tree: BonsaiTree<u64, u64> =
            BonsaiTree::with_backend(ReclaimBackend::new(ReclaimKind::Epoch));
        let mut rng = Rng(0xdeed);
        let mut panics = 0u64;
        for _ in 0..400 {
            let key = rng.next() % 64;
            let val = rng.next();
            if catch_unwind(AssertUnwindSafe(|| {
                if val.is_multiple_of(3) {
                    tree.remove(&key);
                } else {
                    tree.insert(key, val);
                }
            }))
            .is_err()
            {
                panics += 1;
            }
        }
        (tree.to_vec(), panics)
    };

    faults::arm(0x5eed_cafe, 60);
    let (contents, panics) = run();
    let token = faults::replay_token();
    assert!(panics > 0, "seeded run fired no faults");
    assert!(token.contains(';'), "malformed replay token {token:?}");

    // Replay from the token: schedule mode, yet bit-identical behavior.
    faults::arm_token(&token);
    let (replayed, replayed_panics) = run();
    let replay_fired = faults::replay_token();
    faults::disarm();
    assert_eq!(
        panics, replayed_panics,
        "replay fired a different number of faults"
    );
    assert_eq!(contents, replayed, "replay diverged from the recorded run");
    assert_eq!(
        token.rsplit(';').next(),
        replay_fired.rsplit(';').next(),
        "replay fired a different schedule"
    );
}
