//! Concurrent smoke tests: readers sustain lock-free lookups while a writer
//! churns the structure, and reclamation fully drains afterwards.
//!
//! Both churn tests also run a dedicated reclaimer thread hammering
//! [`Collector::collect`], so the global epoch advances *during* mid-flight
//! updates — the schedule that would catch retire-before-publish bugs, which
//! writer-only epoch advances (between operations) never exercise.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Barrier};
use std::thread;

use bonsai::{BonsaiTree, RangeMap};
use rcukit::Collector;

/// xorshift64* — the workspace carries no external dependencies.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

const PAGE: u64 = 0x1000;
// Scaled down under Miri (interpreter overhead): the schedules still cross
// many grace periods, which is what the UB detection needs.
const READERS: usize = if cfg!(miri) { 2 } else { 4 };
const WRITER_OPS: usize = if cfg!(miri) { 300 } else { 10_000 };

/// The acceptance scenario: 4 reader threads sustain `lookup`s against a
/// `RangeMap` while the writer performs 10k map/unmap operations. A set of
/// permanent regions must never be lost mid-flight, and after a final
/// `synchronize` every retired node has been freed.
#[test]
fn rangemap_readers_never_lose_keys_during_churn() {
    let collector = Collector::new();
    let map: Arc<RangeMap<u64>> = Arc::new(RangeMap::new(collector.clone()));

    // Permanent regions the writer never touches: region i covers
    // [i * 8 pages, i * 8 pages + 4 pages) with payload i.
    const PERMANENT: u64 = 64;
    for i in 0..PERMANENT {
        let start = i * 8 * PAGE;
        assert!(map.map(start, start + 4 * PAGE, i));
    }
    // Churn slots live above the permanent area.
    let churn_base = PERMANENT * 8 * PAGE;
    const CHURN_SLOTS: u64 = 256;

    let start_barrier = Arc::new(Barrier::new(READERS + 1));
    let done = Arc::new(AtomicBool::new(false));
    let lost = Arc::new(AtomicUsize::new(0));
    let lookups = Arc::new(AtomicUsize::new(0));

    // Advance the epoch and reclaim concurrently with mid-flight updates.
    let reclaimer = {
        let collector = collector.clone();
        let done = done.clone();
        thread::spawn(move || {
            while !done.load(SeqCst) {
                collector.collect();
                thread::yield_now();
            }
        })
    };

    let mut readers = Vec::new();
    for t in 0..READERS {
        let map = map.clone();
        let start_barrier = start_barrier.clone();
        let done = done.clone();
        let lost = lost.clone();
        let lookups = lookups.clone();
        readers.push(thread::spawn(move || {
            let mut rng = Rng(0x1234_5678 + t as u64);
            start_barrier.wait();
            let mut n = 0usize;
            while !done.load(SeqCst) {
                let guard = map.pin();
                // A permanent region must always translate, to its payload.
                let i = rng.next() % PERMANENT;
                let addr = i * 8 * PAGE + rng.next() % (4 * PAGE);
                match map.lookup(addr, &guard) {
                    Some(&v) if v == i => {}
                    _ => {
                        lost.fetch_add(1, SeqCst);
                    }
                }
                // Churn lookups may hit or miss; they must not crash or
                // return a foreign payload.
                let slot = rng.next() % CHURN_SLOTS;
                let addr = churn_base + slot * 8 * PAGE + rng.next() % (4 * PAGE);
                if let Some(&v) = map.lookup(addr, &guard) {
                    if v != PERMANENT + slot {
                        lost.fetch_add(1, SeqCst);
                    }
                }
                n += 2;
            }
            lookups.fetch_add(n, SeqCst);
        }));
    }

    start_barrier.wait();
    let mut rng = Rng(0xFEED_F00D);
    for _ in 0..WRITER_OPS {
        let slot = rng.next() % CHURN_SLOTS;
        let start = churn_base + slot * 8 * PAGE;
        if map.unmap(start).is_none() {
            let pages = 1 + rng.next() % 4;
            assert!(map.map(start, start + pages * PAGE, PERMANENT + slot));
        }
    }
    done.store(true, SeqCst);
    for t in readers {
        t.join().unwrap();
    }
    reclaimer.join().unwrap();

    assert_eq!(
        lost.load(SeqCst),
        0,
        "a reader lost a permanent region or saw a foreign payload"
    );
    assert!(
        lookups.load(SeqCst) > 0,
        "readers made no progress during the churn"
    );

    // All permanent regions are intact afterwards.
    let guard = map.pin();
    for i in 0..PERMANENT {
        assert_eq!(map.lookup(i * 8 * PAGE, &guard), Some(&i));
    }
    drop(guard);

    collector.synchronize();
    let stats = collector.stats();
    assert_eq!(
        stats.objects_retired, stats.objects_freed,
        "outstanding garbage after final synchronize: {stats:?}"
    );
    assert_eq!(stats.pending_objects, 0);
}

/// Same shape against the raw tree: permanent keys stay visible with their
/// values while the writer churns a disjoint key range, and the tree's
/// structural invariants hold afterwards.
#[test]
fn tree_readers_never_lose_keys_during_churn() {
    let collector = Collector::new();
    let tree: Arc<BonsaiTree<u64, u64>> = Arc::new(BonsaiTree::new(collector.clone()));

    const PERMANENT: u64 = 128;
    for k in 0..PERMANENT {
        tree.insert(k, k * 10);
    }
    const CHURN_KEYS: u64 = 512;

    let start_barrier = Arc::new(Barrier::new(READERS + 1));
    let done = Arc::new(AtomicBool::new(false));
    let lost = Arc::new(AtomicUsize::new(0));

    // Advance the epoch and reclaim concurrently with mid-flight updates.
    let reclaimer = {
        let collector = collector.clone();
        let done = done.clone();
        thread::spawn(move || {
            while !done.load(SeqCst) {
                collector.collect();
                thread::yield_now();
            }
        })
    };

    let mut readers = Vec::new();
    for t in 0..READERS {
        let tree = tree.clone();
        let start_barrier = start_barrier.clone();
        let done = done.clone();
        let lost = lost.clone();
        readers.push(thread::spawn(move || {
            let mut rng = Rng(0xABCD_EF01 + t as u64);
            start_barrier.wait();
            while !done.load(SeqCst) {
                let guard = tree.pin();
                let k = rng.next() % PERMANENT;
                match tree.get(&k, &guard) {
                    Some(&v) if v == k * 10 => {}
                    _ => {
                        lost.fetch_add(1, SeqCst);
                    }
                }
                // Ordered queries stay consistent under churn too.
                let probe = PERMANENT + rng.next() % CHURN_KEYS;
                if let Some((pk, _)) = tree.get_le(&probe, &guard) {
                    if *pk > probe {
                        lost.fetch_add(1, SeqCst);
                    }
                }
            }
        }));
    }

    start_barrier.wait();
    let mut rng = Rng(0x0BAD_CAFE);
    for i in 0..WRITER_OPS as u64 {
        let k = PERMANENT + rng.next() % CHURN_KEYS;
        if rng.next().is_multiple_of(2) {
            tree.insert(k, i);
        } else {
            tree.remove(&k);
        }
    }
    done.store(true, SeqCst);
    for t in readers {
        t.join().unwrap();
    }
    reclaimer.join().unwrap();

    assert_eq!(lost.load(SeqCst), 0, "a reader lost a permanent key");
    tree.check_invariants();

    collector.synchronize();
    let stats = collector.stats();
    assert_eq!(stats.objects_retired, stats.objects_freed);
}
