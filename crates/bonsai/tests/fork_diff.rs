//! Differential testing for structural-sharing forks.
//!
//! A seeded generator grows a tree, forks it at random points into a
//! family of lineages, and mutates every lineage independently — each one
//! paired with its own shadow `BTreeMap` model cloned at the fork point.
//! Every mutation's return value is checked against the model, lookups
//! are probed continuously, and each lineage's full contents are compared
//! after every step, so a single shared node leaking a mutation across
//! lineages (or a premature retirement corrupting a sibling) is caught at
//! the step that caused it.
//!
//! After the run, lineages are dropped in a seed-dependent order
//! (including dropping some mid-run, while their siblings keep mutating
//! shared subtrees) and the backend is drained: byte-accurate
//! `ReclaimStats` equality (`retired == freed`, objects and bytes) then
//! proves every shared node was retired exactly once — a leak shows up as
//! `freed < retired`... and a double retirement as a double free long
//! before the counters disagree.
//!
//! Everything runs on all four reclamation backends.

use std::collections::BTreeMap;

use bonsai::{BonsaiTree, RangeMap};
use rcukit::{ReclaimBackend, ReclaimKind};

/// Small deterministic RNG (xorshift64*), since the workspace carries no
/// external dependencies.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

const KEY_SPACE: u64 = 512;
const MAX_LINEAGES: usize = 8;

/// One tree lineage with its shadow model.
struct Lineage {
    tree: BonsaiTree<u64, u64>,
    model: BTreeMap<u64, u64>,
    /// Lineage id, for failure messages (index is unstable across drops).
    id: usize,
}

impl Lineage {
    fn mutate(&mut self, rng: &mut Rng) {
        let key = rng.next() % KEY_SPACE;
        if rng.next().is_multiple_of(3) {
            assert_eq!(
                self.tree.remove(&key),
                self.model.remove(&key),
                "lineage {}: remove({key}) diverged from model",
                self.id
            );
        } else {
            let val = rng.next();
            assert_eq!(
                self.tree.insert(key, val),
                self.model.insert(key, val),
                "lineage {}: insert({key}) diverged from model",
                self.id
            );
        }
    }

    fn probe(&self, rng: &mut Rng) {
        let key = rng.next() % KEY_SPACE;
        assert_eq!(
            self.tree.get_owned(&key),
            self.model.get(&key).copied(),
            "lineage {}: get({key}) diverged from model",
            self.id
        );
        assert_eq!(
            self.tree.get_le_owned(&key),
            self.model.range(..=key).next_back().map(|(&k, &v)| (k, v)),
            "lineage {}: get_le({key}) diverged from model",
            self.id
        );
        assert_eq!(
            self.tree.get_ge_owned(&key),
            self.model.range(key..).next().map(|(&k, &v)| (k, v)),
            "lineage {}: get_ge({key}) diverged from model",
            self.id
        );
    }

    fn check_full(&self) {
        self.tree.check_invariants();
        assert_eq!(self.tree.len(), self.model.len(), "lineage {}", self.id);
        let contents: Vec<(u64, u64)> = self.model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(
            self.tree.to_vec(),
            contents,
            "lineage {}: full contents diverged from model",
            self.id
        );
    }
}

fn run_tree_diff(kind: ReclaimKind, seed: u64, steps: u64) {
    // Miri runs the same logic on a scaled-down step budget (the model.rs
    // ITERS convention); the native runs keep the full interleaving depth.
    let steps = if cfg!(miri) { steps / 20 } else { steps };
    let backend = ReclaimBackend::new(kind);
    let mut rng = Rng(seed);
    let mut next_id = 0;

    // Grow a root lineage first so forks have real subtrees to share.
    let mut root = Lineage {
        tree: BonsaiTree::with_backend(backend.clone()),
        model: BTreeMap::new(),
        id: next_id,
    };
    next_id += 1;
    for _ in 0..KEY_SPACE / 2 {
        root.mutate(&mut rng);
    }
    let mut lineages = vec![root];

    for step in 0..steps {
        let roll = rng.next() % 100;
        let li = (rng.next() as usize) % lineages.len();
        if roll < 5 && lineages.len() < MAX_LINEAGES {
            // Fork at a random point: the child starts as a structural
            // twin of its parent and diverges from here on.
            let child = Lineage {
                tree: lineages[li].tree.fork(),
                model: lineages[li].model.clone(),
                id: next_id,
            };
            next_id += 1;
            child.check_full();
            lineages.push(child);
        } else if roll < 8 && lineages.len() > 1 {
            // Drop a random lineage mid-run: its unshared nodes must be
            // retired while siblings keep reading the shared ones.
            let dead = lineages.swap_remove(li);
            drop(dead);
        } else {
            lineages[li].mutate(&mut rng);
            lineages[li].probe(&mut rng);
        }
        // Full-model comparison for every lineage, every step: the first
        // step where sharing leaks a write across lineages fails here.
        if step % 64 == 0 {
            for l in &lineages {
                l.check_full();
            }
        }
    }
    for l in &lineages {
        l.check_full();
    }

    // Tear down in a seed-dependent order, then drain: every node —
    // shared or not — must be retired exactly once and freed.
    while !lineages.is_empty() {
        let li = (rng.next() as usize) % lineages.len();
        lineages.swap_remove(li);
    }
    backend.synchronize();
    let s = backend.stats();
    assert!(s.objects_retired > 0, "{kind:?}: nothing was ever retired");
    assert_eq!(
        s.objects_retired, s.objects_freed,
        "{kind:?}: leaked or double-retired objects after final drain"
    );
    assert_eq!(
        s.bytes_retired, s.bytes_freed,
        "{kind:?}: byte accounting diverged after final drain"
    );
}

#[test]
fn forked_tree_lineages_match_independent_models() {
    for kind in [
        ReclaimKind::Epoch,
        ReclaimKind::Qsbr,
        ReclaimKind::Hp,
        ReclaimKind::Hybrid,
    ] {
        run_tree_diff(kind, 0x5eed_0001 ^ kind as u64, 1500);
    }
}

#[test]
#[cfg_attr(miri, ignore)] // same logic, larger constants — slow under miri
fn forked_tree_lineages_match_independent_models_long() {
    run_tree_diff(ReclaimKind::Epoch, 0xdead_beef, 6000);
}

/// One range-map lineage with its shadow model (`start -> (end, value)`).
struct MapLineage {
    map: RangeMap<u64>,
    model: BTreeMap<u64, (u64, u64)>,
    id: usize,
}

const PAGE: u64 = 0x1000;
const PAGES: u64 = 256;

impl MapLineage {
    fn model_overlaps(&self, start: u64, end: u64) -> bool {
        if let Some((_, &(pred_end, _))) = self.model.range(..=start).next_back() {
            if pred_end > start {
                return true;
            }
        }
        self.model.range(start..end).next().is_some()
    }

    fn mutate(&mut self, rng: &mut Rng) {
        let start = (rng.next() % PAGES) * PAGE;
        match rng.next() % 3 {
            0 => {
                let pages = 1 + rng.next() % 4;
                let end = start + pages * PAGE;
                let val = rng.next();
                let expect = !self.model_overlaps(start, end);
                assert_eq!(
                    self.map.map(start, end, val),
                    expect,
                    "lineage {}: map({start:#x}, {end:#x}) diverged",
                    self.id
                );
                if expect {
                    self.model.insert(start, (end, val));
                }
            }
            1 => {
                assert_eq!(
                    self.map.unmap(start),
                    self.model.remove(&start).map(|(_, v)| v),
                    "lineage {}: unmap({start:#x}) diverged",
                    self.id
                );
            }
            _ => {
                let addr = start + rng.next() % PAGE;
                let expect = self
                    .model
                    .range(..=addr)
                    .next_back()
                    .and_then(|(_, &(end, v))| (addr < end).then_some(v));
                assert_eq!(
                    self.map.lookup_owned(addr),
                    expect,
                    "lineage {}: lookup({addr:#x}) diverged",
                    self.id
                );
            }
        }
    }

    fn check_full(&self) {
        let contents: Vec<(u64, u64, u64)> =
            self.model.iter().map(|(&s, &(e, v))| (s, e, v)).collect();
        assert_eq!(
            self.map.to_vec(),
            contents,
            "lineage {}: full contents diverged from model",
            self.id
        );
    }
}

fn run_map_diff(kind: ReclaimKind, seed: u64, steps: u64) {
    // Same miri scale-down as `run_tree_diff`.
    let steps = if cfg!(miri) { steps / 20 } else { steps };
    let backend = ReclaimBackend::new(kind);
    let mut rng = Rng(seed);
    let mut next_id = 0;

    let mut root = MapLineage {
        map: RangeMap::with_backend(backend.clone()),
        model: BTreeMap::new(),
        id: next_id,
    };
    next_id += 1;
    for _ in 0..PAGES {
        root.mutate(&mut rng);
    }
    let mut lineages = vec![root];

    for step in 0..steps {
        let roll = rng.next() % 100;
        let li = (rng.next() as usize) % lineages.len();
        if roll < 5 && lineages.len() < MAX_LINEAGES {
            let child = MapLineage {
                map: lineages[li].map.fork(),
                model: lineages[li].model.clone(),
                id: next_id,
            };
            next_id += 1;
            child.check_full();
            lineages.push(child);
        } else if roll < 8 && lineages.len() > 1 {
            let dead = lineages.swap_remove(li);
            drop(dead);
        } else {
            lineages[li].mutate(&mut rng);
        }
        if step % 64 == 0 {
            for l in &lineages {
                l.check_full();
            }
        }
    }
    for l in &lineages {
        l.check_full();
    }

    while !lineages.is_empty() {
        let li = (rng.next() as usize) % lineages.len();
        lineages.swap_remove(li);
    }
    backend.synchronize();
    let s = backend.stats();
    assert!(s.objects_retired > 0, "{kind:?}: nothing was ever retired");
    assert_eq!(
        s.objects_retired, s.objects_freed,
        "{kind:?}: leaked or double-retired objects after final drain"
    );
    assert_eq!(
        s.bytes_retired, s.bytes_freed,
        "{kind:?}: byte accounting diverged after final drain"
    );
}

#[test]
fn forked_range_map_lineages_match_independent_models() {
    for kind in [
        ReclaimKind::Epoch,
        ReclaimKind::Qsbr,
        ReclaimKind::Hp,
        ReclaimKind::Hybrid,
    ] {
        run_map_diff(kind, 0x5eed_0002 ^ kind as u64, 1200);
    }
}

/// Fixed drop orderings around a deep fork chain: grandparent-first,
/// child-first, and middle-first teardowns all drain to retired == freed.
#[test]
fn fork_chain_drop_orderings_balance_reclaim_stats() {
    for order in [[0usize, 1, 2], [2, 1, 0], [1, 0, 2], [1, 2, 0]] {
        for kind in [
            ReclaimKind::Epoch,
            ReclaimKind::Qsbr,
            ReclaimKind::Hp,
            ReclaimKind::Hybrid,
        ] {
            let backend = ReclaimBackend::new(kind);
            let a: BonsaiTree<u64, u64> = BonsaiTree::with_backend(backend.clone());
            for k in 0..200 {
                a.insert(k, k);
            }
            let b = a.fork();
            for k in 0..50 {
                b.insert(k + 1000, k);
                b.remove(&(k * 3));
            }
            let c = b.fork();
            for k in 0..50 {
                c.insert(k + 2000, k);
                c.remove(&(k * 2));
            }
            let mut family = [Some(a), Some(b), Some(c)];
            for i in order {
                let survivors: Vec<usize> = family
                    .iter()
                    .enumerate()
                    .filter(|&(j, t)| j != i && t.is_some())
                    .map(|(_, t)| t.as_ref().unwrap().len())
                    .collect();
                drop(family[i].take());
                // Survivors stay intact after a relative's teardown.
                let after: Vec<usize> = family.iter().flatten().map(|t| t.len()).collect();
                assert_eq!(after, survivors, "sibling teardown disturbed survivors");
                for t in family.iter().flatten() {
                    t.check_invariants();
                }
            }
            backend.synchronize();
            let s = backend.stats();
            assert!(s.objects_retired > 0);
            assert_eq!(
                s.objects_retired, s.objects_freed,
                "{kind:?} drop order {order:?}: leak or double retirement"
            );
            assert_eq!(s.bytes_retired, s.bytes_freed);
        }
    }
}
