//! Model-checked range-locked-writer tests: the scenarios in
//! `tests/scenarios` are explored under all thread interleavings within
//! loomette's preemption bound — every range-lock table mutex/condvar
//! operation, tree root CAS, and rcukit protocol atomic is a scheduling
//! point (see `crates/loomette`, `bonsai/src/sync.rs`, and
//! `rcukit/src/sync.rs`).
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p bonsai --test loom --release
//! ```
//!
//! Under a plain `cargo test` this file compiles to an empty crate; the
//! `std` stress mirrors in `tests/model.rs` cover the same scenarios in
//! tier-1.

#![cfg(loom)]

mod scenarios;

#[test]
fn loom_disjoint_writers() {
    let runs = loomette::Explorer::default().explore(scenarios::disjoint_writers);
    eprintln!("disjoint_writers: {runs} schedules");
    assert!(runs > 500, "exploration degenerated to {runs} schedule(s)");
}

#[test]
fn loom_overlapping_writers() {
    let runs = loomette::Explorer::default().explore(scenarios::overlapping_writers);
    eprintln!("overlapping_writers: {runs} schedules");
    assert!(runs > 500, "exploration degenerated to {runs} schedule(s)");
}

#[test]
fn loom_opposite_stripe_order_writers() {
    let runs = loomette::Explorer::default().explore(scenarios::opposite_stripe_order_writers);
    eprintln!("opposite_stripe_order_writers: {runs} schedules");
    assert!(runs > 500, "exploration degenerated to {runs} schedule(s)");
}

#[test]
fn loom_arena_recycle_vs_reader() {
    let runs = loomette::Explorer::default().explore(scenarios::arena_recycle_vs_reader);
    eprintln!("arena_recycle_vs_reader: {runs} schedules");
    assert!(runs > 500, "exploration degenerated to {runs} schedule(s)");
}

#[test]
fn loom_treiber_recycle_push_vs_alloc_pop() {
    let runs = loomette::Explorer::default().explore(scenarios::treiber_recycle_push_vs_alloc_pop);
    eprintln!("treiber_recycle_push_vs_alloc_pop: {runs} schedules");
    assert!(runs > 500, "exploration degenerated to {runs} schedule(s)");
}

#[test]
fn loom_fork_vs_writer() {
    let runs = loomette::Explorer::default().explore(scenarios::fork_vs_writer);
    eprintln!("fork_vs_writer: {runs} schedules");
    assert!(runs > 500, "exploration degenerated to {runs} schedule(s)");
}

#[test]
fn loom_shared_subtree_retire() {
    let runs = loomette::Explorer::default().explore(scenarios::shared_subtree_retire);
    eprintln!("shared_subtree_retire: {runs} schedules");
    assert!(runs > 500, "exploration degenerated to {runs} schedule(s)");
}
