//! Plain-`std` stress mirrors of the model-checked range-locked-writer
//! scenarios (`tests/loom.rs`), so tier-1 covers the same interactions on
//! every run. Real-thread scheduling noise supplies the interleavings; the
//! loom tier explores them exhaustively instead.

#![cfg(not(loom))]

mod scenarios;

/// Stress iterations per scenario, scaled down under Miri.
const ITERS: usize = if cfg!(miri) { 10 } else { 200 };

#[test]
fn stress_disjoint_writers() {
    for _ in 0..ITERS {
        scenarios::disjoint_writers();
    }
}

#[test]
fn stress_overlapping_writers() {
    for _ in 0..ITERS {
        scenarios::overlapping_writers();
    }
}

#[test]
fn stress_opposite_stripe_order_writers() {
    for _ in 0..ITERS {
        scenarios::opposite_stripe_order_writers();
    }
}

#[test]
fn stress_arena_recycle_vs_reader() {
    for _ in 0..ITERS {
        scenarios::arena_recycle_vs_reader();
    }
}

#[test]
fn stress_treiber_recycle_push_vs_alloc_pop() {
    for _ in 0..ITERS {
        scenarios::treiber_recycle_push_vs_alloc_pop();
    }
}

#[test]
fn stress_fork_vs_writer() {
    for _ in 0..ITERS {
        scenarios::fork_vs_writer();
    }
}

#[test]
fn stress_shared_subtree_retire() {
    for _ in 0..ITERS {
        scenarios::shared_subtree_retire();
    }
}
