//! The range-locked-writer acceptance tests: multiple threads issuing
//! `map`/`unmap` on disjoint spans make progress concurrently to a fixed
//! op count while a reader observes no lost keys; overlapping spans still
//! serialize and reject correctly; and every retirement is reclaimed after
//! the final synchronize.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Barrier};
use std::thread;

use bonsai::RangeMap;
use rcukit::Collector;

/// xorshift64* — the workspace carries no external dependencies.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

const PAGE: u64 = 0x1000;
const WRITERS: usize = if cfg!(miri) { 2 } else { 4 };
const WRITER_OPS: usize = if cfg!(miri) { 200 } else { 4_000 };

/// N writer threads each churn their **own** arena of slots (disjoint
/// address spans) for a fixed op count while a reader hammers a set of
/// permanent regions in a separate arena. All writers must complete their
/// quota (progress), the reader must never lose a permanent region or see
/// a foreign payload, the disjoint spans must never contend on the
/// range-lock manager, and reclamation must fully drain.
#[test]
fn disjoint_writers_make_progress_concurrently() {
    let collector = Collector::new();
    let map: Arc<RangeMap<u64>> = Arc::new(RangeMap::new(collector.clone()));

    // Permanent regions live in arena 0; writer t churns arena t + 1.
    const SLOTS: u64 = 64;
    let arena_bytes = SLOTS * 8 * PAGE;
    for i in 0..SLOTS {
        let start = i * 8 * PAGE;
        assert!(map.map(start, start + 4 * PAGE, i));
    }

    let start_barrier = Arc::new(Barrier::new(WRITERS + 1));
    let done = Arc::new(AtomicBool::new(false));
    let lost = Arc::new(AtomicUsize::new(0));

    let mut writers = Vec::new();
    for t in 0..WRITERS {
        let map = Arc::clone(&map);
        let start_barrier = Arc::clone(&start_barrier);
        writers.push(thread::spawn(move || {
            let base = (t as u64 + 1) * arena_bytes;
            let mut rng = Rng(0x9E37_0000 + t as u64);
            start_barrier.wait();
            let mut completed = 0usize;
            while completed < WRITER_OPS {
                let slot = rng.next() % SLOTS;
                let start = base + slot * 8 * PAGE;
                // Toggle the slot; a multi-slot unmap_range now and then
                // exercises the split path under concurrency.
                if rng.next().is_multiple_of(16) {
                    map.unmap_range(start, start + 8 * PAGE);
                } else if map.unmap(start).is_none() {
                    let pages = 1 + rng.next() % 4;
                    assert!(
                        map.map(start, start + pages * PAGE, base + slot),
                        "mapping a slot this writer owns failed"
                    );
                }
                completed += 1;
            }
            completed
        }));
    }

    let reader = {
        let map = Arc::clone(&map);
        let done = Arc::clone(&done);
        let lost = Arc::clone(&lost);
        thread::spawn(move || {
            let mut rng = Rng(0xD15C_0BEE);
            let mut lookups = 0usize;
            while !done.load(SeqCst) {
                let guard = map.pin();
                let i = rng.next() % SLOTS;
                let addr = i * 8 * PAGE + rng.next() % (4 * PAGE);
                match map.lookup(addr, &guard) {
                    Some(&v) if v == i => {}
                    _ => {
                        lost.fetch_add(1, SeqCst);
                    }
                }
                lookups += 1;
            }
            lookups
        })
    };

    start_barrier.wait();
    for w in writers {
        // Progress: every writer completes its fixed quota. A deadlock or
        // livelock in the range-lock manager would hang the join (and the
        // test harness's timeout would flag it).
        assert_eq!(w.join().unwrap(), WRITER_OPS);
    }
    done.store(true, SeqCst);
    let lookups = reader.join().unwrap();

    assert_eq!(
        lost.load(SeqCst),
        0,
        "reader lost a permanent region or saw a foreign payload"
    );
    assert!(lookups > 0, "reader made no progress during the churn");
    assert_eq!(
        map.contended_acquires(),
        0,
        "disjoint-span writers waited on each other's range locks"
    );

    // Permanent regions intact; reclamation drains fully.
    let guard = map.pin();
    for i in 0..SLOTS {
        assert_eq!(map.lookup(i * 8 * PAGE, &guard), Some(&i));
    }
    drop(guard);
    collector.synchronize();
    let stats = collector.stats();
    assert_eq!(
        stats.objects_retired, stats.objects_freed,
        "outstanding garbage after final synchronize: {stats:?}"
    );
    assert_eq!(stats.pending_objects, 0);
}

/// Overlapping spans serialize and reject correctly: two threads race to
/// map the *same* span each round; exactly one must win, the other must
/// be rejected by the overlap check — in every round, which is only
/// possible if the range lock makes check-then-insert atomic.
#[test]
fn overlapping_maps_admit_exactly_one_winner() {
    const ROUNDS: usize = if cfg!(miri) { 50 } else { 1_000 };
    let collector = Collector::new();
    let map: Arc<RangeMap<usize>> = Arc::new(RangeMap::new(collector.clone()));
    let round_start = Arc::new(Barrier::new(2));
    let round_end = Arc::new(Barrier::new(2));
    let wins = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);

    let mut threads = Vec::new();
    for t in 0..2 {
        let map = Arc::clone(&map);
        let round_start = Arc::clone(&round_start);
        let round_end = Arc::clone(&round_end);
        let wins = Arc::clone(&wins);
        threads.push(thread::spawn(move || {
            for round in 0..ROUNDS {
                round_start.wait();
                // Same span, straddling offsets so the overlap is partial
                // in one direction and total in the other.
                let (start, end) = if t == 0 {
                    (0x1000, 0x3000)
                } else {
                    (0x2000, 0x4000)
                };
                if map.map(start, end, t) {
                    wins[t].fetch_add(1, SeqCst);
                }
                round_end.wait();
                // Thread 0 referees between rounds: exactly one region
                // exists; clear it for the next round.
                if t == 0 {
                    let regions = map.to_vec();
                    assert_eq!(
                        regions.len(),
                        1,
                        "round {round}: overlap admitted both mappers: {:?}",
                        regions.iter().map(|&(s, e, _)| (s, e)).collect::<Vec<_>>()
                    );
                    let (start, end, owner) = regions[0];
                    assert!(
                        (start, end) == (0x1000, 0x3000) && owner == 0
                            || (start, end) == (0x2000, 0x4000) && owner == 1,
                        "round {round}: winner's region is torn: {start:#x}..{end:#x} owner {owner}"
                    );
                    assert_eq!(map.unmap_range(0x1000, 0x4000), 1);
                }
                round_start.wait(); // referee done
                round_end.wait();
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let (w0, w1) = (wins[0].load(SeqCst), wins[1].load(SeqCst));
    assert_eq!(w0 + w1, ROUNDS, "every round must have exactly one winner");
    collector.synchronize();
    let stats = collector.stats();
    assert_eq!(stats.objects_retired, stats.objects_freed);
}
