//! Range-locked writer scenarios shared by the model-checking tier
//! (`tests/loom.rs`, built with `RUSTFLAGS="--cfg loom"`) and its
//! plain-`std` stress mirror (`tests/model.rs`), following the pattern of
//! `rcukit`'s `tests/scenarios`.
//!
//! Each scenario is one deterministic execution of a small multi-writer
//! interaction against the real `RangeMap`:
//!
//! * under loom, `loomette::model` replays it under every schedule within
//!   the preemption bound — the range-lock table mutex/condvar, the
//!   tree's root CAS, and every rcukit protocol atomic are switch points;
//! * under `std`, the mirror test loops it with real threads, relying on
//!   scheduler noise.
//!
//! Scenarios avoid `Collector::synchronize` (an unbounded spin the
//! schedule explorer cannot terminate) and the TLS-cached `Collector::pin`
//! (state-space blowup); reclamation is driven by writer unpins (collect
//! throttle disabled) plus a bounded explicit drain, and models are kept
//! to one mutation per writer so exhaustive exploration stays feasible.

use std::sync::Arc;

use bonsai::{BonsaiTree, RangeMap};
use rcukit::Collector;

#[cfg(loom)]
use loomette::thread::spawn;
#[cfg(not(loom))]
use std::thread::spawn;

/// Two writers unmap *disjoint* regions while a reader translates one of
/// them: in every schedule both writers complete (no deadlock — their
/// range locks never conflict, so neither ever waits), the reader sees
/// either the region or nothing (never a foreign payload), and a bounded
/// drain reclaims exactly what was retired.
pub fn disjoint_writers() {
    let c = Collector::with_shards(1);
    // The default collect throttle keeps writer unpins off the registry/
    // garbage locks here, which is what makes three concurrent threads
    // explorable at CI's preemption bound: the unpin-driven collect path
    // is model-checked by rcukit's own scenarios; this one is about the
    // range locks, the root CAS, and retirement. Reclamation is driven by
    // the bounded explicit drain below instead.
    let map: Arc<RangeMap<usize>> = Arc::new(RangeMap::new(c.clone()));
    assert!(map.map(0x1000, 0x2000, 1));
    assert!(map.map(0x3000, 0x4000, 2));

    // `unmap_range` with the exact region bounds: one writer session each
    // (no widening retry, no pre-read pin), keeping the model small.
    let w1 = {
        let map = Arc::clone(&map);
        spawn(move || {
            assert_eq!(
                map.unmap_range(0x1000, 0x2000),
                1,
                "disjoint unmap lost its region"
            );
        })
    };
    let w2 = {
        let map = Arc::clone(&map);
        spawn(move || {
            assert_eq!(
                map.unmap_range(0x3000, 0x4000),
                1,
                "disjoint unmap lost its region"
            );
        })
    };
    let reader = {
        let map = Arc::clone(&map);
        spawn(move || {
            let g = map.pin();
            // Mid-unmap, the region is either still fully there or gone;
            // a foreign payload would mean a torn tree.
            match map.lookup(0x1800, &g) {
                None => {}
                Some(&v) => assert_eq!(v, 1, "reader saw a foreign payload"),
            }
        })
    };
    w1.join().unwrap();
    w2.join().unwrap();
    reader.join().unwrap();

    // Disjoint spans must never have waited on each other.
    assert_eq!(
        map.contended_acquires(),
        0,
        "disjoint writers contended on the range-lock manager"
    );
    // Bounded drain: two advances past the newest retirement tag plus a
    // reclaim pass.
    for _ in 0..4 {
        c.collect();
    }
    let s = c.stats();
    assert_eq!(
        s.objects_retired, s.objects_freed,
        "retirements stranded after both disjoint writers finished"
    );
    assert!(s.objects_retired > 0, "unmaps retired nothing");
    let g = map.pin();
    assert_eq!(map.lookup(0x1800, &g), None);
    assert_eq!(map.lookup(0x3800, &g), None);
}

/// Two writers on *disjoint* spans whose covering-stripe sets alias the
/// same stripes in **opposite address order**: on a 2-stripe table, slabs
/// (0, 1) visit stripes 0→1 by address while slabs (3, 4) visit 1→0. If
/// acquisition followed address order this geometry would deadlock (each
/// writer holding the stripe the other wants); the ascending-index total
/// order must make every schedule terminate, with zero span contention
/// (disjoint bytes never wait, however the stripes alias).
pub fn opposite_stripe_order_writers() {
    const SLAB: u64 = 64 * 1024; // the range-lock table's slab size
    let c = Collector::with_shards(1);
    let map: Arc<RangeMap<usize>> = Arc::new(RangeMap::with_stripes(c.clone(), 2));
    assert!(map.map(0, SLAB, 1));
    assert!(map.map(3 * SLAB, 4 * SLAB, 2));

    // Each writer's unmap_range span covers both stripes, in opposite
    // slab order; exact bounds, so one lock acquisition each (no widening
    // retry keeps the model small).
    let w1 = {
        let map = Arc::clone(&map);
        spawn(move || {
            assert_eq!(map.unmap_range(0, 2 * SLAB), 1, "low span lost its region");
        })
    };
    let w2 = {
        let map = Arc::clone(&map);
        spawn(move || {
            assert_eq!(
                map.unmap_range(3 * SLAB, 5 * SLAB),
                1,
                "high span lost its region"
            );
        })
    };
    w1.join().unwrap();
    w2.join().unwrap();

    assert_eq!(
        map.contended_acquires(),
        0,
        "disjoint spans waited despite sharing only stripes, not bytes"
    );
    for _ in 0..4 {
        c.collect();
    }
    let s = c.stats();
    assert_eq!(s.objects_retired, s.objects_freed);
    assert!(map.is_empty());
}

/// Arena recycling vs. a concurrent reader: a writer unmaps a region and
/// immediately remaps it — with the collect throttle at 1, the unmap's
/// unpin runs advance-and-reclaim, so in some schedules the retired nodes
/// recycle into the arena and the remap *reuses their blocks* while the
/// reader's lookup is mid-walk. The grace period is what makes that safe:
/// a block returns to the arena only after every pinned reader is gone, so
/// the reader must observe the old payload, the new payload, or a miss —
/// never a torn node from a prematurely recycled block.
pub fn arena_recycle_vs_reader() {
    let c = Collector::with_shards(1);
    c.set_unpin_collect_period(1);
    let map: Arc<RangeMap<usize>> = Arc::new(RangeMap::new(c.clone()));
    assert!(map.map(0x1000, 0x2000, 1));
    // Neighbour region so the rebuilt path has nodes to recycle even on
    // the remove of the last key.
    assert!(map.map(0x3000, 0x4000, 7));

    let writer = {
        let map = Arc::clone(&map);
        spawn(move || {
            assert_eq!(map.unmap(0x1000), Some(1));
            // The remap allocates from the same scratch pool's arena the
            // unmap's retirement recycles into.
            assert!(map.map(0x1000, 0x2000, 2));
        })
    };
    let reader = {
        let map = Arc::clone(&map);
        spawn(move || {
            let g = map.pin();
            match map.lookup(0x1800, &g) {
                None => {}
                Some(&v) => assert!(v == 1 || v == 2, "reader saw a torn payload: {v}"),
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();

    let g = map.pin();
    assert_eq!(map.lookup(0x1800, &g), Some(&2));
    drop(g);
    for _ in 0..4 {
        c.collect();
    }
    let s = c.stats();
    assert_eq!(s.objects_retired, s.objects_freed);
}

/// Treiber pop vs. recycle push on the arena free list: a standalone
/// `BonsaiTree` has exactly one writer scratch, so every insert's
/// allocation pops that scratch's arena free list — while a concurrent
/// `collect()` firing an earlier remove's retirement batch *pushes* the
/// recycled blocks onto the same list from the driver thread. That is the
/// multi-producer/single-consumer race the audit relaxed to
/// `Release`-CAS push / `Acquire`-load+CAS pop: the block's link write and
/// payload drop must be visible to the popper before the block is, in
/// every schedule (and, under `LOOMETTE_MODEL=tso`, with the pusher's link
/// store buffered until its CAS drains). A torn block would surface as a
/// broken invariant or a wrong final map.
pub fn treiber_recycle_push_vs_alloc_pop() {
    let c = Collector::with_shards(1);
    let tree: Arc<BonsaiTree<u64, u64>> = Arc::new(BonsaiTree::new(c.clone()));
    tree.insert(1, 10);
    tree.insert(2, 20);
    tree.insert(3, 30);
    // Retire a path-rebuild batch; its recycler is the tree's single
    // scratch arena, so when a collect fires it the blocks push back onto
    // the very free list the next insert pops.
    assert_eq!(tree.remove(&2), Some(20));

    let driver = {
        let c = c.clone();
        spawn(move || {
            // Two advances past the retirement tag plus the reclaim pass
            // that runs `push_free` — concurrent with the writer's pops.
            for _ in 0..3 {
                c.collect();
            }
        })
    };
    let writer = {
        let tree = Arc::clone(&tree);
        spawn(move || {
            tree.insert(4, 40);
        })
    };
    driver.join().unwrap();
    writer.join().unwrap();

    tree.check_invariants();
    assert_eq!(tree.to_vec(), vec![(1, 10), (3, 30), (4, 40)]);
    for _ in 0..4 {
        c.collect();
    }
    let s = c.stats();
    assert_eq!(
        s.objects_retired, s.objects_freed,
        "retirements stranded after the recycle/alloc race"
    );
}

/// `fork()` racing a committing writer: the child must start from exactly
/// the pre-commit or the post-commit tree — never a torn mix — because
/// fork takes the parent's writer lock, so it can only observe a fully
/// published root. The child then diverges without the parent noticing.
pub fn fork_vs_writer() {
    let c = Collector::with_shards(1);
    let parent: Arc<BonsaiTree<u64, u64>> = Arc::new(BonsaiTree::new(c.clone()));
    parent.insert(1, 10);
    parent.insert(2, 20);
    parent.insert(3, 30);

    let writer = {
        let parent = Arc::clone(&parent);
        spawn(move || {
            parent.insert(4, 40);
        })
    };
    let forker = {
        let parent = Arc::clone(&parent);
        spawn(move || {
            let child = parent.fork();
            child.check_invariants();
            let snap = child.to_vec();
            let pre = vec![(1, 10), (2, 20), (3, 30)];
            let post = vec![(1, 10), (2, 20), (3, 30), (4, 40)];
            assert!(
                snap == pre || snap == post,
                "fork observed a torn commit: {snap:?}"
            );
            // The child diverges over the shared structure; the parent
            // must not see it (checked after the join).
            child.insert(99, 990);
            assert_eq!(child.get_owned(&99), Some(990));
        })
    };
    writer.join().unwrap();
    forker.join().unwrap();

    parent.check_invariants();
    assert_eq!(
        parent.get_owned(&99),
        None,
        "child mutation leaked into the parent"
    );
    assert_eq!(
        parent.to_vec(),
        vec![(1, 10), (2, 20), (3, 30), (4, 40)],
        "fork disturbed the parent's own commit"
    );
    drop(parent);
    for _ in 0..4 {
        c.collect();
    }
    let s = c.stats();
    assert_eq!(s.objects_retired, s.objects_freed);
}

/// Two lineages replace the *same shared subtree* concurrently: parent
/// and forked child both remove the key whose node (and rebuilt path)
/// they share. The per-node refcounts must hand each shared node to the
/// collector exactly once — when the *second* lineage drops its last
/// reference — in every schedule: a double retirement corrupts the arena
/// free list (caught by the invariant checks and the balanced counters),
/// a missed one strands `objects_retired > objects_freed` after both
/// lineages are gone.
pub fn shared_subtree_retire() {
    let c = Collector::with_shards(1);
    c.set_unpin_collect_period(1);
    let parent: Arc<BonsaiTree<u64, u64>> = Arc::new(BonsaiTree::new(c.clone()));
    parent.insert(1, 10);
    parent.insert(2, 20);
    parent.insert(3, 30);
    let child = Arc::new(parent.fork());

    let on_parent = {
        let parent = Arc::clone(&parent);
        spawn(move || {
            assert_eq!(parent.remove(&2), Some(20));
        })
    };
    let on_child = {
        let child = Arc::clone(&child);
        spawn(move || {
            assert_eq!(child.remove(&2), Some(20));
        })
    };
    on_parent.join().unwrap();
    on_child.join().unwrap();

    // Both lineages independently removed the shared key; each still
    // reads its own intact tree over whatever structure remains shared.
    parent.check_invariants();
    child.check_invariants();
    assert_eq!(parent.to_vec(), vec![(1, 10), (3, 30)]);
    assert_eq!(child.to_vec(), vec![(1, 10), (3, 30)]);

    // Tear down both lineages (the threads' clones died at join; these
    // are the last), then drain: every node shared between them must have
    // been retired exactly once.
    drop(parent);
    drop(child);
    for _ in 0..4 {
        c.collect();
    }
    let s = c.stats();
    assert!(s.objects_retired > 0, "shared teardown retired nothing");
    assert_eq!(
        s.objects_retired, s.objects_freed,
        "a shared node was stranded (leak) or handed over twice"
    );
}

/// Two writers race on *overlapping* spans: one clears `[0x1000, 0x2000)`
/// out of a larger region (exercising the span-widening retry and a
/// truncation re-insert), the other tries to map into the same bytes.
/// The range locks must serialize them into one of exactly two outcomes —
/// in every schedule, with no deadlock and no overlap in the final state.
pub fn overlapping_writers() {
    let c = Collector::with_shards(1);
    c.set_unpin_collect_period(1);
    let map: Arc<RangeMap<usize>> = Arc::new(RangeMap::new(c.clone()));
    assert!(map.map(0x1000, 0x3000, 1));

    let clearer = {
        let map = Arc::clone(&map);
        spawn(move || {
            // Removes [0x1000,0x3000) and re-publishes its tail
            // [0x2000,0x3000): the discovered extent (0x3000) escapes the
            // requested span, forcing the widening retry path.
            assert_eq!(map.unmap_range(0x1000, 0x2000), 1);
        })
    };
    let mapper = {
        let map = Arc::clone(&map);
        spawn(move || map.map(0x1800, 0x2000, 9))
    };
    clearer.join().unwrap();
    let mapped = mapper.join().unwrap();

    // Serializability: either the mapper ran first (bytes still covered →
    // rejected) or after the clearer (hole free → granted). Nothing else.
    let regions: Vec<(u64, u64)> = map.to_vec().into_iter().map(|(s, e, _)| (s, e)).collect();
    if mapped {
        assert_eq!(
            regions,
            vec![(0x1800, 0x2000), (0x2000, 0x3000)],
            "mapper succeeded but final state is inconsistent"
        );
    } else {
        assert_eq!(
            regions,
            vec![(0x2000, 0x3000)],
            "mapper was rejected yet the hole is not clean"
        );
    }
    for _ in 0..4 {
        c.collect();
    }
    let s = c.stats();
    assert_eq!(s.objects_retired, s.objects_freed);
}
