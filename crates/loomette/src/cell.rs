//! A loom-compatible [`UnsafeCell`] whose accesses the model can check
//! for data races.
//!
//! Production code shares non-atomic data behind the synchronization the
//! atomics establish; a wrong (or weakened) ordering does not usually
//! change which *values* an interleaved execution observes — it removes
//! the happens-before edge that made the non-atomic access safe. That is
//! invisible to value assertions but exactly what a vector-clock race
//! check sees. Under the AcqRel model (the only mode that tracks clocks)
//! every [`UnsafeCell::with`] / [`UnsafeCell::with_mut`] verifies the
//! access is ordered, by happens-before, against every conflicting access
//! before it; an unordered pair fails the model with the schedule that
//! produced it. Under SC/TSO the accesses are plain switch points (those
//! models have no clocks to check against), and outside a model the cell
//! degrades to [`std::cell::UnsafeCell`].
//!
//! The API mirrors `loom::cell::UnsafeCell` (`with` / `with_mut`), so code
//! instrumented against loomette keeps compiling against the real loom.

use crate::sched;

/// A model-checked unsafe cell: raw-pointer access windows, race-checked
/// under the AcqRel model. See the module docs.
#[derive(Debug, Default)]
pub struct UnsafeCell<T> {
    inner: std::cell::UnsafeCell<T>,
    /// Scheduler-side cell id, run-keyed exactly like the instrumented
    /// mutexes': a cell outliving one model run re-registers with the
    /// next run's scheduler.
    id: std::sync::Mutex<Option<(u64, usize)>>,
}

// Mirror `std::cell::UnsafeCell`'s auto traits: the id word is internally
// synchronized, so sharing is as (un)safe as the payload makes it — which
// is precisely what the race check is for.
unsafe impl<T: Send> Send for UnsafeCell<T> {}
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    /// Creates a new cell.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::cell::UnsafeCell::new(value),
            id: std::sync::Mutex::new(None),
        }
    }

    /// Consumes the cell, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// This cell's id in `sched`'s run, (re)assigned if it was created
    /// outside the run (or in an earlier one).
    fn run_id(&self, sched: &crate::sched::Scheduler) -> usize {
        let run = sched::run_seq(sched);
        let mut slot = self
            .id
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match *slot {
            Some((r, id)) if r == run => id,
            _ => {
                let id = sched::cell_id(sched);
                *slot = Some((run, id));
                id
            }
        }
    }

    /// Records one access (a switch point; race-checked under AcqRel).
    fn access(&self, write: bool) {
        sched::switch_point();
        sched::with_scheduler(|sched, me| {
            let id = self.run_id(sched);
            sched::cell_access(sched, me, id, write);
        });
    }

    /// Immutable access window: runs `f` with a `*const T` to the value.
    /// A data race with an unordered `with_mut` fails the model (AcqRel).
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        self.access(false);
        f(self.inner.get())
    }

    /// Mutable access window: runs `f` with a `*mut T` to the value. A
    /// data race with any unordered access fails the model (AcqRel).
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        self.access(true);
        f(self.inner.get())
    }
}
