//! # loomette — a minimal in-tree model checker for SeqCst concurrency
//!
//! A self-contained, dependency-free stand-in for the parts of
//! [`loom`](https://docs.rs/loom) that rcukit's protocol tests need. The
//! build environment is offline, so the real crate cannot be vendored;
//! loomette implements the same *testing shape* — run a closure under every
//! meaningfully distinct thread interleaving — with an honest, documented
//! scope:
//!
//! * **Sequentially consistent only.** Every instrumented atomic executes
//!   as `SeqCst` and every instrumented op is a scheduler switch point.
//!   This exactly models code whose atomics are all `SeqCst` (rcukit's
//!   epoch collector is), and does *not* model relaxed-memory reorderings.
//! * **Preemption-bounded.** Exploration is exhaustive over schedules with
//!   at most N preemptive context switches (default 2, the CHESS result
//!   that small bounds catch most bugs); forced switches — blocking on a
//!   mutex, joining, finishing — are free. `LOOMETTE_PREEMPTIONS` raises
//!   the bound.
//! * **Deadlock-detecting.** A state where no thread can run fails the
//!   model with the offending schedule.
//!
//! The API mirrors loom where it matters, so swapping the real crate in
//! later is a one-line import change in the code under test:
//!
//! ```
//! use loomette::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! loomette::model(|| {
//!     let v = Arc::new(AtomicUsize::new(0));
//!     let v2 = Arc::clone(&v);
//!     let t = loomette::thread::spawn(move || {
//!         v2.fetch_add(1, Ordering::SeqCst);
//!     });
//!     v.fetch_add(1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(v.load(Ordering::SeqCst), 2);
//! });
//! ```
//!
//! Model bodies must be deterministic (no wall-clock time, no OS
//! randomness): exploration replays schedule prefixes and diverging
//! replays abort the model.

#![warn(missing_docs)]

mod sched;
pub mod sync;
pub mod thread;

pub use sched::{Explorer, DEFAULT_MAX_RUNS, DEFAULT_PREEMPTION_BOUND};

/// Explores every schedule of `f` within the default preemption bound,
/// panicking with the failing schedule if any execution panics or
/// deadlocks.
pub fn model(f: impl Fn() + Send + Sync + 'static) {
    Explorer::default().explore(f);
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::sync::Mutex;
    use std::sync::Arc;

    /// Two unsynchronized read-modify-read-write sequences must lose an
    /// update in some schedule: the checker finds the classic race.
    #[test]
    fn finds_lost_update() {
        let hit = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let hit2 = Arc::clone(&hit);
        super::model(move || {
            let v = Arc::new(AtomicUsize::new(0));
            let v2 = Arc::clone(&v);
            let hit = Arc::clone(&hit2);
            let t = crate::thread::spawn(move || {
                let x = v2.load(Ordering::SeqCst);
                v2.store(x + 1, Ordering::SeqCst);
            });
            let x = v.load(Ordering::SeqCst);
            v.store(x + 1, Ordering::SeqCst);
            t.join().unwrap();
            if v.load(Ordering::SeqCst) == 1 {
                hit.store(true, std::sync::atomic::Ordering::SeqCst);
            }
        });
        assert!(
            hit.load(std::sync::atomic::Ordering::SeqCst),
            "exploration never found the lost-update schedule"
        );
    }

    /// Store-buffering litmus: under sequential consistency at least one
    /// thread must observe the other's store. loomette is SC by
    /// construction, so `r1 == r2 == 0` must be impossible.
    #[test]
    fn store_buffering_is_sequentially_consistent() {
        super::model(|| {
            let x = Arc::new(AtomicUsize::new(0));
            let y = Arc::new(AtomicUsize::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = crate::thread::spawn(move || {
                x2.store(1, Ordering::SeqCst);
                y2.load(Ordering::SeqCst)
            });
            y.store(1, Ordering::SeqCst);
            let r1 = x.load(Ordering::SeqCst);
            let r2 = t.join().unwrap();
            assert!(
                r1 == 1 || r2 == 1,
                "both threads read 0: not sequentially consistent"
            );
        });
    }

    /// Atomic RMWs never lose updates, in any schedule.
    #[test]
    fn fetch_add_never_loses_updates() {
        super::model(|| {
            let v = Arc::new(AtomicUsize::new(0));
            let v2 = Arc::clone(&v);
            let t = crate::thread::spawn(move || {
                v2.fetch_add(1, Ordering::SeqCst);
            });
            v.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(v.load(Ordering::SeqCst), 2);
        });
    }

    /// Mutexes provide mutual exclusion: a non-atomic critical section
    /// never interleaves.
    #[test]
    fn mutex_provides_mutual_exclusion() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0u64));
            let m2 = Arc::clone(&m);
            let t = crate::thread::spawn(move || {
                let mut g = m2.lock().unwrap();
                let v = *g;
                crate::sched::yield_now(); // widen the window
                *g = v + 1;
            });
            {
                let mut g = m.lock().unwrap();
                let v = *g;
                crate::sched::yield_now();
                *g = v + 1;
            }
            t.join().unwrap();
            assert_eq!(*m.lock().unwrap(), 2);
        });
    }

    /// The checker reports deadlocks instead of hanging.
    #[test]
    fn detects_deadlock() {
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = crate::thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
                drop(_ga);
                drop(_gb);
                t.join().unwrap();
            });
        });
        assert!(result.is_err(), "AB-BA deadlock went undetected");
    }

    /// A failing assertion in a spawned thread fails the whole model.
    #[test]
    fn propagates_child_panics() {
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let flag = Arc::new(AtomicBool::new(false));
                let f2 = Arc::clone(&flag);
                let t = crate::thread::spawn(move || {
                    assert!(f2.load(Ordering::SeqCst), "child sees false");
                });
                t.join().unwrap();
            });
        });
        assert!(result.is_err(), "child panic was swallowed");
    }

    /// An instrumented mutex created *outside* `model` (and therefore
    /// shared across every run) must re-register its lock word with each
    /// run's scheduler instead of indexing a stale id.
    #[test]
    fn mutex_survives_across_model_runs() {
        let m = Arc::new(Mutex::new(0u64));
        for _ in 0..2 {
            let m = Arc::clone(&m);
            super::model(move || {
                let m2 = Arc::clone(&m);
                let t = crate::thread::spawn(move || {
                    *m2.lock().unwrap() += 1;
                });
                *m.lock().unwrap() += 1;
                t.join().unwrap();
            });
        }
        assert!(*m.lock().unwrap() >= 4, "increments lost across runs");
    }

    /// A condvar handoff works in every schedule: the consumer waits until
    /// the producer has set the flag, with no lost wakeup and no deadlock.
    #[test]
    fn condvar_handoff_never_loses_a_wakeup() {
        use super::sync::Condvar;
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let t = crate::thread::spawn(move || {
                let (m, cv) = &*pair2;
                let mut ready = m.lock().unwrap();
                *ready = true;
                drop(ready);
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            let mut ready = m.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
            drop(ready);
            t.join().unwrap();
        });
    }

    /// A wait that can never be notified is reported as a deadlock, not a
    /// hang.
    #[test]
    fn condvar_detects_missed_notify_as_deadlock() {
        use super::sync::Condvar;
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let pair = Arc::new((Mutex::new(false), Condvar::new()));
                let (m, cv) = &*pair;
                let mut ready = m.lock().unwrap();
                while !*ready {
                    ready = cv.wait(ready).unwrap();
                }
            });
        });
        assert!(result.is_err(), "un-notified wait went undetected");
    }

    /// The instrumented atomic pointer provides CAS semantics: of two
    /// concurrent compare-exchanges from the same expected value, exactly
    /// one succeeds in every schedule.
    #[test]
    fn atomic_ptr_cas_is_atomic() {
        use super::sync::atomic::AtomicPtr;
        super::model(|| {
            let a = Box::into_raw(Box::new(1u64));
            let b = Box::into_raw(Box::new(2u64));
            let p = Arc::new(AtomicPtr::<u64>::new(std::ptr::null_mut()));
            let p2 = Arc::clone(&p);
            let a_addr = a as usize; // raw pointers are !Send; ship the address
            let t = crate::thread::spawn(move || {
                p2.compare_exchange(
                    std::ptr::null_mut(),
                    a_addr as *mut u64,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            });
            let mine = p
                .compare_exchange(std::ptr::null_mut(), b, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok();
            let theirs = t.join().unwrap();
            assert!(mine ^ theirs, "exactly one CAS must win");
            // Reclaim both allocations (the loser's pointer was never
            // published).
            unsafe {
                drop(Box::from_raw(a));
                drop(Box::from_raw(b));
            }
        });
    }

    /// Exploration visits more than one schedule when there is branching.
    #[test]
    fn explores_multiple_schedules() {
        let runs = super::Explorer::default().explore(|| {
            let v = Arc::new(AtomicUsize::new(0));
            let v2 = Arc::clone(&v);
            let t = crate::thread::spawn(move || {
                v2.store(1, Ordering::SeqCst);
            });
            let _ = v.load(Ordering::SeqCst);
            t.join().unwrap();
        });
        assert!(runs > 1, "no interleavings explored ({runs} runs)");
    }
}
