//! # loomette — a minimal in-tree model checker for atomic protocols
//!
//! A self-contained, dependency-free stand-in for the parts of
//! [`loom`](https://docs.rs/loom) that rcukit's protocol tests need. The
//! build environment is offline, so the real crate cannot be vendored;
//! loomette implements the same *testing shape* — run a closure under every
//! meaningfully distinct thread interleaving — with an honest, documented
//! scope:
//!
//! * **Three memory models** ([`MemModel`], `LOOMETTE_MODEL=sc|tso|acqrel`).
//!   Under `sc` (the default) every instrumented atomic executes as
//!   `SeqCst`, so the model is *sequentially consistent by construction* —
//!   exact for code whose atomics are all `SeqCst`, an under-approximation
//!   for weaker orderings. Under `tso` the checker explores the
//!   **store-buffer (x86-TSO)** model: non-`SeqCst` stores sit in a
//!   per-thread FIFO with non-deterministic flush points, loads forward
//!   from the own buffer, and RMWs / `SeqCst` ops / `fence(SeqCst)` drain
//!   it. Under `acqrel` the checker explores the **acquire/release (C11)**
//!   model: each atomic location keeps its own modification order, every
//!   load picks its value from a *reads-from* candidate set constrained by
//!   happens-before (vector clocks; release sequences; acquire/release
//!   and `SeqCst` fences), and the DFS explores reads-from choices as
//!   scheduling points the same way TSO explores flush points. The AcqRel
//!   model also race-checks non-atomic data accessed through
//!   [`cell::UnsafeCell`]. See [`mod@sync`], [`mod@cell`] and the design
//!   notes in `docs/CONCURRENCY.md` §6 for each model's limits vs. the
//!   respective architecture / full C11.
//! * **Preemption-bounded.** Exploration is exhaustive over schedules with
//!   at most N preemptive context switches (default 2, the CHESS result
//!   that small bounds catch most bugs); forced switches — blocking on a
//!   mutex, joining, finishing — are free, and weak-memory "weirdness"
//!   (early TSO buffer flushes, stale AcqRel reads) is charged against the
//!   same bound. `LOOMETTE_PREEMPTIONS` raises the bound,
//!   `LOOMETTE_MAX_RUNS` the schedule cap.
//! * **Deadlock-detecting.** A state where no thread can run fails the
//!   model with the offending schedule.
//! * **Replayable failures.** A model failure prints a compact schedule
//!   token; `LOOMETTE_REPLAY=<token>` (plus the printed model/bound
//!   settings) deterministically re-runs exactly that schedule, turning a
//!   CI model-check failure into a reproducible unit test.
//!
//! The API mirrors loom where it matters, so swapping the real crate in
//! later is a one-line import change in the code under test:
//!
//! ```
//! use loomette::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! loomette::model(|| {
//!     let v = Arc::new(AtomicUsize::new(0));
//!     let v2 = Arc::clone(&v);
//!     let t = loomette::thread::spawn(move || {
//!         v2.fetch_add(1, Ordering::SeqCst);
//!     });
//!     v.fetch_add(1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(v.load(Ordering::SeqCst), 2);
//! });
//! ```
//!
//! Model bodies must be deterministic (no wall-clock time, no OS
//! randomness): exploration replays schedule prefixes and diverging
//! replays abort the model.

#![warn(missing_docs)]

pub mod cell;
mod sched;
pub mod sync;
pub mod thread;

pub use sched::{Explorer, MemModel, DEFAULT_MAX_RUNS, DEFAULT_PREEMPTION_BOUND};

/// Explores every schedule of `f` within the default preemption bound,
/// panicking with the failing schedule if any execution panics or
/// deadlocks.
pub fn model(f: impl Fn() + Send + Sync + 'static) {
    Explorer::default().explore(f);
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::sync::Mutex;
    use std::sync::Arc;

    /// Two unsynchronized read-modify-read-write sequences must lose an
    /// update in some schedule: the checker finds the classic race.
    #[test]
    fn finds_lost_update() {
        let hit = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let hit2 = Arc::clone(&hit);
        super::model(move || {
            let v = Arc::new(AtomicUsize::new(0));
            let v2 = Arc::clone(&v);
            let hit = Arc::clone(&hit2);
            let t = crate::thread::spawn(move || {
                let x = v2.load(Ordering::SeqCst);
                v2.store(x + 1, Ordering::SeqCst);
            });
            let x = v.load(Ordering::SeqCst);
            v.store(x + 1, Ordering::SeqCst);
            t.join().unwrap();
            if v.load(Ordering::SeqCst) == 1 {
                hit.store(true, std::sync::atomic::Ordering::SeqCst);
            }
        });
        assert!(
            hit.load(std::sync::atomic::Ordering::SeqCst),
            "exploration never found the lost-update schedule"
        );
    }

    /// An explorer pinned to the given memory model (environment-
    /// independent, unlike `Explorer::default`).
    fn explorer(mem_model: super::MemModel) -> super::Explorer {
        super::Explorer {
            preemption_bound: super::DEFAULT_PREEMPTION_BOUND,
            max_runs: super::DEFAULT_MAX_RUNS,
            mem_model,
            replay: None,
        }
    }

    /// Store-buffering litmus: under sequential consistency at least one
    /// thread must observe the other's store. SeqCst-exact mode is SC by
    /// construction, so `r1 == r2 == 0` must be impossible.
    #[test]
    fn store_buffering_is_sequentially_consistent() {
        explorer(super::MemModel::Sc).explore(|| {
            let x = Arc::new(AtomicUsize::new(0));
            let y = Arc::new(AtomicUsize::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = crate::thread::spawn(move || {
                x2.store(1, Ordering::SeqCst);
                y2.load(Ordering::SeqCst)
            });
            y.store(1, Ordering::SeqCst);
            let r1 = x.load(Ordering::SeqCst);
            let r2 = t.join().unwrap();
            assert!(
                r1 == 1 || r2 == 1,
                "both threads read 0: not sequentially consistent"
            );
        });
    }

    /// Atomic RMWs never lose updates, in any schedule.
    #[test]
    fn fetch_add_never_loses_updates() {
        super::model(|| {
            let v = Arc::new(AtomicUsize::new(0));
            let v2 = Arc::clone(&v);
            let t = crate::thread::spawn(move || {
                v2.fetch_add(1, Ordering::SeqCst);
            });
            v.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(v.load(Ordering::SeqCst), 2);
        });
    }

    /// Mutexes provide mutual exclusion: a non-atomic critical section
    /// never interleaves.
    #[test]
    fn mutex_provides_mutual_exclusion() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0u64));
            let m2 = Arc::clone(&m);
            let t = crate::thread::spawn(move || {
                let mut g = m2.lock().unwrap();
                let v = *g;
                crate::sched::yield_now(); // widen the window
                *g = v + 1;
            });
            {
                let mut g = m.lock().unwrap();
                let v = *g;
                crate::sched::yield_now();
                *g = v + 1;
            }
            t.join().unwrap();
            assert_eq!(*m.lock().unwrap(), 2);
        });
    }

    /// The checker reports deadlocks instead of hanging.
    #[test]
    fn detects_deadlock() {
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = crate::thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
                drop(_ga);
                drop(_gb);
                t.join().unwrap();
            });
        });
        assert!(result.is_err(), "AB-BA deadlock went undetected");
    }

    /// A failing assertion in a spawned thread fails the whole model.
    #[test]
    fn propagates_child_panics() {
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let flag = Arc::new(AtomicBool::new(false));
                let f2 = Arc::clone(&flag);
                let t = crate::thread::spawn(move || {
                    assert!(f2.load(Ordering::SeqCst), "child sees false");
                });
                t.join().unwrap();
            });
        });
        assert!(result.is_err(), "child panic was swallowed");
    }

    /// An instrumented mutex created *outside* `model` (and therefore
    /// shared across every run) must re-register its lock word with each
    /// run's scheduler instead of indexing a stale id.
    #[test]
    fn mutex_survives_across_model_runs() {
        let m = Arc::new(Mutex::new(0u64));
        for _ in 0..2 {
            let m = Arc::clone(&m);
            super::model(move || {
                let m2 = Arc::clone(&m);
                let t = crate::thread::spawn(move || {
                    *m2.lock().unwrap() += 1;
                });
                *m.lock().unwrap() += 1;
                t.join().unwrap();
            });
        }
        assert!(*m.lock().unwrap() >= 4, "increments lost across runs");
    }

    /// A condvar handoff works in every schedule: the consumer waits until
    /// the producer has set the flag, with no lost wakeup and no deadlock.
    #[test]
    fn condvar_handoff_never_loses_a_wakeup() {
        use super::sync::Condvar;
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let t = crate::thread::spawn(move || {
                let (m, cv) = &*pair2;
                let mut ready = m.lock().unwrap();
                *ready = true;
                drop(ready);
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            let mut ready = m.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
            drop(ready);
            t.join().unwrap();
        });
    }

    /// A wait that can never be notified is reported as a deadlock, not a
    /// hang.
    #[test]
    fn condvar_detects_missed_notify_as_deadlock() {
        use super::sync::Condvar;
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let pair = Arc::new((Mutex::new(false), Condvar::new()));
                let (m, cv) = &*pair;
                let mut ready = m.lock().unwrap();
                while !*ready {
                    ready = cv.wait(ready).unwrap();
                }
            });
        });
        assert!(result.is_err(), "un-notified wait went undetected");
    }

    /// The instrumented atomic pointer provides CAS semantics: of two
    /// concurrent compare-exchanges from the same expected value, exactly
    /// one succeeds in every schedule.
    #[test]
    fn atomic_ptr_cas_is_atomic() {
        use super::sync::atomic::AtomicPtr;
        super::model(|| {
            let a = Box::into_raw(Box::new(1u64));
            let b = Box::into_raw(Box::new(2u64));
            let p = Arc::new(AtomicPtr::<u64>::new(std::ptr::null_mut()));
            let p2 = Arc::clone(&p);
            let a_addr = a as usize; // raw pointers are !Send; ship the address
            let t = crate::thread::spawn(move || {
                p2.compare_exchange(
                    std::ptr::null_mut(),
                    a_addr as *mut u64,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            });
            let mine = p
                .compare_exchange(std::ptr::null_mut(), b, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok();
            let theirs = t.join().unwrap();
            assert!(mine ^ theirs, "exactly one CAS must win");
            // Reclaim both allocations (the loser's pointer was never
            // published).
            unsafe {
                drop(Box::from_raw(a));
                drop(Box::from_raw(b));
            }
        });
    }

    /// The store-buffering litmus body with the given store/load orderings,
    /// recording every observed `(r1, r2)` outcome into `saw_both_zero`.
    fn sb_litmus(
        store_order: Ordering,
        load_order: Ordering,
        fenced: bool,
        saw_both_zero: &Arc<std::sync::atomic::AtomicBool>,
    ) -> impl Fn() + Send + Sync + 'static {
        let saw = Arc::clone(saw_both_zero);
        move || {
            let x = Arc::new(AtomicUsize::new(0));
            let y = Arc::new(AtomicUsize::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let saw = Arc::clone(&saw);
            let t = crate::thread::spawn(move || {
                x2.store(1, store_order);
                if fenced {
                    crate::sync::atomic::fence(Ordering::SeqCst);
                }
                y2.load(load_order)
            });
            y.store(1, store_order);
            if fenced {
                crate::sync::atomic::fence(Ordering::SeqCst);
            }
            let r1 = x.load(load_order);
            let r2 = t.join().unwrap();
            if r1 == 0 && r2 == 0 {
                saw.store(true, std::sync::atomic::Ordering::SeqCst);
            }
        }
    }

    /// TSO mode must *find* the store-buffering reorder for non-`SeqCst`
    /// accesses: some schedule observes `r1 == r2 == 0` (both stores still
    /// buffered when the cross loads execute) — the outcome SC forbids.
    #[test]
    fn tso_finds_store_buffering_reorder() {
        let saw = Arc::new(std::sync::atomic::AtomicBool::new(false));
        explorer(super::MemModel::Tso).explore(sb_litmus(
            Ordering::Release,
            Ordering::Acquire,
            false,
            &saw,
        ));
        assert!(
            saw.load(std::sync::atomic::Ordering::SeqCst),
            "TSO exploration never produced the r1 == r2 == 0 reorder"
        );
    }

    /// `SeqCst` operations stay sequentially consistent in TSO mode (a
    /// `SeqCst` store drains the buffer), so the forbidden outcome must
    /// stay unreachable.
    #[test]
    fn tso_seqcst_ops_remain_sequentially_consistent() {
        let saw = Arc::new(std::sync::atomic::AtomicBool::new(false));
        explorer(super::MemModel::Tso).explore(sb_litmus(
            Ordering::SeqCst,
            Ordering::SeqCst,
            false,
            &saw,
        ));
        assert!(
            !saw.load(std::sync::atomic::Ordering::SeqCst),
            "SeqCst accesses were reordered under TSO mode"
        );
    }

    /// A `fence(SeqCst)` between the store and the cross load drains the
    /// buffer and restores SC for the litmus even with `Release`/`Acquire`
    /// accesses — the exact pattern rcukit's pin-publication relies on.
    #[test]
    fn tso_seqcst_fence_restores_sequential_consistency() {
        let saw = Arc::new(std::sync::atomic::AtomicBool::new(false));
        explorer(super::MemModel::Tso).explore(sb_litmus(
            Ordering::Release,
            Ordering::Acquire,
            true,
            &saw,
        ));
        assert!(
            !saw.load(std::sync::atomic::Ordering::SeqCst),
            "fence(SeqCst) failed to forbid the store-buffer reorder"
        );
    }

    /// SeqCst-exact mode executes weaker orderings as `SeqCst` (the
    /// documented under-approximation): the reorder is *not* found there.
    #[test]
    fn sc_mode_does_not_model_store_buffering() {
        let saw = Arc::new(std::sync::atomic::AtomicBool::new(false));
        explorer(super::MemModel::Sc).explore(sb_litmus(
            Ordering::Release,
            Ordering::Acquire,
            false,
            &saw,
        ));
        assert!(
            !saw.load(std::sync::atomic::Ordering::SeqCst),
            "SeqCst-exact mode unexpectedly modeled a store-buffer reorder"
        );
    }

    /// In TSO mode a thread always sees its *own* stores in order (store-
    /// to-load forwarding), even while they are still buffered.
    #[test]
    fn tso_forwards_own_buffered_stores() {
        explorer(super::MemModel::Tso).explore(|| {
            let v = Arc::new(AtomicUsize::new(0));
            let v2 = Arc::clone(&v);
            let t = crate::thread::spawn(move || {
                v2.store(7, Ordering::Release);
                assert_eq!(
                    v2.load(Ordering::Relaxed),
                    7,
                    "own buffered store was not forwarded"
                );
            });
            t.join().unwrap();
            // After the join edge the child's buffer has drained.
            assert_eq!(v.load(Ordering::Acquire), 7, "join did not drain");
        });
    }

    /// Exploration visits more than one schedule when there is branching.
    #[test]
    fn explores_multiple_schedules() {
        let runs = super::Explorer::default().explore(|| {
            let v = Arc::new(AtomicUsize::new(0));
            let v2 = Arc::clone(&v);
            let t = crate::thread::spawn(move || {
                v2.store(1, Ordering::SeqCst);
            });
            let _ = v.load(Ordering::SeqCst);
            t.join().unwrap();
        });
        assert!(runs > 1, "no interleavings explored ({runs} runs)");
    }

    /// The message-passing litmus body: producer writes data then raises a
    /// flag; consumer that sees the flag asserts the data. `flag_store` /
    /// `flag_load` parameterize the synchronizing pair; the data accesses
    /// are always `Relaxed`, so the flag pair is the only ordering.
    fn mp_litmus(
        flag_store: Ordering,
        flag_load: Ordering,
        saw_violation: &Arc<std::sync::atomic::AtomicBool>,
    ) -> impl Fn() + Send + Sync + 'static {
        let saw = Arc::clone(saw_violation);
        move || {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let saw = Arc::clone(&saw);
            let t = crate::thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, flag_store);
            });
            if flag.load(flag_load) == 1 && data.load(Ordering::Relaxed) != 42 {
                saw.store(true, std::sync::atomic::Ordering::SeqCst);
            }
            t.join().unwrap();
        }
    }

    /// The AcqRel model must *find* the message-passing violation when the
    /// flag pair is `Relaxed` (no happens-before edge): some schedule sees
    /// the flag raised but stale data. SC and TSO both miss it (neither
    /// reorders a store-store or load-load pair).
    #[test]
    fn acqrel_finds_relaxed_message_passing_violation() {
        for (model, expected) in [
            (super::MemModel::Sc, false),
            (super::MemModel::Tso, false),
            (super::MemModel::AcqRel, true),
        ] {
            let saw = Arc::new(std::sync::atomic::AtomicBool::new(false));
            explorer(model).explore(mp_litmus(Ordering::Relaxed, Ordering::Relaxed, &saw));
            assert_eq!(
                saw.load(std::sync::atomic::Ordering::SeqCst),
                expected,
                "relaxed MP violation observability mismatch under {}",
                model.name()
            );
        }
    }

    /// With the proper `Release` store / `Acquire` load pairing the
    /// violation is forbidden under every model including AcqRel: the
    /// acquire read of the flag joins the release clock, which covers the
    /// data store.
    #[test]
    fn acqrel_release_acquire_forbids_message_passing_violation() {
        for model in [
            super::MemModel::Sc,
            super::MemModel::Tso,
            super::MemModel::AcqRel,
        ] {
            let saw = Arc::new(std::sync::atomic::AtomicBool::new(false));
            explorer(model).explore(mp_litmus(Ordering::Release, Ordering::Acquire, &saw));
            assert!(
                !saw.load(std::sync::atomic::Ordering::SeqCst),
                "Release/Acquire MP violated under {}",
                model.name()
            );
        }
    }

    /// An RMW continues the release sequence: a `Relaxed` `fetch_add` on
    /// the flag between the release store and the acquire load must not
    /// break the data edge.
    #[test]
    fn acqrel_rmw_extends_release_sequence() {
        explorer(super::MemModel::AcqRel).explore(|| {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let f3 = Arc::clone(&flag);
            let t = crate::thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            // Interloper RMW, relaxed: joins the release sequence.
            let t2 = crate::thread::spawn(move || {
                f3.fetch_add(2, Ordering::Relaxed);
            });
            if flag.load(Ordering::Acquire) == 3 {
                // Read the RMW's store: its rel clock includes the
                // overwritten release store's, so data is visible.
                assert_eq!(data.load(Ordering::Relaxed), 42, "release sequence broken");
            }
            t.join().unwrap();
            t2.join().unwrap();
        });
    }

    /// `fence(Release)` before a relaxed store + `fence(Acquire)` after a
    /// relaxed load synchronize exactly like a Release/Acquire pair (C11
    /// fence semantics).
    #[test]
    fn acqrel_fences_synchronize_relaxed_pair() {
        explorer(super::MemModel::AcqRel).explore(|| {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = crate::thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                crate::sync::atomic::fence(Ordering::Release);
                f2.store(1, Ordering::Relaxed);
            });
            if flag.load(Ordering::Relaxed) == 1 {
                crate::sync::atomic::fence(Ordering::Acquire);
                assert_eq!(data.load(Ordering::Relaxed), 42, "fence pair failed");
            }
            t.join().unwrap();
        });
    }

    /// A failing model prints a replay token, and running the explorer
    /// with that token reproduces exactly the failing schedule — in one
    /// run, deterministically.
    #[test]
    fn replay_token_reproduces_failing_schedule() {
        let body = || {
            let v = Arc::new(AtomicUsize::new(0));
            let v2 = Arc::clone(&v);
            let t = crate::thread::spawn(move || {
                let x = v2.load(Ordering::SeqCst);
                v2.store(x + 1, Ordering::SeqCst);
            });
            let x = v.load(Ordering::SeqCst);
            v.store(x + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(v.load(Ordering::SeqCst), 2, "lost update");
        };
        let err = std::panic::catch_unwind(|| explorer(super::MemModel::Sc).explore(body))
            .expect_err("lost update went unfound");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload should be a String");
        let token = msg
            .split("LOOMETTE_REPLAY=")
            .nth(1)
            .expect("failure message should carry a replay token")
            .split_whitespace()
            .next()
            .unwrap()
            .to_string();
        // Replaying must hit the same assertion in a single run.
        let replayer = super::Explorer {
            replay: Some(token),
            ..explorer(super::MemModel::Sc)
        };
        let err = std::panic::catch_unwind(move || replayer.explore(body))
            .expect_err("replay did not reproduce the failure");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("lost update"),
            "replay failed differently: {msg}"
        );
    }

    /// Under AcqRel, two unordered accesses to a `cell::UnsafeCell` (one a
    /// write) are a data race and fail the model; under SC/TSO the same
    /// body runs unchecked (interleaving-only).
    #[test]
    fn acqrel_detects_unsafecell_data_race() {
        let body = || {
            let c = Arc::new(crate::cell::UnsafeCell::new(0u64));
            let c2 = Arc::clone(&c);
            let t = crate::thread::spawn(move || {
                c2.with_mut(|p| unsafe { *p = 1 });
            });
            c.with(|p| unsafe { *p });
            t.join().unwrap();
        };
        let result = std::panic::catch_unwind(|| explorer(super::MemModel::AcqRel).explore(body));
        let msg = match result {
            Ok(_) => panic!("unsynchronized cell accesses went undetected"),
            Err(e) => e.downcast_ref::<String>().cloned().unwrap_or_default(),
        };
        assert!(msg.contains("data race"), "wrong failure: {msg}");
        // SC mode has no clocks: the same body passes (no race check).
        explorer(super::MemModel::Sc).explore(body);
    }

    /// A cell guarded by a Release/Acquire flag handoff is race-free: the
    /// reader only touches the cell after acquiring the flag, so the
    /// writer's access happens-before it.
    #[test]
    fn acqrel_accepts_flag_guarded_unsafecell() {
        explorer(super::MemModel::AcqRel).explore(|| {
            let c = Arc::new(crate::cell::UnsafeCell::new(0u64));
            let flag = Arc::new(AtomicUsize::new(0));
            let (c2, f2) = (Arc::clone(&c), Arc::clone(&flag));
            let t = crate::thread::spawn(move || {
                c2.with_mut(|p| unsafe { *p = 7 });
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                let v = c.with(|p| unsafe { *p });
                assert_eq!(v, 7);
            }
            t.join().unwrap();
        });
    }
}
