//! The cooperative scheduler and schedule explorer.
//!
//! One model *run* executes the test body with real OS threads, but only one
//! thread is ever runnable at a time: every instrumented operation (atomic
//! access, fence, mutex acquire, spawn/join) is a *switch point* where the
//! scheduler decides which thread runs next. A run is therefore sequentially
//! consistent by construction and — because the test body is deterministic —
//! exactly reproducible from the sequence of scheduling decisions.
//!
//! Exploration is depth-first over that decision tree: after each run the
//! deepest decision with an untried alternative is bumped and the prefix is
//! replayed (the classic stateless-model-checking loop). The tree is pruned
//! with a context-switch bound: schedules may *preempt* a runnable thread at
//! most [`preemption_bound`](Explorer::preemption_bound) times (CHESS-style;
//! most concurrency bugs need very few preemptions). Forced switches — the
//! current thread blocked or finished — are always free.
//!
//! # The store-buffer (TSO) mode
//!
//! With [`Explorer::mem_model`] set to [`MemModel::Tso`] (or
//! `LOOMETTE_MODEL=tso`), the model adds x86-TSO
//! store buffers: each thread owns a FIFO of not-yet-visible atomic stores.
//! A non-`SeqCst` instrumented store is appended to its thread's buffer
//! instead of hitting memory; loads forward from the own buffer (newest
//! entry for the location) and otherwise read committed memory — so a load
//! can complete *before* an earlier store of the same thread becomes
//! visible, the one reordering TSO allows. `SeqCst` stores, all RMWs
//! (swap/CAS/fetch ops), `fence(SeqCst)`, and every scheduler-level
//! synchronization edge (mutex acquire/release, condvar ops, spawn, thread
//! finish) drain the issuing thread's buffer, exactly like the fence or
//! lock-prefixed instruction they compile to. Flush points in between are
//! non-deterministic: at every scheduling decision the explorer may commit
//! the oldest buffered entry of any thread instead of running a thread —
//! an *early flush* choice charged against the same preemption bound (it
//! is a "weirdness event" in the CHESS sense), which keeps the extra
//! branching bounded. The default behaviour — buffers draining as late as
//! possible — is the free path, and it is the one that exposes
//! store-buffering bugs.
//!
//! # The acquire/release (AcqRel) mode
//!
//! With [`Explorer::mem_model`] set to [`MemModel::AcqRel`] (or
//! `LOOMETTE_MODEL=acqrel`), the checker drops the single shared memory
//! and models C11-style release/acquire semantics the way loom documents
//! its own design (CDSChecker-style): every atomic location keeps its own
//! **modification order** — the list of stores executed against it — and a
//! load does not necessarily read the newest one. Instead the explorer
//! computes the load's *reads-from candidate set*: every store not ruled
//! out by happens-before (a load may not read a store that some
//! hb-later store to the same location has already overwritten, nor one
//! older than what the thread itself last read or wrote there — coherence)
//! and picks among them. Reading the newest store is the free path —
//! exactly the SC execution — and each *stale* choice is a weirdness event
//! charged against the preemption bound, the same way TSO charges early
//! flushes, so the extra branching stays bounded.
//!
//! Happens-before is tracked with per-thread vector clocks:
//!
//! * a `Release` store (or RMW) carries the writer's clock; an `Acquire`
//!   load that reads it joins that clock — the release/acquire edge;
//! * RMWs join the release clock of the store they overwrite into their
//!   own, which is exactly the C11 **release sequence** (an acquire read
//!   of the last RMW in a chain synchronizes with the head);
//! * a `Relaxed` store after a release fence carries the fence-point
//!   clock; a relaxed load *remembers* the release clock it saw and a
//!   later acquire fence turns it into hb — the C11 fence rules;
//! * `fence(SeqCst)` additionally joins the thread's clock with a global
//!   SC clock **both ways**. Consecutive SC fences are therefore totally
//!   ordered by execution order and transfer hb, which gives the Dekker
//!   (StoreLoad) guarantee the six named protocol fences rely on. This is
//!   (knowingly) a little *stronger* than the C11 fence axioms — it can
//!   miss behaviours real fences allow, never invent them;
//! * per-op `SeqCst` atomics are modeled as the op bracketed by SC
//!   fences: SC among themselves (IRIW-SC stays forbidden), release/
//!   acquire toward everything else.
//!
//! RMWs read the newest store in modification order (their write is
//! appended right after — C11 atomicity) so they never branch. Scheduler
//! edges (mutex, condvar, spawn, join, finish) join clocks as full
//! release/acquire edges.
//!
//! Two honest scope limits, shared with every operational (non-promising)
//! checker of this family: stores enter modification order in execution
//! order (no speculative placement, so some 2+2W coherence weirdness is
//! not explored) and loads never read stores that have not executed yet
//! (no load-buffering — the LB litmus's weak outcome, which C11 relaxed
//! formally allows, is not exhibited). Both are *under*-approximations of
//! weakness on top of an explored superset of SC; the litmus suite in
//! `tests/litmus.rs` pins the exact outcome table per model.
//!
//! # Failing-schedule replay
//!
//! Every model failure prints a compact *schedule token* — the recorded
//! decision sequence, e.g. `1-0-r0-f1-2`: plain numbers are thread
//! choices, `rN` is "read the candidate at modification-order index N",
//! `fN` is "flush thread N's oldest buffered store". Running the same
//! test with `LOOMETTE_REPLAY=<token>` (and the same model/bound
//! environment) re-executes exactly that schedule once — a CI failure
//! becomes a deterministic unit test.

use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread as os_thread;

/// Default preemption bound (see module docs). Overridable per model via
/// [`Explorer`] or the `LOOMETTE_PREEMPTIONS` environment variable.
pub const DEFAULT_PREEMPTION_BOUND: usize = 2;

/// Which memory model the explorer runs the test body under.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MemModel {
    /// SeqCst-exact: every atomic executes as `SeqCst`; the model is
    /// sequentially consistent by construction (an under-approximation
    /// for code using weaker orderings).
    #[default]
    Sc,
    /// x86-TSO store buffers: non-`SeqCst` stores sit in a per-thread
    /// FIFO with nondeterministic flush points (see the module docs).
    Tso,
    /// C11-style release/acquire: per-location modification orders, a
    /// reads-from relation explored as scheduling choices, vector-clock
    /// happens-before, release sequences and fence semantics (see the
    /// module docs).
    AcqRel,
}

impl MemModel {
    /// Parses the `LOOMETTE_MODEL` environment value (`sc`, `tso`,
    /// `acqrel`; case-insensitive).
    pub fn parse(s: &str) -> Option<MemModel> {
        match s.to_ascii_lowercase().as_str() {
            "sc" | "seqcst" => Some(MemModel::Sc),
            "tso" => Some(MemModel::Tso),
            "acqrel" | "acq-rel" | "c11" => Some(MemModel::AcqRel),
            _ => None,
        }
    }

    /// The name CI and replay messages use for this model.
    pub fn name(self) -> &'static str {
        match self {
            MemModel::Sc => "sc",
            MemModel::Tso => "tso",
            MemModel::AcqRel => "acqrel",
        }
    }
}

/// A vector clock: `clock[t]` counts the labeled operations of thread `t`
/// that happen-before the clock's owner. Threads are few and short-lived
/// per run, so a flat `Vec` beats anything clever.
pub(crate) type Clock = Vec<u64>;

/// `dst := dst ⊔ src` (pointwise max, growing `dst` as needed).
fn join(dst: &mut Clock, src: &Clock) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = (*d).max(*s);
    }
}

/// The initial-value pseudo-store's writer id: initialization
/// happens-before the whole model, so it is hb-visible to every load.
const INIT_WRITER: usize = usize::MAX;

/// One entry of a location's modification order (AcqRel mode).
struct StoreEvt {
    val: u64,
    /// Writing thread (or [`INIT_WRITER`] for the initial value).
    writer: usize,
    /// The writer's own clock component at this store: store `S` by `w`
    /// happens-before thread `t` iff `clocks[t][w] >= S.writer_seq`.
    writer_seq: u64,
    /// Release clock acquirers join (empty ⇒ no synchronization): the
    /// writer's clock for `Release`+ stores, the writer's last
    /// release-fence clock for `Relaxed` stores, and for RMWs the join of
    /// that with the overwritten store's release clock (release
    /// sequences).
    rel: Clock,
}

/// Per-location state in AcqRel mode: the modification order, plus an
/// owned handle keeping the backing cell alive so the pointer key stays
/// unique for the whole run.
struct LocHist {
    _cell: BackingCell,
    stores: Vec<StoreEvt>,
    /// Every read of this location as (reader, reader_seq, store index):
    /// read-read coherence (C11 CoRR) forbids a load from reading
    /// mod-order-*before* a read it happens-after, so hb-covered entries
    /// raise the candidate floor exactly like hb-covered stores do.
    reads: Vec<(usize, u64, usize)>,
}

/// One `loomette::cell::UnsafeCell`'s access history (AcqRel race
/// detection): the last write and every read since it, as (thread,
/// thread-seq) hb stamps.
#[derive(Default)]
struct CellState {
    last_write: Option<(usize, u64)>,
    reads_since: Vec<(usize, u64)>,
}

/// The shared backing word of one instrumented atomic: the committed value
/// lives in a process-heap cell kept alive by `Arc` from both the atomic
/// object *and* any store-buffer entries targeting it, so a buffered store
/// can never dangle even if the atomic is dropped before the flush (the
/// collector scenarios drop their structures on thread 0 before `finish`).
/// All value types encode into the one `u64` (see `sync::atomic`).
pub(crate) type BackingCell = Arc<std::sync::atomic::AtomicU64>;

/// Scheduling-option encoding for "commit the oldest store-buffer entry of
/// thread `v - FLUSH_BASE`" (plain thread ids are always far below this).
const FLUSH_BASE: usize = usize::MAX / 2;

/// Decision encoding for "read the store at modification-order index
/// `v - READ_BASE`" (AcqRel reads-from choices). Thread ids stay far
/// below this, and mod-order indices far below `FLUSH_BASE - READ_BASE`,
/// so the three option ranges never collide.
const READ_BASE: usize = usize::MAX / 4;

/// Hard cap on runs per [`crate::model`] call; exceeding it means the test
/// is too big to check exhaustively and should be shrunk.
pub const DEFAULT_MAX_RUNS: usize = 500_000;

thread_local! {
    /// The scheduler governing the current OS thread, if it is a model
    /// thread. `None` outside a model: instrumented ops degrade to their
    /// plain `std` behaviour.
    static CURRENT: Cell<Option<(*const Scheduler, usize)>> = const { Cell::new(None) };
}

/// Runs `f` with this thread registered as model thread `tid` of `sched`.
fn with_current<R>(sched: &Arc<Scheduler>, tid: usize, f: impl FnOnce() -> R) -> R {
    CURRENT.with(|c| c.set(Some((Arc::as_ptr(sched), tid))));
    let out = f();
    CURRENT.with(|c| c.set(None));
    out
}

/// The scheduler handle for the calling thread, or `None` outside a model.
///
/// # Safety of the raw pointer
///
/// The `Arc<Scheduler>` is kept alive by the spawn wrapper for the whole
/// time the TLS entry is set, so the pointer is always valid when read.
fn current() -> Option<(&'static Scheduler, usize)> {
    CURRENT.with(|c| c.get().map(|(p, tid)| (unsafe { &*p }, tid)))
}

/// What a model thread is currently able to do.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    /// Ready to execute.
    Runnable,
    /// Waiting for a loomette mutex to be released.
    BlockedMutex(usize),
    /// Waiting for a loomette condvar to be notified.
    BlockedCondvar(usize),
    /// Waiting for another model thread to finish.
    BlockedJoin(usize),
    /// Body returned (or unwound).
    Finished,
}

/// One recorded scheduling decision: the runnable candidates at the point
/// (in try order) and which one was taken this run.
#[derive(Clone, Debug)]
pub(crate) struct Choice {
    options: Vec<usize>,
    chosen: usize, // index into `options`
}

/// Mutable scheduler state, shared by every thread of one run.
struct State {
    threads: Vec<Run>,
    /// The single thread allowed to execute.
    current: usize,
    /// Decisions to replay from the previous run, as thread ids.
    prefix: Vec<usize>,
    /// How many recorded decision points have been passed this run.
    step: usize,
    /// Decisions recorded this run (only points with >1 option).
    trace: Vec<Choice>,
    /// Preemptive (non-forced) switches taken so far this run. In TSO mode
    /// early store-buffer flushes are charged here too; in AcqRel mode,
    /// stale reads-from choices.
    preemptions: usize,
    preemption_bound: usize,
    /// Memory model this run explores: see the module docs.
    mem: MemModel,
    /// Per-thread FIFO store buffers (TSO mode; always empty otherwise),
    /// parallel to `threads`. Entries hold an owned handle to the backing
    /// cell so a pending store can never outlive its target.
    buffers: Vec<VecDeque<(BackingCell, u64)>>,
    /// Lock words for loomette mutexes, indexed by mutex id.
    mutexes: Vec<bool>,
    /// Number of condvar ids handed out this run (waiters are tracked in
    /// `threads` as [`Run::BlockedCondvar`]; a condvar itself is stateless).
    condvars: usize,
    /// First failure (panic) observed on any model thread.
    failed: Option<String>,
    finished: usize,

    // ---- AcqRel-mode state (empty under Sc/Tso) ----
    /// Per-thread happens-before vector clocks, parallel to `threads`.
    /// `clocks[t][t]` is also thread `t`'s own operation counter.
    clocks: Vec<Clock>,
    /// Per-thread join of the release clocks seen by *relaxed* loads since
    /// thread start; an acquire (or SC) fence turns it into hb (C11 fence
    /// rule).
    acq_pending: Vec<Clock>,
    /// Per-thread clock snapshot at the last release (or SC) fence:
    /// relaxed stores publish it instead of the live clock.
    rel_fence: Vec<Clock>,
    /// The global SC clock every `fence(SeqCst)` (and modeled SeqCst op)
    /// joins both ways — execution order of SC fences becomes their total
    /// order.
    sc_clock: Clock,
    /// Per-thread coherence view: for each location index, the newest
    /// modification-order index the thread has read or written there.
    views: Vec<HashMap<usize, usize>>,
    /// Atomic location registry: backing-cell pointer → `locs` index.
    loc_ids: HashMap<usize, usize>,
    locs: Vec<LocHist>,
    /// Per-mutex release clock: joined by the releaser at unlock, joined
    /// into the acquirer at lock (the mutex hb edge).
    mutex_clocks: Vec<Clock>,
    /// `loomette::cell::UnsafeCell` access histories, indexed by cell id.
    cells: Vec<CellState>,
}

impl State {
    /// Picks the next thread to run, given that `me` has reached a switch
    /// point (`me_runnable` tells whether `me` could continue). Returns the
    /// chosen tid. Panics the model on deadlock.
    fn schedule(&mut self, me: usize, me_runnable: bool) -> usize {
        loop {
            let runnable: Vec<usize> = (0..self.threads.len())
                .filter(|&t| self.threads[t] == Run::Runnable && (t != me || me_runnable))
                .collect();
            if runnable.is_empty() {
                if self.finished == self.threads.len() {
                    return me; // run is over; value unused
                }
                // A pending store-buffer flush can never make a
                // scheduler-blocked thread runnable, so non-empty buffers
                // do not rescue this state: report the deadlock as-is.
                self.failed = Some(format!(
                    "deadlock: no runnable threads (states: {:?})",
                    self.threads
                ));
                return me;
            }
            // Candidate order: the current thread first (continuing is
            // free), then the others, which each cost one preemption while
            // `me` could have continued. Forced switches (me blocked or
            // finished) are free. In TSO mode, committing the oldest
            // buffered store of any thread is a further candidate, also
            // charged as a preemption (it deviates from the free
            // drain-as-late-as-possible path).
            let mut options: Vec<usize> = Vec::with_capacity(runnable.len());
            if me_runnable {
                options.push(me);
                if self.preemptions < self.preemption_bound {
                    options.extend(runnable.iter().copied().filter(|&t| t != me));
                }
            } else {
                options = runnable;
            }
            if self.mem == MemModel::Tso && self.preemptions < self.preemption_bound {
                options.extend(
                    (0..self.buffers.len())
                        .filter(|&t| !self.buffers[t].is_empty())
                        .map(|t| FLUSH_BASE + t),
                );
            }
            let chosen = self.decide(options);
            if chosen >= FLUSH_BASE {
                // Commit one entry and decide again from the new memory
                // state; the current thread is not switched by a flush.
                let t = chosen - FLUSH_BASE;
                let (cell, val) = self.buffers[t]
                    .pop_front()
                    .expect("flush chosen for an empty buffer");
                cell.store(val, std::sync::atomic::Ordering::SeqCst);
                self.preemptions += 1;
                continue;
            }
            if me_runnable && chosen != me {
                self.preemptions += 1;
            }
            self.current = chosen;
            return chosen;
        }
    }

    /// One recorded decision: picks among `options` (replaying the prefix,
    /// else taking the first), recording the point in the trace when there
    /// was a real choice. Shared by thread scheduling, TSO flush choices,
    /// and AcqRel reads-from choices, so all three replay through one
    /// mechanism.
    fn decide(&mut self, options: Vec<usize>) -> usize {
        if options.len() == 1 {
            // No branching: not a recorded decision point.
            return options[0];
        }
        let idx = if self.step < self.prefix.len() {
            let want = self.prefix[self.step];
            options
                .iter()
                .position(|&t| t == want)
                .expect("replay divergence: recorded choice not available")
        } else {
            0
        };
        self.step += 1;
        let chosen = options[idx];
        self.trace.push(Choice {
            options,
            chosen: idx,
        });
        chosen
    }

    // ---- AcqRel-mode machinery (see the module docs) ----

    /// Does the event (`writer`, `writer_seq`) happen-before thread `t`'s
    /// current point?
    fn hb(&self, t: usize, writer: usize, writer_seq: u64) -> bool {
        writer == INIT_WRITER || self.clocks[t].get(writer).copied().unwrap_or(0) >= writer_seq
    }

    /// Advances thread `t`'s own clock component, returning the new seq.
    fn tick(&mut self, t: usize) -> u64 {
        if self.clocks[t].len() <= t {
            self.clocks[t].resize(t + 1, 0);
        }
        self.clocks[t][t] += 1;
        self.clocks[t][t]
    }

    /// The location index for `cell`, registering it (with its current
    /// committed value as the initial pseudo-store) on first sight.
    fn loc(&mut self, cell: &BackingCell) -> usize {
        let key = Arc::as_ptr(cell) as usize;
        if let Some(&id) = self.loc_ids.get(&key) {
            return id;
        }
        let id = self.locs.len();
        self.locs.push(LocHist {
            _cell: Arc::clone(cell),
            stores: vec![StoreEvt {
                val: cell.load(std::sync::atomic::Ordering::SeqCst),
                writer: INIT_WRITER,
                writer_seq: 0,
                rel: Clock::new(),
            }],
            reads: Vec::new(),
        });
        self.loc_ids.insert(key, id);
        id
    }

    /// The SC-fence clock exchange: acquire-fence side (pending relaxed
    /// reads become hb), global SC clock joined both ways, release-fence
    /// side (snapshot for later relaxed stores). Also the model of a
    /// per-op `SeqCst` atomic's fence bracket.
    fn sc_fence(&mut self, me: usize) {
        let pending = self.acq_pending[me].clone();
        join(&mut self.clocks[me], &pending);
        let sc = self.sc_clock.clone();
        join(&mut self.clocks[me], &sc);
        let mine = self.clocks[me].clone();
        join(&mut self.sc_clock, &mine);
        self.rel_fence[me] = self.clocks[me].clone();
    }

    /// The model-level effect of `fence(order)` in AcqRel mode.
    fn acqrel_fence(&mut self, me: usize, order: Ordering) {
        match order {
            Ordering::SeqCst => self.sc_fence(me),
            Ordering::Acquire => {
                let pending = self.acq_pending[me].clone();
                join(&mut self.clocks[me], &pending);
            }
            Ordering::Release => self.rel_fence[me] = self.clocks[me].clone(),
            Ordering::AcqRel => {
                let pending = self.acq_pending[me].clone();
                join(&mut self.clocks[me], &pending);
                self.rel_fence[me] = self.clocks[me].clone();
            }
            _ => {}
        }
    }

    /// Applies the read side of observing store `idx` of `loc` with
    /// `order`: coherence view update plus the release/acquire (or
    /// pending-until-fence) clock join.
    fn absorb_read(&mut self, me: usize, loc: usize, idx: usize, order: Ordering) {
        self.views[me].insert(loc, idx);
        let seq = self.clocks[me].get(me).copied().unwrap_or(0);
        self.locs[loc].reads.push((me, seq, idx));
        let rel = self.locs[loc].stores[idx].rel.clone();
        if rel.is_empty() {
            return;
        }
        if matches!(
            order,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        ) {
            join(&mut self.clocks[me], &rel);
        } else {
            // A relaxed load remembers the release clock it saw; a later
            // acquire fence turns it into hb (C11 fence rule).
            join(&mut self.acq_pending[me], &rel);
        }
    }

    /// An instrumented load in AcqRel mode: computes the reads-from
    /// candidate set, explores the choice (stale picks cost one weirdness
    /// against the preemption bound), applies the hb edges, and returns
    /// the value read.
    fn acqrel_load(&mut self, me: usize, cell: &BackingCell, order: Ordering) -> u64 {
        if order == Ordering::SeqCst {
            self.sc_fence(me);
        }
        let loc = self.loc(cell);
        self.tick(me);
        let stores = &self.locs[loc].stores;
        let newest = stores.len() - 1;
        // Coherence floor: never older than what this thread last read or
        // wrote here.
        let mut floor = self.views[me].get(&loc).copied().unwrap_or(0);
        // Happens-before floor: a load may not read a store that an
        // hb-earlier *later* store has overwritten — the newest store that
        // happens-before the load bounds the candidates from below.
        for i in (floor..=newest).rev() {
            let s = &self.locs[loc].stores[i];
            if self.hb(me, s.writer, s.writer_seq) {
                floor = floor.max(i);
                break;
            }
        }
        // Read-read coherence floor (CoRR): a load also may not read
        // mod-order-before any hb-earlier *read* of this location (e.g.
        // the WRC shape, where the causal chain runs through a load).
        for k in 0..self.locs[loc].reads.len() {
            let (r_tid, r_seq, r_idx) = self.locs[loc].reads[k];
            if r_idx > floor && self.hb(me, r_tid, r_seq) {
                floor = r_idx;
            }
        }
        let idx = if floor == newest || self.preemptions >= self.preemption_bound {
            newest
        } else {
            // Newest first: the free, SC-identical path. Stale candidates
            // are offered newest-to-oldest and each costs one weirdness.
            let options: Vec<usize> = (floor..=newest).rev().map(|i| READ_BASE + i).collect();
            let chosen = self.decide(options) - READ_BASE;
            if chosen != newest {
                self.preemptions += 1;
            }
            chosen
        };
        let val = self.locs[loc].stores[idx].val;
        self.absorb_read(me, loc, idx, order);
        if order == Ordering::SeqCst {
            self.sc_fence(me);
        }
        val
    }

    /// An instrumented store in AcqRel mode: appends to the location's
    /// modification order carrying the ordering's release clock, and
    /// commits the value to the backing cell (which always mirrors the
    /// newest store, for degraded/teardown reads).
    fn acqrel_store(&mut self, me: usize, cell: &BackingCell, val: u64, order: Ordering) {
        if order == Ordering::SeqCst {
            self.sc_fence(me);
        }
        let loc = self.loc(cell);
        let seq = self.tick(me);
        let rel = match order {
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst => self.clocks[me].clone(),
            _ => self.rel_fence[me].clone(),
        };
        self.locs[loc].stores.push(StoreEvt {
            val,
            writer: me,
            writer_seq: seq,
            rel,
        });
        self.views[me].insert(loc, self.locs[loc].stores.len() - 1);
        cell.store(val, std::sync::atomic::Ordering::SeqCst);
        if order == Ordering::SeqCst {
            self.sc_fence(me);
        }
    }

    /// An instrumented RMW in AcqRel mode: reads the newest store in
    /// modification order (its own write lands immediately after — C11
    /// atomicity, so RMWs never branch on reads-from) and continues the
    /// overwritten store's release sequence. Returns the old value;
    /// `new` computes the stored one (`None` ⇒ failed CAS: read only).
    fn acqrel_rmw(
        &mut self,
        me: usize,
        cell: &BackingCell,
        order: Ordering,
        new: impl FnOnce(u64) -> Option<u64>,
    ) -> u64 {
        if order == Ordering::SeqCst {
            self.sc_fence(me);
        }
        let loc = self.loc(cell);
        self.tick(me);
        let newest = self.locs[loc].stores.len() - 1;
        let old = self.locs[loc].stores[newest].val;
        self.absorb_read(me, loc, newest, order);
        if let Some(val) = new(old) {
            let seq = self.tick(me);
            // Release sequence: an acquire read of this RMW synchronizes
            // with the head of the chain it extends.
            let mut rel = self.locs[loc].stores[newest].rel.clone();
            match order {
                Ordering::Release | Ordering::AcqRel | Ordering::SeqCst => {
                    join(&mut rel, &self.clocks[me])
                }
                _ => {
                    let fence = self.rel_fence[me].clone();
                    join(&mut rel, &fence)
                }
            }
            self.locs[loc].stores.push(StoreEvt {
                val,
                writer: me,
                writer_seq: seq,
                rel,
            });
            self.views[me].insert(loc, self.locs[loc].stores.len() - 1);
            cell.store(val, std::sync::atomic::Ordering::SeqCst);
        }
        if order == Ordering::SeqCst {
            self.sc_fence(me);
        }
        old
    }

    /// Full release/acquire edge from thread `from` to thread `to`
    /// (scheduler-level synchronization: spawn, join, condvar wake).
    fn sync_edge(&mut self, from: usize, to: usize) {
        if self.mem != MemModel::AcqRel {
            return;
        }
        let src = self.clocks[from].clone();
        join(&mut self.clocks[to], &src);
    }

    /// Registers one more thread's worth of AcqRel bookkeeping.
    fn push_thread_state(&mut self) {
        self.clocks.push(Clock::new());
        self.acq_pending.push(Clock::new());
        self.rel_fence.push(Clock::new());
        self.views.push(HashMap::new());
    }

    /// Commits every pending store of thread `t`, oldest first (the TSO
    /// buffer-drain a fence / RMW / lock-prefixed instruction performs).
    fn drain_buffer(&mut self, t: usize) {
        while let Some((cell, val)) = self.buffers[t].pop_front() {
            cell.store(val, std::sync::atomic::Ordering::SeqCst);
        }
    }

    fn done(&self) -> bool {
        self.finished == self.threads.len() || self.failed.is_some()
    }
}

/// The per-run scheduler: shared state plus the condvar every model thread
/// parks on while it is not `current`.
pub(crate) struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
    /// Memory model (copy of `State::mem` readable without the state
    /// lock, for the fast path of the instrumentation hooks).
    mem: MemModel,
    /// Set on failure so threads parked in their start-wait exit quickly.
    aborting: AtomicBool,
    /// Process-unique sequence number for this run. Instrumented mutexes
    /// cache their scheduler-side lock-word id keyed by this, so a mutex
    /// object that outlives one run re-registers with the next run's
    /// scheduler instead of indexing a stale id into a fresh table.
    run_seq: u64,
}

impl Scheduler {
    /// Locks the shared state, ignoring poisoning: a panicking model thread
    /// (the normal failure path) must not turn every subsequent state access
    /// — including ones inside destructors running during unwind — into a
    /// second panic.
    fn st(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn new(prefix: Vec<usize>, preemption_bound: usize, mem: MemModel) -> Self {
        static RUN_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        let mut state = State {
            threads: vec![Run::Runnable], // thread 0 = the model body
            current: 0,
            prefix,
            step: 0,
            trace: Vec::new(),
            preemptions: 0,
            preemption_bound,
            mem,
            buffers: vec![VecDeque::new()],
            mutexes: Vec::new(),
            condvars: 0,
            failed: None,
            finished: 0,
            clocks: Vec::new(),
            acq_pending: Vec::new(),
            rel_fence: Vec::new(),
            sc_clock: Clock::new(),
            views: Vec::new(),
            loc_ids: HashMap::new(),
            locs: Vec::new(),
            mutex_clocks: Vec::new(),
            cells: Vec::new(),
        };
        state.push_thread_state();
        Scheduler {
            run_seq: RUN_SEQ.fetch_add(1, Ordering::Relaxed),
            mem,
            state: Mutex::new(state),
            cv: Condvar::new(),
            aborting: AtomicBool::new(false),
        }
    }

    /// Terminates this thread's participation after a model failure.
    ///
    /// Panics to unwind the thread body — but only if the thread is not
    /// *already* unwinding: a second panic inside a destructor running
    /// during unwind would abort the whole process. An unwinding thread
    /// instead returns and free-runs its teardown: every instrumented
    /// operation degrades to its real `std` primitive (see
    /// [`Self::degraded`]), which keeps teardown memory-safe without the
    /// scheduler.
    fn die(&self) {
        if !os_thread::panicking() {
            panic!("loomette: model failed on another thread");
        }
    }

    /// Whether the model has failed and scheduling is abandoned: threads
    /// finish (or unwind) on real primitives from here on.
    fn degraded(&self) -> bool {
        self.aborting.load(Ordering::SeqCst)
    }

    /// Marks the model failed (if a specific message has not been recorded
    /// yet, e.g. by the panicking thread itself) and wakes everyone.
    fn note_failure(&self, mut st: std::sync::MutexGuard<'_, State>) {
        if st.failed.is_none() {
            st.failed = Some("model failure".into());
        }
        self.aborting.store(true, Ordering::SeqCst);
        drop(st);
        self.cv.notify_all();
    }

    /// Blocks the calling model thread until it is scheduled. Returns
    /// `false` if the model failed in the meantime (the caller decides how
    /// to terminate — see [`Self::die`]).
    fn wait_for_turn(&self, me: usize) -> bool {
        let mut st = self.st();
        while st.current != me && !st.done() {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        st.failed.is_none()
    }

    /// The switch point every instrumented operation passes through.
    fn switch(&self, me: usize) {
        if self.degraded() {
            self.die();
            return;
        }
        {
            let mut st = self.st();
            st.schedule(me, true);
            if st.failed.is_some() {
                self.note_failure(st);
                self.die();
                return;
            }
            self.cv.notify_all();
        }
        if !self.wait_for_turn(me) {
            self.die();
        }
    }

    /// Blocks `me` with the given reason and hands the CPU to someone else.
    fn block(&self, me: usize, why: Run) {
        if self.degraded() {
            self.die();
            return;
        }
        {
            let mut st = self.st();
            st.threads[me] = why;
            st.schedule(me, false);
            if st.failed.is_some() {
                self.note_failure(st);
                self.die();
                return;
            }
            self.cv.notify_all();
        }
        if !self.wait_for_turn(me) {
            // Unblock ourselves for bookkeeping sanity, then terminate.
            let mut st = self.st();
            st.threads[me] = Run::Runnable;
            drop(st);
            self.die();
        }
    }

    /// Registers a new model thread spawned by `parent`, returning its
    /// tid. The thread starts runnable but does not execute until
    /// scheduled. The spawn edge is a full synchronization edge: the
    /// child's clock starts at the parent's.
    fn register(&self, parent: usize) -> usize {
        let mut st = self.st();
        st.threads.push(Run::Runnable);
        st.buffers.push(VecDeque::new());
        st.push_thread_state();
        let tid = st.threads.len() - 1;
        st.sync_edge(parent, tid);
        tid
    }

    /// Marks `me` finished, wakes joiners, and schedules the next thread.
    fn finish(&self, me: usize) {
        let mut st = self.st();
        // TSO: a finishing thread's pending stores become visible before
        // any joiner proceeds (the join edge is a synchronization edge).
        st.drain_buffer(me);
        st.threads[me] = Run::Finished;
        st.finished += 1;
        for t in 0..st.threads.len() {
            if st.threads[t] == Run::BlockedJoin(me) {
                st.threads[t] = Run::Runnable;
            }
        }
        if !st.done() {
            st.schedule(me, false);
        }
        drop(st);
        self.cv.notify_all();
    }

    fn record_failure(&self, me: usize, msg: String) {
        let mut st = self.st();
        if st.failed.is_none() {
            st.failed = Some(format!("thread {me} panicked: {msg}"));
        }
        self.aborting.store(true, Ordering::SeqCst);
        drop(st);
        self.cv.notify_all();
    }

    fn alloc_mutex(&self) -> usize {
        let mut st = self.st();
        st.mutexes.push(false);
        st.mutex_clocks.push(Clock::new());
        st.mutexes.len() - 1
    }

    /// Scheduler-side mutex acquire: loops through switch points until the
    /// lock word is free, blocking (scheduler-level) while it is held.
    ///
    /// After a model failure the bookkeeping is skipped entirely: the
    /// caller falls through to the *real* mutex, whose own blocking is
    /// correct (and deadlock-free, because every holder's guard drop
    /// releases it during unwind) without the scheduler.
    fn mutex_lock(&self, me: usize, id: usize) {
        loop {
            if self.degraded() {
                self.die();
                return;
            }
            self.switch(me);
            {
                if self.degraded() {
                    self.die();
                    return;
                }
                let mut st = self.st();
                if !st.mutexes[id] {
                    st.mutexes[id] = true;
                    // TSO: a lock acquire is a full barrier (lock-prefixed
                    // RMW on the lock word); drain the acquirer's buffer.
                    st.drain_buffer(me);
                    // AcqRel: acquire edge — join the last releaser's
                    // clock.
                    if st.mem == MemModel::AcqRel {
                        let rel = st.mutex_clocks[id].clone();
                        join(&mut st.clocks[me], &rel);
                    }
                    return;
                }
            }
            self.block(me, Run::BlockedMutex(id));
        }
    }

    fn mutex_unlock(&self, me: usize, id: usize) {
        let mut st = self.st();
        // TSO: everything stored inside the critical section must be
        // committed before the lock word is seen free by the next holder.
        st.drain_buffer(me);
        // AcqRel: release edge — publish the holder's clock on the lock.
        if st.mem == MemModel::AcqRel {
            let mine = st.clocks[me].clone();
            join(&mut st.mutex_clocks[id], &mine);
        }
        st.mutexes[id] = false;
        for t in 0..st.threads.len() {
            if st.threads[t] == Run::BlockedMutex(id) {
                st.threads[t] = Run::Runnable;
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    fn alloc_condvar(&self) -> usize {
        let mut st = self.st();
        st.condvars += 1;
        st.condvars - 1
    }

    /// Scheduler-side condvar wait. The caller has already released the
    /// associated mutex (both the real guard and the scheduler lock word)
    /// *without passing a switch point in between*, so — only one model
    /// thread ever runs at a time — the unlock+wait pair is atomic with
    /// respect to the model and no wakeup can be lost. The thread wakes
    /// only on [`Self::condvar_notify_all`] (the model has no spurious
    /// wakeups: fewer wakeups than reality is sound for bug-finding, and a
    /// lost-wakeup bug in the code under test surfaces as a detected
    /// deadlock instead of a hang).
    fn condvar_wait(&self, me: usize, id: usize) {
        if self.degraded() {
            self.die();
            return;
        }
        self.block(me, Run::BlockedCondvar(id));
    }

    /// Wakes every thread waiting on condvar `id`; they become runnable and
    /// re-acquire their mutex through the normal scheduler-mediated path.
    fn condvar_notify_all(&self, me: usize, id: usize) {
        let mut st = self.st();
        // TSO: make the notifier's stores visible to woken waiters (the
        // wait side re-acquires its mutex, which is itself a barrier, but
        // draining here keeps the notify edge a full sync edge too).
        st.drain_buffer(me);
        for t in 0..st.threads.len() {
            if st.threads[t] == Run::BlockedCondvar(id) {
                st.threads[t] = Run::Runnable;
                // AcqRel: the notify edge synchronizes-with each woken
                // waiter (the mutex re-acquire is an edge too; this keeps
                // notify a full sync edge like the TSO drain above).
                st.sync_edge(me, t);
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    fn join(&self, me: usize, target: usize) {
        self.switch(me);
        if self.degraded() {
            // The caller's OS-level join is enough: the target thread
            // finishes (or unwinds) on real primitives.
            return;
        }
        let blocked = {
            let st = self.st();
            st.threads[target] != Run::Finished
        };
        if blocked {
            self.block(me, Run::BlockedJoin(target));
        }
        // AcqRel: the join edge — everything the finished thread did
        // happens-before the joiner's continuation.
        let mut st = self.st();
        st.sync_edge(target, me);
    }

    /// Blocks the (non-model) driver thread until the run completes.
    fn wait_all_done(&self) {
        let mut st = self.st();
        while !st.done() {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

// ---- public hooks used by the sync / thread shims ----

/// A switch point: lets the scheduler preempt here. No-op outside a model.
pub fn switch_point() {
    if let Some((sched, tid)) = current() {
        sched.switch(tid);
    }
}

/// Yield: equivalent to a plain switch point (the scheduler may or may not
/// move on; exploration covers both).
pub fn yield_now() {
    switch_point();
}

pub(crate) fn with_scheduler<R>(f: impl FnOnce(&Scheduler, usize) -> R) -> Option<R> {
    current().map(|(sched, tid)| f(sched, tid))
}

pub(crate) fn mutex_id(sched: &Scheduler) -> usize {
    sched.alloc_mutex()
}

/// The process-unique sequence number of `sched`'s run; see
/// [`Scheduler::run_seq`].
pub(crate) fn run_seq(sched: &Scheduler) -> u64 {
    sched.run_seq
}

pub(crate) fn lock(sched: &Scheduler, me: usize, id: usize) {
    sched.mutex_lock(me, id);
}

pub(crate) fn unlock(sched: &Scheduler, me: usize, id: usize) {
    sched.mutex_unlock(me, id);
}

pub(crate) fn condvar_id(sched: &Scheduler) -> usize {
    sched.alloc_condvar()
}

pub(crate) fn condvar_wait(sched: &Scheduler, me: usize, id: usize) {
    sched.condvar_wait(me, id);
}

pub(crate) fn condvar_notify_all(sched: &Scheduler, me: usize, id: usize) {
    sched.condvar_notify_all(me, id);
}

// ---- TSO store-buffer hooks (see the module docs) ----
//
// Each hook is a no-op (returns the "not buffered" answer) outside a model,
// in SeqCst-exact mode, or once the model has degraded after a failure —
// the instrumented op then falls through to its real `std` primitive.

/// Store-to-load forwarding: the newest pending store *by the calling
/// thread* to `cell`, if any. A TSO load reads its own buffer first.
pub(crate) fn tso_buffered_load(cell: &BackingCell) -> Option<u64> {
    let (sched, me) = current()?;
    if sched.mem != MemModel::Tso || sched.degraded() {
        return None;
    }
    let st = sched.st();
    st.buffers[me]
        .iter()
        .rev()
        .find(|(c, _)| Arc::ptr_eq(c, cell))
        .map(|(_, v)| *v)
}

/// Appends a store to the calling thread's buffer instead of committing
/// it. With `drain` (a `SeqCst` store) the buffer — including the new
/// entry — is committed immediately, preserving SC semantics for the op.
/// Returns `false` if not in TSO mode (caller performs the real store).
pub(crate) fn tso_buffer_store(cell: &BackingCell, val: u64, drain: bool) -> bool {
    match current() {
        Some((sched, me)) if sched.mem == MemModel::Tso && !sched.degraded() => {
            let mut st = sched.st();
            st.buffers[me].push_back((Arc::clone(cell), val));
            if drain {
                st.drain_buffer(me);
            }
            true
        }
        _ => false,
    }
}

/// Drains the calling thread's store buffer: the model-level effect of
/// `fence(SeqCst)` and of every RMW (which is a full barrier on TSO).
pub(crate) fn tso_drain() {
    if let Some((sched, me)) = current() {
        if sched.mem == MemModel::Tso && !sched.degraded() {
            let mut st = sched.st();
            st.drain_buffer(me);
        }
    }
}

// ---- AcqRel-mode hooks (see the module docs) ----
//
// Like the TSO hooks, each is a no-op (returns the "not handled" answer)
// outside a model, under another memory model, or once the model has
// degraded — the instrumented op then falls through to its `std`
// primitive.

/// In-model guard for the AcqRel hooks.
fn acqrel_current() -> Option<(&'static Scheduler, usize)> {
    let (sched, me) = current()?;
    if sched.mem != MemModel::AcqRel || sched.degraded() {
        return None;
    }
    Some((sched, me))
}

/// AcqRel load: explores the reads-from choice. `None` ⇒ not handled.
pub(crate) fn acqrel_load(cell: &BackingCell, order: Ordering) -> Option<u64> {
    let (sched, me) = acqrel_current()?;
    let mut st = sched.st();
    Some(st.acqrel_load(me, cell, order))
}

/// AcqRel store: appends to the modification order. `false` ⇒ not handled.
pub(crate) fn acqrel_store(cell: &BackingCell, val: u64, order: Ordering) -> bool {
    match acqrel_current() {
        Some((sched, me)) => {
            let mut st = sched.st();
            st.acqrel_store(me, cell, val, order);
            true
        }
        None => false,
    }
}

/// AcqRel RMW: reads the newest store, appends its own right after
/// (`new(old)` returning `None` means a failed CAS: read only). Returns
/// the old value, or `None` if not handled.
pub(crate) fn acqrel_rmw(
    cell: &BackingCell,
    order: Ordering,
    new: impl FnOnce(u64) -> Option<u64>,
) -> Option<u64> {
    let (sched, me) = acqrel_current()?;
    let mut st = sched.st();
    Some(st.acqrel_rmw(me, cell, order, new))
}

/// The model-level effect of `fence(order)` under AcqRel (no-op
/// elsewhere; TSO's drain is a separate hook).
pub(crate) fn acqrel_fence(order: Ordering) {
    if let Some((sched, me)) = acqrel_current() {
        let mut st = sched.st();
        st.acqrel_fence(me, order);
    }
}

// ---- race-detected cell hooks (loomette::cell::UnsafeCell) ----

/// Allocates a cell id in the current run (run-keyed by the caller the
/// same way mutex ids are). `None` outside a model.
pub(crate) fn cell_id(sched: &Scheduler) -> usize {
    let mut st = sched.st();
    st.cells.push(CellState::default());
    st.cells.len() - 1
}

/// Records a non-atomic access to cell `id` and — in AcqRel mode, where
/// happens-before is tracked — fails the model if it races a previous
/// access (write vs. anything unordered by hb). Under Sc/Tso every access
/// is still a switch point, but without clocks there is no race check.
pub(crate) fn cell_access(sched: &Scheduler, me: usize, id: usize, write: bool) {
    if sched.mem != MemModel::AcqRel || sched.degraded() {
        return;
    }
    let race: Option<String> = {
        let mut st = sched.st();
        let seq = st.tick(me);
        let cell = std::mem::take(&mut st.cells[id]);
        let mut race = None;
        if let Some((w_tid, w_seq)) = cell.last_write {
            if w_tid != me && !st.hb(me, w_tid, w_seq) {
                race = Some(format!(
                    "data race on cell {id}: thread {me} {} unordered with \
                     thread {w_tid}'s write",
                    if write { "write" } else { "read" }
                ));
            }
        }
        if write {
            for &(r_tid, r_seq) in &cell.reads_since {
                if r_tid != me && !st.hb(me, r_tid, r_seq) {
                    race = Some(format!(
                        "data race on cell {id}: thread {me} write unordered \
                         with thread {r_tid}'s read"
                    ));
                }
            }
        }
        st.cells[id] = if race.is_some() {
            cell
        } else if write {
            CellState {
                last_write: Some((me, seq)),
                reads_since: Vec::new(),
            }
        } else {
            let mut cell = cell;
            cell.reads_since.push((me, seq));
            cell
        };
        race
    };
    if let Some(msg) = race {
        // The state lock is released; fail the model through the normal
        // panicking path so the failing schedule is reported.
        panic!("loomette: {msg}");
    }
}

// ---- thread spawning ----

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    inner: os_thread::JoinHandle<Option<T>>,
    tid: usize,
}

impl<T> JoinHandle<T> {
    /// Waits (scheduler-level, then OS-level) for the thread to finish and
    /// returns its result.
    pub fn join(self) -> std::thread::Result<T> {
        let (sched, me) = current().expect("loomette join outside a model");
        sched.join(me, self.tid);
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            Ok(None) => Err(Box::new("model thread failed")),
            Err(e) => Err(e),
        }
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("tid", &self.tid)
            .finish()
    }
}

/// Spawns a model thread. Must be called from inside a model.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (sched_ref, me) = current().expect("loomette spawn outside a model");
    // Re-create the Arc from the raw pointer we stored: the wrapper below
    // needs an owned handle that outlives the parent's stack frame.
    // Safety: `current()` guarantees the scheduler is alive; `ARCS` in the
    // runner keeps one strong reference for the whole run.
    let sched: Arc<Scheduler> = RUN_SCHED.with(|s| {
        s.borrow()
            .clone()
            .expect("loomette spawn outside a model run")
    });
    debug_assert!(std::ptr::eq(Arc::as_ptr(&sched), sched_ref as *const _));
    // The spawn edge synchronizes-with the child's start: under TSO the
    // parent's pending stores must be visible to the child's first load;
    // under AcqRel the child's clock starts at the parent's (in
    // `register`).
    tso_drain();
    let tid = sched.register(me);
    let sched2 = Arc::clone(&sched);
    let inner = os_thread::spawn(move || {
        // Make nested `spawn` possible from this thread too.
        RUN_SCHED.with(|s| *s.borrow_mut() = Some(Arc::clone(&sched2)));
        with_current(&sched2, tid, || {
            if !sched2.wait_for_turn(tid) || sched2.degraded() {
                // The model failed before this thread ever ran its body.
                sched2.finish(tid);
                return None;
            }
            let out = panic::catch_unwind(AssertUnwindSafe(f));
            match out {
                Ok(v) => {
                    sched2.finish(tid);
                    Some(v)
                }
                Err(e) => {
                    sched2.record_failure(tid, panic_message(&*e));
                    sched2.finish(tid);
                    None
                }
            }
        })
    });
    JoinHandle { inner, tid }
}

thread_local! {
    /// Owned scheduler handle for the current model thread, cloned by
    /// `spawn` so child wrappers can own one too.
    static RUN_SCHED: std::cell::RefCell<Option<Arc<Scheduler>>> =
        const { std::cell::RefCell::new(None) };
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

// ---- the exploration driver ----

/// Exploration limits for one model.
pub struct Explorer {
    /// Maximum preemptive context switches per schedule (early TSO
    /// flushes and stale AcqRel reads-from choices are charged against
    /// the same bound).
    pub preemption_bound: usize,
    /// Hard cap on explored schedules. Defaults to [`DEFAULT_MAX_RUNS`],
    /// overridable with `LOOMETTE_MAX_RUNS`.
    pub max_runs: usize,
    /// Which memory model to explore under: see the module docs. Defaults
    /// to `LOOMETTE_MODEL` (`sc` / `tso` / `acqrel`), falling back to the
    /// legacy `LOOMETTE_TSO=1`, else SeqCst-exact.
    pub mem_model: MemModel,
    /// Replay a single failing schedule instead of exploring: the token a
    /// model failure printed (`LOOMETTE_REPLAY` in the environment picks
    /// this up automatically through `Default`). The run must use the
    /// same model, bound, and test body that produced the token.
    pub replay: Option<String>,
}

impl Default for Explorer {
    fn default() -> Self {
        let bound = std::env::var("LOOMETTE_PREEMPTIONS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_PREEMPTION_BOUND);
        let mem_model = std::env::var("LOOMETTE_MODEL")
            .ok()
            .and_then(|s| MemModel::parse(&s))
            .unwrap_or_else(|| {
                let tso = std::env::var("LOOMETTE_TSO")
                    .map(|s| matches!(s.as_str(), "1" | "true" | "yes"))
                    .unwrap_or(false);
                if tso {
                    MemModel::Tso
                } else {
                    MemModel::Sc
                }
            });
        let max_runs = std::env::var("LOOMETTE_MAX_RUNS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_MAX_RUNS);
        Explorer {
            preemption_bound: bound,
            max_runs,
            mem_model,
            replay: std::env::var("LOOMETTE_REPLAY")
                .ok()
                .filter(|s| !s.is_empty()),
        }
    }
}

/// Renders one recorded decision value for the schedule token: plain
/// numbers are thread choices, `rN` reads-from picks, `fN` TSO flushes.
fn encode_decision(v: usize) -> String {
    if v >= FLUSH_BASE {
        format!("f{}", v - FLUSH_BASE)
    } else if v >= READ_BASE {
        format!("r{}", v - READ_BASE)
    } else {
        v.to_string()
    }
}

/// The compact replay token for a decision sequence.
fn encode_schedule(decisions: impl Iterator<Item = usize>) -> String {
    decisions.map(encode_decision).collect::<Vec<_>>().join("-")
}

/// Parses a replay token back into a decision prefix. Panics (failing the
/// test loudly) on a malformed token — a truncated paste should not
/// silently explore from scratch.
fn decode_schedule(token: &str) -> Vec<usize> {
    token
        .split('-')
        .map(|part| {
            let (base, digits) = match part.as_bytes().first() {
                Some(b'f') => (FLUSH_BASE, &part[1..]),
                Some(b'r') => (READ_BASE, &part[1..]),
                _ => (0, part),
            };
            let n: usize = digits
                .parse()
                .unwrap_or_else(|_| panic!("loomette: malformed replay token part {part:?}"));
            base + n
        })
        .collect()
}

impl Explorer {
    /// Exhaustively explores every schedule of `f` within the preemption
    /// bound. Returns the number of schedules run. Panics (with the failing
    /// schedule) if any execution panics or deadlocks.
    pub fn explore(&self, f: impl Fn() + Send + Sync + 'static) -> usize {
        let f = Arc::new(f);
        let replaying = self.replay.is_some();
        let mut prefix: Vec<usize> = match &self.replay {
            Some(token) => decode_schedule(token),
            None => Vec::new(),
        };
        let mut runs = 0usize;
        loop {
            runs += 1;
            assert!(
                runs <= self.max_runs,
                "loomette: exceeded {} schedules — shrink the model (or raise LOOMETTE_MAX_RUNS)",
                self.max_runs
            );
            let sched = Arc::new(Scheduler::new(
                prefix.clone(),
                self.preemption_bound,
                self.mem_model,
            ));
            let f0 = Arc::clone(&f);
            let sched0 = Arc::clone(&sched);
            // Thread 0 runs the model body itself.
            let body = os_thread::spawn(move || {
                RUN_SCHED.with(|s| *s.borrow_mut() = Some(Arc::clone(&sched0)));
                with_current(&sched0, 0, || {
                    let out = panic::catch_unwind(AssertUnwindSafe(|| f0()));
                    if let Err(e) = out {
                        sched0.record_failure(0, panic_message(&*e));
                    }
                    sched0.finish(0);
                });
                RUN_SCHED.with(|s| *s.borrow_mut() = None);
            });
            sched.wait_all_done();
            // All model threads have passed `finish`; their OS threads exit
            // without further scheduling. Reap thread 0 (children are
            // detached once joined at the model level; OS-level join happens
            // in JoinHandle::join or leaks harmlessly past `finish`).
            let _ = body.join();
            let mut st = sched.st();
            if let Some(msg) = st.failed.take() {
                let token = encode_schedule(st.trace.iter().map(|c| c.options[c.chosen]));
                let model = self.mem_model.name();
                // Release the state lock before panicking: orphaned model
                // threads of the failed run may still be unwinding, and
                // their destructors take this lock.
                drop(st);
                panic!(
                    "loomette: model failed after {runs} schedule(s) [model={model}]\n  \
                     failure: {msg}\n  schedule token (N = run thread N, rN = read \
                     mod-order index N, fN = flush thread N's oldest store): {token}\n  \
                     replay deterministically with LOOMETTE_REPLAY={token} \
                     LOOMETTE_MODEL={model} LOOMETTE_PREEMPTIONS={bound}",
                    bound = self.preemption_bound,
                );
            }
            if replaying {
                // Replay mode: the requested schedule ran and passed.
                return runs;
            }
            // Depth-first: bump the deepest decision with an untried
            // alternative; drop everything below it.
            let mut trace: VecDeque<Choice> = st.trace.drain(..).collect();
            drop(st);
            loop {
                match trace.back_mut() {
                    None => return runs,
                    Some(c) if c.chosen + 1 < c.options.len() => {
                        c.chosen += 1;
                        break;
                    }
                    Some(_) => {
                        trace.pop_back();
                    }
                }
            }
            prefix = trace.iter().map(|c| c.options[c.chosen]).collect();
        }
    }
}
