//! The cooperative scheduler and schedule explorer.
//!
//! One model *run* executes the test body with real OS threads, but only one
//! thread is ever runnable at a time: every instrumented operation (atomic
//! access, fence, mutex acquire, spawn/join) is a *switch point* where the
//! scheduler decides which thread runs next. A run is therefore sequentially
//! consistent by construction and — because the test body is deterministic —
//! exactly reproducible from the sequence of scheduling decisions.
//!
//! Exploration is depth-first over that decision tree: after each run the
//! deepest decision with an untried alternative is bumped and the prefix is
//! replayed (the classic stateless-model-checking loop). The tree is pruned
//! with a context-switch bound: schedules may *preempt* a runnable thread at
//! most [`preemption_bound`](Explorer::preemption_bound) times (CHESS-style;
//! most concurrency bugs need very few preemptions). Forced switches — the
//! current thread blocked or finished — are always free.
//!
//! # The store-buffer (TSO) mode
//!
//! With [`Explorer::tso`] set (or `LOOMETTE_TSO=1`), the model adds x86-TSO
//! store buffers: each thread owns a FIFO of not-yet-visible atomic stores.
//! A non-`SeqCst` instrumented store is appended to its thread's buffer
//! instead of hitting memory; loads forward from the own buffer (newest
//! entry for the location) and otherwise read committed memory — so a load
//! can complete *before* an earlier store of the same thread becomes
//! visible, the one reordering TSO allows. `SeqCst` stores, all RMWs
//! (swap/CAS/fetch ops), `fence(SeqCst)`, and every scheduler-level
//! synchronization edge (mutex acquire/release, condvar ops, spawn, thread
//! finish) drain the issuing thread's buffer, exactly like the fence or
//! lock-prefixed instruction they compile to. Flush points in between are
//! non-deterministic: at every scheduling decision the explorer may commit
//! the oldest buffered entry of any thread instead of running a thread —
//! an *early flush* choice charged against the same preemption bound (it
//! is a "weirdness event" in the CHESS sense), which keeps the extra
//! branching bounded. The default behaviour — buffers draining as late as
//! possible — is the free path, and it is the one that exposes
//! store-buffering bugs.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread as os_thread;

/// Default preemption bound (see module docs). Overridable per model via
/// [`Explorer`] or the `LOOMETTE_PREEMPTIONS` environment variable.
pub const DEFAULT_PREEMPTION_BOUND: usize = 2;

/// The shared backing word of one instrumented atomic: the committed value
/// lives in a process-heap cell kept alive by `Arc` from both the atomic
/// object *and* any store-buffer entries targeting it, so a buffered store
/// can never dangle even if the atomic is dropped before the flush (the
/// collector scenarios drop their structures on thread 0 before `finish`).
/// All value types encode into the one `u64` (see `sync::atomic`).
pub(crate) type BackingCell = Arc<std::sync::atomic::AtomicU64>;

/// Scheduling-option encoding for "commit the oldest store-buffer entry of
/// thread `v - FLUSH_BASE`" (plain thread ids are always far below this).
const FLUSH_BASE: usize = usize::MAX / 2;

/// Hard cap on runs per [`crate::model`] call; exceeding it means the test
/// is too big to check exhaustively and should be shrunk.
pub const DEFAULT_MAX_RUNS: usize = 500_000;

thread_local! {
    /// The scheduler governing the current OS thread, if it is a model
    /// thread. `None` outside a model: instrumented ops degrade to their
    /// plain `std` behaviour.
    static CURRENT: Cell<Option<(*const Scheduler, usize)>> = const { Cell::new(None) };
}

/// Runs `f` with this thread registered as model thread `tid` of `sched`.
fn with_current<R>(sched: &Arc<Scheduler>, tid: usize, f: impl FnOnce() -> R) -> R {
    CURRENT.with(|c| c.set(Some((Arc::as_ptr(sched), tid))));
    let out = f();
    CURRENT.with(|c| c.set(None));
    out
}

/// The scheduler handle for the calling thread, or `None` outside a model.
///
/// # Safety of the raw pointer
///
/// The `Arc<Scheduler>` is kept alive by the spawn wrapper for the whole
/// time the TLS entry is set, so the pointer is always valid when read.
fn current() -> Option<(&'static Scheduler, usize)> {
    CURRENT.with(|c| c.get().map(|(p, tid)| (unsafe { &*p }, tid)))
}

/// What a model thread is currently able to do.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    /// Ready to execute.
    Runnable,
    /// Waiting for a loomette mutex to be released.
    BlockedMutex(usize),
    /// Waiting for a loomette condvar to be notified.
    BlockedCondvar(usize),
    /// Waiting for another model thread to finish.
    BlockedJoin(usize),
    /// Body returned (or unwound).
    Finished,
}

/// One recorded scheduling decision: the runnable candidates at the point
/// (in try order) and which one was taken this run.
#[derive(Clone, Debug)]
pub(crate) struct Choice {
    options: Vec<usize>,
    chosen: usize, // index into `options`
}

/// Mutable scheduler state, shared by every thread of one run.
struct State {
    threads: Vec<Run>,
    /// The single thread allowed to execute.
    current: usize,
    /// Decisions to replay from the previous run, as thread ids.
    prefix: Vec<usize>,
    /// How many recorded decision points have been passed this run.
    step: usize,
    /// Decisions recorded this run (only points with >1 option).
    trace: Vec<Choice>,
    /// Preemptive (non-forced) switches taken so far this run. In TSO mode
    /// early store-buffer flushes are charged here too.
    preemptions: usize,
    preemption_bound: usize,
    /// Store-buffer (TSO) mode: see the module docs.
    tso: bool,
    /// Per-thread FIFO store buffers (TSO mode; always empty otherwise),
    /// parallel to `threads`. Entries hold an owned handle to the backing
    /// cell so a pending store can never outlive its target.
    buffers: Vec<VecDeque<(BackingCell, u64)>>,
    /// Lock words for loomette mutexes, indexed by mutex id.
    mutexes: Vec<bool>,
    /// Number of condvar ids handed out this run (waiters are tracked in
    /// `threads` as [`Run::BlockedCondvar`]; a condvar itself is stateless).
    condvars: usize,
    /// First failure (panic) observed on any model thread.
    failed: Option<String>,
    finished: usize,
}

impl State {
    /// Picks the next thread to run, given that `me` has reached a switch
    /// point (`me_runnable` tells whether `me` could continue). Returns the
    /// chosen tid. Panics the model on deadlock.
    fn schedule(&mut self, me: usize, me_runnable: bool) -> usize {
        loop {
            let runnable: Vec<usize> = (0..self.threads.len())
                .filter(|&t| self.threads[t] == Run::Runnable && (t != me || me_runnable))
                .collect();
            if runnable.is_empty() {
                if self.finished == self.threads.len() {
                    return me; // run is over; value unused
                }
                // A pending store-buffer flush can never make a
                // scheduler-blocked thread runnable, so non-empty buffers
                // do not rescue this state: report the deadlock as-is.
                self.failed = Some(format!(
                    "deadlock: no runnable threads (states: {:?})",
                    self.threads
                ));
                return me;
            }
            // Candidate order: the current thread first (continuing is
            // free), then the others, which each cost one preemption while
            // `me` could have continued. Forced switches (me blocked or
            // finished) are free. In TSO mode, committing the oldest
            // buffered store of any thread is a further candidate, also
            // charged as a preemption (it deviates from the free
            // drain-as-late-as-possible path).
            let mut options: Vec<usize> = Vec::with_capacity(runnable.len());
            if me_runnable {
                options.push(me);
                if self.preemptions < self.preemption_bound {
                    options.extend(runnable.iter().copied().filter(|&t| t != me));
                }
            } else {
                options = runnable;
            }
            if self.tso && self.preemptions < self.preemption_bound {
                options.extend(
                    (0..self.buffers.len())
                        .filter(|&t| !self.buffers[t].is_empty())
                        .map(|t| FLUSH_BASE + t),
                );
            }
            let chosen = if options.len() == 1 {
                // No branching: not a recorded decision point.
                options[0]
            } else {
                let idx = if self.step < self.prefix.len() {
                    let want = self.prefix[self.step];
                    options
                        .iter()
                        .position(|&t| t == want)
                        .expect("replay divergence: recorded choice not available")
                } else {
                    0
                };
                self.step += 1;
                self.trace.push(Choice {
                    options: options.clone(),
                    chosen: idx,
                });
                options[idx]
            };
            if chosen >= FLUSH_BASE {
                // Commit one entry and decide again from the new memory
                // state; the current thread is not switched by a flush.
                let t = chosen - FLUSH_BASE;
                let (cell, val) = self.buffers[t]
                    .pop_front()
                    .expect("flush chosen for an empty buffer");
                cell.store(val, std::sync::atomic::Ordering::SeqCst);
                self.preemptions += 1;
                continue;
            }
            if me_runnable && chosen != me {
                self.preemptions += 1;
            }
            self.current = chosen;
            return chosen;
        }
    }

    /// Commits every pending store of thread `t`, oldest first (the TSO
    /// buffer-drain a fence / RMW / lock-prefixed instruction performs).
    fn drain_buffer(&mut self, t: usize) {
        while let Some((cell, val)) = self.buffers[t].pop_front() {
            cell.store(val, std::sync::atomic::Ordering::SeqCst);
        }
    }

    fn done(&self) -> bool {
        self.finished == self.threads.len() || self.failed.is_some()
    }
}

/// The per-run scheduler: shared state plus the condvar every model thread
/// parks on while it is not `current`.
pub(crate) struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
    /// Store-buffer (TSO) mode (copy of `State::tso` readable without the
    /// state lock, for the fast path of the instrumentation hooks).
    tso: bool,
    /// Set on failure so threads parked in their start-wait exit quickly.
    aborting: AtomicBool,
    /// Process-unique sequence number for this run. Instrumented mutexes
    /// cache their scheduler-side lock-word id keyed by this, so a mutex
    /// object that outlives one run re-registers with the next run's
    /// scheduler instead of indexing a stale id into a fresh table.
    run_seq: u64,
}

impl Scheduler {
    /// Locks the shared state, ignoring poisoning: a panicking model thread
    /// (the normal failure path) must not turn every subsequent state access
    /// — including ones inside destructors running during unwind — into a
    /// second panic.
    fn st(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn new(prefix: Vec<usize>, preemption_bound: usize, tso: bool) -> Self {
        static RUN_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        Scheduler {
            run_seq: RUN_SEQ.fetch_add(1, Ordering::Relaxed),
            tso,
            state: Mutex::new(State {
                threads: vec![Run::Runnable], // thread 0 = the model body
                current: 0,
                prefix,
                step: 0,
                trace: Vec::new(),
                preemptions: 0,
                preemption_bound,
                tso,
                buffers: vec![VecDeque::new()],
                mutexes: Vec::new(),
                condvars: 0,
                failed: None,
                finished: 0,
            }),
            cv: Condvar::new(),
            aborting: AtomicBool::new(false),
        }
    }

    /// Terminates this thread's participation after a model failure.
    ///
    /// Panics to unwind the thread body — but only if the thread is not
    /// *already* unwinding: a second panic inside a destructor running
    /// during unwind would abort the whole process. An unwinding thread
    /// instead returns and free-runs its teardown: every instrumented
    /// operation degrades to its real `std` primitive (see
    /// [`Self::degraded`]), which keeps teardown memory-safe without the
    /// scheduler.
    fn die(&self) {
        if !os_thread::panicking() {
            panic!("loomette: model failed on another thread");
        }
    }

    /// Whether the model has failed and scheduling is abandoned: threads
    /// finish (or unwind) on real primitives from here on.
    fn degraded(&self) -> bool {
        self.aborting.load(Ordering::SeqCst)
    }

    /// Marks the model failed (if a specific message has not been recorded
    /// yet, e.g. by the panicking thread itself) and wakes everyone.
    fn note_failure(&self, mut st: std::sync::MutexGuard<'_, State>) {
        if st.failed.is_none() {
            st.failed = Some("model failure".into());
        }
        self.aborting.store(true, Ordering::SeqCst);
        drop(st);
        self.cv.notify_all();
    }

    /// Blocks the calling model thread until it is scheduled. Returns
    /// `false` if the model failed in the meantime (the caller decides how
    /// to terminate — see [`Self::die`]).
    fn wait_for_turn(&self, me: usize) -> bool {
        let mut st = self.st();
        while st.current != me && !st.done() {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        st.failed.is_none()
    }

    /// The switch point every instrumented operation passes through.
    fn switch(&self, me: usize) {
        if self.degraded() {
            self.die();
            return;
        }
        {
            let mut st = self.st();
            st.schedule(me, true);
            if st.failed.is_some() {
                self.note_failure(st);
                self.die();
                return;
            }
            self.cv.notify_all();
        }
        if !self.wait_for_turn(me) {
            self.die();
        }
    }

    /// Blocks `me` with the given reason and hands the CPU to someone else.
    fn block(&self, me: usize, why: Run) {
        if self.degraded() {
            self.die();
            return;
        }
        {
            let mut st = self.st();
            st.threads[me] = why;
            st.schedule(me, false);
            if st.failed.is_some() {
                self.note_failure(st);
                self.die();
                return;
            }
            self.cv.notify_all();
        }
        if !self.wait_for_turn(me) {
            // Unblock ourselves for bookkeeping sanity, then terminate.
            let mut st = self.st();
            st.threads[me] = Run::Runnable;
            drop(st);
            self.die();
        }
    }

    /// Registers a new model thread, returning its tid. The thread starts
    /// runnable but does not execute until scheduled.
    fn register(&self) -> usize {
        let mut st = self.st();
        st.threads.push(Run::Runnable);
        st.buffers.push(VecDeque::new());
        st.threads.len() - 1
    }

    /// Marks `me` finished, wakes joiners, and schedules the next thread.
    fn finish(&self, me: usize) {
        let mut st = self.st();
        // TSO: a finishing thread's pending stores become visible before
        // any joiner proceeds (the join edge is a synchronization edge).
        st.drain_buffer(me);
        st.threads[me] = Run::Finished;
        st.finished += 1;
        for t in 0..st.threads.len() {
            if st.threads[t] == Run::BlockedJoin(me) {
                st.threads[t] = Run::Runnable;
            }
        }
        if !st.done() {
            st.schedule(me, false);
        }
        drop(st);
        self.cv.notify_all();
    }

    fn record_failure(&self, me: usize, msg: String) {
        let mut st = self.st();
        if st.failed.is_none() {
            st.failed = Some(format!("thread {me} panicked: {msg}"));
        }
        self.aborting.store(true, Ordering::SeqCst);
        drop(st);
        self.cv.notify_all();
    }

    fn alloc_mutex(&self) -> usize {
        let mut st = self.st();
        st.mutexes.push(false);
        st.mutexes.len() - 1
    }

    /// Scheduler-side mutex acquire: loops through switch points until the
    /// lock word is free, blocking (scheduler-level) while it is held.
    ///
    /// After a model failure the bookkeeping is skipped entirely: the
    /// caller falls through to the *real* mutex, whose own blocking is
    /// correct (and deadlock-free, because every holder's guard drop
    /// releases it during unwind) without the scheduler.
    fn mutex_lock(&self, me: usize, id: usize) {
        loop {
            if self.degraded() {
                self.die();
                return;
            }
            self.switch(me);
            {
                if self.degraded() {
                    self.die();
                    return;
                }
                let mut st = self.st();
                if !st.mutexes[id] {
                    st.mutexes[id] = true;
                    // TSO: a lock acquire is a full barrier (lock-prefixed
                    // RMW on the lock word); drain the acquirer's buffer.
                    st.drain_buffer(me);
                    return;
                }
            }
            self.block(me, Run::BlockedMutex(id));
        }
    }

    fn mutex_unlock(&self, me: usize, id: usize) {
        let mut st = self.st();
        // TSO: everything stored inside the critical section must be
        // committed before the lock word is seen free by the next holder.
        st.drain_buffer(me);
        st.mutexes[id] = false;
        for t in 0..st.threads.len() {
            if st.threads[t] == Run::BlockedMutex(id) {
                st.threads[t] = Run::Runnable;
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    fn alloc_condvar(&self) -> usize {
        let mut st = self.st();
        st.condvars += 1;
        st.condvars - 1
    }

    /// Scheduler-side condvar wait. The caller has already released the
    /// associated mutex (both the real guard and the scheduler lock word)
    /// *without passing a switch point in between*, so — only one model
    /// thread ever runs at a time — the unlock+wait pair is atomic with
    /// respect to the model and no wakeup can be lost. The thread wakes
    /// only on [`Self::condvar_notify_all`] (the model has no spurious
    /// wakeups: fewer wakeups than reality is sound for bug-finding, and a
    /// lost-wakeup bug in the code under test surfaces as a detected
    /// deadlock instead of a hang).
    fn condvar_wait(&self, me: usize, id: usize) {
        if self.degraded() {
            self.die();
            return;
        }
        self.block(me, Run::BlockedCondvar(id));
    }

    /// Wakes every thread waiting on condvar `id`; they become runnable and
    /// re-acquire their mutex through the normal scheduler-mediated path.
    fn condvar_notify_all(&self, me: usize, id: usize) {
        let mut st = self.st();
        // TSO: make the notifier's stores visible to woken waiters (the
        // wait side re-acquires its mutex, which is itself a barrier, but
        // draining here keeps the notify edge a full sync edge too).
        st.drain_buffer(me);
        for t in 0..st.threads.len() {
            if st.threads[t] == Run::BlockedCondvar(id) {
                st.threads[t] = Run::Runnable;
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    fn join(&self, me: usize, target: usize) {
        self.switch(me);
        if self.degraded() {
            // The caller's OS-level join is enough: the target thread
            // finishes (or unwinds) on real primitives.
            return;
        }
        let blocked = {
            let st = self.st();
            st.threads[target] != Run::Finished
        };
        if blocked {
            self.block(me, Run::BlockedJoin(target));
        }
    }

    /// Blocks the (non-model) driver thread until the run completes.
    fn wait_all_done(&self) {
        let mut st = self.st();
        while !st.done() {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

// ---- public hooks used by the sync / thread shims ----

/// A switch point: lets the scheduler preempt here. No-op outside a model.
pub fn switch_point() {
    if let Some((sched, tid)) = current() {
        sched.switch(tid);
    }
}

/// Yield: equivalent to a plain switch point (the scheduler may or may not
/// move on; exploration covers both).
pub fn yield_now() {
    switch_point();
}

pub(crate) fn with_scheduler<R>(f: impl FnOnce(&Scheduler, usize) -> R) -> Option<R> {
    current().map(|(sched, tid)| f(sched, tid))
}

pub(crate) fn mutex_id(sched: &Scheduler) -> usize {
    sched.alloc_mutex()
}

/// The process-unique sequence number of `sched`'s run; see
/// [`Scheduler::run_seq`].
pub(crate) fn run_seq(sched: &Scheduler) -> u64 {
    sched.run_seq
}

pub(crate) fn lock(sched: &Scheduler, me: usize, id: usize) {
    sched.mutex_lock(me, id);
}

pub(crate) fn unlock(sched: &Scheduler, me: usize, id: usize) {
    sched.mutex_unlock(me, id);
}

pub(crate) fn condvar_id(sched: &Scheduler) -> usize {
    sched.alloc_condvar()
}

pub(crate) fn condvar_wait(sched: &Scheduler, me: usize, id: usize) {
    sched.condvar_wait(me, id);
}

pub(crate) fn condvar_notify_all(sched: &Scheduler, me: usize, id: usize) {
    sched.condvar_notify_all(me, id);
}

// ---- TSO store-buffer hooks (see the module docs) ----
//
// Each hook is a no-op (returns the "not buffered" answer) outside a model,
// in SeqCst-exact mode, or once the model has degraded after a failure —
// the instrumented op then falls through to its real `std` primitive.

/// Store-to-load forwarding: the newest pending store *by the calling
/// thread* to `cell`, if any. A TSO load reads its own buffer first.
pub(crate) fn tso_buffered_load(cell: &BackingCell) -> Option<u64> {
    let (sched, me) = current()?;
    if !sched.tso || sched.degraded() {
        return None;
    }
    let st = sched.st();
    st.buffers[me]
        .iter()
        .rev()
        .find(|(c, _)| Arc::ptr_eq(c, cell))
        .map(|(_, v)| *v)
}

/// Appends a store to the calling thread's buffer instead of committing
/// it. With `drain` (a `SeqCst` store) the buffer — including the new
/// entry — is committed immediately, preserving SC semantics for the op.
/// Returns `false` if not in TSO mode (caller performs the real store).
pub(crate) fn tso_buffer_store(cell: &BackingCell, val: u64, drain: bool) -> bool {
    match current() {
        Some((sched, me)) if sched.tso && !sched.degraded() => {
            let mut st = sched.st();
            st.buffers[me].push_back((Arc::clone(cell), val));
            if drain {
                st.drain_buffer(me);
            }
            true
        }
        _ => false,
    }
}

/// Drains the calling thread's store buffer: the model-level effect of
/// `fence(SeqCst)` and of every RMW (which is a full barrier on TSO).
pub(crate) fn tso_drain() {
    if let Some((sched, me)) = current() {
        if sched.tso && !sched.degraded() {
            let mut st = sched.st();
            st.drain_buffer(me);
        }
    }
}

// ---- thread spawning ----

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    inner: os_thread::JoinHandle<Option<T>>,
    tid: usize,
}

impl<T> JoinHandle<T> {
    /// Waits (scheduler-level, then OS-level) for the thread to finish and
    /// returns its result.
    pub fn join(self) -> std::thread::Result<T> {
        let (sched, me) = current().expect("loomette join outside a model");
        sched.join(me, self.tid);
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            Ok(None) => Err(Box::new("model thread failed")),
            Err(e) => Err(e),
        }
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("tid", &self.tid)
            .finish()
    }
}

/// Spawns a model thread. Must be called from inside a model.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (sched_ref, _me) = current().expect("loomette spawn outside a model");
    // Re-create the Arc from the raw pointer we stored: the wrapper below
    // needs an owned handle that outlives the parent's stack frame.
    // Safety: `current()` guarantees the scheduler is alive; `ARCS` in the
    // runner keeps one strong reference for the whole run.
    let sched: Arc<Scheduler> = RUN_SCHED.with(|s| {
        s.borrow()
            .clone()
            .expect("loomette spawn outside a model run")
    });
    debug_assert!(std::ptr::eq(Arc::as_ptr(&sched), sched_ref as *const _));
    // TSO: the spawn edge synchronizes-with the child's start — the
    // parent's pending stores must be visible to the child's first load.
    tso_drain();
    let tid = sched.register();
    let sched2 = Arc::clone(&sched);
    let inner = os_thread::spawn(move || {
        // Make nested `spawn` possible from this thread too.
        RUN_SCHED.with(|s| *s.borrow_mut() = Some(Arc::clone(&sched2)));
        with_current(&sched2, tid, || {
            if !sched2.wait_for_turn(tid) || sched2.degraded() {
                // The model failed before this thread ever ran its body.
                sched2.finish(tid);
                return None;
            }
            let out = panic::catch_unwind(AssertUnwindSafe(f));
            match out {
                Ok(v) => {
                    sched2.finish(tid);
                    Some(v)
                }
                Err(e) => {
                    sched2.record_failure(tid, panic_message(&e));
                    sched2.finish(tid);
                    None
                }
            }
        })
    });
    JoinHandle { inner, tid }
}

thread_local! {
    /// Owned scheduler handle for the current model thread, cloned by
    /// `spawn` so child wrappers can own one too.
    static RUN_SCHED: std::cell::RefCell<Option<Arc<Scheduler>>> =
        const { std::cell::RefCell::new(None) };
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

// ---- the exploration driver ----

/// Exploration limits for one model.
pub struct Explorer {
    /// Maximum preemptive context switches per schedule (early TSO flushes
    /// are charged against the same bound).
    pub preemption_bound: usize,
    /// Hard cap on explored schedules.
    pub max_runs: usize,
    /// Explore under the store-buffer (TSO) memory model instead of
    /// SeqCst-exact: see the module docs. Defaults to the `LOOMETTE_TSO`
    /// environment variable.
    pub tso: bool,
}

impl Default for Explorer {
    fn default() -> Self {
        let bound = std::env::var("LOOMETTE_PREEMPTIONS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_PREEMPTION_BOUND);
        let tso = std::env::var("LOOMETTE_TSO")
            .map(|s| matches!(s.as_str(), "1" | "true" | "yes"))
            .unwrap_or(false);
        Explorer {
            preemption_bound: bound,
            max_runs: DEFAULT_MAX_RUNS,
            tso,
        }
    }
}

impl Explorer {
    /// Exhaustively explores every schedule of `f` within the preemption
    /// bound. Returns the number of schedules run. Panics (with the failing
    /// schedule) if any execution panics or deadlocks.
    pub fn explore(&self, f: impl Fn() + Send + Sync + 'static) -> usize {
        let f = Arc::new(f);
        let mut prefix: Vec<usize> = Vec::new();
        let mut runs = 0usize;
        loop {
            runs += 1;
            assert!(
                runs <= self.max_runs,
                "loomette: exceeded {} schedules — shrink the model",
                self.max_runs
            );
            let sched = Arc::new(Scheduler::new(
                prefix.clone(),
                self.preemption_bound,
                self.tso,
            ));
            let f0 = Arc::clone(&f);
            let sched0 = Arc::clone(&sched);
            // Thread 0 runs the model body itself.
            let body = os_thread::spawn(move || {
                RUN_SCHED.with(|s| *s.borrow_mut() = Some(Arc::clone(&sched0)));
                with_current(&sched0, 0, || {
                    let out = panic::catch_unwind(AssertUnwindSafe(|| f0()));
                    if let Err(e) = out {
                        sched0.record_failure(0, panic_message(&e));
                    }
                    sched0.finish(0);
                });
                RUN_SCHED.with(|s| *s.borrow_mut() = None);
            });
            sched.wait_all_done();
            // All model threads have passed `finish`; their OS threads exit
            // without further scheduling. Reap thread 0 (children are
            // detached once joined at the model level; OS-level join happens
            // in JoinHandle::join or leaks harmlessly past `finish`).
            let _ = body.join();
            let mut st = sched.st();
            if let Some(msg) = st.failed.take() {
                let decisions: Vec<String> = st
                    .trace
                    .iter()
                    .map(|c| {
                        let v = c.options[c.chosen];
                        if v >= FLUSH_BASE {
                            format!("flush:{}", v - FLUSH_BASE)
                        } else {
                            v.to_string()
                        }
                    })
                    .collect();
                // Release the state lock before panicking: orphaned model
                // threads of the failed run may still be unwinding, and
                // their destructors take this lock.
                drop(st);
                panic!(
                    "loomette: model failed after {runs} schedule(s)\n  \
                     failure: {msg}\n  schedule (thread ids, flush:T = \
                     store-buffer commit of thread T): {decisions:?}"
                );
            }
            // Depth-first: bump the deepest decision with an untried
            // alternative; drop everything below it.
            let mut trace: VecDeque<Choice> = st.trace.drain(..).collect();
            drop(st);
            loop {
                match trace.back_mut() {
                    None => return runs,
                    Some(c) if c.chosen + 1 < c.options.len() => {
                        c.chosen += 1;
                        break;
                    }
                    Some(_) => {
                        trace.pop_back();
                    }
                }
            }
            prefix = trace.iter().map(|c| c.options[c.chosen]).collect();
        }
    }
}
