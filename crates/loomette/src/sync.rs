//! Instrumented drop-in replacements for the `std::sync` primitives the
//! code under test uses.
//!
//! Every operation passes through a scheduler switch point *before* it
//! executes, so the explorer can interleave threads at exactly the places
//! where real hardware could. Because only one model thread runs at a time,
//! the underlying operation then executes on the real `std` primitive
//! without contention.
//!
//! Three memory models are supported (selected by
//! [`crate::Explorer::mem_model`] or `LOOMETTE_MODEL=sc|tso|acqrel`):
//!
//! * **SeqCst-exact** (default): every atomic executes as `SeqCst`, so the
//!   model is sequentially consistent by construction — exact for code
//!   whose atomics are all `SeqCst`, an under-approximation otherwise.
//! * **Store-buffer (TSO)**: non-`SeqCst` stores sit in a per-thread FIFO
//!   until a non-deterministic flush point; loads forward from the own
//!   buffer; RMWs, `SeqCst` stores and `fence(SeqCst)` drain it. This is
//!   the x86-TSO reordering (stores passing later loads) — see the
//!   `sched` module docs for the model and its limits vs. C11.
//! * **Acquire/release (AcqRel)**: per-location modification orders and a
//!   happens-before-constrained reads-from relation, with vector-clock
//!   hb tracking, release sequences, C11 fence semantics, and data-race
//!   detection on [`crate::cell::UnsafeCell`] — see the `sched` module
//!   docs for the full model and its documented gaps.
//!
//! Every atomic is backed by a shared heap `u64` cell
//! (`sched::BackingCell`) so that a buffered store keeps its target
//! alive and both modes execute the same code paths.

use crate::sched;

/// Instrumented atomics. Same API shape as `std::sync::atomic`, minus
/// `const fn new` (and the unsynchronized `get_mut`/`into_inner` accessors:
/// use a `load` — exclusive access makes any ordering race-free).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use std::sync::Arc;

    use crate::sched::{self, BackingCell};

    // The fetch ops below wrap at the backing cell's 64-bit width, which
    // must agree with the fronted integer type's width.
    const _: () = assert!(usize::BITS == 64, "loomette assumes a 64-bit target");

    /// An instrumented memory fence: a scheduler switch point followed by
    /// the real fence. In TSO mode a `SeqCst` fence also drains the calling
    /// thread's store buffer; weaker fences do not (on TSO, only the
    /// store→load reordering exists and only a full barrier kills it). In
    /// AcqRel mode the fence performs the C11 fence clock exchanges — a
    /// `SeqCst` fence joins the global SC clock both ways (the Dekker
    /// edge), acquire/release fences upgrade pending relaxed accesses.
    pub fn fence(order: Ordering) {
        sched::switch_point();
        if order == Ordering::SeqCst {
            sched::tso_drain();
        }
        sched::acqrel_fence(order);
        std::sync::atomic::fence(order);
    }

    /// A value an instrumented atomic can hold, encoded injectively into
    /// the shared `u64` backing cell.
    trait Word: Copy {
        fn enc(self) -> u64;
        fn dec(raw: u64) -> Self;
    }

    impl Word for u64 {
        fn enc(self) -> u64 {
            self
        }
        fn dec(raw: u64) -> u64 {
            raw
        }
    }

    impl Word for usize {
        fn enc(self) -> u64 {
            self as u64
        }
        fn dec(raw: u64) -> usize {
            raw as usize
        }
    }

    impl Word for bool {
        fn enc(self) -> u64 {
            self as u64
        }
        fn dec(raw: u64) -> bool {
            raw != 0
        }
    }

    impl<T> Word for *mut T {
        fn enc(self) -> u64 {
            self as usize as u64
        }
        fn dec(raw: u64) -> *mut T {
            raw as usize as *mut T
        }
    }

    fn new_cell(raw: u64) -> BackingCell {
        Arc::new(std::sync::atomic::AtomicU64::new(raw))
    }

    /// Load: the op's ordering routes into the active memory model. AcqRel
    /// mode explores the reads-from candidate set; TSO mode forwards the
    /// calling thread's newest pending store; SeqCst-exact mode (and
    /// outside a model) reads committed memory.
    fn op_load<W: Word>(c: &BackingCell, order: Ordering) -> W {
        sched::switch_point();
        if let Some(raw) = sched::acqrel_load(c, order) {
            return W::dec(raw);
        }
        if let Some(raw) = sched::tso_buffered_load(c) {
            return W::dec(raw);
        }
        W::dec(c.load(Ordering::SeqCst))
    }

    /// Store: appended to the location's modification order in AcqRel
    /// mode, buffered in TSO mode (committing immediately — with the rest
    /// of the buffer — when the op is `SeqCst`), committed directly in
    /// SeqCst-exact mode or outside a model.
    fn op_store<W: Word>(c: &BackingCell, v: W, order: Ordering) {
        sched::switch_point();
        if sched::acqrel_store(c, v.enc(), order) {
            return;
        }
        if sched::tso_buffer_store(c, v.enc(), order == Ordering::SeqCst) {
            return;
        }
        c.store(v.enc(), Ordering::SeqCst)
    }

    /// RMWs read the newest store in modification order (C11 atomicity —
    /// AcqRel mode, where they extend release sequences) and are full
    /// barriers on TSO (lock-prefixed): drain, then execute on committed
    /// memory.
    fn op_swap<W: Word>(c: &BackingCell, v: W, order: Ordering) -> W {
        sched::switch_point();
        if let Some(old) = sched::acqrel_rmw(c, order, |_| Some(v.enc())) {
            return W::dec(old);
        }
        sched::tso_drain();
        W::dec(c.swap(v.enc(), Ordering::SeqCst))
    }

    fn op_compare_exchange<W: Word>(
        c: &BackingCell,
        current: W,
        new: W,
        success: Ordering,
        failure: Ordering,
    ) -> Result<W, W> {
        sched::switch_point();
        let (cur, new_raw) = (current.enc(), new.enc());
        // A failed compare-exchange is just a load: route the failure
        // ordering; a successful one is an RMW with the success ordering.
        // Peek the newest value first to know which path this is — sound
        // because only one model thread runs between switch points.
        if let Some(old) = sched::acqrel_rmw(
            c,
            if c.load(Ordering::SeqCst) == cur {
                success
            } else {
                failure
            },
            |old| (old == cur).then_some(new_raw),
        ) {
            return if old == cur {
                Ok(W::dec(old))
            } else {
                Err(W::dec(old))
            };
        }
        sched::tso_drain();
        c.compare_exchange(cur, new_raw, Ordering::SeqCst, Ordering::SeqCst)
            .map(W::dec)
            .map_err(W::dec)
    }

    fn op_fetch_add<W: Word>(c: &BackingCell, v: W, order: Ordering) -> W {
        sched::switch_point();
        if let Some(old) = sched::acqrel_rmw(c, order, |old| Some(old.wrapping_add(v.enc()))) {
            return W::dec(old);
        }
        sched::tso_drain();
        W::dec(c.fetch_add(v.enc(), Ordering::SeqCst))
    }

    fn op_fetch_sub<W: Word>(c: &BackingCell, v: W, order: Ordering) -> W {
        sched::switch_point();
        if let Some(old) = sched::acqrel_rmw(c, order, |old| Some(old.wrapping_sub(v.enc()))) {
            return W::dec(old);
        }
        sched::tso_drain();
        W::dec(c.fetch_sub(v.enc(), Ordering::SeqCst))
    }

    macro_rules! instrumented_atomic {
        ($name:ident, $prim:ty) => {
            /// An instrumented atomic: every access is a scheduler switch
            /// point, backed by a shared cell the store-buffer model can
            /// keep alive past the atomic's own lifetime (see module docs).
            #[derive(Debug)]
            pub struct $name {
                cell: BackingCell,
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(<$prim>::default())
                }
            }

            impl $name {
                /// Creates a new atomic (not `const`, unlike `std`).
                pub fn new(v: $prim) -> Self {
                    Self {
                        cell: new_cell(Word::enc(v)),
                    }
                }

                /// Instrumented load; the ordering routes into the active
                /// memory model (reads-from exploration under AcqRel,
                /// store-buffer forwarding under TSO).
                pub fn load(&self, order: Ordering) -> $prim {
                    op_load(&self.cell, order)
                }

                /// Instrumented store; modification-order append (AcqRel)
                /// or buffered unless `SeqCst` (TSO).
                pub fn store(&self, v: $prim, order: Ordering) {
                    op_store(&self.cell, v, order)
                }

                /// Instrumented swap (reads the newest store under AcqRel;
                /// a full barrier under SC/TSO).
                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    op_swap(&self.cell, v, order)
                }

                /// Instrumented compare-exchange (under AcqRel a failed
                /// exchange is a load with the failure ordering; under
                /// SC/TSO a full barrier like x86 `lock cmpxchg`, even on
                /// failure).
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    op_compare_exchange(&self.cell, current, new, success, failure)
                }
            }
        };
    }

    macro_rules! instrumented_fetch_arith {
        ($name:ident, $prim:ty) => {
            impl $name {
                /// Instrumented fetch-add (an RMW: reads the newest store
                /// under AcqRel; a full barrier under SC/TSO).
                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    op_fetch_add(&self.cell, v, order)
                }

                /// Instrumented fetch-sub (an RMW, as `fetch_add`).
                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    op_fetch_sub(&self.cell, v, order)
                }
            }
        };
    }

    instrumented_atomic!(AtomicU64, u64);
    instrumented_atomic!(AtomicUsize, usize);
    instrumented_atomic!(AtomicBool, bool);
    instrumented_fetch_arith!(AtomicU64, u64);
    instrumented_fetch_arith!(AtomicUsize, usize);

    /// An instrumented atomic pointer: every access is a scheduler switch
    /// point; the pointer is encoded through the shared `u64` cell. Written
    /// out by hand because the pointee type parameter does not fit the
    /// macro's monomorphic shape.
    #[derive(Debug)]
    pub struct AtomicPtr<T> {
        cell: BackingCell,
        /// Mirrors `std::sync::atomic::AtomicPtr<T>`'s auto traits
        /// (`Send` and `Sync` for any `T`), which the cell alone would
        /// not pin down for the pointee parameter.
        _marker: std::marker::PhantomData<std::sync::atomic::AtomicPtr<T>>,
    }

    impl<T> Default for AtomicPtr<T> {
        fn default() -> Self {
            Self::new(std::ptr::null_mut())
        }
    }

    impl<T> AtomicPtr<T> {
        /// Creates a new atomic pointer (not `const`, unlike `std`).
        pub fn new(p: *mut T) -> Self {
            Self {
                cell: new_cell(Word::enc(p)),
                _marker: std::marker::PhantomData,
            }
        }

        /// Instrumented load; the ordering routes into the active memory
        /// model.
        pub fn load(&self, order: Ordering) -> *mut T {
            op_load(&self.cell, order)
        }

        /// Instrumented store; modification-order append (AcqRel) or
        /// buffered unless `SeqCst` (TSO).
        pub fn store(&self, p: *mut T, order: Ordering) {
            op_store(&self.cell, p, order)
        }

        /// Instrumented swap (an RMW: reads the newest store under
        /// AcqRel; a full barrier under SC/TSO).
        pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
            op_swap(&self.cell, p, order)
        }

        /// Instrumented compare-exchange (see the integer atomics).
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            op_compare_exchange(&self.cell, current, new, success, failure)
        }
    }
}

/// An instrumented mutex.
///
/// Acquisition is mediated by the scheduler: a thread that finds the lock
/// held blocks at the *scheduler* level (so the explorer can run the
/// holder), and the underlying `std` mutex is then always taken without
/// contention. Outside a model it degrades to a plain `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    /// Scheduler-side lock-word id, assigned on first acquisition within a
    /// model run and keyed by that run's sequence number: a mutex object
    /// that outlives one `model` run re-registers with the next run's
    /// scheduler instead of indexing a stale id into its fresh lock table.
    /// (Assignment order is deterministic per run, so ids are too.)
    id: std::sync::Mutex<Option<(u64, usize)>>,
}

impl<T> Mutex<T> {
    /// Creates a new instrumented mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
            id: std::sync::Mutex::new(None),
        }
    }

    /// This mutex's lock-word id in `sched`'s run, (re)assigned if it was
    /// created outside the run (or in an earlier one).
    fn run_id(&self, sched: &crate::sched::Scheduler) -> usize {
        let run = sched::run_seq(sched);
        let mut slot = self
            .id
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match *slot {
            Some((r, id)) if r == run => id,
            _ => {
                let id = sched::mutex_id(sched);
                *slot = Some((run, id));
                id
            }
        }
    }

    /// Acquires the mutex; see the type docs for semantics.
    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        let in_model = sched::with_scheduler(|sched, me| {
            let id = self.run_id(sched);
            sched::lock(sched, me, id);
        })
        .is_some();
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        Ok(MutexGuard {
            guard: Some(guard),
            mutex: self,
            in_model,
        })
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> std::sync::LockResult<&mut T> {
        Ok(self
            .inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner()))
    }
}

/// RAII guard for [`Mutex`]; releases the scheduler-side lock word on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
    mutex: &'a Mutex<T>,
    in_model: bool,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().unwrap()
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().unwrap()
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Real unlock first, then the scheduler lock word: both happen
        // while this thread is the only one running, so the order is
        // invisible to the model — but the real lock must be free before
        // another thread's (uncontended) `inner.lock()`.
        self.guard.take();
        if self.in_model {
            sched::with_scheduler(|sched, me| {
                let slot = self
                    .mutex
                    .id
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                if let Some((run, id)) = *slot {
                    if run == sched::run_seq(sched) {
                        drop(slot);
                        sched::unlock(sched, me, id);
                    }
                }
            });
        }
    }
}

/// An instrumented condition variable.
///
/// Inside a model, waiting is scheduler-level: the guard's mutex is
/// released and the thread blocks until a [`notify_all`](Self::notify_all)
/// — with no switch point between unlock and wait, so (only one model
/// thread ever runs) no wakeup can be lost. The model has no spurious
/// wakeups: waking *less* often than reality is sound for bug-finding, and
/// a lost-wakeup bug in the code under test becomes a detected deadlock.
/// Outside a model it degrades to a plain `std::sync::Condvar`.
///
/// `notify_one` is deliberately not provided: picking *which* waiter wakes
/// is a scheduling decision this checker does not explore, so modeling it
/// faithfully would require condvar-waiter choice points. Code under test
/// uses `notify_all` and re-checks its predicate, as condvar code must.
#[derive(Debug, Default)]
pub struct Condvar {
    real: std::sync::Condvar,
    /// Scheduler-side condvar id, run-keyed exactly like [`Mutex::id`].
    id: std::sync::Mutex<Option<(u64, usize)>>,
}

impl Condvar {
    /// Creates a new instrumented condvar.
    pub fn new() -> Self {
        Self::default()
    }

    /// This condvar's id in `sched`'s run, (re)assigned if it was created
    /// outside the run (or in an earlier one).
    fn run_id(&self, sched: &crate::sched::Scheduler) -> usize {
        let run = sched::run_seq(sched);
        let mut slot = self
            .id
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match *slot {
            Some((r, id)) if r == run => id,
            _ => {
                let id = sched::condvar_id(sched);
                *slot = Some((run, id));
                id
            }
        }
    }

    /// Releases `guard`'s mutex and blocks until notified, then re-acquires
    /// the mutex. Callers must re-check their predicate in a loop, exactly
    /// as with `std`.
    pub fn wait<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
    ) -> std::sync::LockResult<MutexGuard<'a, T>> {
        let mutex = guard.mutex;
        if guard.in_model {
            // Dropping the guard releases the real lock and the scheduler
            // lock word (waking scheduler-blocked contenders) without
            // passing a switch point; the wait below then blocks before any
            // other thread has run, so the unlock+wait pair is atomic in
            // the model and no notification can slip between them.
            drop(guard);
            sched::with_scheduler(|sched, me| {
                let id = self.run_id(sched);
                sched::condvar_wait(sched, me, id);
            });
            mutex.lock()
        } else {
            // Outside a model: a real wait on the real condvar, on the
            // real guard extracted from the wrapper (whose drop is then a
            // no-op: no inner guard, not in a model).
            let inner = guard
                .guard
                .take()
                .expect("loomette MutexGuard without inner guard");
            let inner = self
                .real
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            Ok(MutexGuard {
                guard: Some(inner),
                mutex,
                in_model: false,
            })
        }
    }

    /// Wakes every waiter. Inside a model this is an instrumented switch
    /// point followed by a scheduler-level wake; outside, a real
    /// `notify_all`.
    pub fn notify_all(&self) {
        sched::switch_point();
        let in_model = sched::with_scheduler(|sched, me| {
            let id = self.run_id(sched);
            sched::condvar_notify_all(sched, me, id);
        })
        .is_some();
        if !in_model {
            self.real.notify_all();
        }
    }
}
