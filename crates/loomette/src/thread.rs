//! Model-thread spawning, mirroring the `std::thread` API subset that
//! protocol tests need.

pub use crate::sched::{spawn, JoinHandle};

/// A scheduler switch point, semantically a yield: the explorer may run any
/// other thread here (or keep running this one — both are explored).
pub fn yield_now() {
    crate::sched::yield_now();
}
