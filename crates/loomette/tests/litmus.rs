//! Classic memory-model litmus tests, asserted against an expected-outcome
//! table under all three loomette models.
//!
//! Each litmus body records whether its *weak outcome* (the result a
//! sequentially consistent execution forbids) was observed anywhere in the
//! exploration; the table says which model must exhibit it and which must
//! forbid it. This is the acceptance gate for the AcqRel tier: the same
//! table appears in `docs/CONCURRENCY.md` §6.
//!
//! | litmus | weak outcome | SC | TSO | AcqRel |
//! |---|---|---|---|---|
//! | MP (rlx flag)    | flag seen, data stale        | forbid | forbid | **allow** |
//! | MP (rel/acq)     | 〃                           | forbid | forbid | forbid |
//! | SB (rel/acq)     | both loads see 0             | forbid | **allow** | **allow** |
//! | SB (SeqCst)      | 〃                           | forbid | forbid | forbid |
//! | LB (rlx)         | both loads see 1             | forbid | forbid | forbid¹ |
//! | IRIW (rel/acq)   | readers disagree on order    | forbid | forbid | **allow** |
//! | IRIW (SeqCst)    | 〃                           | forbid | forbid | forbid |
//! | WRC (rlx link)   | causal chain broken          | forbid | forbid | **allow** |
//! | WRC (rel/acq)    | 〃                           | forbid | forbid | forbid² |
//! | ISA2 (rlx link)  | 〃                           | forbid | forbid | **allow** |
//! | ISA2 (rel/acq)   | 〃                           | forbid | forbid | forbid |
//!
//! ¹ C11 allows the LB weak outcome for relaxed accesses, but loomette's
//!   operational model cannot produce it: a load only reads stores that
//!   have already executed, so a cycle through two not-yet-executed stores
//!   is unrepresentable (the same under-approximation loom documents).
//!   The row pins the *model's* documented behaviour, not the standard's.
//! ² Forbidden by read-read coherence (CoRR): the acquire chain makes the
//!   middle thread's read of `x` happen-before the final read, which may
//!   then not read mod-order-backwards.

use loomette::sync::atomic::{AtomicUsize, Ordering};
use loomette::{Explorer, MemModel, DEFAULT_MAX_RUNS, DEFAULT_PREEMPTION_BOUND};
use std::sync::atomic::AtomicBool as StdBool;
use std::sync::atomic::Ordering as StdOrd;
use std::sync::Arc;

/// An explorer pinned to `model`, independent of the environment so the
/// table holds regardless of which CI leg runs this suite.
fn explorer(model: MemModel) -> Explorer {
    Explorer {
        preemption_bound: DEFAULT_PREEMPTION_BOUND,
        max_runs: DEFAULT_MAX_RUNS,
        mem_model: model,
        replay: None,
    }
}

/// Runs `mk`'s litmus body under `model` and reports whether any explored
/// schedule set the weak-outcome flag.
fn observes(
    model: MemModel,
    mk: impl Fn(Arc<StdBool>) -> Box<dyn Fn() + Send + Sync + 'static>,
) -> bool {
    let saw = Arc::new(StdBool::new(false));
    let body = mk(Arc::clone(&saw));
    let runs = explorer(model).explore(body);
    assert!(runs > 0, "no schedules explored under {}", model.name());
    saw.load(StdOrd::SeqCst)
}

/// Asserts one table row: the weak outcome is observed under exactly the
/// models `allowed` lists.
fn assert_row(
    name: &str,
    allowed: &[MemModel],
    mk: impl Fn(Arc<StdBool>) -> Box<dyn Fn() + Send + Sync + 'static>,
) {
    for model in [MemModel::Sc, MemModel::Tso, MemModel::AcqRel] {
        let expected = allowed.contains(&model);
        let saw = observes(model, &mk);
        assert_eq!(
            saw,
            expected,
            "{name}: weak outcome {} under {} (table says {})",
            if saw { "observed" } else { "not observed" },
            model.name(),
            if expected { "allow" } else { "forbid" },
        );
    }
}

// ---- MP: message passing ----
//
//   T1: data = 42;          T2: r1 = flag;
//       flag = 1;               r2 = data;
//
// Weak outcome: r1 == 1 && r2 != 42.

fn mp(store: Ordering, load: Ordering, saw: Arc<StdBool>) -> Box<dyn Fn() + Send + Sync> {
    Box::new(move || {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let saw = Arc::clone(&saw);
        let t = loomette::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, store);
        });
        if flag.load(load) == 1 && data.load(Ordering::Relaxed) != 42 {
            saw.store(true, StdOrd::SeqCst);
        }
        t.join().unwrap();
    })
}

#[test]
fn mp_relaxed_flag() {
    assert_row("MP (rlx flag)", &[MemModel::AcqRel], |saw| {
        mp(Ordering::Relaxed, Ordering::Relaxed, saw)
    });
}

#[test]
fn mp_release_acquire() {
    assert_row("MP (rel/acq)", &[], |saw| {
        mp(Ordering::Release, Ordering::Acquire, saw)
    });
}

// ---- SB: store buffering (Dekker) ----
//
//   T1: x = 1;              T2: y = 1;
//       r1 = y;                 r2 = x;
//
// Weak outcome: r1 == 0 && r2 == 0.

fn sb(store: Ordering, load: Ordering, saw: Arc<StdBool>) -> Box<dyn Fn() + Send + Sync> {
    Box::new(move || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let saw = Arc::clone(&saw);
        let t = loomette::thread::spawn(move || {
            x2.store(1, store);
            y2.load(load)
        });
        y.store(1, store);
        let r1 = x.load(load);
        let r2 = t.join().unwrap();
        if r1 == 0 && r2 == 0 {
            saw.store(true, StdOrd::SeqCst);
        }
    })
}

#[test]
fn sb_release_acquire() {
    assert_row("SB (rel/acq)", &[MemModel::Tso, MemModel::AcqRel], |saw| {
        sb(Ordering::Release, Ordering::Acquire, saw)
    });
}

#[test]
fn sb_seqcst() {
    assert_row("SB (SeqCst)", &[], |saw| {
        sb(Ordering::SeqCst, Ordering::SeqCst, saw)
    });
}

// ---- LB: load buffering ----
//
//   T1: r1 = x;             T2: r2 = y;
//       y = 1;                  x = 1;
//
// Weak outcome: r1 == 1 && r2 == 1. C11 allows it for relaxed accesses;
// loomette's operational model cannot exhibit it (a load only reads
// already-executed stores), so the row pins "forbidden everywhere" as the
// documented under-approximation — see the module docs.

#[test]
fn lb_relaxed() {
    assert_row("LB (rlx)", &[], |saw| {
        Box::new(move || {
            let x = Arc::new(AtomicUsize::new(0));
            let y = Arc::new(AtomicUsize::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let saw = Arc::clone(&saw);
            let t = loomette::thread::spawn(move || {
                let r1 = x2.load(Ordering::Relaxed);
                y2.store(1, Ordering::Relaxed);
                r1
            });
            let r2 = y.load(Ordering::Relaxed);
            x.store(1, Ordering::Relaxed);
            let r1 = t.join().unwrap();
            if r1 == 1 && r2 == 1 {
                saw.store(true, StdOrd::SeqCst);
            }
        })
    });
}

// ---- IRIW: independent reads of independent writes ----
//
//   W1: x = 1;   W2: y = 1;
//   R1: r1 = x; r2 = y;     R2: r3 = y; r4 = x;
//
// Weak outcome: r1 == 1 && r2 == 0 && r3 == 1 && r4 == 0 — the two
// readers observe the independent writes in opposite orders, which no
// multi-copy-atomic model (SC, TSO) can produce. C11 allows it even for
// Release stores / Acquire loads; only SeqCst everywhere forbids it.

fn iriw(store: Ordering, load: Ordering, saw: Arc<StdBool>) -> Box<dyn Fn() + Send + Sync> {
    Box::new(move || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (xw, yw) = (Arc::clone(&x), Arc::clone(&y));
        let (xr1, yr1) = (Arc::clone(&x), Arc::clone(&y));
        let (xr2, yr2) = (Arc::clone(&x), Arc::clone(&y));
        let saw = Arc::clone(&saw);
        let w1 = loomette::thread::spawn(move || xw.store(1, store));
        let w2 = loomette::thread::spawn(move || yw.store(1, store));
        let r1 = loomette::thread::spawn(move || (xr1.load(load), yr1.load(load)));
        let (r3, r4) = (yr2.load(load), xr2.load(load));
        let (r1v, r2v) = r1.join().unwrap();
        w1.join().unwrap();
        w2.join().unwrap();
        if r1v == 1 && r2v == 0 && r3 == 1 && r4 == 0 {
            saw.store(true, StdOrd::SeqCst);
        }
    })
}

#[test]
fn iriw_release_acquire() {
    assert_row("IRIW (rel/acq)", &[MemModel::AcqRel], |saw| {
        iriw(Ordering::Release, Ordering::Acquire, saw)
    });
}

#[test]
fn iriw_seqcst() {
    assert_row("IRIW (SeqCst)", &[], |saw| {
        iriw(Ordering::SeqCst, Ordering::SeqCst, saw)
    });
}

// ---- WRC: write-to-read causality ----
//
//   W:  x = 1;   T2: r1 = x;   T3: r2 = y;
//                    y = 1;        r3 = x;
//
// Weak outcome: r1 == 1 && r2 == 1 && r3 == 0 — T3 observes the causal
// consequence (y) but not its cause (x). With a Release store of y and
// Acquire loads the chain transfers: T2's read of x == 1 happens-before
// T3's read of x, and read-read coherence forbids reading backwards.
// With a relaxed link there is no chain, and AcqRel exhibits the break.

fn wrc(
    link_store: Ordering,
    link_load: Ordering,
    saw: Arc<StdBool>,
) -> Box<dyn Fn() + Send + Sync> {
    Box::new(move || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let xw = Arc::clone(&x);
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let saw = Arc::clone(&saw);
        let w = loomette::thread::spawn(move || xw.store(1, Ordering::Relaxed));
        let t2 = loomette::thread::spawn(move || {
            let r1 = x2.load(Ordering::Relaxed);
            y2.store(1, link_store);
            r1
        });
        let r2 = y.load(link_load);
        let r3 = x.load(Ordering::Relaxed);
        let r1 = t2.join().unwrap();
        w.join().unwrap();
        if r1 == 1 && r2 == 1 && r3 == 0 {
            saw.store(true, StdOrd::SeqCst);
        }
    })
}

#[test]
fn wrc_relaxed_link() {
    assert_row("WRC (rlx link)", &[MemModel::AcqRel], |saw| {
        wrc(Ordering::Relaxed, Ordering::Relaxed, saw)
    });
}

#[test]
fn wrc_release_acquire() {
    assert_row("WRC (rel/acq)", &[], |saw| {
        wrc(Ordering::Release, Ordering::Acquire, saw)
    });
}

// ---- ISA2: transitive release/acquire chain ----
//
//   T1: x = 1;   T2: r1 = y;   T3: r2 = z;
//       y = 1;       z = 1;        r3 = x;
//
// Weak outcome: r1 == 1 && r2 == 1 && r3 == 0 — the hand-off chain
// x→y→z leaks. A full Release/Acquire chain transfers hb transitively
// (vector clocks join at each acquire), so the leak is forbidden;
// relaxing the middle link (T2's store of z) breaks the chain.

fn isa2(link_store: Ordering, saw: Arc<StdBool>) -> Box<dyn Fn() + Send + Sync> {
    Box::new(move || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let z = Arc::new(AtomicUsize::new(0));
        let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
        let (y2, z2) = (Arc::clone(&y), Arc::clone(&z));
        let saw = Arc::clone(&saw);
        let t1 = loomette::thread::spawn(move || {
            x1.store(1, Ordering::Relaxed);
            y1.store(1, Ordering::Release);
        });
        let t2 = loomette::thread::spawn(move || {
            let r1 = y2.load(Ordering::Acquire);
            z2.store(1, link_store);
            r1
        });
        let r2 = z.load(Ordering::Acquire);
        let r3 = x.load(Ordering::Relaxed);
        let r1 = t2.join().unwrap();
        t1.join().unwrap();
        if r1 == 1 && r2 == 1 && r3 == 0 {
            saw.store(true, StdOrd::SeqCst);
        }
    })
}

#[test]
fn isa2_relaxed_link() {
    assert_row("ISA2 (rlx link)", &[MemModel::AcqRel], |saw| {
        isa2(Ordering::Relaxed, saw)
    });
}

#[test]
fn isa2_release_acquire() {
    assert_row("ISA2 (rel/acq)", &[], |saw| isa2(Ordering::Release, saw));
}
