//! The lock-serialized comparison baseline.
//!
//! Models the pre-Bonsai kernel design the paper argues against: one
//! address-space-wide reader/writer lock (`mmap_sem`) protecting an
//! ordered map of regions. Faults take the lock shared, mutations take it
//! exclusive — so every fault still bounces the lock's cache line between
//! cores, which is precisely the serialization the RCU backend removes.

use std::collections::BTreeMap;
use std::sync::RwLock;

use bonsai::AddressSpace;

/// A `RwLock<BTreeMap>` address space: regions keyed by start address,
/// carrying their exclusive end.
#[derive(Debug, Default)]
pub struct LockedAddressSpace {
    regions: RwLock<BTreeMap<u64, u64>>,
}

impl LockedAddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AddressSpace for LockedAddressSpace {
    fn fault(&self, addr: u64) -> bool {
        let regions = self.regions.read().unwrap();
        regions
            .range(..=addr)
            .next_back()
            .is_some_and(|(_, &end)| addr < end)
    }

    fn map(&self, start: u64, end: u64) -> bool {
        assert!(start < end, "empty or inverted range {start:#x}..{end:#x}");
        let mut regions = self.regions.write().unwrap();
        if let Some((_, &pred_end)) = regions.range(..=start).next_back() {
            if pred_end > start {
                return false;
            }
        }
        if let Some((&succ_start, _)) = regions.range(start..).next() {
            if succ_start < end {
                return false;
            }
        }
        regions.insert(start, end);
        true
    }

    fn unmap(&self, start: u64) -> bool {
        self.regions.write().unwrap().remove(&start).is_some()
    }

    fn regions(&self) -> usize {
        self.regions.read().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrors_range_map_semantics() {
        let s = LockedAddressSpace::new();
        assert!(s.map(0x2000, 0x4000));
        // Middle, start-straddling, end-straddling, enclosing, identical.
        assert!(!s.map(0x2800, 0x3000));
        assert!(!s.map(0x1000, 0x2001));
        assert!(!s.map(0x3fff, 0x5000));
        assert!(!s.map(0x1000, 0x6000));
        assert!(!s.map(0x2000, 0x4000));
        // Adjacent is fine.
        assert!(s.map(0x1000, 0x2000));
        assert!(s.map(0x4000, 0x5000));
        assert_eq!(s.regions(), 3);

        assert!(!s.fault(0x0fff));
        assert!(s.fault(0x1000));
        assert!(s.fault(0x3fff));
        assert!(!s.fault(0x5000));

        assert!(s.unmap(0x2000));
        assert!(!s.unmap(0x2000));
        assert!(!s.fault(0x2800));
    }
}
