//! The lock-serialized comparison baseline.
//!
//! Models the pre-Bonsai kernel design the paper argues against: one
//! address-space-wide reader/writer lock (`mmap_sem`) protecting an
//! ordered map of regions. Faults take the lock shared, mutations take it
//! exclusive — so every fault still bounces the lock's cache line between
//! cores, which is precisely the serialization the RCU backend removes.

use std::collections::BTreeMap;
use std::sync::RwLock;

use bonsai::AddressSpace;

/// A `RwLock<BTreeMap>` address space: regions keyed by start address,
/// carrying their exclusive end.
#[derive(Debug, Default)]
pub struct LockedAddressSpace {
    regions: RwLock<BTreeMap<u64, u64>>,
}

impl LockedAddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AddressSpace for LockedAddressSpace {
    fn fault(&self, addr: u64) -> bool {
        let regions = self.regions.read().unwrap();
        regions
            .range(..=addr)
            .next_back()
            .is_some_and(|(_, &end)| addr < end)
    }

    fn map(&self, start: u64, end: u64) -> bool {
        assert!(start < end, "empty or inverted range {start:#x}..{end:#x}");
        let mut regions = self.regions.write().unwrap();
        if let Some((_, &pred_end)) = regions.range(..=start).next_back() {
            if pred_end > start {
                return false;
            }
        }
        if let Some((&succ_start, _)) = regions.range(start..).next() {
            if succ_start < end {
                return false;
            }
        }
        regions.insert(start, end);
        true
    }

    fn unmap(&self, start: u64) -> bool {
        self.regions.write().unwrap().remove(&start).is_some()
    }

    fn unmap_range(&self, start: u64, end: u64) -> usize {
        assert!(start < end, "empty or inverted range {start:#x}..{end:#x}");
        let mut regions = self.regions.write().unwrap();
        let mut affected = 0;
        // A region starting strictly before `start` that reaches into the
        // span: truncate it (and keep its tail if it encloses the span).
        if let Some((&a, &b)) = regions.range(..start).next_back() {
            if b > start {
                regions.insert(a, start);
                if b > end {
                    regions.insert(end, b);
                }
                affected += 1;
            }
        }
        // Regions starting inside the span: remove, keeping a tail piece
        // if one straddles `end`.
        let inside: Vec<(u64, u64)> = regions.range(start..end).map(|(&s, &e)| (s, e)).collect();
        for (s, e) in inside {
            regions.remove(&s);
            if e > end {
                regions.insert(end, e);
            }
            affected += 1;
        }
        affected
    }

    fn regions(&self) -> usize {
        self.regions.read().unwrap().len()
    }

    fn fork(&self) -> Box<dyn AddressSpace> {
        // The design being argued against has no structural sharing to
        // lean on: fork is a deep copy of the whole region map, O(n),
        // under the shared lock (blocking every mutator for the duration).
        Box::new(LockedAddressSpace {
            regions: RwLock::new(self.regions.read().unwrap().clone()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrors_range_map_semantics() {
        let s = LockedAddressSpace::new();
        assert!(s.map(0x2000, 0x4000));
        // Middle, start-straddling, end-straddling, enclosing, identical.
        assert!(!s.map(0x2800, 0x3000));
        assert!(!s.map(0x1000, 0x2001));
        assert!(!s.map(0x3fff, 0x5000));
        assert!(!s.map(0x1000, 0x6000));
        assert!(!s.map(0x2000, 0x4000));
        // Adjacent is fine.
        assert!(s.map(0x1000, 0x2000));
        assert!(s.map(0x4000, 0x5000));
        assert_eq!(s.regions(), 3);

        assert!(!s.fault(0x0fff));
        assert!(s.fault(0x1000));
        assert!(s.fault(0x3fff));
        assert!(!s.fault(0x5000));

        assert!(s.unmap(0x2000));
        assert!(!s.unmap(0x2000));
        assert!(!s.fault(0x2800));
    }

    /// `unmap_range` must mirror `RangeMap::unmap_range` exactly: removal
    /// of inside regions, head truncation, tail survival, enclosing split.
    #[test]
    fn unmap_range_mirrors_range_map_semantics() {
        let s = LockedAddressSpace::new();
        assert!(s.map(0x1000, 0x3000)); // head straddler
        assert!(s.map(0x3000, 0x4000)); // fully inside
        assert!(s.map(0x5000, 0x8000)); // tail straddler
        assert_eq!(s.unmap_range(0x2000, 0x6000), 3);
        assert!(s.fault(0x1fff));
        assert!(!s.fault(0x2000));
        assert!(!s.fault(0x5fff));
        assert!(s.fault(0x6000));
        assert_eq!(s.regions(), 2);
        assert_eq!(s.unmap_range(0x2000, 0x6000), 0);

        // Enclosing split.
        let s = LockedAddressSpace::new();
        assert!(s.map(0x1000, 0x6000));
        assert_eq!(s.unmap_range(0x3000, 0x4000), 1);
        assert!(s.fault(0x2fff));
        assert!(!s.fault(0x3000));
        assert!(!s.fault(0x3fff));
        assert!(s.fault(0x4000));
        assert!(s.map(0x3000, 0x4000));
    }
}
