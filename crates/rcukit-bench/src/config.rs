//! CLI parsing for the two harness modes.
//!
//! * **Legacy mode** (default): the original fixed-duration N-readers/
//!   1-writer loop — `rcukit-bench [readers=N] [duration_ms=N] [keys=N]
//!   [workload=tree|range|both]`.
//! * **Sweep mode** (`--sweep`): the paper's evaluation — deterministic
//!   trace replay against both backends across thread counts, emitting a
//!   `BENCH_addrspace.json` trajectory.
//!
//! Parsing is pure (`&[String] -> Result<Mode, String>`) so validation is
//! unit-testable; `main` only turns errors into usage text and exit codes.

use std::time::Duration;

use crate::sweep::{Backend, SweepConfig};
use crate::workload::Profile;

/// Usage text printed on any parse error.
pub const USAGE: &str = "usage:
  rcukit-bench [readers=N] [duration_ms=N] [keys=N] [workload=tree|range|both]
  rcukit-bench --sweep [threads=1,2,4]
               [profile=metis|metis-phased|psearchy|read-heavy|uniform|writers|\
stalled-reader|fork-storm|all]
               [backend=bonsai|qsbr|hp|hybrid|locked|both|all] [ops=N] [slots=N]
               [pages=N] [seed=N] [forks=N] [live=N] [out=PATH|-]";

/// Which structure(s) the legacy mode drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LegacyWorkload {
    /// Point lookups on `BonsaiTree`.
    Tree,
    /// VMA-style `lookup` on `RangeMap`.
    Range,
    /// Both, in sequence.
    Both,
}

impl LegacyWorkload {
    /// Parses a CLI workload name.
    pub fn parse(s: &str) -> Result<LegacyWorkload, String> {
        match s {
            "tree" => Ok(LegacyWorkload::Tree),
            "range" => Ok(LegacyWorkload::Range),
            "both" => Ok(LegacyWorkload::Both),
            other => Err(format!(
                "unknown workload {other:?} (expected tree|range|both)"
            )),
        }
    }
}

/// Configuration for the legacy fixed-duration mode.
#[derive(Clone, Debug)]
pub struct LegacyConfig {
    /// Reader thread count.
    pub readers: usize,
    /// How long each workload runs.
    pub duration: Duration,
    /// Key-space size (the range workload maps `keys/4` region slots).
    pub keys: u64,
    /// Which structure(s) to drive.
    pub workload: LegacyWorkload,
}

/// A fully parsed and validated invocation.
#[derive(Clone, Debug)]
pub enum Mode {
    /// Fixed-duration readers-vs-writer loop.
    Legacy(LegacyConfig),
    /// Deterministic trace-replay sweep.
    Sweep(SweepConfig),
}

/// Parses an argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Mode, String> {
    if args.first().map(String::as_str) == Some("--sweep") {
        parse_sweep(&args[1..]).map(Mode::Sweep)
    } else {
        parse_legacy(args).map(Mode::Legacy)
    }
}

fn parse_legacy(args: &[String]) -> Result<LegacyConfig, String> {
    let mut cfg = LegacyConfig {
        readers: 4,
        duration: Duration::from_millis(300),
        keys: 4096,
        workload: LegacyWorkload::Both,
    };
    for arg in args {
        match arg.split_once('=') {
            Some(("readers", v)) => cfg.readers = num(v, "readers")?,
            Some(("duration_ms", v)) => {
                cfg.duration = Duration::from_millis(num(v, "duration_ms")?)
            }
            Some(("keys", v)) => cfg.keys = num(v, "keys")?,
            Some(("workload", v)) => cfg.workload = LegacyWorkload::parse(v)?,
            _ => return Err(format!("unknown argument: {arg}")),
        }
    }
    if cfg.duration.is_zero() {
        return Err("duration_ms must be >= 1".into());
    }
    if cfg.keys < 4 {
        return Err("keys must be >= 4 (the range workload maps keys/4 region slots)".into());
    }
    Ok(cfg)
}

fn parse_sweep(args: &[String]) -> Result<SweepConfig, String> {
    let mut cfg = SweepConfig {
        threads: vec![1, 2, 4],
        profiles: Profile::ALL.to_vec(),
        backends: Backend::ALL.to_vec(),
        ops_per_thread: 200_000,
        slots_per_thread: 64,
        pages_per_slot: 16,
        seed: 42,
        forks_per_thread: 256,
        live_per_thread: 64,
        out: Some("BENCH_addrspace.json".to_string()),
    };
    for arg in args {
        match arg.split_once('=') {
            Some(("threads", v)) => {
                cfg.threads = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| num(s, "threads"))
                    .collect::<Result<_, _>>()?;
            }
            Some(("profile", v)) => {
                cfg.profiles = if v == "all" {
                    Profile::ALL.to_vec()
                } else {
                    vec![Profile::parse(v)?]
                };
            }
            Some(("backend", v)) => {
                cfg.backends = match v {
                    "all" => Backend::ALL.to_vec(),
                    // The historical two-way comparison.
                    "both" => Backend::BOTH.to_vec(),
                    one => vec![Backend::parse(one)?],
                };
            }
            Some(("ops", v)) => cfg.ops_per_thread = num(v, "ops")?,
            Some(("slots", v)) => cfg.slots_per_thread = num(v, "slots")?,
            Some(("pages", v)) => cfg.pages_per_slot = num(v, "pages")?,
            Some(("seed", v)) => cfg.seed = num(v, "seed")?,
            Some(("forks", v)) => cfg.forks_per_thread = num(v, "forks")?,
            Some(("live", v)) => cfg.live_per_thread = num(v, "live")?,
            Some(("out", v)) => cfg.out = (v != "-").then(|| v.to_string()),
            _ => return Err(format!("unknown argument: {arg}")),
        }
    }
    cfg.validate()?;
    Ok(cfg)
}

fn num<T: std::str::FromStr>(v: &str, key: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("{key}: bad value {v:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_strs(args: &[&str]) -> Result<Mode, String> {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_are_valid() {
        assert!(matches!(parse_strs(&[]), Ok(Mode::Legacy(_))));
        match parse_strs(&["--sweep"]) {
            Ok(Mode::Sweep(cfg)) => {
                assert_eq!(cfg.threads, vec![1, 2, 4]);
                assert_eq!(cfg.profiles.len(), 8);
                assert_eq!(cfg.backends.len(), 5);
                assert_eq!(cfg.forks_per_thread, 256);
                assert_eq!(cfg.live_per_thread, 64);
                assert_eq!(cfg.out.as_deref(), Some("BENCH_addrspace.json"));
            }
            other => panic!("expected sweep mode, got {other:?}"),
        }
    }

    #[test]
    fn sweep_parses_fork_storm_knobs() {
        match parse_strs(&["--sweep", "profile=fork-storm", "forks=128", "live=32"]) {
            Ok(Mode::Sweep(cfg)) => {
                assert_eq!(cfg.profiles, vec![Profile::ForkStorm]);
                assert_eq!(cfg.forks_per_thread, 128);
                assert_eq!(cfg.live_per_thread, 32);
            }
            other => panic!("expected sweep mode, got {other:?}"),
        }
        assert!(parse_strs(&["--sweep", "forks=0"]).is_err());
        assert!(parse_strs(&["--sweep", "live=0"]).is_err());
    }

    #[test]
    fn sweep_rejects_zero_threads() {
        assert!(parse_strs(&["--sweep", "threads=0"]).is_err());
        assert!(parse_strs(&["--sweep", "threads=2,0"]).is_err());
    }

    #[test]
    fn sweep_rejects_empty_sweep() {
        assert!(parse_strs(&["--sweep", "threads="]).is_err());
        assert!(parse_strs(&["--sweep", "threads=,"]).is_err());
    }

    #[test]
    fn sweep_rejects_degenerate_workloads() {
        assert!(parse_strs(&["--sweep", "ops=0"]).is_err());
        assert!(parse_strs(&["--sweep", "slots=1"]).is_err());
        assert!(parse_strs(&["--sweep", "pages=0"]).is_err());
    }

    #[test]
    fn sweep_parses_selections() {
        match parse_strs(&[
            "--sweep",
            "threads=2,8",
            "profile=psearchy",
            "backend=locked",
            "out=-",
        ]) {
            Ok(Mode::Sweep(cfg)) => {
                assert_eq!(cfg.threads, vec![2, 8]);
                assert_eq!(cfg.profiles, vec![Profile::Psearchy]);
                assert_eq!(cfg.backends, vec![Backend::Locked]);
                assert_eq!(cfg.out, None);
            }
            other => panic!("expected sweep mode, got {other:?}"),
        }
    }

    #[test]
    fn legacy_rejects_what_it_always_rejected() {
        assert!(parse_strs(&["duration_ms=0"]).is_err());
        assert!(parse_strs(&["keys=3"]).is_err());
        assert!(parse_strs(&["workload=none"]).is_err());
        assert!(parse_strs(&["bogus"]).is_err());
    }
}
