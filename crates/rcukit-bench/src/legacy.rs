//! The original fixed-duration micro-harness: N reader threads doing RCU
//! lookups against one writer mutating the same structure, printing one
//! JSON object per workload. Kept alongside the sweep because its numbers
//! are comparable across the repo's whole history.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::thread;

use bonsai::{BonsaiTree, RangeMap};
use rcukit::Collector;

use crate::config::{LegacyConfig, LegacyWorkload};
use crate::workload::Rng;

struct Throughput {
    reader_ops: u64,
    writer_ops: u64,
    hits: u64,
}

/// Runs `readers` reader threads plus one writer thread until `duration`
/// elapses. `read` and `write` each perform one operation and report
/// whether it "hit" (found a value).
fn run_workload<R, W>(cfg: &LegacyConfig, read: R, write: W) -> Throughput
where
    R: Fn(&mut Rng) -> bool + Send + Sync + 'static,
    W: Fn(&mut Rng) + Send + Sync + 'static,
{
    let stop = Arc::new(AtomicBool::new(false));
    let reader_ops = Arc::new(AtomicU64::new(0));
    let writer_ops = Arc::new(AtomicU64::new(0));
    let hits = Arc::new(AtomicU64::new(0));
    let read = Arc::new(read);
    let write = Arc::new(write);

    let mut threads = Vec::new();
    for t in 0..cfg.readers {
        let stop = stop.clone();
        let ops = reader_ops.clone();
        let hits = hits.clone();
        let read = read.clone();
        threads.push(thread::spawn(move || {
            let mut rng = Rng::new(0x9E37_79B9 + t as u64);
            let mut local_ops = 0u64;
            let mut local_hits = 0u64;
            while !stop.load(Relaxed) {
                // Batch to keep the stop-flag check off the hot path.
                for _ in 0..64 {
                    if read(&mut rng) {
                        local_hits += 1;
                    }
                    local_ops += 1;
                }
            }
            ops.fetch_add(local_ops, Relaxed);
            hits.fetch_add(local_hits, Relaxed);
        }));
    }
    {
        let stop = stop.clone();
        let ops = writer_ops.clone();
        let write = write.clone();
        threads.push(thread::spawn(move || {
            let mut rng = Rng::new(0xB529_7A4D);
            let mut local_ops = 0u64;
            while !stop.load(Relaxed) {
                write(&mut rng);
                local_ops += 1;
            }
            ops.fetch_add(local_ops, Relaxed);
        }));
    }

    thread::sleep(cfg.duration);
    stop.store(true, Relaxed);
    for t in threads {
        t.join().expect("worker panicked");
    }
    Throughput {
        reader_ops: reader_ops.load(Relaxed),
        writer_ops: writer_ops.load(Relaxed),
        hits: hits.load(Relaxed),
    }
}

fn report(name: &str, cfg: &LegacyConfig, tp: &Throughput, collector: &Collector) {
    let secs = cfg.duration.as_secs_f64();
    let stats = collector.stats();
    println!(
        "{{\"workload\":\"{name}\",\"readers\":{},\"duration_ms\":{},\"keys\":{},\
         \"reader_ops\":{},\"reader_ops_per_sec\":{:.0},\"reader_hit_rate\":{:.3},\
         \"writer_ops\":{},\"writer_ops_per_sec\":{:.0},\
         \"epochs_advanced\":{},\"objects_retired\":{},\"objects_freed\":{}}}",
        cfg.readers,
        cfg.duration.as_millis(),
        cfg.keys,
        tp.reader_ops,
        tp.reader_ops as f64 / secs,
        tp.hits as f64 / tp.reader_ops.max(1) as f64,
        tp.writer_ops,
        tp.writer_ops as f64 / secs,
        stats.epochs_advanced,
        stats.objects_retired,
        stats.objects_freed,
    );
}

/// Point lookups against a tree whose keys churn under one writer.
fn bench_tree(cfg: &LegacyConfig) {
    let collector = Collector::new();
    let tree: Arc<BonsaiTree<u64, u64>> = Arc::new(BonsaiTree::new(collector.clone()));
    for k in (0..cfg.keys).step_by(2) {
        tree.insert(k, k);
    }
    let keys = cfg.keys;
    let t_read = tree.clone();
    let t_write = tree.clone();
    let tp = run_workload(
        cfg,
        move |rng| {
            let guard = t_read.pin();
            t_read.get(&(rng.next_u64() % keys), &guard).is_some()
        },
        move |rng| {
            let k = rng.next_u64() % keys;
            if rng.next_u64().is_multiple_of(2) {
                t_write.insert(k, k);
            } else {
                t_write.remove(&k);
            }
        },
    );
    collector.synchronize();
    report("tree", cfg, &tp, &collector);
}

/// VMA-style translate against a range map with mapping churn: the paper's
/// page-fault workload.
fn bench_range(cfg: &LegacyConfig) {
    let collector = Collector::new();
    let map: Arc<RangeMap<u64>> = Arc::new(RangeMap::new(collector.clone()));
    const PAGE: u64 = 0x1000;
    let regions = cfg.keys / 4; // region slots, each up to 4 pages
    for r in (0..regions).step_by(2) {
        map.map(r * 4 * PAGE, (r * 4 + 2) * PAGE, r);
    }
    let span = regions * 4 * PAGE;
    let m_read = map.clone();
    let m_write = map.clone();
    let tp = run_workload(
        cfg,
        move |rng| {
            let guard = m_read.pin();
            m_read.lookup(rng.next_u64() % span, &guard).is_some()
        },
        move |rng| {
            let r = rng.next_u64() % regions;
            let start = r * 4 * PAGE;
            if m_write.unmap(start).is_none() {
                let pages = 1 + rng.next_u64() % 4;
                m_write.map(start, start + pages * PAGE, r);
            }
        },
    );
    collector.synchronize();
    report("range", cfg, &tp, &collector);
}

/// Runs the selected legacy workload(s).
pub fn run(cfg: &LegacyConfig) {
    match cfg.workload {
        LegacyWorkload::Tree => bench_tree(cfg),
        LegacyWorkload::Range => bench_range(cfg),
        LegacyWorkload::Both => {
            bench_tree(cfg);
            bench_range(cfg);
        }
    }
}
