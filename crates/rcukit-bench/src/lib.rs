//! Benchmark harness for the ASPLOS'12 Bonsai-tree reproduction.
//!
//! Two modes, one binary (`rcukit-bench`):
//!
//! * [`legacy`] — the original fixed-duration N-readers/1-writer loop over
//!   [`bonsai::BonsaiTree`] and [`bonsai::RangeMap`].
//! * [`sweep`] — the paper's evaluation: a deterministic address-space
//!   workload ([`workload`]) replayed against both the RCU `RangeMap` and
//!   the lock-serialized [`baseline`] across a range of thread counts,
//!   emitting a `BENCH_addrspace.json` trajectory.
//!
//! The harness is a library so the sweep can be smoke-tested in-process;
//! see `BENCHMARKS.md` at the repo root for the CLI and output schema.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(unsafe_op_in_unsafe_fn)]

pub mod baseline;
pub mod config;
pub mod legacy;
pub mod sweep;
pub mod workload;
