//! `rcukit-bench` entry point; all logic lives in the library crate.

use rcukit_bench::config::{self, Mode, USAGE};
use rcukit_bench::{legacy, sweep};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match config::parse(&args) {
        Ok(mode) => mode,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    match mode {
        Mode::Legacy(cfg) => legacy::run(&cfg),
        Mode::Sweep(cfg) => {
            let results = sweep::run(&cfg);
            if let Some(path) = &cfg.out {
                let doc = sweep::render_trajectory(&cfg, &results);
                if let Err(e) = std::fs::write(path, doc) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("wrote {} records to {path}", results.len());
            }
        }
    }
}
