//! Reader/writer throughput micro-harness for rcukit + bonsai.
//!
//! Spawns `readers` threads doing RCU lookups against one writer mutating
//! the same structure, for `duration_ms`, and prints one JSON object per
//! workload to stdout. No external dependencies (criterion-free) so results
//! are comparable across the repo's history.
//!
//! Usage:
//!
//! ```text
//! rcukit-bench [readers=4] [duration_ms=300] [keys=4096] [workload=tree|range|both]
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bonsai::{BonsaiTree, RangeMap};
use rcukit::Collector;

/// Deterministic xorshift64* PRNG, one per thread.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

struct Config {
    readers: usize,
    duration: Duration,
    keys: u64,
    workload: String,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        readers: 4,
        duration: Duration::from_millis(300),
        keys: 4096,
        workload: "both".to_string(),
    };
    for arg in std::env::args().skip(1) {
        match arg.split_once('=') {
            Some(("readers", v)) => cfg.readers = v.parse().expect("readers=<usize>"),
            Some(("duration_ms", v)) => {
                cfg.duration = Duration::from_millis(v.parse().expect("duration_ms=<u64>"))
            }
            Some(("keys", v)) => cfg.keys = v.parse().expect("keys=<u64>"),
            Some(("workload", v)) => cfg.workload = v.to_string(),
            _ => {
                eprintln!("unknown argument: {arg}");
                eprintln!("usage: rcukit-bench [readers=N] [duration_ms=N] [keys=N] [workload=tree|range|both]");
                std::process::exit(2);
            }
        }
    }
    if cfg.duration.is_zero() {
        eprintln!("duration_ms must be >= 1");
        std::process::exit(2);
    }
    if cfg.keys < 4 {
        eprintln!("keys must be >= 4 (the range workload maps keys/4 region slots)");
        std::process::exit(2);
    }
    cfg
}

struct Throughput {
    reader_ops: u64,
    writer_ops: u64,
    hits: u64,
}

/// Runs `readers` reader threads plus one writer thread until `duration`
/// elapses. `read` and `write` each perform one operation and report
/// whether it "hit" (found a value).
fn run_workload<R, W>(cfg: &Config, read: R, write: W) -> Throughput
where
    R: Fn(&mut Rng) -> bool + Send + Sync + 'static,
    W: Fn(&mut Rng) + Send + Sync + 'static,
{
    let stop = Arc::new(AtomicBool::new(false));
    let reader_ops = Arc::new(AtomicU64::new(0));
    let writer_ops = Arc::new(AtomicU64::new(0));
    let hits = Arc::new(AtomicU64::new(0));
    let read = Arc::new(read);
    let write = Arc::new(write);

    let mut threads = Vec::new();
    for t in 0..cfg.readers {
        let stop = stop.clone();
        let ops = reader_ops.clone();
        let hits = hits.clone();
        let read = read.clone();
        threads.push(thread::spawn(move || {
            let mut rng = Rng::new(0x9E37_79B9 + t as u64);
            let mut local_ops = 0u64;
            let mut local_hits = 0u64;
            while !stop.load(Relaxed) {
                // Batch to keep the stop-flag check off the hot path.
                for _ in 0..64 {
                    if read(&mut rng) {
                        local_hits += 1;
                    }
                    local_ops += 1;
                }
            }
            ops.fetch_add(local_ops, Relaxed);
            hits.fetch_add(local_hits, Relaxed);
        }));
    }
    {
        let stop = stop.clone();
        let ops = writer_ops.clone();
        let write = write.clone();
        threads.push(thread::spawn(move || {
            let mut rng = Rng::new(0xB529_7A4D);
            let mut local_ops = 0u64;
            while !stop.load(Relaxed) {
                write(&mut rng);
                local_ops += 1;
            }
            ops.fetch_add(local_ops, Relaxed);
        }));
    }

    thread::sleep(cfg.duration);
    stop.store(true, Relaxed);
    for t in threads {
        t.join().expect("worker panicked");
    }
    Throughput {
        reader_ops: reader_ops.load(Relaxed),
        writer_ops: writer_ops.load(Relaxed),
        hits: hits.load(Relaxed),
    }
}

fn report(name: &str, cfg: &Config, tp: &Throughput, collector: &Collector) {
    let secs = cfg.duration.as_secs_f64();
    let stats = collector.stats();
    println!(
        "{{\"workload\":\"{name}\",\"readers\":{},\"duration_ms\":{},\"keys\":{},\
         \"reader_ops\":{},\"reader_ops_per_sec\":{:.0},\"reader_hit_rate\":{:.3},\
         \"writer_ops\":{},\"writer_ops_per_sec\":{:.0},\
         \"epochs_advanced\":{},\"objects_retired\":{},\"objects_freed\":{}}}",
        cfg.readers,
        cfg.duration.as_millis(),
        cfg.keys,
        tp.reader_ops,
        tp.reader_ops as f64 / secs,
        tp.hits as f64 / tp.reader_ops.max(1) as f64,
        tp.writer_ops,
        tp.writer_ops as f64 / secs,
        stats.epochs_advanced,
        stats.objects_retired,
        stats.objects_freed,
    );
}

/// Point lookups against a tree whose keys churn under one writer.
fn bench_tree(cfg: &Config) {
    let collector = Collector::new();
    let tree: Arc<BonsaiTree<u64, u64>> = Arc::new(BonsaiTree::new(collector.clone()));
    for k in (0..cfg.keys).step_by(2) {
        tree.insert(k, k);
    }
    let keys = cfg.keys;
    let t_read = tree.clone();
    let t_write = tree.clone();
    let tp = run_workload(
        cfg,
        move |rng| {
            let guard = t_read.pin();
            t_read.get(&(rng.next() % keys), &guard).is_some()
        },
        move |rng| {
            let k = rng.next() % keys;
            if rng.next().is_multiple_of(2) {
                t_write.insert(k, k);
            } else {
                t_write.remove(&k);
            }
        },
    );
    collector.synchronize();
    report("tree", cfg, &tp, &collector);
}

/// VMA-style translate against a range map with mapping churn: the paper's
/// page-fault workload.
fn bench_range(cfg: &Config) {
    let collector = Collector::new();
    let map: Arc<RangeMap<u64>> = Arc::new(RangeMap::new(collector.clone()));
    const PAGE: u64 = 0x1000;
    let regions = cfg.keys / 4; // region slots, each up to 4 pages
    for r in (0..regions).step_by(2) {
        map.map(r * 4 * PAGE, (r * 4 + 2) * PAGE, r);
    }
    let span = regions * 4 * PAGE;
    let m_read = map.clone();
    let m_write = map.clone();
    let tp = run_workload(
        cfg,
        move |rng| {
            let guard = m_read.pin();
            m_read.lookup(rng.next() % span, &guard).is_some()
        },
        move |rng| {
            let r = rng.next() % regions;
            let start = r * 4 * PAGE;
            if m_write.unmap(start).is_none() {
                let pages = 1 + rng.next() % 4;
                m_write.map(start, start + pages * PAGE, r);
            }
        },
    );
    collector.synchronize();
    report("range", cfg, &tp, &collector);
}

fn main() {
    let cfg = parse_args();
    match cfg.workload.as_str() {
        "tree" => bench_tree(&cfg),
        "range" => bench_range(&cfg),
        "both" => {
            bench_tree(&cfg);
            bench_range(&cfg);
        }
        other => {
            eprintln!("unknown workload {other:?} (expected tree|range|both)");
            std::process::exit(2);
        }
    }
}
