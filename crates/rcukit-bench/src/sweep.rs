//! The paper's evaluation sweep: replay one deterministic address-space
//! workload against every backend across a range of thread counts.
//!
//! For every `(profile, thread count)` point the driver generates the
//! per-thread traces once, then replays the *identical* ops against each
//! backend — the RCU [`RangeMap`] on each of the four reclamation
//! backends (epoch, QSBR, hazard pointers, hybrid interval-based) and the
//! [`LockedAddressSpace`] baseline — timing the whole replay. One JSON record per `(profile,
//! threads, backend)` point goes to stdout as it completes, and the full
//! run is written as a `BENCH_addrspace.json` trajectory file.
//!
//! Replays are fixed-work (ops per thread), not fixed-duration, so a run
//! is exactly reproducible from its seed and directly comparable across
//! backends, machines, and repo history: only the elapsed time varies.
//!
//! The `stalled-reader` profile additionally parks one extra reader inside
//! the backend's read-side protection for the whole replay; its
//! `peak_unreclaimed_bytes` column is the bounded-garbage comparison (see
//! [`Profile::StalledReader`]).
//!
//! The `fork-storm` profile replays through a multi-tenant process
//! lifecycle instead of straight through: each thread runs
//! `forks_per_thread` fork/exec/exit cycles — `fork()` the youngest
//! lineage (timed per call), replay that lifecycle's chunk of the trace
//! against the child, keep a ring of `live_per_thread` live children,
//! exit the oldest — so hundreds of concurrent address spaces share
//! subtrees against one collector. Its records carry the fork count, the
//! peak live-space gauge, and fork-latency percentiles (see
//! [`Profile::ForkStorm`]).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use bonsai::{AddressSpace, RangeMap};
use rcukit::{ReclaimBackend, ReclaimKind};

use crate::baseline::LockedAddressSpace;
use crate::workload::{Op, Profile, Rng, WorkloadSpec};

/// Which address-space implementation a replay point runs against: the
/// RCU `RangeMap` on one of the four reclamation backends, or the locked
/// baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The Bonsai-tree `RangeMap`, epoch-based reclamation (the default
    /// and historical "bonsai" record).
    Bonsai,
    /// The Bonsai-tree `RangeMap`, quiescent-state-based reclamation.
    Qsbr,
    /// The Bonsai-tree `RangeMap`, hazard-pointer reclamation (bounded
    /// garbage under a stalled reader).
    Hp,
    /// The Bonsai-tree `RangeMap`, hybrid interval-based reclamation:
    /// grace-period-cheap reads that degrade gracefully — a stalled
    /// reader blocks only garbage born before its pin, so
    /// `peak_unreclaimed_bytes` stays bounded while `stall_events` /
    /// `degraded_ops` record the degradation.
    Hybrid,
    /// The `RwLock<BTreeMap>` baseline (lock-serialized faults).
    Locked,
}

impl Backend {
    /// All backends, in reporting order.
    pub const ALL: [Backend; 5] = [
        Backend::Bonsai,
        Backend::Qsbr,
        Backend::Hp,
        Backend::Hybrid,
        Backend::Locked,
    ];

    /// The historical two-backend comparison (`backend=both`).
    pub const BOTH: [Backend; 2] = [Backend::Bonsai, Backend::Locked];

    /// The backend's name as used by the CLI and the JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Bonsai => "bonsai",
            Backend::Qsbr => "qsbr",
            Backend::Hp => "hp",
            Backend::Hybrid => "hybrid",
            Backend::Locked => "locked",
        }
    }

    /// The reclamation backend driving this point's `RangeMap`, or `None`
    /// for the locked baseline.
    pub fn reclaim_kind(self) -> Option<ReclaimKind> {
        match self {
            Backend::Bonsai => Some(ReclaimKind::Epoch),
            Backend::Qsbr => Some(ReclaimKind::Qsbr),
            Backend::Hp => Some(ReclaimKind::Hp),
            Backend::Hybrid => Some(ReclaimKind::Hybrid),
            Backend::Locked => None,
        }
    }

    /// Parses a CLI backend name.
    pub fn parse(s: &str) -> Result<Backend, String> {
        match s {
            "bonsai" => Ok(Backend::Bonsai),
            "qsbr" => Ok(Backend::Qsbr),
            "hp" => Ok(Backend::Hp),
            "hybrid" => Ok(Backend::Hybrid),
            "locked" => Ok(Backend::Locked),
            other => Err(format!(
                "unknown backend {other:?} (expected bonsai|qsbr|hp|hybrid|locked|both|all)"
            )),
        }
    }
}

/// Configuration for one sweep run.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Thread counts to scale across, e.g. `[1, 2, 4]`.
    pub threads: Vec<usize>,
    /// Profiles to run, e.g. all three.
    pub profiles: Vec<Profile>,
    /// Backends to compare.
    pub backends: Vec<Backend>,
    /// Operations each replaying thread performs.
    pub ops_per_thread: usize,
    /// Region slots per thread arena.
    pub slots_per_thread: u64,
    /// Maximum pages per mapped region.
    pub pages_per_slot: u64,
    /// Master seed for trace generation.
    pub seed: u64,
    /// Fork/exec/exit cycles per thread under the `fork-storm` profile
    /// (ignored by the others).
    pub forks_per_thread: usize,
    /// Live children each thread keeps before exiting the oldest, under
    /// the `fork-storm` profile (ignored by the others).
    pub live_per_thread: usize,
    /// Trajectory file path, or `None` for stdout-only.
    pub out: Option<String>,
}

impl SweepConfig {
    /// Validates the sweep shape and every workload spec it implies.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads.is_empty() {
            return Err("sweep needs at least one thread count".into());
        }
        if self.profiles.is_empty() {
            return Err("sweep needs at least one profile".into());
        }
        if self.backends.is_empty() {
            return Err("sweep needs at least one backend".into());
        }
        if self.forks_per_thread == 0 {
            return Err("forks per thread must be >= 1".into());
        }
        if self.live_per_thread == 0 {
            return Err("live children per thread must be >= 1".into());
        }
        for &threads in &self.threads {
            self.spec(self.profiles[0], threads).validate()?;
        }
        Ok(())
    }

    fn spec(&self, profile: Profile, threads: usize) -> WorkloadSpec {
        WorkloadSpec {
            profile,
            threads,
            ops_per_thread: self.ops_per_thread,
            slots_per_thread: self.slots_per_thread,
            pages_per_slot: self.pages_per_slot,
            seed: self.seed,
        }
    }
}

/// Per-replay operation tallies, summed over threads.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tally {
    /// Fault ops replayed.
    pub faults: u64,
    /// Faults that found a mapped region.
    pub fault_hits: u64,
    /// Map ops replayed.
    pub maps: u64,
    /// Map ops the backend rejected — always 0 unless a backend is buggy
    /// (traces are overlap-free by construction).
    pub map_rejects: u64,
    /// Unmap ops replayed.
    pub unmaps: u64,
    /// Unmap ops that found nothing — always 0 unless a backend is buggy.
    pub unmap_misses: u64,
    /// Multi-region `unmap_range` ops replayed (spans that remove several
    /// regions and split/truncate straddlers).
    pub unmap_ranges: u64,
    /// Ranged unmaps that affected no region — always 0 unless a backend
    /// is buggy (generated spans always intersect their anchor region).
    pub unmap_range_misses: u64,
}

impl Tally {
    fn add(&mut self, other: &Tally) {
        self.faults += other.faults;
        self.fault_hits += other.fault_hits;
        self.maps += other.maps;
        self.map_rejects += other.map_rejects;
        self.unmaps += other.unmaps;
        self.unmap_misses += other.unmap_misses;
        self.unmap_ranges += other.unmap_ranges;
        self.unmap_range_misses += other.unmap_range_misses;
    }
}

/// One measured `(profile, threads, backend)` point.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// Workload shape replayed.
    pub profile: Profile,
    /// Backend driven.
    pub backend: Backend,
    /// Replaying thread count.
    pub threads: usize,
    /// Wall-clock time for the whole replay.
    pub elapsed: Duration,
    /// Operation tallies across all threads.
    pub tally: Tally,
    /// Deferred retirements tagged by the reclamation backend (RCU
    /// backends only).
    pub retired: u64,
    /// Deferred retirements executed after the final grace period / scan.
    pub freed: u64,
    /// `retired == freed` after a final `synchronize` — the no-leak check.
    /// Trivially true for the locked backend (nothing is deferred).
    pub reclaim_ok: bool,
    /// High-water mark of retired-but-not-yet-reclaimed bytes over the
    /// whole replay (RCU backends; 0 for locked). The bounded-garbage
    /// gauge the `stalled-reader` profile compares: grace-period backends
    /// grow it with the stalled window; hazard pointers and the hybrid
    /// backend keep it bounded.
    pub peak_unreclaimed_bytes: u64,
    /// Readers the hybrid backend's scan declared stalled after their
    /// blocked garbage aged past the domain budget (hybrid backend only;
    /// 0 elsewhere). Nonzero on the `stalled-reader` profile is the
    /// degradation protocol firing as designed.
    pub stall_events: u64,
    /// Retirements performed while at least one reader was flagged
    /// stalled — ops served in degraded (bounded-garbage) mode rather
    /// than blocking on the stalled grace period (hybrid backend only).
    pub degraded_ops: u64,
    /// Root-CAS commits that lost to a concurrent writer and rebuilt
    /// (bonsai backend; always 0 at `threads == 1` and for locked). The
    /// wasted-work telemetry the bounded backoff exists to curb.
    pub cas_retries: u64,
    /// Speculative copy-on-write nodes those failed commits discarded.
    pub cas_wasted_nodes: u64,
    /// Single-thread read-side latency in nanoseconds per op, measured
    /// after the replay against its final state: one thread replaying
    /// `fault` calls — for the bonsai backend that is the full
    /// pin + lookup + unpin path whose per-op cost the ordering audit
    /// targets; for the locked backend, lock + lookup. Same address
    /// stream for every backend at a given `(profile, threads)` point.
    pub read_op_ns: f64,
    /// Fork-lifecycle metrics (`fork-storm` profile; all zeros elsewhere).
    pub fork: ForkMetrics,
}

/// Fork-latency and multi-tenancy metrics from a `fork-storm` replay.
/// All-zero for profiles that never fork.
#[derive(Clone, Copy, Debug, Default)]
pub struct ForkMetrics {
    /// Address spaces forked over the whole replay (threads ×
    /// `forks_per_thread`).
    pub forks: u64,
    /// Peak number of concurrently live *forked* spaces across all
    /// threads (the shared parent is not counted).
    pub live_spaces_peak: u64,
    /// Median per-`fork()` latency in nanoseconds — O(depth) structural
    /// sharing on the RCU backends vs. the locked baseline's O(n) deep
    /// copy.
    pub fork_p50_ns: u64,
    /// 90th-percentile fork latency in nanoseconds.
    pub fork_p90_ns: u64,
    /// 99th-percentile fork latency in nanoseconds.
    pub fork_p99_ns: u64,
    /// Slowest single fork in nanoseconds.
    pub fork_max_ns: u64,
}

impl PointResult {
    /// Total replayed operations.
    pub fn total_ops(&self) -> u64 {
        self.tally.faults + self.tally.maps + self.tally.unmaps + self.tally.unmap_ranges
    }

    /// The record as one JSON object (also the stdout progress line).
    pub fn to_json(&self) -> String {
        let secs = self.elapsed.as_secs_f64();
        let t = &self.tally;
        format!(
            "{{\"profile\":\"{}\",\"backend\":\"{}\",\"threads\":{},\
             \"total_ops\":{},\"elapsed_ms\":{:.3},\"ops_per_sec\":{:.0},\
             \"faults\":{},\"fault_hits\":{},\"fault_hit_rate\":{:.3},\"faults_per_sec\":{:.0},\
             \"maps\":{},\"map_rejects\":{},\"unmaps\":{},\"unmap_misses\":{},\
             \"unmap_ranges\":{},\"unmap_range_misses\":{},\
             \"mutations_per_sec\":{:.0},\
             \"retired\":{},\"freed\":{},\"reclaim_ok\":{},\
             \"peak_unreclaimed_bytes\":{},\
             \"stall_events\":{},\"degraded_ops\":{},\
             \"cas_retries\":{},\"cas_wasted_nodes\":{},\
             \"read_op_ns\":{:.2},\
             \"forks\":{},\"live_spaces_peak\":{},\
             \"fork_p50_ns\":{},\"fork_p90_ns\":{},\"fork_p99_ns\":{},\
             \"fork_max_ns\":{}}}",
            self.profile.name(),
            self.backend.name(),
            self.threads,
            self.total_ops(),
            secs * 1e3,
            self.total_ops() as f64 / secs,
            t.faults,
            t.fault_hits,
            t.fault_hits as f64 / t.faults.max(1) as f64,
            t.faults as f64 / secs,
            t.maps,
            t.map_rejects,
            t.unmaps,
            t.unmap_misses,
            t.unmap_ranges,
            t.unmap_range_misses,
            (t.maps + t.unmaps + t.unmap_ranges) as f64 / secs,
            self.retired,
            self.freed,
            self.reclaim_ok,
            self.peak_unreclaimed_bytes,
            self.stall_events,
            self.degraded_ops,
            self.cas_retries,
            self.cas_wasted_nodes,
            self.read_op_ns,
            self.fork.forks,
            self.fork.live_spaces_peak,
            self.fork.fork_p50_ns,
            self.fork.fork_p90_ns,
            self.fork.fork_p99_ns,
            self.fork.fork_max_ns,
        )
    }
}

/// Faults sampled by the post-replay read-side microbench.
const READ_SAMPLE: usize = 100_000;

/// Single-thread read-side microbench: replays [`READ_SAMPLE`] `fault`
/// calls against the post-replay address space and returns the mean
/// nanoseconds per op. Addresses are pre-drawn (seeded from the spec, so
/// every backend at a point sees the identical stream) and the hit count
/// is kept live through `black_box`, so the timed loop is exactly the
/// backend's fault path — for bonsai, pin + lookup + unpin per call.
fn read_microbench<A: AddressSpace>(space: &A, spec: &WorkloadSpec) -> f64 {
    let mut rng = Rng::new(spec.seed ^ 0xB1C9_0DD5_EE75_11A7);
    let addrs: Vec<u64> = (0..READ_SAMPLE).map(|_| rng.below(spec.span())).collect();
    let started = Instant::now();
    let mut hits = 0u64;
    for &addr in &addrs {
        if space.fault(addr) {
            hits += 1;
        }
    }
    let elapsed = started.elapsed();
    std::hint::black_box(hits);
    elapsed.as_nanos() as f64 / READ_SAMPLE as f64
}

/// Replays one op slice against one address space, updating `tally` —
/// the inner loop shared by the straight-through replay (whole trace,
/// one space) and the fork-storm lifecycle (per-child chunks).
fn replay_ops(space: &dyn AddressSpace, ops: &[Op], tally: &mut Tally) {
    for op in ops {
        match *op {
            Op::Fault(addr) => {
                tally.faults += 1;
                if space.fault(addr) {
                    tally.fault_hits += 1;
                }
            }
            Op::Map(start, end) => {
                tally.maps += 1;
                if !space.map(start, end) {
                    tally.map_rejects += 1;
                }
            }
            Op::Unmap(start) => {
                tally.unmaps += 1;
                if !space.unmap(start) {
                    tally.unmap_misses += 1;
                }
            }
            Op::UnmapRange(start, end) => {
                tally.unmap_ranges += 1;
                if space.unmap_range(start, end) == 0 {
                    tally.unmap_range_misses += 1;
                }
            }
        }
    }
}

/// Replays pre-generated traces against `space`, one thread per trace,
/// started together behind a barrier. Returns wall time and summed tallies.
///
/// Each worker timestamps its own start and finish; the replay's wall time
/// is `max(finish) - min(start)`. Timing on the main thread instead would
/// under-measure on oversubscribed boxes: workers can replay for
/// milliseconds before a barrier-released main thread is rescheduled.
fn replay<A: AddressSpace + 'static>(
    space: Arc<A>,
    spec: &WorkloadSpec,
    traces: Arc<Vec<Vec<Op>>>,
) -> (Duration, Tally) {
    for t in 0..spec.threads {
        for (start, end) in spec.initial_regions(t) {
            assert!(space.map(start, end), "initial region overlap");
        }
    }
    let barrier = Arc::new(Barrier::new(spec.threads));
    let mut workers = Vec::with_capacity(spec.threads);
    for t in 0..spec.threads {
        let space = space.clone();
        let traces = traces.clone();
        let barrier = barrier.clone();
        workers.push(thread::spawn(move || {
            let mut tally = Tally::default();
            barrier.wait();
            let started = Instant::now();
            replay_ops(&*space, &traces[t], &mut tally);
            (started, Instant::now(), tally)
        }));
    }
    let mut tally = Tally::default();
    let mut first_start: Option<Instant> = None;
    let mut last_finish: Option<Instant> = None;
    for worker in workers {
        let (started, finished, t) = worker.join().expect("replay thread panicked");
        tally.add(&t);
        first_start = Some(first_start.map_or(started, |s| s.min(started)));
        last_finish = Some(last_finish.map_or(finished, |f| f.max(finished)));
    }
    let elapsed = match (first_start, last_finish) {
        (Some(s), Some(f)) => f.duration_since(s),
        _ => Duration::ZERO,
    };
    (elapsed, tally)
}

/// The `fork-storm` lifecycle replay: each thread runs `forks_per_thread`
/// fork/exec/exit cycles against its own lineage chain, all over one
/// shared collector.
///
/// Per cycle, a worker `fork()`s its *youngest* child (the first cycle
/// forks the shared parent) with the call timed in nanoseconds, replays
/// that lifecycle's contiguous chunk of the thread's trace against the
/// new child (the exec remap burst and run phase of
/// [`Profile::ForkStorm`]'s trace shape), pushes the child onto a ring of
/// at most `live_per_thread` live spaces, and exits (drops) the oldest
/// when the ring overflows. Chunks partition the trace in order and each
/// mutates only the newest lineage, so the generator's sequential state
/// model stays exact — zero rejects/misses still means a correct backend
/// — while every older child in the ring is a frozen snapshot sharing
/// subtrees with the live tip until its exit retires whatever it alone
/// still references.
///
/// The parent space is never mutated after its initial regions, so every
/// thread's chain (which also inherits the other threads' initial arenas)
/// sees deterministic state regardless of interleaving.
fn replay_fork_storm<A: AddressSpace + 'static>(
    space: Arc<A>,
    spec: &WorkloadSpec,
    traces: Arc<Vec<Vec<Op>>>,
    forks_per_thread: usize,
    live_per_thread: usize,
) -> (Duration, Tally, ForkMetrics) {
    for t in 0..spec.threads {
        for (start, end) in spec.initial_regions(t) {
            assert!(space.map(start, end), "initial region overlap");
        }
    }
    let barrier = Arc::new(Barrier::new(spec.threads));
    // Cross-thread live-space gauge: +1 per fork, -1 per exit, peak kept
    // via fetch_max. Relaxed everywhere — telemetry, no data published.
    let live_now = Arc::new(AtomicU64::new(0));
    let live_peak = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::with_capacity(spec.threads);
    for t in 0..spec.threads {
        let space = space.clone();
        let traces = traces.clone();
        let barrier = barrier.clone();
        let live_now = live_now.clone();
        let live_peak = live_peak.clone();
        workers.push(thread::spawn(move || {
            let trace = &traces[t];
            let mut tally = Tally::default();
            let mut fork_ns = Vec::with_capacity(forks_per_thread);
            let mut ring: VecDeque<Box<dyn AddressSpace>> =
                VecDeque::with_capacity(live_per_thread + 1);
            barrier.wait();
            let started = Instant::now();
            for f in 0..forks_per_thread {
                let fork_start = Instant::now();
                let child = match ring.back() {
                    Some(tip) => tip.fork(),
                    None => space.fork(),
                };
                fork_ns.push(fork_start.elapsed().as_nanos() as u64);
                let n = live_now.fetch_add(1, Relaxed) + 1;
                live_peak.fetch_max(n, Relaxed);
                let lo = f * trace.len() / forks_per_thread;
                let hi = (f + 1) * trace.len() / forks_per_thread;
                replay_ops(&*child, &trace[lo..hi], &mut tally);
                ring.push_back(child);
                if ring.len() > live_per_thread {
                    drop(ring.pop_front());
                    live_now.fetch_sub(1, Relaxed);
                }
            }
            // Exit every still-live child before the clock stops: the
            // storm's teardown (and its retirement burst) is part of the
            // measured lifecycle, not an afterthought.
            live_now.fetch_sub(ring.len() as u64, Relaxed);
            ring.clear();
            (started, Instant::now(), tally, fork_ns)
        }));
    }
    let mut tally = Tally::default();
    let mut all_fork_ns = Vec::with_capacity(spec.threads * forks_per_thread);
    let mut first_start: Option<Instant> = None;
    let mut last_finish: Option<Instant> = None;
    for worker in workers {
        let (started, finished, t, fork_ns) = worker.join().expect("fork-storm thread panicked");
        tally.add(&t);
        all_fork_ns.extend(fork_ns);
        first_start = Some(first_start.map_or(started, |s| s.min(started)));
        last_finish = Some(last_finish.map_or(finished, |f| f.max(finished)));
    }
    let elapsed = match (first_start, last_finish) {
        (Some(s), Some(f)) => f.duration_since(s),
        _ => Duration::ZERO,
    };
    all_fork_ns.sort_unstable();
    let pct = |p: usize| all_fork_ns[(all_fork_ns.len() - 1) * p / 100];
    let fork = ForkMetrics {
        forks: all_fork_ns.len() as u64,
        live_spaces_peak: live_peak.load(Relaxed),
        fork_p50_ns: pct(50),
        fork_p90_ns: pct(90),
        fork_p99_ns: pct(99),
        fork_max_ns: *all_fork_ns.last().expect("at least one fork per thread"),
    };
    (elapsed, tally, fork)
}

/// Runs `f` with one extra reader parked inside `backend`'s read-side
/// protection (the `stalled-reader` profile's adversary): a pinned epoch
/// guard, a registered-but-never-announcing QSBR thread, or a hazard
/// session protecting a pointer. The protection is held on the calling
/// thread — which never replays ops — and released before the caller's
/// final `synchronize`, so the drain cannot deadlock on it.
fn with_stalled_reader<R>(backend: &ReclaimBackend, f: impl FnOnce() -> R) -> R {
    match backend {
        ReclaimBackend::Epoch(c) => {
            let handle = c.register();
            let _pin = handle.pin();
            f()
        }
        ReclaimBackend::Qsbr(d) => {
            // Registered and online, but never announcing quiescence:
            // every grace period stalls behind it.
            let _handle = d.register();
            f()
        }
        ReclaimBackend::Hp(d) => {
            // A session squatting on a protected pointer mid-"traversal".
            // It occupies hazard slots but can only shield what it names —
            // the scan frees everything else, which is the bound.
            let parked = Box::into_raw(Box::new(0u64));
            let session = d.session();
            session.protect(0, parked.cast());
            let out = f();
            drop(session);
            // Safety: only this function ever saw the allocation.
            unsafe { drop(Box::from_raw(parked)) };
            out
        }
        ReclaimBackend::Hybrid(d) => {
            // A pin parked at its birth era for the whole replay. It can
            // only block garbage born at or before that era — everything
            // the replay itself creates and retires is freed regardless
            // (the interval rule), and once the blocked residue ages past
            // the domain budget the scan flags the pin stalled
            // (`stall_events`) and retirements count as `degraded_ops`.
            let _pin = d.pin();
            f()
        }
    }
}

/// Runs one `(profile, threads, backend)` point.
fn run_point(
    cfg: &SweepConfig,
    profile: Profile,
    threads: usize,
    backend: Backend,
    traces: &Arc<Vec<Vec<Op>>>,
) -> PointResult {
    let spec = cfg.spec(profile, threads);
    let (elapsed, tally, fork, stats, cas_retries, cas_wasted_nodes, read_op_ns) =
        match backend.reclaim_kind() {
            Some(kind) => {
                let reclaim = ReclaimBackend::new(kind);
                let space: Arc<RangeMap<()>> = Arc::new(RangeMap::with_backend(reclaim.clone()));
                let (elapsed, tally, fork) = if profile.forks_processes() {
                    replay_fork_storm(
                        Arc::clone(&space),
                        &spec,
                        Arc::clone(traces),
                        cfg.forks_per_thread,
                        cfg.live_per_thread,
                    )
                } else if profile.stalls_a_reader() {
                    let (elapsed, tally) = with_stalled_reader(&reclaim, || {
                        replay(Arc::clone(&space), &spec, Arc::clone(traces))
                    });
                    (elapsed, tally, ForkMetrics::default())
                } else {
                    let (elapsed, tally) = replay(Arc::clone(&space), &spec, Arc::clone(traces));
                    (elapsed, tally, ForkMetrics::default())
                };
                let read_op_ns = read_microbench(&*space, &spec);
                reclaim.synchronize();
                let stats = reclaim.stats();
                (
                    elapsed,
                    tally,
                    fork,
                    stats,
                    space.cas_retries(),
                    space.cas_wasted_nodes(),
                    read_op_ns,
                )
            }
            None => {
                let space = Arc::new(LockedAddressSpace::new());
                let (elapsed, tally, fork) = if profile.forks_processes() {
                    replay_fork_storm(
                        Arc::clone(&space),
                        &spec,
                        Arc::clone(traces),
                        cfg.forks_per_thread,
                        cfg.live_per_thread,
                    )
                } else {
                    let (elapsed, tally) = replay(Arc::clone(&space), &spec, Arc::clone(traces));
                    (elapsed, tally, ForkMetrics::default())
                };
                let read_op_ns = read_microbench(&*space, &spec);
                (elapsed, tally, fork, Default::default(), 0, 0, read_op_ns)
            }
        };
    PointResult {
        profile,
        backend,
        threads,
        elapsed,
        tally,
        retired: stats.objects_retired,
        freed: stats.objects_freed,
        reclaim_ok: stats.objects_retired == stats.objects_freed,
        peak_unreclaimed_bytes: stats.peak_unreclaimed_bytes,
        stall_events: stats.stall_events,
        degraded_ops: stats.degraded_ops,
        cas_retries,
        cas_wasted_nodes,
        read_op_ns,
        fork,
    }
}

/// Runs the full sweep, printing each point's JSON record to stdout as it
/// completes. Call [`SweepConfig::validate`] first; this panics on an
/// invalid config.
pub fn run(cfg: &SweepConfig) -> Vec<PointResult> {
    cfg.validate().expect("invalid sweep config");
    let mut results = Vec::new();
    for &profile in &cfg.profiles {
        for &threads in &cfg.threads {
            // One trace set per point, shared verbatim by every backend —
            // the comparison is apples-to-apples by construction.
            let spec = cfg.spec(profile, threads);
            let traces = Arc::new((0..threads).map(|t| spec.thread_trace(t)).collect());
            for &backend in &cfg.backends {
                let point = run_point(cfg, profile, threads, backend, &traces);
                println!("{}", point.to_json());
                results.push(point);
            }
        }
    }
    results
}

/// Renders the whole run as the `BENCH_addrspace.json` trajectory document.
pub fn render_trajectory(cfg: &SweepConfig, results: &[PointResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    // v7 (over v6): the `hybrid` interval-based reclamation backend
    // (stall-tolerant graceful degradation) and the per-record
    // `stall_events` / `degraded_ops` columns surfacing when a stalled
    // reader tripped the degradation protocol — zeros on the other
    // backends. v6 added the multi-tenant `fork-storm` profile (per-thread
    // fork/exec/exit lifecycles over structurally shared address spaces)
    // and its per-record `forks`, `live_spaces_peak`, and
    // `fork_p50/p90/p99/max_ns` latency columns — zeros on profiles that
    // never fork. v5 added the `qsbr` and `hp` backends (same traces,
    // different reclamation), the adversarial `stalled-reader` profile,
    // and the `peak_unreclaimed_bytes` per-record gauge. v4 added
    // the `read-heavy` profile (~99% faults) and the `read_op_ns`
    // per-record single-thread read-side microbench — the per-op
    // pin+lookup latency point the ordering audit's payoff shows up
    // in. v3 added the `metis-phased` profile (mid-trace mix shift) and
    // the `cas_retries`/`cas_wasted_nodes` telemetry from the striped
    // range-lock + arena writer path. v2 added the `writers` profile,
    // multi-region `unmap_range` ops (`unmap_ranges`/`unmap_range_misses`),
    // and range-locked parallel writers on the bonsai backend.
    out.push_str("  \"schema\": \"rcukit-bench/addrspace-v7\",\n");
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"ops_per_thread\": {},\n", cfg.ops_per_thread));
    out.push_str(&format!(
        "  \"forks_per_thread\": {},\n",
        cfg.forks_per_thread
    ));
    out.push_str(&format!(
        "  \"live_per_thread\": {},\n",
        cfg.live_per_thread
    ));
    out.push_str(&format!(
        "  \"slots_per_thread\": {},\n",
        cfg.slots_per_thread
    ));
    out.push_str(&format!("  \"pages_per_slot\": {},\n", cfg.pages_per_slot));
    out.push_str("  \"results\": [\n");
    for (i, point) in results.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&point.to_json());
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
