//! Address-space workload generator.
//!
//! Produces deterministic page-fault/mmap/munmap traces shaped like the
//! paper's evaluation workloads (Section 6): `metis`, an mmap-heavy
//! MapReduce-style mix; `psearchy`, a fault-heavy indexing-style mix;
//! `uniform`, a no-locality microbenchmark; and `writers`, a fault-free
//! pure-mutation mix that stresses the range-locked parallel-writer path
//! (N mutating threads on disjoint arenas). A trace is a pure function of
//! `(spec, thread_id)` — same seed, same trace — so the identical workload
//! can be replayed against the RCU `RangeMap` and the locked baseline, and
//! across repo history.
//!
//! # Address layout
//!
//! The modeled address space is split into one *arena* per thread, each
//! holding `slots_per_thread` region slots of `pages_per_slot` pages.
//! Mutations (`Map`/`Unmap`) stay inside the generating thread's own arena
//! — mirroring Metis/Psearchy, where each core mostly allocates its own
//! buffers — which also keeps traces valid by construction: a replayed
//! `Map` never overlaps another thread's region, so backend `map` calls
//! only fail on a real bug. Faults target the thread's own arena with
//! probability `locality` and the whole shared span otherwise (the
//! cross-core reads of one shared address space that the paper scales).
//!
//! # Generator state machine
//!
//! Each thread's generator tracks the exact extent of each of its slots'
//! regions, starting from the replayer's initial state (even slots mapped,
//! full width). A `Map` picks a random unmapped slot and maps
//! 1..=`pages_per_slot` pages from its start; an `Unmap` picks a random
//! mapped slot and removes its region exactly. A fraction of unmaps
//! (one in eight) becomes a multi-region [`Op::UnmapRange`] span that
//! either removes the anchor region or truncates it mid-region (kernel
//! `munmap` splitting a VMA) and clears up to one following slot — spans
//! stay inside the generating thread's arena, so traces remain valid by
//! construction and replayed `unmap_range` calls always affect at least
//! one region. When the wanted kind is impossible (all slots mapped /
//! none mapped) the op degrades to its dual, keeping the mapped fraction
//! near one half.

/// Page size used by the modeled address space.
pub const PAGE: u64 = 0x1000;

/// One operation in a replayable trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Translate `addr`; a hit means a mapped region contains it.
    Fault(u64),
    /// Map the half-open range `[start, end)`.
    Map(u64, u64),
    /// Unmap the region starting at `start`.
    Unmap(u64),
    /// Unmap every byte in `[start, end)` — a multi-region `munmap` that
    /// removes regions inside the span and splits/truncates straddlers.
    /// Generated spans always intersect at least one region, so a replay
    /// observing zero affected regions indicates a backend bug.
    UnmapRange(u64, u64),
}

/// One phase of a profile: an op mix and fault locality applied over a
/// contiguous share of each thread's trace. Single-phase profiles have one
/// entry covering the whole trace; phase-structured profiles (Metis' map →
/// reduce shift) switch mid-trace at deterministic op indices, so the
/// *same* replayed run exercises an allocation-heavy regime and then a
/// fault-heavy one against whatever state the first phase left behind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Phase {
    /// Share of the trace this phase covers, in parts per 1024. A
    /// profile's phases sum to exactly 1024.
    pub ops_ppk: u32,
    /// `(fault, map, unmap)` mix in parts per 1024. Sums to 1024.
    pub mix: (u32, u32, u32),
    /// Probability (parts per 1024) that a fault targets the generating
    /// thread's own arena rather than the whole span.
    pub locality: u32,
}

/// A named workload shape: one or more [`Phase`]s of op mix + locality.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Metis (MapReduce) shape: mmap-heavy — the map phase continually
    /// allocates and frees buffers while reducers fault on shared data.
    Metis,
    /// Metis with its phase structure made explicit: an allocation-heavy
    /// *map* phase (the workers building per-core buffers), then a
    /// fault-heavy *reduce* phase reading mostly-shared intermediate data
    /// (lower locality). The plain `metis` profile blends the two into one
    /// stationary mix; this one switches mid-trace.
    MetisPhased,
    /// Psearchy (parallel indexing) shape: fault-heavy — long scans of
    /// mostly-stable mappings with rare allocation.
    Psearchy,
    /// Read-heavy microbenchmark: ~99% faults with token mutation
    /// (0.5%/0.5% map/unmap) to keep grace periods turning over. The
    /// near-pure read-side point of the sweep — the regime where per-op
    /// pin+lookup cost dominates and the ordering audit's fence-only hot
    /// path shows up directly in `read_op_ns`.
    ReadHeavy,
    /// Uniform microbenchmark: moderate churn, no locality; every fault
    /// address is drawn from the whole span.
    Uniform,
    /// Contended-writer microbenchmark: no faults at all — every op is a
    /// map/unmap in the thread's own arena. With N threads this is N
    /// writers mutating one shared address space on disjoint spans: the
    /// workload the range-locked writer path exists for (and the one the
    /// old single-writer mutex serialized completely).
    Writers,
    /// Adversarial reclamation stress: a mutation-heavy churn trace during
    /// which the *harness* (not the trace) parks one extra reader inside
    /// the backend's read-side protection for the whole replay — a pinned
    /// epoch guard, a registered-but-silent QSBR thread, or a hazard
    /// session holding a protected pointer. The trace itself just turns
    /// garbage over; the point of the profile is the
    /// `peak_unreclaimed_bytes` column: grace-period backends (epoch,
    /// QSBR) accumulate garbage in proportion to the stalled window
    /// (scale it with `ops`), while the hazard-pointer backend's peak
    /// stays bounded by construction.
    StalledReader,
    /// Multi-tenant process-lifecycle stress: each replaying thread runs
    /// repeated fork/exec/exit cycles against one shared collector — the
    /// harness `fork()`s a child address space off the thread's parent
    /// space (timed; the O(depth) structural-sharing snapshot vs. the
    /// baseline's O(n) deep copy), replays a chunk of this trace against
    /// the child (the *exec* remap burst, then the *run* fault phase
    /// below), keeps a bounded ring of live children per thread, and
    /// `exit`s the oldest — so hundreds of concurrent address spaces
    /// share subtrees with their parents while churning and retiring.
    /// The trace itself is the per-child lifecycle; the fork/exit
    /// structure lives in the harness, like `stalled-reader`'s parked
    /// reader.
    ForkStorm,
}

impl Profile {
    /// All profiles, in reporting order.
    pub const ALL: [Profile; 8] = [
        Profile::Metis,
        Profile::MetisPhased,
        Profile::Psearchy,
        Profile::ReadHeavy,
        Profile::Uniform,
        Profile::Writers,
        Profile::StalledReader,
        Profile::ForkStorm,
    ];

    /// The profile's name as used by the CLI and the JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Metis => "metis",
            Profile::MetisPhased => "metis-phased",
            Profile::Psearchy => "psearchy",
            Profile::ReadHeavy => "read-heavy",
            Profile::Uniform => "uniform",
            Profile::Writers => "writers",
            Profile::StalledReader => "stalled-reader",
            Profile::ForkStorm => "fork-storm",
        }
    }

    /// Parses a CLI profile name.
    pub fn parse(s: &str) -> Result<Profile, String> {
        match s {
            "metis" => Ok(Profile::Metis),
            "metis-phased" => Ok(Profile::MetisPhased),
            "psearchy" => Ok(Profile::Psearchy),
            "read-heavy" => Ok(Profile::ReadHeavy),
            "uniform" => Ok(Profile::Uniform),
            "writers" => Ok(Profile::Writers),
            "stalled-reader" => Ok(Profile::StalledReader),
            "fork-storm" => Ok(Profile::ForkStorm),
            other => Err(format!(
                "unknown profile {other:?} \
                 (expected metis|metis-phased|psearchy|read-heavy|uniform|writers|\
                 stalled-reader|fork-storm|all)"
            )),
        }
    }

    /// Whether the harness parks a stalled reader inside read-side
    /// protection for the whole replay of this profile.
    pub fn stalls_a_reader(self) -> bool {
        matches!(self, Profile::StalledReader)
    }

    /// Whether the harness drives fork/exec/exit process lifecycles for
    /// this profile (each thread's trace replayed in chunks against forked
    /// child spaces instead of straight through against one space).
    pub fn forks_processes(self) -> bool {
        matches!(self, Profile::ForkStorm)
    }

    /// The profile's phases, in trace order. `ops_ppk` sums to 1024.
    pub fn phases(self) -> &'static [Phase] {
        match self {
            Profile::Metis => &[Phase {
                ops_ppk: 1024,
                mix: (512, 256, 256),
                locality: 921, // ~0.9: cores chew their own buffers
            }],
            Profile::MetisPhased => &[
                // Map phase: the workers allocate and free buffers hard,
                // faulting mostly into their own arenas.
                Phase {
                    ops_ppk: 512,
                    mix: (256, 384, 384),
                    locality: 921,
                },
                // Reduce phase: long fault scans over mostly-shared
                // intermediate data — rare mutation, low locality.
                Phase {
                    ops_ppk: 512,
                    mix: (922, 51, 51),
                    locality: 205, // ~0.2: reducers read other cores' output
                },
            ],
            Profile::Psearchy => &[Phase {
                ops_ppk: 1024,
                mix: (1004, 10, 10),
                locality: 819, // ~0.8: per-core index + shared corpus
            }],
            Profile::ReadHeavy => &[Phase {
                ops_ppk: 1024,
                mix: (1014, 5, 5), // ~99% / 0.5% / 0.5%
                locality: 819,     // ~0.8: per-core working set + shared reads
            }],
            Profile::Uniform => &[Phase {
                ops_ppk: 1024,
                mix: (922, 51, 51),
                locality: 0,
            }],
            Profile::Writers => &[Phase {
                ops_ppk: 1024,
                mix: (0, 512, 512),
                locality: 1024, // no faults; vacuous
            }],
            Profile::StalledReader => &[Phase {
                ops_ppk: 1024,
                // Mutation-heavy: the profile exists to retire garbage
                // while the harness's parked reader blocks (or, for HP,
                // fails to block) its reclamation.
                mix: (256, 384, 384),
                locality: 819,
            }],
            Profile::ForkStorm => &[
                // Exec: the fresh child tears down and rebuilds mappings
                // hard — a remap burst over the inherited (shared) image.
                Phase {
                    ops_ppk: 256,
                    mix: (102, 461, 461),
                    locality: 1024, // the child works its own arena
                },
                // Run: the process mostly faults over its now-private
                // mappings, with residual churn keeping retirement going.
                Phase {
                    ops_ppk: 768,
                    mix: (819, 102, 103),
                    locality: 819,
                },
            ],
        }
    }

    /// `(fault, map, unmap)` mix in parts per 1024, summed over the whole
    /// trace: exact for single-phase profiles, the `ops_ppk`-weighted
    /// blend (rounded down per component) for phase-structured ones.
    pub fn mix(self) -> (u32, u32, u32) {
        let mut acc = (0u32, 0u32, 0u32);
        for p in self.phases() {
            acc.0 += p.ops_ppk * p.mix.0;
            acc.1 += p.ops_ppk * p.mix.1;
            acc.2 += p.ops_ppk * p.mix.2;
        }
        (acc.0 / 1024, acc.1 / 1024, acc.2 / 1024)
    }

    /// Trace-wide fault locality (parts per 1024): exact for single-phase
    /// profiles, the blend for phase-structured ones.
    pub fn locality(self) -> u32 {
        let acc: u32 = self.phases().iter().map(|p| p.ops_ppk * p.locality).sum();
        acc / 1024
    }
}

/// Deterministic xorshift64* PRNG.
///
/// Streams are keyed by seed only; distinct thread traces use distinct
/// derived seeds (see [`WorkloadSpec::thread_trace`]).
#[derive(Debug)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator; the seed is forced odd so the state is nonzero.
    pub fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Bernoulli draw with probability `ppk / 1024`.
    pub fn chance(&mut self, ppk: u32) -> bool {
        (self.next_u64() & 1023) < ppk as u64
    }
}

/// Full description of one generated workload. Traces are pure functions
/// of this struct, so two replays of the same spec see identical ops.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// The workload shape.
    pub profile: Profile,
    /// Number of replaying threads (one arena each).
    pub threads: usize,
    /// Operations generated per thread.
    pub ops_per_thread: usize,
    /// Region slots per thread arena.
    pub slots_per_thread: u64,
    /// Maximum pages per mapped region (slot width).
    pub pages_per_slot: u64,
    /// Master seed; thread `t` draws from a seed derived from `(seed, t)`.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Validates the spec, returning a human-readable complaint on error.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads == 0 {
            return Err("threads must be >= 1".into());
        }
        if self.ops_per_thread == 0 {
            return Err("ops per thread must be >= 1".into());
        }
        if self.slots_per_thread < 2 {
            return Err("slots per thread must be >= 2 (the generator keeps ~half mapped)".into());
        }
        if self.pages_per_slot == 0 {
            return Err("pages per slot must be >= 1".into());
        }
        // Oversized inputs must be a usage error, not a wrapped-to-zero
        // panic deep in release-mode address arithmetic.
        self.pages_per_slot
            .checked_mul(PAGE)
            .and_then(|slot| slot.checked_mul(self.slots_per_thread))
            .and_then(|arena| arena.checked_mul(self.threads as u64))
            .ok_or("threads * slots * pages * PAGE overflows the u64 address space")?;
        Ok(())
    }

    /// Bytes covered by one slot.
    pub fn slot_bytes(&self) -> u64 {
        self.pages_per_slot * PAGE
    }

    /// Bytes covered by one thread arena.
    pub fn arena_bytes(&self) -> u64 {
        self.slots_per_thread * self.slot_bytes()
    }

    /// Total bytes of modeled address space across all arenas.
    pub fn span(&self) -> u64 {
        self.threads as u64 * self.arena_bytes()
    }

    /// Start address of thread `t`'s slot `s`.
    pub fn slot_start(&self, thread: usize, slot: u64) -> u64 {
        thread as u64 * self.arena_bytes() + slot * self.slot_bytes()
    }

    /// The regions every arena starts out with: even slots mapped at full
    /// width. The replayer must apply these (for every thread) before
    /// replaying any trace; the generator assumes this initial state.
    pub fn initial_regions(&self, thread: usize) -> Vec<(u64, u64)> {
        (0..self.slots_per_thread)
            .step_by(2)
            .map(|s| {
                let start = self.slot_start(thread, s);
                (start, start + self.slot_bytes())
            })
            .collect()
    }

    /// Of the unmap ops, this fraction (parts per 1024) become multi-region
    /// [`Op::UnmapRange`] spans. Kept small enough that the realized
    /// map/unmap mix stays within the documented profile ratios (a ranged
    /// span can clear more than one slot per op).
    const RANGED_UNMAP_PPK: u32 = 128;

    /// Generates thread `t`'s trace. Pure: same spec and thread, same ops.
    pub fn thread_trace(&self, thread: usize) -> Vec<Op> {
        debug_assert!(self.validate().is_ok() && thread < self.threads);
        // SplitMix-style seed derivation keeps per-thread streams disjoint
        // even for adjacent seeds/thread ids.
        let derived = (self.seed ^ (thread as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0x243F_6A88_85A3_08D3);
        let mut rng = Rng::new(derived);
        let phases = self.profile.phases();
        debug_assert_eq!(phases.iter().map(|p| p.ops_ppk).sum::<u32>(), 1024);
        // Deterministic phase boundaries in op counts: phase `i` ends at
        // `cumulative_ppk(i) * ops / 1024` (the last boundary is exactly
        // `ops`), so the same spec always switches mix at the same index.
        let mut cumulative_ppk = 0u64;
        let boundary = |cum: u64| (cum * self.ops_per_thread as u64 / 1024) as usize;
        let mut phase_idx = 0usize;
        cumulative_ppk += phases[0].ops_ppk as u64;
        let mut phase_end = boundary(cumulative_ppk);

        // Exact end address of each slot's region, `None` when unmapped —
        // the generator mirrors the replayed state precisely, which is
        // what lets it emit mid-region truncating spans that stay valid.
        let mut extents: Vec<Option<u64>> = (0..self.slots_per_thread)
            .map(|s| {
                s.is_multiple_of(2)
                    .then(|| self.slot_start(thread, s) + self.slot_bytes())
            })
            .collect();
        let mut mapped_count = extents.iter().filter(|e| e.is_some()).count() as u64;
        let mut trace = Vec::with_capacity(self.ops_per_thread);

        for i in 0..self.ops_per_thread {
            while i >= phase_end && phase_idx + 1 < phases.len() {
                phase_idx += 1;
                cumulative_ppk += phases[phase_idx].ops_ppk as u64;
                phase_end = boundary(cumulative_ppk);
            }
            let (fault_ppk, map_ppk, _) = phases[phase_idx].mix;
            let locality_ppk = phases[phase_idx].locality;
            let roll = (rng.next_u64() & 1023) as u32;
            if roll < fault_ppk {
                let addr = if rng.chance(locality_ppk) {
                    self.slot_start(thread, 0) + rng.below(self.arena_bytes())
                } else {
                    rng.below(self.span())
                };
                trace.push(Op::Fault(addr));
                continue;
            }
            // Degrade to the dual when the wanted mutation is impossible.
            let want_map = roll < fault_ppk + map_ppk;
            let do_map = if mapped_count == 0 {
                true
            } else if mapped_count == self.slots_per_thread {
                false
            } else {
                want_map
            };
            if do_map {
                let slot = Self::pick_slot(&extents, &mut rng, false);
                let start = self.slot_start(thread, slot);
                let pages = 1 + rng.below(self.pages_per_slot);
                trace.push(Op::Map(start, start + pages * PAGE));
                extents[slot as usize] = Some(start + pages * PAGE);
                mapped_count += 1;
            } else {
                let slot = Self::pick_slot(&extents, &mut rng, true);
                let start = self.slot_start(thread, slot);
                if rng.chance(Self::RANGED_UNMAP_PPK) {
                    let op =
                        self.ranged_unmap(thread, slot, &mut extents, &mut mapped_count, &mut rng);
                    trace.push(op);
                } else {
                    trace.push(Op::Unmap(start));
                    extents[slot as usize] = None;
                    mapped_count -= 1;
                }
            }
        }
        trace
    }

    /// Builds a multi-region unmap span anchored at mapped `slot`: with
    /// even odds (when the region is more than one page) the span starts
    /// mid-region — truncating it, the kernel's VMA-split case — otherwise
    /// at the region start, removing it; and it extends over up to one
    /// following slot (clamped to the arena), clearing any region there.
    /// The anchor region is always affected, so the replayed
    /// `unmap_range` must never report zero affected regions.
    fn ranged_unmap(
        &self,
        thread: usize,
        slot: u64,
        extents: &mut [Option<u64>],
        mapped_count: &mut u64,
        rng: &mut Rng,
    ) -> Op {
        let start = self.slot_start(thread, slot);
        let end = extents[slot as usize].expect("ranged unmap anchor must be mapped");
        let pages = (end - start) / PAGE;
        let cut = if pages > 1 && rng.chance(512) {
            // Truncate: keep [start, cut), clear [cut, …).
            start + PAGE * (1 + rng.below(pages - 1))
        } else {
            start
        };
        if cut == start {
            extents[slot as usize] = None;
            *mapped_count -= 1;
        } else {
            extents[slot as usize] = Some(cut);
        }
        // Extend over 0 or 1 following slots, staying inside the arena.
        let span_slots = (slot + 1 + rng.below(2)).min(self.slots_per_thread);
        for s in slot + 1..span_slots {
            if extents[s as usize].take().is_some() {
                *mapped_count -= 1;
            }
        }
        let hi = self.slot_start(thread, 0) + span_slots * self.slot_bytes();
        Op::UnmapRange(cut, hi)
    }

    /// Picks a uniformly random slot whose mapped-state equals `state`.
    /// The caller guarantees at least one exists.
    fn pick_slot(extents: &[Option<u64>], rng: &mut Rng, state: bool) -> u64 {
        loop {
            let slot = rng.below(extents.len() as u64);
            if extents[slot as usize].is_some() == state {
                return slot;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(profile: Profile) -> WorkloadSpec {
        WorkloadSpec {
            profile,
            threads: 4,
            ops_per_thread: 100_000,
            slots_per_thread: 64,
            pages_per_slot: 16,
            seed: 42,
        }
    }

    #[test]
    fn same_seed_same_trace() {
        for profile in Profile::ALL {
            let s = spec(profile);
            for t in 0..s.threads {
                assert_eq!(s.thread_trace(t), s.thread_trace(t), "{profile:?}/{t}");
            }
        }
    }

    #[test]
    fn different_seeds_and_threads_diverge() {
        let a = spec(Profile::Uniform);
        let mut b = a.clone();
        b.seed = 43;
        assert_ne!(a.thread_trace(0), b.thread_trace(0));
        assert_ne!(a.thread_trace(0), a.thread_trace(1));
    }

    #[test]
    fn mix_ratios_within_tolerance() {
        for profile in Profile::ALL {
            let s = spec(profile);
            let trace = s.thread_trace(0);
            let total = trace.len() as f64;
            let faults = trace.iter().filter(|o| matches!(o, Op::Fault(_))).count() as f64;
            let maps = trace.iter().filter(|o| matches!(o, Op::Map(..))).count() as f64;
            let unmaps = trace
                .iter()
                .filter(|o| matches!(o, Op::Unmap(_) | Op::UnmapRange(..)))
                .count() as f64;
            let (f, m, u) = profile.mix();
            // Map/unmap can trade places when a wanted kind is impossible
            // (and a ranged unmap can clear more than one slot), so their
            // tolerance is shared; 2% absolute on 100k ops is wide enough
            // for the RNG, tight enough to catch a mix regression.
            assert!(
                (faults / total - f as f64 / 1024.0).abs() < 0.02,
                "{profile:?} fault ratio {faults}/{total}"
            );
            assert!(
                (maps / total - m as f64 / 1024.0).abs() < 0.02,
                "{profile:?} map ratio {maps}/{total}"
            );
            assert!(
                (unmaps / total - u as f64 / 1024.0).abs() < 0.02,
                "{profile:?} unmap ratio {unmaps}/{total}"
            );
        }
    }

    /// The phased profile must actually shift its mix at the midpoint:
    /// the map phase is allocation-heavy (fault share ~25%), the reduce
    /// phase fault-heavy (~90%) — and locality drops with it, so the
    /// reduce phase's faults roam the shared span.
    #[test]
    fn metis_phased_shifts_mix_and_locality_mid_trace() {
        let s = spec(Profile::MetisPhased);
        let trace = s.thread_trace(0);
        let half = trace.len() / 2; // ops_ppk 512/512 → boundary at ops/2
        let fault_share = |ops: &[Op]| {
            ops.iter().filter(|o| matches!(o, Op::Fault(_))).count() as f64 / ops.len() as f64
        };
        let map_phase = fault_share(&trace[..half]);
        let reduce_phase = fault_share(&trace[half..]);
        assert!(
            (map_phase - 0.25).abs() < 0.02,
            "map-phase fault share {map_phase}"
        );
        assert!(
            (reduce_phase - 0.90).abs() < 0.02,
            "reduce-phase fault share {reduce_phase}"
        );
        // Locality shift: thread 0's own arena is [0, arena_bytes); with 4
        // threads a whole-span draw lands outside it 3/4 of the time, so
        // outside-share ≈ (1 - locality) * 0.75 per phase.
        let outside_share = |ops: &[Op]| {
            let arena = s.arena_bytes();
            let faults: Vec<_> = ops
                .iter()
                .filter_map(|o| match o {
                    Op::Fault(a) => Some(*a),
                    _ => None,
                })
                .collect();
            faults.iter().filter(|&&a| a >= arena).count() as f64 / faults.len() as f64
        };
        assert!(outside_share(&trace[..half]) < 0.2, "map phase roamed");
        assert!(
            outside_share(&trace[half..]) > 0.4,
            "reduce phase stayed local"
        );
    }

    /// Phase metadata is consistent: every profile's phases sum to 1024
    /// ppk, and the blended mix/locality match the single-phase values
    /// exactly for single-phase profiles.
    #[test]
    fn phase_tables_are_consistent() {
        for profile in Profile::ALL {
            let phases = profile.phases();
            assert_eq!(
                phases.iter().map(|p| p.ops_ppk).sum::<u32>(),
                1024,
                "{profile:?}"
            );
            for p in phases {
                assert_eq!(p.mix.0 + p.mix.1 + p.mix.2, 1024, "{profile:?}");
            }
            if phases.len() == 1 {
                assert_eq!(profile.mix(), phases[0].mix);
                assert_eq!(profile.locality(), phases[0].locality);
            }
        }
        assert_eq!(Profile::parse("metis-phased"), Ok(Profile::MetisPhased));
        assert_eq!(Profile::MetisPhased.name(), "metis-phased");
    }

    /// Ranged unmaps must actually occur — and exercise both the
    /// truncating (mid-region) and removing (region-start) shapes.
    #[test]
    fn ranged_unmaps_cover_truncation_and_removal() {
        let s = spec(Profile::Writers);
        let mut truncating = 0usize;
        let mut removing = 0usize;
        for t in 0..s.threads {
            for op in s.thread_trace(t) {
                if let Op::UnmapRange(lo, _) = op {
                    let rel = lo - s.slot_start(t, 0);
                    if rel.is_multiple_of(s.slot_bytes()) {
                        removing += 1;
                    } else {
                        truncating += 1;
                    }
                }
            }
        }
        assert!(
            truncating > 0,
            "no mid-region (VMA-splitting) spans generated"
        );
        assert!(removing > 0, "no region-start spans generated");
    }

    /// The writers profile is pure mutation: no faults at all.
    #[test]
    fn writers_profile_has_no_faults() {
        let s = spec(Profile::Writers);
        let trace = s.thread_trace(0);
        assert!(
            !trace.iter().any(|o| matches!(o, Op::Fault(_))),
            "writers profile generated a fault"
        );
        assert!(trace.iter().any(|o| matches!(o, Op::UnmapRange(..))));
    }

    /// Replaying a trace against an exact extent model must never map an
    /// already-mapped slot, unmap an unmapped one, or emit a ranged span
    /// that misses every region: traces are valid by construction, so
    /// backend `map`/`unmap`/`unmap_range` failures indicate real bugs.
    #[test]
    fn traces_are_valid_against_the_initial_state() {
        for profile in Profile::ALL {
            let s = spec(profile);
            for t in 0..s.threads {
                let arena_base = s.slot_start(t, 0);
                let arena_end = arena_base + s.arena_bytes();
                let mut extents: Vec<Option<u64>> = (0..s.slots_per_thread)
                    .map(|x| {
                        x.is_multiple_of(2)
                            .then(|| s.slot_start(t, x) + s.slot_bytes())
                    })
                    .collect();
                for op in s.thread_trace(t) {
                    match op {
                        Op::Fault(addr) => assert!(addr < s.span()),
                        Op::Map(start, end) => {
                            let rel = start - arena_base;
                            assert!(rel.is_multiple_of(s.slot_bytes()));
                            let slot = (rel / s.slot_bytes()) as usize;
                            assert!(end - start <= s.slot_bytes());
                            assert!(extents[slot].is_none(), "{profile:?}: double map");
                            extents[slot] = Some(end);
                        }
                        Op::Unmap(start) => {
                            let rel = start - arena_base;
                            assert!(rel.is_multiple_of(s.slot_bytes()));
                            let slot = (rel / s.slot_bytes()) as usize;
                            assert!(extents[slot].is_some(), "{profile:?}: unmap of unmapped");
                            extents[slot] = None;
                        }
                        Op::UnmapRange(lo, hi) => {
                            // Arena-local, slot-aligned end, non-empty.
                            assert!(lo < hi, "{profile:?}: empty span");
                            assert!(lo >= arena_base && hi <= arena_end);
                            assert!((hi - arena_base).is_multiple_of(s.slot_bytes()));
                            // The anchor region must exist and be affected:
                            // `lo` lies strictly below its current end.
                            let slot = ((lo - arena_base) / s.slot_bytes()) as usize;
                            let anchor_start = s.slot_start(t, slot as u64);
                            let end = extents[slot].unwrap_or_else(|| {
                                panic!("{profile:?}: ranged span anchored on unmapped slot")
                            });
                            assert!(lo < end, "{profile:?}: span misses the anchor region");
                            if lo > anchor_start {
                                // Truncation keeps the head piece.
                                extents[slot] = Some(lo);
                            } else {
                                extents[slot] = None;
                            }
                            // Following slots inside the span are cleared
                            // entirely (regions never straddle slots).
                            let hi_slot = ((hi - arena_base) / s.slot_bytes()) as usize;
                            for e in extents.iter_mut().take(hi_slot).skip(slot + 1) {
                                *e = None;
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        let good = spec(Profile::Metis);
        assert!(good.validate().is_ok());
        for bad in [
            WorkloadSpec {
                threads: 0,
                ..good.clone()
            },
            WorkloadSpec {
                ops_per_thread: 0,
                ..good.clone()
            },
            WorkloadSpec {
                slots_per_thread: 1,
                ..good.clone()
            },
            WorkloadSpec {
                pages_per_slot: 0,
                ..good.clone()
            },
            WorkloadSpec {
                pages_per_slot: u64::MAX / PAGE + 1,
                ..good.clone()
            },
            WorkloadSpec {
                slots_per_thread: u64::MAX / PAGE,
                ..good.clone()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn uniform_profile_has_no_locality() {
        // With locality 0 every fault draws from the whole span; check a
        // healthy share actually lands outside thread 0's own arena.
        let s = spec(Profile::Uniform);
        let arena = s.arena_bytes();
        let outside = s
            .thread_trace(0)
            .iter()
            .filter(|o| matches!(o, Op::Fault(a) if *a >= arena))
            .count();
        let faults = s
            .thread_trace(0)
            .iter()
            .filter(|o| matches!(o, Op::Fault(_)))
            .count();
        assert!(outside as f64 > 0.6 * faults as f64);
    }
}
