//! In-process smoke test of the evaluation sweep: a tiny run against every
//! backend must produce identical-work records, a clean reclaim check,
//! and a well-formed JSON trajectory document.

use rcukit_bench::sweep::{self, Backend, PointResult, SweepConfig};
use rcukit_bench::workload::Profile;

fn tiny_config() -> SweepConfig {
    SweepConfig {
        threads: vec![1, 2],
        profiles: vec![
            Profile::Metis,
            Profile::MetisPhased,
            Profile::Psearchy,
            Profile::ReadHeavy,
            Profile::Writers,
            Profile::StalledReader,
            Profile::ForkStorm,
        ],
        backends: Backend::ALL.to_vec(),
        ops_per_thread: 5_000,
        slots_per_thread: 16,
        pages_per_slot: 8,
        seed: 7,
        forks_per_thread: 64,
        live_per_thread: 16,
        out: None,
    }
}

/// The per-record sanity contract, shared by every test that runs a sweep
/// (and mirrored by CI's trajectory sanity step): one place asserts every
/// field of the v7 record shape, so a new column gets its checks here
/// exactly once.
fn check_record(point: &PointResult, cfg: &SweepConfig) {
    // Fixed-work replay: every thread performs exactly its trace (the
    // fork-storm chunks partition it, so the total is identical).
    assert_eq!(
        point.total_ops(),
        (point.threads * cfg.ops_per_thread) as u64,
        "{point:?}"
    );
    // Traces are valid by construction; rejects/misses mean backend bugs.
    assert_eq!(point.tally.map_rejects, 0, "{point:?}");
    assert_eq!(point.tally.unmap_misses, 0, "{point:?}");
    assert_eq!(point.tally.unmap_range_misses, 0, "{point:?}");
    // Every reclaiming backend must retire and free the same count
    // after the final grace period; the locked baseline trivially
    // passes (and never reports unreclaimed garbage).
    assert!(point.reclaim_ok, "{point:?}");
    if point.backend.reclaim_kind().is_some() {
        assert!(point.retired > 0, "writer churn must retire nodes");
        assert!(
            point.peak_unreclaimed_bytes > 0,
            "retirements must register on the peak gauge: {point:?}"
        );
    } else {
        assert_eq!(point.peak_unreclaimed_bytes, 0, "{point:?}");
    }
    // Degradation telemetry belongs to the hybrid backend alone, and
    // degraded retirements can only be counted after a stall was declared.
    if point.backend != Backend::Hybrid {
        assert_eq!(point.stall_events, 0, "{point:?}");
        assert_eq!(point.degraded_ops, 0, "{point:?}");
    } else if point.degraded_ops > 0 {
        assert!(point.stall_events > 0, "{point:?}");
    }
    // CAS telemetry sanity: single-threaded replays can never lose a
    // root CAS, and the locked baseline has no CAS at all.
    if point.threads == 1 || point.backend == Backend::Locked {
        assert_eq!(point.cas_retries, 0, "{point:?}");
        assert_eq!(point.cas_wasted_nodes, 0, "{point:?}");
    }
    // Wasted nodes exist only where retries do.
    if point.cas_retries == 0 {
        assert_eq!(point.cas_wasted_nodes, 0, "{point:?}");
    }
    // The read-side microbench ran and produced a plausible latency:
    // positive, and well under a millisecond per lookup.
    assert!(
        point.read_op_ns > 0.0 && point.read_op_ns < 1e6,
        "{point:?}"
    );
    // Fork metrics: populated exactly on fork-storm records, zero
    // elsewhere — and internally consistent where populated.
    if point.profile == Profile::ForkStorm {
        assert_eq!(
            point.fork.forks,
            (point.threads * cfg.forks_per_thread) as u64,
            "{point:?}"
        );
        assert!(point.fork.live_spaces_peak > 0, "{point:?}");
        assert!(
            point.fork.live_spaces_peak <= (point.threads * (cfg.live_per_thread + 1)) as u64,
            "live gauge exceeded every thread's ring bound: {point:?}"
        );
        if cfg.forks_per_thread > cfg.live_per_thread {
            // Each thread forks more than its ring holds, so at least one
            // ring must have filled: the storm genuinely ran concurrent
            // tenants, it didn't fork-and-exit one space at a time.
            assert!(
                point.fork.live_spaces_peak >= cfg.live_per_thread as u64,
                "no thread's live ring ever filled: {point:?}"
            );
        }
        assert!(
            point.fork.fork_p50_ns > 0,
            "fork timer never ran: {point:?}"
        );
        assert!(
            point.fork.fork_p50_ns <= point.fork.fork_p90_ns,
            "{point:?}"
        );
        assert!(
            point.fork.fork_p90_ns <= point.fork.fork_p99_ns,
            "{point:?}"
        );
        assert!(
            point.fork.fork_p99_ns <= point.fork.fork_max_ns,
            "{point:?}"
        );
    } else {
        assert_eq!(point.fork.forks, 0, "{point:?}");
        assert_eq!(point.fork.live_spaces_peak, 0, "{point:?}");
        assert_eq!(point.fork.fork_max_ns, 0, "{point:?}");
    }
}

#[test]
fn sweep_runs_every_backend_over_identical_work() {
    let cfg = tiny_config();
    let results = sweep::run(&cfg);
    assert_eq!(
        results.len(),
        cfg.threads.len() * cfg.profiles.len() * cfg.backends.len()
    );

    for point in &results {
        check_record(point, &cfg);
    }

    // The same (profile, threads) trace replayed against each backend must
    // tally identically — only elapsed time may differ.
    for group in results.chunks(cfg.backends.len()) {
        let a = &group[0];
        for b in &group[1..] {
            assert_eq!(a.profile, b.profile);
            assert_eq!(a.threads, b.threads);
            assert_eq!(a.tally.faults, b.tally.faults);
            assert_eq!(a.tally.maps, b.tally.maps);
            assert_eq!(a.tally.unmaps, b.tally.unmaps);
            assert_eq!(a.tally.unmap_ranges, b.tally.unmap_ranges);
            // Hit counts are only interleaving-independent single-threaded:
            // a cross-arena fault races other threads' map/unmap replay.
            if a.threads == 1 {
                assert_eq!(a.tally.fault_hits, b.tally.fault_hits);
            }
        }
    }
}

/// The acceptance test for bounded garbage: under the `stalled-reader`
/// profile one reader sits inside its read-side protection for the whole
/// replay. Epoch reclamation cannot advance past the stalled reader's
/// epoch, so its peak unreclaimed footprint scales with the stall window
/// (here: with the number of ops replayed under the stall). Hazard
/// pointers only ever defer what the scan threshold plus the per-slot
/// protections can hold, so the peak stays flat no matter how long the
/// stall lasts. The hybrid interval-based backend is bounded for a
/// different reason: a pin can only block garbage born at or before its
/// reservation, so everything the replay itself creates and retires is
/// freed regardless of the stalled reader.
#[test]
fn stalled_reader_peak_grows_with_window_on_epoch_but_not_hp_or_hybrid() {
    fn stalled(ops: usize) -> (SweepConfig, Vec<sweep::PointResult>) {
        let cfg = SweepConfig {
            threads: vec![2],
            profiles: vec![Profile::StalledReader],
            backends: vec![Backend::Bonsai, Backend::Hp, Backend::Hybrid],
            ops_per_thread: ops,
            slots_per_thread: 16,
            pages_per_slot: 8,
            seed: 7,
            forks_per_thread: 1,
            live_per_thread: 1,
            out: None,
        };
        let results = sweep::run(&cfg);
        (cfg, results)
    }

    let (short_cfg, short) = stalled(2_000);
    let (long_cfg, long) = stalled(8_000);
    let (epoch_short, hp_short, hybrid_short) = (&short[0], &short[1], &short[2]);
    let (epoch_long, hp_long, hybrid_long) = (&long[0], &long[1], &long[2]);
    assert_eq!(epoch_short.backend, Backend::Bonsai);
    assert_eq!(hp_short.backend, Backend::Hp);
    assert_eq!(hybrid_short.backend, Backend::Hybrid);

    // Both backends still reclaim everything once the stall lifts (the
    // shared record contract covers reclaim_ok / retired > 0).
    for point in &short {
        check_record(point, &short_cfg);
    }
    for point in &long {
        check_record(point, &long_cfg);
    }

    // Epoch garbage accumulates for the whole window: quadrupling the ops
    // must at least double the peak (conservative to keep this robust).
    assert!(
        epoch_long.peak_unreclaimed_bytes >= 2 * epoch_short.peak_unreclaimed_bytes,
        "epoch peak must scale with the stall window: \
         short={} long={}",
        epoch_short.peak_unreclaimed_bytes,
        epoch_long.peak_unreclaimed_bytes,
    );
    // The HP peak is bounded by construction (scan threshold + slots), so
    // it must not track the window and must sit far below the epoch peak.
    assert!(
        hp_long.peak_unreclaimed_bytes <= 4 * hp_short.peak_unreclaimed_bytes.max(4096),
        "hp peak must not scale with the stall window: short={} long={}",
        hp_short.peak_unreclaimed_bytes,
        hp_long.peak_unreclaimed_bytes,
    );
    assert!(
        hp_long.peak_unreclaimed_bytes * 4 < epoch_long.peak_unreclaimed_bytes,
        "hp peak ({}) must sit well below the epoch peak ({})",
        hp_long.peak_unreclaimed_bytes,
        epoch_long.peak_unreclaimed_bytes,
    );
    // The hybrid backend degrades gracefully: the stalled pin blocks only
    // pre-pin garbage, so the peak must neither track the window nor
    // approach the epoch backend's runaway growth.
    assert!(
        hybrid_long.peak_unreclaimed_bytes <= 4 * hybrid_short.peak_unreclaimed_bytes.max(4096),
        "hybrid peak must not scale with the stall window: short={} long={}",
        hybrid_short.peak_unreclaimed_bytes,
        hybrid_long.peak_unreclaimed_bytes,
    );
    assert!(
        hybrid_long.peak_unreclaimed_bytes * 4 < epoch_long.peak_unreclaimed_bytes,
        "hybrid peak ({}) must sit well below the epoch peak ({})",
        hybrid_long.peak_unreclaimed_bytes,
        epoch_long.peak_unreclaimed_bytes,
    );
}

#[test]
fn trajectory_document_is_well_formed_json() {
    let cfg = tiny_config();
    let results = sweep::run(&cfg);
    let doc = sweep::render_trajectory(&cfg, &results);

    let value = json::parse(&doc).expect("trajectory must parse as JSON");
    let top = match value {
        json::Value::Object(pairs) => pairs,
        other => panic!("expected top-level object, got {other:?}"),
    };
    assert_eq!(
        lookup(&top, "schema"),
        Some(&json::Value::String("rcukit-bench/addrspace-v7".into()))
    );
    assert_eq!(lookup(&top, "seed"), Some(&json::Value::Number(7.0)));
    assert_eq!(
        lookup(&top, "forks_per_thread"),
        Some(&json::Value::Number(64.0))
    );
    assert_eq!(
        lookup(&top, "live_per_thread"),
        Some(&json::Value::Number(16.0))
    );
    match lookup(&top, "results") {
        Some(json::Value::Array(records)) => {
            assert_eq!(records.len(), results.len());
            for record in records {
                let json::Value::Object(fields) = record else {
                    panic!("record must be an object");
                };
                for key in [
                    "profile",
                    "backend",
                    "threads",
                    "ops_per_sec",
                    "unmap_ranges",
                    "unmap_range_misses",
                    "reclaim_ok",
                    "peak_unreclaimed_bytes",
                    "stall_events",
                    "degraded_ops",
                    "cas_retries",
                    "cas_wasted_nodes",
                    "read_op_ns",
                    "forks",
                    "live_spaces_peak",
                    "fork_p50_ns",
                    "fork_p90_ns",
                    "fork_p99_ns",
                    "fork_max_ns",
                ] {
                    assert!(lookup(fields, key).is_some(), "record missing {key}");
                }
            }
        }
        other => panic!("results must be an array, got {other:?}"),
    }
}

fn lookup<'a>(pairs: &'a [(String, json::Value)], key: &str) -> Option<&'a json::Value> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A minimal recursive-descent JSON parser, here only to prove the emitted
/// document is well-formed without adding a dependency.
mod json {
    #[derive(Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    pub fn parse(s: &str) -> Result<Value, String> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && b[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {pos}", c as char))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(_) => parse_number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *b.get(*pos).ok_or("truncated escape")?;
                    *pos += 1;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    });
                }
                _ => out.push(c as char),
            }
        }
        Err("unterminated string".into())
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut pairs = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            expect(b, pos, b':')?;
            pairs.push((key, parse_value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }
}
