//! The global epoch collector and per-thread registration.
//!
//! # Epoch protocol
//!
//! The collector maintains a global epoch counter. Each registered thread
//! ([`LocalHandle`]) publishes its *status* word: `0` when not in a read-side
//! critical section, or `(epoch << 1) | 1` while pinned. The global epoch may
//! advance from `E` to `E + 1` only when every pinned thread's recorded epoch
//! equals `E`; consequently a thread pinned at epoch `p` keeps the global
//! epoch at most `p + 1` for as long as it stays pinned.
//!
//! Retired garbage is tagged with the global epoch observed *at retire time*.
//! Any reader that could still hold a reference to a retired object must have
//! pinned no later than the retirement, so its pinned epoch is at most the
//! tag `e`. Once the global epoch reaches `e + `[`GRACE_EPOCHS`]` = e + 2`,
//! every such reader has unpinned and the garbage may be freed.
//!
//! [`GRACE_EPOCHS`]: crate::GRACE_EPOCHS

use std::cell::RefCell;
use std::fmt;
use std::marker::PhantomData;
use std::mem;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::thread;

use crate::deferred::{Bag, Deferred};
use crate::guard::Guard;
use crate::stats::CollectorStats;
use crate::GRACE_EPOCHS;

/// Seal a thread-local bag into the global garbage queue once it holds this
/// many retirements, even if the owning guard is still pinned.
const BAG_SEAL_THRESHOLD: usize = 64;

/// Packs an epoch into a pinned status word.
#[inline]
pub(crate) fn pack(epoch: u64) -> u64 {
    (epoch << 1) | 1
}

/// Extracts the epoch from a pinned status word.
#[inline]
pub(crate) fn unpack(status: u64) -> u64 {
    status >> 1
}

/// Per-thread state shared between a [`LocalHandle`], its [`Guard`]s, and the
/// collector's registry.
pub(crate) struct LocalState {
    /// `0` when unpinned, `(epoch << 1) | 1` while pinned.
    pub(crate) status: AtomicU64,
    /// Number of live guards for this handle (nesting depth). Only the owning
    /// thread mutates this; the collector never reads it.
    pub(crate) guard_count: AtomicUsize,
    /// Set when the owning [`LocalHandle`] was dropped while a guard was
    /// still live; the last guard then unregisters the state.
    pub(crate) orphaned: AtomicBool,
    /// Garbage retired by this thread that has not yet been sealed into the
    /// collector's global queue. Only the owning thread pushes; the lock is
    /// effectively uncontended.
    pub(crate) bag: Mutex<Bag>,
}

impl LocalState {
    fn new() -> Self {
        Self {
            status: AtomicU64::new(0),
            guard_count: AtomicUsize::new(0),
            orphaned: AtomicBool::new(false),
            bag: Mutex::new(Bag::new(0)),
        }
    }
}

/// Shared collector state behind the [`Collector`] handle.
pub(crate) struct Inner {
    /// The global epoch.
    pub(crate) epoch: AtomicU64,
    /// Every registered thread's state.
    registry: Mutex<Vec<Arc<LocalState>>>,
    /// Sealed bags awaiting a grace period.
    garbage: Mutex<Vec<Bag>>,
    /// Total number of successful epoch advances.
    epochs_advanced: AtomicU64,
    /// Total objects retired via `defer`/`defer_free`.
    pub(crate) retired: AtomicU64,
    /// Total deferred callbacks executed.
    freed: AtomicU64,
}

impl Inner {
    /// Attempts one epoch advance. Returns `true` if the global epoch moved.
    fn try_advance(&self) -> bool {
        let e = self.epoch.load(SeqCst);
        {
            let registry = self.registry.lock().unwrap();
            for local in registry.iter() {
                let s = local.status.load(SeqCst);
                if s != 0 && unpack(s) != e {
                    return false;
                }
            }
        }
        if self
            .epoch
            .compare_exchange(e, e + 1, SeqCst, SeqCst)
            .is_ok()
        {
            self.epochs_advanced.fetch_add(1, SeqCst);
            true
        } else {
            false
        }
    }

    /// Fires every sealed bag whose grace period has elapsed. Returns the
    /// number of callbacks executed.
    fn reclaim(&self) -> usize {
        let e = self.epoch.load(SeqCst);
        let ready: Vec<Bag> = {
            let mut garbage = self.garbage.lock().unwrap();
            let mut ready = Vec::new();
            let mut i = 0;
            while i < garbage.len() {
                if garbage[i].epoch + GRACE_EPOCHS <= e {
                    ready.push(garbage.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            ready
        };
        let mut n = 0;
        for bag in ready {
            n += bag.fire();
        }
        self.freed.fetch_add(n as u64, SeqCst);
        n
    }

    /// Moves a thread's local bag (if non-empty) into the global queue.
    pub(crate) fn seal_bag(&self, local: &LocalState) {
        let sealed = {
            let mut bag = local.bag.lock().unwrap();
            if bag.is_empty() {
                return;
            }
            let epoch = bag.epoch;
            mem::replace(&mut *bag, Bag::new(epoch))
        };
        self.garbage.lock().unwrap().push(sealed);
    }

    /// Adds one deferred callback to `local`'s bag, tagged with the current
    /// global epoch. Seals oversized or stale-epoch bags along the way.
    pub(crate) fn defer(&self, local: &LocalState, d: Deferred) {
        let tag = self.epoch.load(SeqCst);
        let sealed = {
            let mut bag = local.bag.lock().unwrap();
            let stale = if !bag.is_empty() && bag.epoch != tag {
                Some(mem::replace(&mut *bag, Bag::new(tag)))
            } else {
                None
            };
            bag.epoch = tag;
            bag.items.push(d);
            let full = if bag.len() >= BAG_SEAL_THRESHOLD {
                Some(mem::replace(&mut *bag, Bag::new(tag)))
            } else {
                None
            };
            (stale, full)
        };
        self.retired.fetch_add(1, SeqCst);
        let mut garbage = None;
        if sealed.0.is_some() || sealed.1.is_some() {
            garbage = Some(self.garbage.lock().unwrap());
        }
        if let Some(bag) = sealed.0 {
            garbage.as_mut().unwrap().push(bag);
        }
        if let Some(bag) = sealed.1 {
            garbage.as_mut().unwrap().push(bag);
        }
    }

    /// Removes `local` from the registry (idempotent).
    pub(crate) fn unregister(&self, local: &Arc<LocalState>) {
        self.registry
            .lock()
            .unwrap()
            .retain(|l| !Arc::ptr_eq(l, local));
    }

    /// One non-blocking advance-and-reclaim step.
    pub(crate) fn collect(&self) -> usize {
        self.try_advance();
        self.reclaim()
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        // No handle or guard can be alive here (they hold an `Arc<Inner>`),
        // so every remaining retirement is safe to execute immediately.
        let mut n = 0;
        for local in self.registry.get_mut().unwrap().drain(..) {
            let bag = mem::replace(&mut *local.bag.lock().unwrap(), Bag::new(0));
            n += bag.fire();
        }
        for bag in self.garbage.get_mut().unwrap().drain(..) {
            n += bag.fire();
        }
        self.freed.fetch_add(n as u64, SeqCst);
    }
}

thread_local! {
    /// Per-thread cache of handles, keyed by collector identity, backing
    /// [`Collector::pin`].
    static HANDLES: RefCell<Vec<(usize, LocalHandle)>> = const { RefCell::new(Vec::new()) };
}

/// An epoch-based garbage collector.
///
/// `Collector` is a cheaply clonable handle to shared state; clones refer to
/// the same collector. Threads participate by [`register`](Self::register)ing
/// a [`LocalHandle`] (or implicitly through [`pin`](Self::pin)) and retire
/// garbage through a [`Guard`].
pub struct Collector {
    pub(crate) inner: Arc<Inner>,
}

impl Collector {
    /// Creates a new collector with no registered threads.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                epoch: AtomicU64::new(0),
                registry: Mutex::new(Vec::new()),
                garbage: Mutex::new(Vec::new()),
                epochs_advanced: AtomicU64::new(0),
                retired: AtomicU64::new(0),
                freed: AtomicU64::new(0),
            }),
        }
    }

    /// A process-unique identity for this collector, stable for its lifetime.
    #[inline]
    pub(crate) fn id(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// Registers the calling context and returns its [`LocalHandle`].
    ///
    /// Registration takes the registry lock; it is intended to happen once
    /// per thread, not once per critical section.
    pub fn register(&self) -> LocalHandle {
        let local = Arc::new(LocalState::new());
        self.inner.registry.lock().unwrap().push(local.clone());
        LocalHandle {
            collector: self.clone(),
            local,
            _not_sync: PhantomData,
        }
    }

    /// Pins the current thread using a cached per-thread handle, registering
    /// it on first use.
    ///
    /// This is the ergonomic entry point for code that does not want to
    /// thread a [`LocalHandle`] around. The cached handle is unregistered
    /// when the thread exits.
    pub fn pin(&self) -> Guard {
        HANDLES.with(|cache| {
            let mut cache = cache.borrow_mut();
            // Evict handles for collectors nobody else references: a cached
            // handle is then the sole owner (`strong_count == 1` — pinning
            // always adds an external `Collector`/`Guard` reference first),
            // and dropping it unregisters the thread and lets `Inner::drop`
            // fire any garbage still pending. Without this sweep, a
            // long-lived thread would keep every collector it ever pinned
            // alive until thread exit.
            cache.retain(|(_, handle)| Arc::strong_count(&handle.collector.inner) > 1);
            let id = self.id();
            if let Some((_, handle)) = cache.iter().find(|(i, _)| *i == id) {
                handle.pin()
            } else {
                let handle = self.register();
                let guard = handle.pin();
                cache.push((id, handle));
                guard
            }
        })
    }

    /// Blocks until a full grace period has elapsed: every read-side critical
    /// section that was live when `synchronize` was called has ended, and all
    /// garbage retired before the call has been reclaimed.
    ///
    /// Equivalent to the paper's `synchronize_rcu`. The calling thread must
    /// **not** be pinned, otherwise this deadlocks (the epoch cannot advance
    /// past a pinned thread).
    pub fn synchronize(&self) {
        let start = self.inner.epoch.load(SeqCst);
        while self.inner.epoch.load(SeqCst) < start + GRACE_EPOCHS {
            if !self.inner.try_advance() {
                thread::yield_now();
            }
        }
        self.inner.reclaim();
    }

    /// Attempts one non-blocking epoch advance and reclaims any garbage whose
    /// grace period has elapsed. Returns the number of callbacks executed.
    pub fn collect(&self) -> usize {
        self.inner.collect()
    }

    /// The current value of the global epoch.
    pub fn global_epoch(&self) -> u64 {
        self.inner.epoch.load(SeqCst)
    }

    /// A point-in-time snapshot of the collector's counters.
    pub fn stats(&self) -> CollectorStats {
        let (pending_bags, pending_objects, registered_threads) = {
            let registry = self.inner.registry.lock().unwrap();
            let mut bags = 0;
            let mut objects = 0;
            for local in registry.iter() {
                let bag = local.bag.lock().unwrap();
                if !bag.is_empty() {
                    bags += 1;
                    objects += bag.len();
                }
            }
            (bags, objects, registry.len())
        };
        let (gbags, gobjects) = {
            let garbage = self.inner.garbage.lock().unwrap();
            (garbage.len(), garbage.iter().map(Bag::len).sum::<usize>())
        };
        CollectorStats {
            global_epoch: self.inner.epoch.load(SeqCst),
            epochs_advanced: self.inner.epochs_advanced.load(SeqCst),
            objects_retired: self.inner.retired.load(SeqCst),
            objects_freed: self.inner.freed.load(SeqCst),
            pending_bags: pending_bags + gbags,
            pending_objects: pending_objects + gobjects,
            registered_threads,
        }
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Collector {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl PartialEq for Collector {
    /// Two `Collector` handles are equal when they refer to the same
    /// underlying collector.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for Collector {}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector")
            .field("epoch", &self.global_epoch())
            .finish_non_exhaustive()
    }
}

/// A thread's registration with a [`Collector`].
///
/// Obtained from [`Collector::register`]. The handle is `Send` (it can be
/// moved to another thread) but not `Sync`: each handle serves exactly one
/// thread at a time, which is what makes [`pin`](Self::pin) a thread-local
/// operation.
pub struct LocalHandle {
    pub(crate) collector: Collector,
    pub(crate) local: Arc<LocalState>,
    /// `Cell` is `Send + !Sync`, making the handle single-thread-at-a-time.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

impl LocalHandle {
    /// Enters a read-side critical section (the paper's `rcu_read_begin`).
    ///
    /// Pinning is re-entrant: nested guards share the outermost guard's
    /// epoch. Only thread-local state and the global epoch word are touched,
    /// so readers never contend on a shared cache line.
    pub fn pin(&self) -> Guard {
        Guard::enter(&self.collector, &self.local)
    }

    /// Whether this handle currently has a live guard.
    pub fn is_pinned(&self) -> bool {
        self.local.guard_count.load(SeqCst) > 0
    }

    /// The collector this handle is registered with.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        if self.local.guard_count.load(SeqCst) == 0 {
            self.collector.inner.seal_bag(&self.local);
            self.collector.inner.unregister(&self.local);
        } else {
            // A guard outlives its handle: mark the state orphaned so the
            // last guard unregisters it, then re-check in case that guard
            // dropped concurrently (the handle may live on another thread).
            self.local.orphaned.store(true, SeqCst);
            if self.local.guard_count.load(SeqCst) == 0 {
                self.collector.inner.seal_bag(&self.local);
                self.collector.inner.unregister(&self.local);
            }
        }
    }
}

impl fmt::Debug for LocalHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalHandle")
            .field("pinned", &self.is_pinned())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn epoch_advances_without_readers() {
        let c = Collector::new();
        let e0 = c.global_epoch();
        c.synchronize();
        assert!(c.global_epoch() >= e0 + GRACE_EPOCHS);
    }

    #[test]
    fn pinned_reader_blocks_advance_past_next_epoch() {
        let c = Collector::new();
        let h = c.register();
        let g = h.pin();
        let pinned_at = g.epoch();
        // The epoch can advance at most once past the pinned epoch.
        for _ in 0..10 {
            c.collect();
        }
        assert!(c.global_epoch() <= pinned_at + 1);
        drop(g);
        c.synchronize();
        assert!(c.global_epoch() >= pinned_at + GRACE_EPOCHS);
    }

    #[test]
    fn register_and_drop_updates_registry() {
        let c = Collector::new();
        assert_eq!(c.stats().registered_threads, 0);
        let h1 = c.register();
        let h2 = c.register();
        assert_eq!(c.stats().registered_threads, 2);
        drop(h1);
        assert_eq!(c.stats().registered_threads, 1);
        drop(h2);
        assert_eq!(c.stats().registered_threads, 0);
    }

    #[test]
    fn orphaned_guard_unregisters_on_drop() {
        let c = Collector::new();
        let h = c.register();
        let g = h.pin();
        drop(h);
        // Handle gone but guard live: still registered (it must keep
        // blocking the epoch).
        assert_eq!(c.stats().registered_threads, 1);
        drop(g);
        assert_eq!(c.stats().registered_threads, 0);
    }

    #[test]
    fn collector_drop_fires_pending_garbage() {
        static FIRED: AtomicUsize = AtomicUsize::new(0);
        let c = Collector::new();
        let h = c.register();
        {
            let g = h.pin();
            g.defer(|| {
                FIRED.fetch_add(1, SeqCst);
            });
        }
        drop(h);
        drop(c);
        assert_eq!(FIRED.load(SeqCst), 1);
    }

    #[test]
    fn tls_cache_releases_abandoned_collectors() {
        let fired = Arc::new(AtomicUsize::new(0));
        {
            let c = Collector::new();
            let g = c.pin(); // caches a handle in this thread's TLS
            let f = fired.clone();
            g.defer(move || {
                f.fetch_add(1, SeqCst);
            });
        }
        // The collector is now owned only by the TLS cache; its garbage has
        // not reached a grace period yet.
        assert_eq!(fired.load(SeqCst), 0);
        // Pinning any collector sweeps the cache, dropping the abandoned
        // entry and firing its remaining garbage via Inner::drop.
        let other = Collector::new();
        let _g = other.pin();
        assert_eq!(fired.load(SeqCst), 1);
    }

    #[test]
    fn clone_eq_identity() {
        let a = Collector::new();
        let b = a.clone();
        let c = Collector::new();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
