//! The global epoch collector and per-thread registration.
//!
//! # Epoch protocol
//!
//! The collector maintains a global epoch counter. Each registered thread
//! ([`LocalHandle`]) publishes its *status* word: `0` when not in a read-side
//! critical section, or `(epoch << 1) | 1` while pinned. The global epoch may
//! advance from `E` to `E + 1` only when every pinned thread's recorded epoch
//! equals `E`; consequently a thread pinned at epoch `p` keeps the global
//! epoch at most `p + 1` for as long as it stays pinned.
//!
//! Retired garbage is tagged with the global epoch observed *at retire time*.
//! Any reader that could still hold a reference to a retired object must have
//! pinned no later than the retirement, so its pinned epoch is at most the
//! tag `e`. Once the global epoch reaches `e + `[`GRACE_EPOCHS`]` = e + 2`,
//! every such reader has unpinned and the garbage may be freed.
//!
//! # Sharding
//!
//! Registered threads and sealed garbage bags live in per-shard lists
//! (shard count derived from [`std::thread::available_parallelism`], one
//! shard per core rounded up to a power of two). Registration assigns each
//! thread a home shard round-robin; its registry entry and its sealed bags
//! only ever touch that shard's locks. [`Inner::try_advance`] scans the
//! shards one lock at a time — there is no global registry lock for
//! advancing writers to convoy on. Reader pin/unpin takes **no** lock at
//! all (see [`Guard`](crate::Guard)): the hot path is the thread's own
//! status word plus a read of the global epoch word.
//!
//! [`GRACE_EPOCHS`]: crate::GRACE_EPOCHS

use std::cell::RefCell;
use std::fmt;
use std::marker::PhantomData;
use std::mem;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, SeqCst};
use std::sync::Arc;
use std::thread;

use crate::deferred::{Bag, Deferred, Retired};
use crate::guard::Guard;
use crate::stats::CollectorStats;
use crate::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize};
use crate::sync::{Mutex, MutexGuard};
use crate::GRACE_EPOCHS;

/// Seal a thread-local bag into the global garbage queue once it holds this
/// many retirements, even if the owning guard is still pinned.
const BAG_SEAL_THRESHOLD: usize = 64;

/// Maximum drained bag buffers cached for reuse (see [`Inner::bag_pool`]):
/// enough that every active writer thread's seal finds a warm buffer, small
/// enough that the cached capacity stays bounded.
const BAG_POOL_MAX: usize = 64;

/// Default collect throttle: a guard-free unpin that sealed garbage runs the
/// opportunistic advance-and-reclaim pass only every this-many
/// garbage-bearing unpins (per handle), instead of on every one. Between
/// collects, sealed bags simply queue in the home shard. Overridable per
/// collector via [`Collector::set_unpin_collect_period`] (tests and model
/// scenarios set `1` to recover collect-every-unpin behaviour).
const UNPIN_COLLECT_PERIOD: usize = 8;

/// Collect-throttle escape hatch: if the handle's home shard has at least
/// this many sealed bags queued, a garbage-bearing unpin collects regardless
/// of the per-handle counter, bounding queue growth when one handle does all
/// the retiring.
const QUEUE_COLLECT_THRESHOLD: usize = 16;

/// Packs an epoch into a pinned status word.
#[inline]
pub(crate) fn pack(epoch: u64) -> u64 {
    (epoch << 1) | 1
}

/// Extracts the epoch from a pinned status word.
#[inline]
pub(crate) fn unpack(status: u64) -> u64 {
    status >> 1
}

/// Shard count for a new collector: one per hardware thread, rounded up to
/// a power of two (cheap index masking), at least one.
fn default_shards() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .next_power_of_two()
}

/// Per-thread state shared between a [`LocalHandle`], its [`Guard`]s, and the
/// collector's registry.
pub(crate) struct LocalState {
    /// `0` when unpinned, `(epoch << 1) | 1` while pinned.
    pub(crate) status: AtomicU64,
    /// Number of live guards for this handle (nesting depth). Only the owning
    /// thread mutates this; the collector never reads it.
    pub(crate) guard_count: AtomicUsize,
    /// Set when this registration has no owning [`LocalHandle`] (the one-shot
    /// orphan pin path) or its handle was dropped while an owned guard was
    /// still live; the last guard then unregisters the state.
    pub(crate) orphaned: AtomicBool,
    /// Set when an outermost unpin sealed garbage but skipped the
    /// opportunistic collect because the thread still held other guards;
    /// this handle's next guard-free unpin collects instead.
    pub(crate) collect_pending: AtomicBool,
    /// Garbage-bearing guard-free unpins since this handle last ran the
    /// opportunistic collect — the collect-throttle counter. Only the
    /// owning thread reads or writes it (plain load/store, no RMW).
    pub(crate) garbage_unpins: AtomicUsize,
    /// Index of the home shard holding this thread's registry entry and
    /// receiving its sealed bags.
    pub(crate) shard: usize,
    /// Garbage retired by this thread that has not yet been sealed into the
    /// collector's global queue. Only the owning thread pushes; the lock is
    /// effectively uncontended.
    pub(crate) bag: Mutex<Bag>,
}

impl LocalState {
    fn new(shard: usize) -> Self {
        Self {
            status: AtomicU64::new(0),
            guard_count: AtomicUsize::new(0),
            orphaned: AtomicBool::new(false),
            collect_pending: AtomicBool::new(false),
            garbage_unpins: AtomicUsize::new(0),
            shard,
            bag: Mutex::new(Bag::new(0)),
        }
    }
}

/// One registry/garbage shard. A thread's registration and its sealed bags
/// live entirely in its home shard, so writer-side housekeeping from
/// different shards never contends.
struct Shard {
    /// Threads registered in this shard.
    registry: Mutex<Vec<Arc<LocalState>>>,
    /// Sealed bags from this shard's threads awaiting a grace period.
    garbage: Mutex<Vec<Bag>>,
    /// Mirror of `garbage.len()`, maintained under the `garbage` lock but
    /// readable without it — the collect throttle's queue-pressure probe
    /// must not take the very lock the throttle exists to avoid.
    garbage_len: AtomicUsize,
}

impl Shard {
    fn new() -> Self {
        Self {
            registry: Mutex::new(Vec::new()),
            garbage: Mutex::new(Vec::new()),
            garbage_len: AtomicUsize::new(0),
        }
    }

    /// Pushes a sealed bag, keeping the lock-free length mirror exact
    /// (every `garbage` mutation site goes through here or
    /// [`Inner::reclaim`]/`Inner::drop`, all of which hold the lock while
    /// storing the new length).
    fn push_garbage(&self, bag: Bag) {
        let mut garbage = self.garbage.lock().unwrap();
        garbage.push(bag);
        // ordering: Relaxed — advisory queue-pressure mirror; the `garbage`
        // mutex guards the real list, and a stale probe read only delays or
        // hastens a collect by one unpin.
        self.garbage_len.store(garbage.len(), Relaxed);
    }
}

/// Shared collector state behind the [`Collector`] handle.
pub(crate) struct Inner {
    /// The global epoch.
    pub(crate) epoch: AtomicU64,
    /// Per-shard registries and sealed-bag queues.
    shards: Box<[Shard]>,
    /// Round-robin cursor assigning home shards to new registrations.
    next_shard: AtomicUsize,
    /// Total number of successful epoch advances.
    epochs_advanced: AtomicU64,
    /// Total heap objects retired via `defer`/`defer_free`/`defer_recycle`.
    /// Units are *objects*: every pointer in a recycle batch counts
    /// individually; an opaque `defer` closure counts as one (see
    /// [`CollectorStats`]).
    pub(crate) retired: AtomicU64,
    /// Total heap objects reclaimed by executed retirements.
    freed: AtomicU64,
    /// Total bytes retired, per the retirer's estimate (`defer_free` uses
    /// the payload size; `defer_recycle` takes an explicit count; opaque
    /// closures contribute 0).
    retired_bytes: AtomicU64,
    /// Total bytes reclaimed by executed retirements.
    freed_bytes: AtomicU64,
    /// Deferred `Call` callbacks that panicked while the reclaim loop
    /// drained them. The panic is caught in `Bag::fire` so the rest of the
    /// bag still reclaims; this counter is the only trace it leaves.
    callback_panics: AtomicU64,
    /// Bytes retired but not yet reclaimed, and its high-water mark — the
    /// bounded-garbage gauge the stalled-reader benchmark reads.
    unreclaimed_bytes: AtomicU64,
    peak_unreclaimed_bytes: AtomicU64,
    /// Diagnostic: total registry-lock acquisitions, across all shards.
    /// Reader pin/unpin must never move this counter — the hot-path
    /// regression test pins in a loop and asserts it stays flat. Counted
    /// in debug builds only: one shared counter RMW'd by every shard-lock
    /// taker would reintroduce exactly the cross-shard cache-line traffic
    /// the sharding removed (release builds report 0).
    registry_locks: AtomicU64,
    /// Number of per-thread TLS cache entries (see [`HANDLES`]) currently
    /// holding a handle to this collector. Used by the cache sweep to tell
    /// "alive only because caches hold it" apart from "externally owned":
    /// the collector is abandoned exactly when every strong reference is a
    /// cache entry, i.e. `strong_count <= tls_cached`.
    #[cfg_attr(loom, allow(dead_code))] // TLS cache layer is outside the model's scope
    tls_cached: AtomicUsize,
    /// Collect throttle period: a guard-free unpin that sealed garbage runs
    /// the opportunistic collect only every this-many garbage-bearing
    /// unpins per handle (see [`UNPIN_COLLECT_PERIOD`]; minimum 1 =
    /// collect every time).
    unpin_collect_period: AtomicUsize,
    /// Recycled bag item buffers (empty, warm capacity). Every bag seal
    /// needs a replacement bag; popping a pooled buffer instead of growing
    /// a fresh `Vec` keeps the steady-state write path allocation-free.
    /// Capped at [`BAG_POOL_MAX`]; a leaf lock (nothing is acquired while
    /// holding it).
    bag_pool: Mutex<Vec<Vec<Retired>>>,
    /// Reusable ready-bag buffer for [`Inner::reclaim`], so the collect
    /// path stops allocating one `Vec` per reclaim pass. Taken briefly at
    /// reclaim entry (a re-entrant reclaim fired from a callback just sees
    /// it empty and falls back to a fresh buffer).
    reclaim_scratch: Mutex<Vec<Bag>>,
}

impl Inner {
    /// Locks one shard's registry, counting the acquisition in debug
    /// builds (the hot-path regression test asserts reader pins never
    /// reach here).
    fn registry(&self, shard: usize) -> MutexGuard<'_, Vec<Arc<LocalState>>> {
        if cfg!(debug_assertions) {
            // ordering: Relaxed — diagnostic counter; nothing is published
            // through it.
            self.registry_locks.fetch_add(1, Relaxed);
        }
        self.shards[shard].registry.lock().unwrap()
    }

    /// Attempts one epoch advance. Returns `true` if the global epoch moved.
    ///
    /// Scans the shards one registry lock at a time; there is no instant at
    /// which the whole registry is locked. That is sound because the scan
    /// only needs a *negative* guarantee per thread: any thread observed
    /// unpinned or pinned at `e` either stays that way or re-pins through
    /// the publication protocol (publish status, re-read the epoch), which
    /// bounds its pinned epoch to at least `e`.
    fn try_advance(&self) -> bool {
        // ordering: Relaxed — the fence below orders this sample against the
        // scan, and the CAS at the end re-validates it before committing.
        let e = self.epoch.load(Relaxed);
        // ordering: SeqCst fence — the advance-side half of the
        // pin-publication Dekker (its partner is the fence in
        // `Guard::pin_status`). In the total order of SeqCst fences either
        // this fence comes after a pinning reader's fence — then the scan
        // below is guaranteed to observe that reader's status store — or it
        // comes before, and the reader's post-fence epoch re-read is
        // guaranteed to observe every advance this thread already saw, so
        // the reader retries its publication at the newer epoch. Without
        // this fence the scan's loads could read a stale "unpinned" status
        // while the reader's re-read still sees the old epoch, advancing
        // the epoch twice over a live pin.
        fence(SeqCst);
        for shard in 0..self.shards.len() {
            let registry = self.registry(shard);
            for local in registry.iter() {
                // ordering: Acquire — pairs with the Release store of `0` in
                // `Guard::drop`: a reader this scan observes as unpinned had
                // all its critical-section reads happen-before the advance,
                // and hence before any free the advance unlocks.
                #[cfg(not(loomette_weaken))]
                let s = local.status.load(Acquire);
                // Seeded bug for the model-checker meta-test (never in
                // release builds): a Relaxed scan load drops the acquire
                // side of the unpin edge — the AcqRel loom leg must catch
                // the resulting stale-read advance.
                #[cfg(loomette_weaken)]
                let s = local.status.load(Relaxed);
                if s != 0 && unpack(s) != e {
                    return false;
                }
            }
        }
        if self
            .epoch
            // ordering: AcqRel success — Release publishes the new epoch to
            // `reclaim`'s Acquire load (completing the unpin → scan → advance
            // → reclaim happens-before chain); Acquire joins the scan's
            // observations into this advance. Relaxed failure — a lost race
            // is just "someone else advanced".
            .compare_exchange(e, e + 1, AcqRel, Relaxed)
            .is_ok()
        {
            // ordering: Relaxed — statistics counter.
            self.epochs_advanced.fetch_add(1, Relaxed);
            true
        } else {
            false
        }
    }

    /// Fires every sealed bag whose grace period has elapsed, across all
    /// shards. Returns the number of callbacks executed and whether bags
    /// are still queued (observed inside the shard locks, so no extra
    /// acquisition is needed to learn it).
    fn reclaim(&self) -> (usize, bool) {
        // ordering: Acquire — pairs with the advance CAS's Release: an epoch
        // value proving a bag's grace period elapsed carries with it every
        // reader unpin the advances in between observed, so the readers'
        // critical-section reads happen-before the frees below.
        let e = self.epoch.load(Acquire);
        // Reuse the ready buffer across reclaims. `mem::take` under a brief
        // lock, not holding the lock across the fires below: callbacks may
        // re-enter `collect` → `reclaim`, which would then deadlock on the
        // scratch mutex (the re-entrant pass simply sees an empty scratch).
        let mut ready = mem::take(&mut *self.reclaim_scratch.lock().unwrap());
        let mut remaining = false;
        for shard in self.shards.iter() {
            let mut garbage = shard.garbage.lock().unwrap();
            let mut i = 0;
            while i < garbage.len() {
                if garbage[i].epoch + GRACE_EPOCHS <= e {
                    ready.push(garbage.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            // ordering: Relaxed — advisory mirror; see `Shard::push_garbage`.
            shard.garbage_len.store(garbage.len(), Relaxed);
            remaining |= !garbage.is_empty();
        }
        let mut n = 0;
        let mut bytes = 0;
        let mut panics = 0;
        for bag in ready.drain(..) {
            let (objects, b, p, buffer) = bag.fire();
            n += objects;
            bytes += b;
            panics += p;
            self.pool_bag_buffer(buffer);
        }
        // Hand the (drained) buffer back for the next reclaim. A concurrent
        // or re-entrant pass may have installed its own in the meantime;
        // keeping either one is fine — this is a capacity cache, not state.
        *self.reclaim_scratch.lock().unwrap() = ready;
        // ordering: Relaxed (all) — statistics counters.
        self.freed.fetch_add(n as u64, Relaxed);
        self.freed_bytes.fetch_add(bytes as u64, Relaxed);
        self.unreclaimed_bytes.fetch_sub(bytes as u64, Relaxed);
        self.callback_panics.fetch_add(panics, Relaxed);
        (n, remaining)
    }

    /// Pops a recycled bag tagged `epoch` (warm buffer when the pool has
    /// one; a fresh empty `Vec` — which does not allocate until pushed to —
    /// otherwise).
    fn pooled_bag(&self, epoch: u64) -> Bag {
        let buffer = self.bag_pool.lock().unwrap().pop().unwrap_or_default();
        Bag::with_buffer(epoch, buffer)
    }

    /// Returns a drained bag buffer to the pool, dropping it if the pool
    /// is full (bounding the cached capacity).
    fn pool_bag_buffer(&self, buffer: Vec<Retired>) {
        if buffer.capacity() == 0 {
            return;
        }
        let mut pool = self.bag_pool.lock().unwrap();
        if pool.len() < BAG_POOL_MAX {
            pool.push(buffer);
        }
    }

    /// Moves a thread's local bag (if non-empty) into its home shard's
    /// sealed queue. Returns whether anything was sealed.
    pub(crate) fn seal_bag(&self, local: &LocalState) -> bool {
        let sealed = {
            let mut bag = local.bag.lock().unwrap();
            if bag.is_empty() {
                return false;
            }
            let epoch = bag.epoch;
            mem::replace(&mut *bag, self.pooled_bag(epoch))
        };
        self.shards[local.shard].push_garbage(sealed);
        true
    }

    /// Adds one deferred retirement (standing for `objects` heap objects /
    /// `bytes` bytes) to `local`'s bag, tagged with the current global
    /// epoch. Seals oversized or stale-epoch bags along the way.
    pub(crate) fn defer(&self, local: &LocalState, d: Deferred, objects: usize, bytes: usize) {
        // ordering: SeqCst fence (StoreLoad) — the caller's unlink store
        // (e.g. a Release store of a new tree root) must be globally visible
        // before the epoch tag is sampled. Without it the unlink can linger
        // in the store buffer while the epoch advances past the stale tag,
        // letting a reader pin at `tag + 1`, load the *old* pointer, and
        // outlive the grace period computed from `tag`.
        fence(SeqCst);
        // ordering: Relaxed — the fence above already orders the unlink
        // before this sample; a stale (lower) tag only lengthens the grace
        // period, and the epoch word is monotone.
        let tag = self.epoch.load(Relaxed);
        let sealed = {
            let mut bag = local.bag.lock().unwrap();
            let stale = if !bag.is_empty() && bag.epoch != tag {
                Some(mem::replace(&mut *bag, self.pooled_bag(tag)))
            } else {
                None
            };
            bag.epoch = tag;
            bag.items.push(Retired { d, objects, bytes });
            let full = if bag.len() >= BAG_SEAL_THRESHOLD {
                Some(mem::replace(&mut *bag, self.pooled_bag(tag)))
            } else {
                None
            };
            (stale, full)
        };
        // ordering: Relaxed (both) — statistics counters.
        self.retired.fetch_add(objects as u64, Relaxed);
        self.retired_bytes.fetch_add(bytes as u64, Relaxed);
        crate::reclaim::note_unreclaimed(
            &self.unreclaimed_bytes,
            &self.peak_unreclaimed_bytes,
            bytes as u64,
        );
        if sealed.0.is_some() || sealed.1.is_some() {
            // A bag sealed mid-critical-section leaves the local bag empty
            // at unpin, so `Guard::drop`'s `had_garbage` check alone would
            // never collect it; arm the handle's pending flag.
            // ordering: Relaxed — owner-thread flag: `local` is the calling
            // thread's own state, and only its own guards consult the flag.
            local.collect_pending.store(true, Relaxed);
            let shard = &self.shards[local.shard];
            let mut garbage = shard.garbage.lock().unwrap();
            if let Some(bag) = sealed.0 {
                garbage.push(bag);
            }
            if let Some(bag) = sealed.1 {
                garbage.push(bag);
            }
            // ordering: Relaxed — advisory mirror; see `Shard::push_garbage`.
            shard.garbage_len.store(garbage.len(), Relaxed);
        }
    }

    /// Removes `local` from its home shard's registry (idempotent).
    pub(crate) fn unregister(&self, local: &Arc<LocalState>) {
        self.registry(local.shard)
            .retain(|l| !Arc::ptr_eq(l, local));
    }

    /// One non-blocking advance-and-reclaim step. Returns the number of
    /// callbacks executed and whether bags are still queued.
    pub(crate) fn collect(&self) -> (usize, bool) {
        self.try_advance();
        self.reclaim()
    }

    /// The collect-throttle gate, consulted by a guard-free outermost unpin
    /// that just sealed garbage: counts the unpin against the handle and
    /// returns whether this one should run the opportunistic collect —
    /// every [`UNPIN_COLLECT_PERIOD`]-th garbage-bearing unpin, or sooner
    /// when the handle's home shard has [`QUEUE_COLLECT_THRESHOLD`] sealed
    /// bags queued (a lock-free read of the shard's length mirror). The
    /// counter resets only when the collect is due, so skipped unpins
    /// accumulate toward the next one.
    pub(crate) fn unpin_collect_due(&self, local: &LocalState) -> bool {
        // ordering: Relaxed — owner-thread-only counter (only `local`'s own
        // thread reads or writes it).
        let n = local.garbage_unpins.load(Relaxed) + 1;
        // ordering: Relaxed (both) — the period is a config knob whose
        // staleness is harmless, and the length probe is the advisory
        // mirror (see `Shard::push_garbage`).
        let due = n >= self.unpin_collect_period.load(Relaxed)
            || self.shards[local.shard].garbage_len.load(Relaxed) >= QUEUE_COLLECT_THRESHOLD;
        // ordering: Relaxed — owner-thread-only counter, as above.
        local.garbage_unpins.store(if due { 0 } else { n }, Relaxed);
        due
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        // No handle or guard can be alive here: a `LocalHandle` holds an
        // `Arc<Inner>` (via its `Collector`), and a `Guard` borrows either
        // a `LocalHandle` or a `Collector` — so every guard's lifetime is
        // bounded by a live strong reference. With the last strong
        // reference gone, every remaining retirement is safe to execute
        // immediately.
        let mut n = 0;
        let mut bytes = 0;
        let mut panics = 0;
        for shard in self.shards.iter_mut() {
            for local in shard.registry.get_mut().unwrap().drain(..) {
                let bag = mem::replace(&mut *local.bag.lock().unwrap(), Bag::new(0));
                let (objects, b, p, _) = bag.fire();
                n += objects;
                bytes += b;
                panics += p;
            }
            for bag in shard.garbage.get_mut().unwrap().drain(..) {
                let (objects, b, p, _) = bag.fire();
                n += objects;
                bytes += b;
                panics += p;
            }
        }
        // ordering: Relaxed (all) — statistics counters, and `&mut self`
        // proves exclusive access anyway.
        self.freed.fetch_add(n as u64, Relaxed);
        self.freed_bytes.fetch_add(bytes as u64, Relaxed);
        self.unreclaimed_bytes.fetch_sub(bytes as u64, Relaxed);
        self.callback_panics.fetch_add(panics, Relaxed);
    }
}

/// A [`LocalHandle`] owned by a thread's TLS cache. Keeps the collector's
/// [`Inner::tls_cached`] census accurate: the count is incremented when the
/// entry is created (in [`Collector::pin`]) and decremented here on drop,
/// whether the entry dies by sweep eviction or by thread exit.
#[cfg_attr(loom, allow(dead_code))] // TLS cache layer is outside the model's scope
struct CachedHandle {
    id: usize,
    handle: LocalHandle,
}

impl Drop for CachedHandle {
    fn drop(&mut self) {
        // Runs before `handle` (and its `Arc<Inner>`) is dropped, so the
        // count transiently underestimates the cache population; sweeps err
        // toward keeping an entry one round longer, never toward use-after-
        // free, and re-run on every cache miss and every
        // [`SWEEP_PERIOD`]-th cache-hit pin.
        // ordering: Relaxed — the census is advisory (see `sweep_abandoned`):
        // a stale read skews an eviction decision by at most one sweep round
        // and never toward use-after-free.
        self.handle.collector.inner.tls_cached.fetch_sub(1, Relaxed);
    }
}

/// A thread's handle cache plus the pin counter driving the sampled sweep.
#[cfg_attr(loom, allow(dead_code))] // TLS cache layer is outside the model's scope
struct HandleCache {
    entries: Vec<CachedHandle>,
    /// Cache-hit pins since the last sweep; at [`SWEEP_PERIOD`] the hit path
    /// sweeps too, so a thread that only ever cache-hits still releases
    /// abandoned collectors instead of holding them until thread exit.
    pins_since_sweep: u32,
}

#[cfg_attr(loom, allow(dead_code))] // TLS cache layer is outside the model's scope
impl HandleCache {
    /// The sampled eviction gate shared by [`Collector::pin`] and
    /// [`Collector::housekeep`]: counts the pin, and sweeps when due
    /// (`force` skips the cadence check — used on cache misses, which are
    /// already the slow path) but only while the thread holds no guard (an
    /// evicted collector's callbacks run inline and may block on a grace
    /// period the thread's own pin would stall forever). The counter resets
    /// only when the sweep actually runs, so a skipped sweep retries on the
    /// next guard-free opportunity. The caller must drop the returned
    /// entries outside the `HANDLES` borrow.
    fn sweep_if_due(&mut self, force: bool) -> Vec<CachedHandle> {
        let due = if force {
            true
        } else {
            self.pins_since_sweep = self.pins_since_sweep.saturating_add(1);
            self.pins_since_sweep >= SWEEP_PERIOD
        };
        if due && crate::guard::live_guards() == 0 {
            self.pins_since_sweep = 0;
            sweep_abandoned(&mut self.entries)
        } else {
            Vec::new()
        }
    }
}

/// Run the eviction sweep on the hit path after this many pins. Misses
/// always sweep (they already take the registry lock to register).
#[cfg_attr(loom, allow(dead_code))] // TLS cache layer is outside the model's scope
const SWEEP_PERIOD: u32 = 128;

/// Drains entries whose collector *appears* to be referenced only by TLS
/// caches (`strong_count <= tls_cached`). The two counters are read
/// separately, so a sweep racing a registration on another thread can
/// spuriously evict a live collector's entry — benign: the external
/// reference keeps the collector alive, and the entry is rebuilt on this
/// thread's next pin of it. Eviction is advisory cleanup, never a safety
/// hinge. The caller must drop the returned entries *outside* the `HANDLES`
/// borrow: the last cache to let go triggers `Inner::drop`, which runs user
/// deferred callbacks that may re-enter [`Collector::pin`].
#[cfg_attr(loom, allow(dead_code))] // TLS cache layer is outside the model's scope
fn sweep_abandoned(entries: &mut Vec<CachedHandle>) -> Vec<CachedHandle> {
    let mut evicted = Vec::new();
    let mut i = 0;
    while i < entries.len() {
        let inner = &entries[i].handle.collector.inner;
        // ordering: Relaxed — advisory census read; see the function docs
        // (spurious or missed evictions are benign and retried).
        if Arc::strong_count(inner) <= inner.tls_cached.load(Relaxed) {
            evicted.push(entries.swap_remove(i));
        } else {
            i += 1;
        }
    }
    evicted
}

thread_local! {
    /// Per-thread cache of handles, keyed by collector identity, backing
    /// [`Collector::pin`].
    static HANDLES: RefCell<HandleCache> = const {
        RefCell::new(HandleCache {
            entries: Vec::new(),
            pins_since_sweep: 0,
        })
    };
}

/// An epoch-based garbage collector.
///
/// `Collector` is a cheaply clonable handle to shared state; clones refer to
/// the same collector. Threads participate by [`register`](Self::register)ing
/// a [`LocalHandle`] (or implicitly through [`pin`](Self::pin)) and retire
/// garbage through a [`Guard`].
pub struct Collector {
    pub(crate) inner: Arc<Inner>,
}

impl Collector {
    /// Creates a new collector with no registered threads. The registry is
    /// sharded by the machine's available parallelism.
    pub fn new() -> Self {
        Self::with_shards(default_shards())
    }

    /// Creates a new collector with an explicit registry shard count
    /// (rounded up to a power of two; minimum one).
    ///
    /// [`new`](Self::new) sizes the registry automatically; this exists for
    /// tests — model checkers want the smallest state space, and sharding
    /// tests want a count other than the machine's.
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        Self {
            inner: Arc::new(Inner {
                epoch: AtomicU64::new(0),
                shards: (0..shards).map(|_| Shard::new()).collect(),
                next_shard: AtomicUsize::new(0),
                epochs_advanced: AtomicU64::new(0),
                retired: AtomicU64::new(0),
                freed: AtomicU64::new(0),
                retired_bytes: AtomicU64::new(0),
                freed_bytes: AtomicU64::new(0),
                callback_panics: AtomicU64::new(0),
                unreclaimed_bytes: AtomicU64::new(0),
                peak_unreclaimed_bytes: AtomicU64::new(0),
                registry_locks: AtomicU64::new(0),
                tls_cached: AtomicUsize::new(0),
                unpin_collect_period: AtomicUsize::new(UNPIN_COLLECT_PERIOD),
                bag_pool: Mutex::new(Vec::new()),
                reclaim_scratch: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Overrides how often a garbage-bearing guard-free unpin runs the
    /// opportunistic collect (default [`UNPIN_COLLECT_PERIOD`]; clamped to
    /// at least 1, which recovers collect-on-every-unpin). Test aid: model
    /// scenarios shrink the period to keep unpin-driven reclamation inside
    /// the explored schedule space, and throttle tests widen it.
    #[doc(hidden)]
    pub fn set_unpin_collect_period(&self, period: usize) {
        // ordering: Relaxed — config knob; stale readers just use the old
        // period for a few more unpins.
        self.inner
            .unpin_collect_period
            .store(period.max(1), Relaxed);
    }

    /// A process-unique identity for this collector, stable for its lifetime.
    #[inline]
    #[cfg_attr(loom, allow(dead_code))] // TLS cache layer is outside the model's scope
    pub(crate) fn id(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// Creates and registers a fresh per-thread state in its home shard.
    fn register_state(&self) -> Arc<LocalState> {
        // ordering: Relaxed — round-robin cursor; only its atomicity
        // matters, the shard choice is a load-balancing heuristic.
        let shard = self.inner.next_shard.fetch_add(1, Relaxed) & (self.inner.shards.len() - 1);
        let local = Arc::new(LocalState::new(shard));
        self.inner.registry(shard).push(local.clone());
        local
    }

    /// Registers the calling context and returns its [`LocalHandle`].
    ///
    /// Registration takes a registry-shard lock; it is intended to happen
    /// once per thread, not once per critical section.
    pub fn register(&self) -> LocalHandle {
        LocalHandle {
            collector: self.clone(),
            local: self.register_state(),
            _not_sync: PhantomData,
        }
    }

    /// Pins the current thread using a cached per-thread handle, registering
    /// it on first use.
    ///
    /// This is the ergonomic entry point for code that does not want to
    /// thread a [`LocalHandle`] around. The cached handle is unregistered
    /// when the thread exits. The hot path (cache hit) performs no shared
    /// atomic read-modify-write: the guard borrows `self` instead of
    /// cloning the collector handle.
    pub fn pin(&self) -> Guard<'_> {
        // Model-checking tier: the TLS handle cache is deliberately outside
        // the model's scope. A cached handle is torn down by the OS
        // thread-exit TLS destructor, which runs *after* the model thread
        // has finished — i.e. outside the loomette scheduler — and its
        // registry unregistration would race the still-scheduled threads on
        // real time (nondeterministic replay, and a real deadlock if a
        // paused model thread holds the registry mutex). Orphan pins keep
        // every registry mutation inside the scheduled body.
        #[cfg(loom)]
        {
            self.pin_orphan()
        }
        #[cfg(not(loom))]
        loop {
            let outcome = HANDLES.try_with(|cache| {
                let mut cache = cache.borrow_mut();
                let cache = &mut *cache;
                let id = self.id();
                let pos = cache.entries.iter().position(|e| e.id == id);
                // Without the sweep, a long-lived thread would keep every
                // collector it ever pinned alive until thread exit.
                let evicted = cache.sweep_if_due(pos.is_none());
                if !evicted.is_empty() {
                    // Hand them out and retry: the drop must happen before
                    // our own pin exists (a callback may block on a grace
                    // period our pin would stall) and outside the borrow.
                    return Err(evicted);
                }
                // `pos` is still valid on this path: the sweep either did
                // not run or evicted nothing (else we returned above), so
                // the entries vec is unchanged.
                Ok(if let Some(p) = pos {
                    Guard::enter_owned(self, cache.entries[p].handle.local.clone())
                } else {
                    self.register_into(cache)
                })
            });
            match outcome {
                Ok(Ok(guard)) => return guard,
                Ok(Err(evicted)) => {
                    // Unpinned and outside the `RefCell` borrow: dropping
                    // an evicted entry can run user deferred callbacks via
                    // `Inner::drop`, which may re-enter `pin` or wait on a
                    // grace period. Then retry; the sweep just ran, so the
                    // next iteration pins directly.
                    drop(evicted);
                }
                Err(_) => return self.pin_orphan(),
            }
        }
    }

    /// Like [`pin`](Self::pin) but never runs cache-eviction housekeeping,
    /// so no deferred callback can fire during the call.
    ///
    /// Use this to pin *inside* a critical section (a non-reentrant lock
    /// held): a callback fired by `pin`-time eviction could re-enter code
    /// that takes the same lock. Housekeeping happens on regular `pin`
    /// calls; code that pins *exclusively* through `pin_quiet` should pair
    /// each critical section with a [`housekeep`](Self::housekeep) call at
    /// a point where no lock is held and no guard is live, or abandoned
    /// collectors cached on the thread are only released at thread exit.
    pub fn pin_quiet(&self) -> Guard<'_> {
        // See `pin`: no TLS caching under the model checker.
        #[cfg(loom)]
        {
            self.pin_orphan()
        }
        #[cfg(not(loom))]
        {
            let cached = HANDLES.try_with(|cache| {
                let mut cache = cache.borrow_mut();
                let cache = &mut *cache;
                let id = self.id();
                if let Some(entry) = cache.entries.iter().find(|e| e.id == id) {
                    Guard::enter_owned(self, entry.handle.local.clone())
                } else {
                    self.register_into(cache)
                }
            });
            match cached {
                Ok(guard) => guard,
                Err(_) => self.pin_orphan(),
            }
        }
    }

    /// Runs the sampled cache-eviction sweep a regular [`pin`](Self::pin)
    /// would run, without pinning. The complement of
    /// [`pin_quiet`](Self::pin_quiet): call it after leaving the critical
    /// section (no locks held, no guard live — evicted collectors' deferred
    /// callbacks run inline here and may themselves pin, block on a grace
    /// period, or take locks).
    pub fn housekeep(&self) {
        // See `pin`: no TLS cache — and so nothing to sweep — under the
        // model checker.
        #[cfg(not(loom))]
        {
            let evicted = HANDLES.try_with(|cache| cache.borrow_mut().sweep_if_due(false));
            if let Ok(evicted) = evicted {
                // Outside the borrow, as in `pin`.
                drop(evicted);
            }
        }
    }

    /// Registers this thread with the collector and caches the handle.
    /// Shared miss path of [`pin`](Self::pin)/[`pin_quiet`](Self::pin_quiet).
    #[cfg_attr(loom, allow(dead_code))] // TLS cache layer is outside the model's scope
    fn register_into(&self, cache: &mut HandleCache) -> Guard<'_> {
        let handle = self.register();
        let guard = Guard::enter_owned(self, handle.local.clone());
        cache.entries.push(CachedHandle {
            id: self.id(),
            handle,
        });
        // Count the entry only once it exists: during the window the
        // entry's reference is live but uncounted, so a concurrent sweep
        // reads `strong_count > tls_cached` and keeps its own entries. This
        // narrows (it cannot fully close — see `sweep_abandoned`) the
        // spurious-eviction race.
        // ordering: Relaxed — advisory census; see `sweep_abandoned`.
        self.inner.tls_cached.fetch_add(1, Relaxed);
        guard
    }

    /// One-shot registration for contexts where the TLS cache is being (or
    /// has been) destroyed — a thread-exit path, e.g. a deferred callback
    /// fired by the cache's own destructor. The registration is born
    /// orphaned (it has no [`LocalHandle`]); the guard unregisters it on
    /// drop.
    fn pin_orphan(&self) -> Guard<'_> {
        let local = self.register_state();
        // ordering: Relaxed — same-thread flag: the guard that consults it
        // lives on this thread (a handle serves one thread at a time).
        local.orphaned.store(true, Relaxed);
        Guard::enter_owned(self, local)
    }

    /// Blocks until a full grace period has elapsed: every read-side critical
    /// section that was live when `synchronize` was called has ended, and all
    /// garbage retired before the call has been reclaimed.
    ///
    /// Equivalent to the paper's `synchronize_rcu`. The calling thread must
    /// **not** be pinned, otherwise this deadlocks (the epoch cannot advance
    /// past a pinned thread).
    pub fn synchronize(&self) {
        // ordering: Relaxed (both) — progress watch only: the advances this
        // loop waits for happen inside `try_advance`, which carries the real
        // ordering, and `reclaim` re-samples the epoch with Acquire.
        let start = self.inner.epoch.load(Relaxed);
        while self.inner.epoch.load(Relaxed) < start + GRACE_EPOCHS {
            if !self.inner.try_advance() {
                thread::yield_now();
            }
        }
        self.inner.reclaim();
    }

    /// Attempts one non-blocking epoch advance and reclaims any garbage whose
    /// grace period has elapsed. Returns the number of callbacks executed.
    ///
    /// Ready deferred callbacks run inline in the caller's context,
    /// regardless of any guards the caller holds — do not call this while
    /// pinned if a retired callback may wait on a grace period (see
    /// [`Guard::defer`]).
    pub fn collect(&self) -> usize {
        self.inner.collect().0
    }

    /// The current value of the global epoch.
    pub fn global_epoch(&self) -> u64 {
        // ordering: Relaxed — diagnostic snapshot of a monotone counter;
        // per-location coherence keeps it consistent with anything the
        // caller already observed.
        self.inner.epoch.load(Relaxed)
    }

    /// A point-in-time snapshot of the collector's counters.
    pub fn stats(&self) -> CollectorStats {
        let mut pending_bags = 0;
        let mut pending_objects = 0;
        let mut registered_threads = 0;
        for shard in 0..self.inner.shards.len() {
            let registry = self.inner.registry(shard);
            registered_threads += registry.len();
            for local in registry.iter() {
                let bag = local.bag.lock().unwrap();
                if !bag.is_empty() {
                    pending_bags += 1;
                    pending_objects += bag.objects();
                }
            }
            drop(registry);
            let garbage = self.inner.shards[shard].garbage.lock().unwrap();
            pending_bags += garbage.len();
            pending_objects += garbage.iter().map(Bag::objects).sum::<usize>();
        }
        // ordering: Relaxed (all) — point-in-time snapshot of diagnostic
        // counters; the fields are not mutually consistent anyway.
        CollectorStats {
            global_epoch: self.inner.epoch.load(Relaxed),
            epochs_advanced: self.inner.epochs_advanced.load(Relaxed),
            objects_retired: self.inner.retired.load(Relaxed),
            objects_freed: self.inner.freed.load(Relaxed),
            bytes_retired: self.inner.retired_bytes.load(Relaxed),
            bytes_freed: self.inner.freed_bytes.load(Relaxed),
            peak_unreclaimed_bytes: self.inner.peak_unreclaimed_bytes.load(Relaxed),
            callback_panics: self.inner.callback_panics.load(Relaxed),
            pending_bags,
            pending_objects,
            registered_threads,
            registry_shards: self.inner.shards.len(),
            registry_locks: self.inner.registry_locks.load(Relaxed),
        }
    }

    /// Number of strong references to the collector's shared state —
    /// including this handle — i.e. live `Collector` clones plus
    /// [`LocalHandle`]s. Diagnostic: the hot-path regression test asserts
    /// that pinning does not move it.
    #[doc(hidden)]
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Collector {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl PartialEq for Collector {
    /// Two `Collector` handles are equal when they refer to the same
    /// underlying collector.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for Collector {}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector")
            .field("epoch", &self.global_epoch())
            .finish_non_exhaustive()
    }
}

/// A thread's registration with a [`Collector`].
///
/// Obtained from [`Collector::register`]. The handle is `Send` (it can be
/// moved to another thread) but not `Sync`: each handle serves exactly one
/// thread at a time, which is what makes [`pin`](Self::pin) a thread-local
/// operation.
pub struct LocalHandle {
    pub(crate) collector: Collector,
    pub(crate) local: Arc<LocalState>,
    /// `Cell` is `Send + !Sync`, making the handle single-thread-at-a-time.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

impl LocalHandle {
    /// Enters a read-side critical section (the paper's `rcu_read_begin`).
    ///
    /// The returned [`Guard`] borrows this handle, so it cannot outlive it:
    ///
    /// ```compile_fail,E0505
    /// use rcukit::Collector;
    ///
    /// let collector = Collector::new();
    /// let handle = collector.register();
    /// let guard = handle.pin();
    /// drop(handle); // ERROR: `handle` is still borrowed by `guard`
    /// drop(guard);
    /// ```
    ///
    /// Pinning is re-entrant: nested guards share the outermost guard's
    /// epoch. The pin performs **no** shared atomic read-modify-write and
    /// takes no lock — it stores the thread's own status word (an
    /// owner-written cache line), issues one StoreLoad fence, and *reads*
    /// the global epoch word — so readers never contend with each other,
    /// however many cores are faulting at once.
    pub fn pin(&self) -> Guard<'_> {
        Guard::enter_borrowed(&self.collector, &self.local)
    }

    /// Whether this handle currently has a live guard.
    pub fn is_pinned(&self) -> bool {
        // ordering: Relaxed — owner-thread counter: the handle's guards
        // live on the calling thread (the handle is `!Sync`).
        self.local.guard_count.load(Relaxed) > 0
    }

    /// The collector this handle is registered with.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        // ordering: Relaxed — owner-thread counter: any guard over this
        // state lives on the dropping thread (the handle is `!Sync`), so
        // there is no concurrent mutation to order against.
        if self.local.guard_count.load(Relaxed) == 0 {
            self.collector.inner.seal_bag(&self.local);
            self.collector.inner.unregister(&self.local);
        } else {
            // Borrow-based guards cannot outlive the handle, but guards
            // from the TLS-cached `Collector::pin` path hold the state by
            // `Arc` and can: when thread-exit TLS destruction drops the
            // cached handle under a live guard stored elsewhere in TLS,
            // mark the state orphaned so the last guard unregisters it,
            // then re-check in case that guard dropped concurrently.
            // ordering: Relaxed — same-thread flag and counter, as above.
            self.local.orphaned.store(true, Relaxed);
            if self.local.guard_count.load(Relaxed) == 0 {
                self.collector.inner.seal_bag(&self.local);
                self.collector.inner.unregister(&self.local);
            }
        }
    }
}

impl fmt::Debug for LocalHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalHandle")
            .field("pinned", &self.is_pinned())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn epoch_advances_without_readers() {
        let c = Collector::new();
        let e0 = c.global_epoch();
        c.synchronize();
        assert!(c.global_epoch() >= e0 + GRACE_EPOCHS);
    }

    #[test]
    fn pinned_reader_blocks_advance_past_next_epoch() {
        let c = Collector::new();
        let h = c.register();
        let g = h.pin();
        let pinned_at = g.epoch();
        // The epoch can advance at most once past the pinned epoch.
        for _ in 0..10 {
            c.collect();
        }
        assert!(c.global_epoch() <= pinned_at + 1);
        drop(g);
        c.synchronize();
        assert!(c.global_epoch() >= pinned_at + GRACE_EPOCHS);
    }

    #[test]
    fn register_and_drop_updates_registry() {
        let c = Collector::new();
        assert_eq!(c.stats().registered_threads, 0);
        let h1 = c.register();
        let h2 = c.register();
        assert_eq!(c.stats().registered_threads, 2);
        drop(h1);
        assert_eq!(c.stats().registered_threads, 1);
        drop(h2);
        assert_eq!(c.stats().registered_threads, 0);
    }

    /// Registrations spread across every shard, epoch advance scans them
    /// all (a pinned thread in any shard blocks it), and unregistration
    /// finds the right shard.
    #[test]
    fn sharded_registry_scans_every_shard() {
        let c = Collector::with_shards(4);
        assert_eq!(c.stats().registry_shards, 4);
        // Round-robin: eight handles, two per shard.
        let handles: Vec<_> = (0..8).map(|_| c.register()).collect();
        assert_eq!(c.stats().registered_threads, 8);
        // Pin the handle that landed in the *last* shard; the advance scan
        // must still see it.
        let g = handles[3].pin();
        let pinned_at = g.epoch();
        for _ in 0..10 {
            c.collect();
        }
        assert!(c.global_epoch() <= pinned_at + 1);
        drop(g);
        c.synchronize();
        assert!(c.global_epoch() >= pinned_at + GRACE_EPOCHS);
        drop(handles);
        assert_eq!(c.stats().registered_threads, 0);
    }

    /// Garbage sealed into different shards' queues is all reclaimed.
    #[test]
    fn garbage_from_every_shard_is_reclaimed() {
        let fired = Arc::new(AtomicUsize::new(0));
        let c = Collector::with_shards(4);
        let handles: Vec<_> = (0..4).map(|_| c.register()).collect();
        for h in &handles {
            let g = h.pin();
            let f = fired.clone();
            g.defer(move || {
                f.fetch_add(1, SeqCst);
            });
        }
        c.synchronize();
        assert_eq!(fired.load(SeqCst), 4);
        let s = c.stats();
        assert_eq!(s.objects_retired, 4);
        assert_eq!(s.objects_freed, 4);
        assert_eq!(s.pending_bags, 0);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(Collector::with_shards(0).stats().registry_shards, 1);
        assert_eq!(Collector::with_shards(3).stats().registry_shards, 4);
        assert_eq!(Collector::with_shards(8).stats().registry_shards, 8);
    }

    #[test]
    fn collector_drop_fires_pending_garbage() {
        static FIRED: AtomicUsize = AtomicUsize::new(0);
        let c = Collector::new();
        let h = c.register();
        {
            let g = h.pin();
            g.defer(|| {
                FIRED.fetch_add(1, SeqCst);
            });
        }
        drop(h);
        drop(c);
        assert_eq!(FIRED.load(SeqCst), 1);
    }

    #[test]
    fn tls_cache_releases_abandoned_collectors() {
        let fired = Arc::new(AtomicUsize::new(0));
        {
            let c = Collector::new();
            let g = c.pin(); // caches a handle in this thread's TLS
            let f = fired.clone();
            g.defer(move || {
                f.fetch_add(1, SeqCst);
            });
        }
        // The collector is now owned only by the TLS cache; its garbage has
        // not reached a grace period yet.
        assert_eq!(fired.load(SeqCst), 0);
        // Pinning any collector sweeps the cache, dropping the abandoned
        // entry and firing its remaining garbage via Inner::drop.
        let other = Collector::new();
        let _g = other.pin();
        assert_eq!(fired.load(SeqCst), 1);
    }

    /// An abandoned collector cached in several threads' TLS must still be
    /// evicted: each sweep sees `strong_count == tls_cached` and drops its
    /// own entry, and the last eviction fires the pending garbage.
    #[test]
    fn abandoned_collector_cached_in_two_threads_is_evicted() {
        use std::sync::mpsc;

        let fired = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();

        let mut steps = Vec::new();
        let mut readies = Vec::new();
        let mut joins = Vec::new();
        for _ in 0..2 {
            let (step_tx, step_rx) = mpsc::channel::<()>();
            let (ready_tx, ready_rx) = mpsc::channel::<()>();
            let c = c.clone();
            let fired = fired.clone();
            joins.push(thread::spawn(move || {
                {
                    let g = c.pin(); // cache a handle in this thread's TLS
                    let fired = fired.clone();
                    g.defer(move || {
                        fired.fetch_add(1, SeqCst);
                    });
                }
                drop(c);
                ready_tx.send(()).unwrap();
                step_rx.recv().unwrap(); // main has dropped its handle
                let other = Collector::new();
                let _g = other.pin(); // sweep evicts this thread's entry
                ready_tx.send(()).unwrap();
                step_rx.recv().unwrap(); // stay alive until both swept
            }));
            steps.push(step_tx);
            readies.push(ready_rx);
        }
        for rx in &readies {
            rx.recv().unwrap();
        }
        // Only the two TLS caches own the collector now. Sweep one thread at
        // a time so each observes the other's entry consistently.
        drop(c);
        for (tx, rx) in steps.iter().zip(&readies) {
            tx.send(()).unwrap();
            rx.recv().unwrap();
        }
        assert_eq!(fired.load(SeqCst), 2);
        for tx in &steps {
            tx.send(()).unwrap();
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    /// A deferred callback fired by a sweep eviction (via `Inner::drop`) may
    /// itself pin a collector; this must not panic on the TLS `RefCell`.
    #[test]
    fn eviction_fired_callback_may_repin() {
        let fired = Arc::new(AtomicUsize::new(0));
        let other = Collector::new();
        {
            let c = Collector::new();
            let g = c.pin(); // caches a handle to `c` in this thread's TLS
            let f = fired.clone();
            let o = other.clone();
            g.defer(move || {
                let _g = o.pin(); // re-enters the TLS cache
                f.fetch_add(1, SeqCst);
            });
        }
        // Sweeping evicts `c`, dropping its last reference; `Inner::drop`
        // runs the callback above, which pins `other` recursively.
        let _g = other.pin();
        assert_eq!(fired.load(SeqCst), 1);
    }

    /// A thread whose every pin is a cache hit must still release abandoned
    /// collectors: the hit path sweeps every `SWEEP_PERIOD`-th pin.
    #[test]
    fn hit_path_sampled_sweep_releases_abandoned_collectors() {
        let fired = Arc::new(AtomicUsize::new(0));
        let b = Collector::new();
        drop(b.pin()); // cache `b` while `a` does not exist yet
        {
            let a = Collector::new();
            let g = a.pin();
            let f = fired.clone();
            g.defer(move || {
                f.fetch_add(1, SeqCst);
            });
        }
        // `a` is now owned only by this thread's TLS cache; every further
        // pin of `b` is a cache hit, so only the sampled sweep can evict it.
        assert_eq!(fired.load(SeqCst), 0);
        for _ in 0..=SWEEP_PERIOD {
            drop(b.pin());
        }
        assert_eq!(fired.load(SeqCst), 1);
    }

    /// `pin_quiet` must never run eviction housekeeping (it exists to be
    /// callable with non-reentrant locks held); a regular pin still does.
    #[test]
    fn pin_quiet_runs_no_housekeeping() {
        let fired = Arc::new(AtomicUsize::new(0));
        let other = Collector::new();
        drop(other.pin_quiet());
        {
            let c = Collector::new();
            let g = c.pin();
            let f = fired.clone();
            g.defer(move || {
                f.fetch_add(1, SeqCst);
            });
        }
        // `c` is abandoned in this thread's TLS; quiet pins must not evict
        // it no matter how often they run.
        for _ in 0..=SWEEP_PERIOD {
            drop(other.pin_quiet());
        }
        assert_eq!(fired.load(SeqCst), 0);
        // A regular sweeping pin (cache miss) still reclaims it.
        let fresh = Collector::new();
        drop(fresh.pin());
        assert_eq!(fired.load(SeqCst), 1);
    }

    /// An eviction-fired callback may block on a grace period (e.g. call
    /// `synchronize`). The sweep must therefore never run — and never drop
    /// evicted handles — while this thread holds any guard, or the callback
    /// would wait forever on our own pin.
    #[test]
    fn eviction_callback_blocking_on_grace_does_not_deadlock() {
        let fired = Arc::new(AtomicUsize::new(0));
        let x = Collector::new();
        drop(x.pin()); // cache `x` so later pins are hits, not sweeping misses
        {
            let y = Collector::new();
            let g = y.pin();
            let f = fired.clone();
            let x2 = x.clone();
            g.defer(move || {
                x2.synchronize(); // completes only if the thread is unpinned
                f.fetch_add(1, SeqCst);
            });
        }
        // `y` is abandoned in this thread's TLS. While pinned on `x`, even
        // sweep-due nested pins must skip the sweep.
        let outer = x.pin();
        for _ in 0..=SWEEP_PERIOD {
            drop(x.pin());
        }
        assert_eq!(fired.load(SeqCst), 0);
        drop(outer);
        // First guard-free pin runs the overdue sweep; the callback's
        // synchronize() now makes progress.
        drop(x.pin());
        assert_eq!(fired.load(SeqCst), 1);
    }

    /// A deferred callback can also fire from the TLS cache's *destructor*
    /// when an exiting thread owns an abandoned collector's last reference.
    /// Re-entrant pinning then cannot touch the dying TLS value; the
    /// fallback path must register-and-pin without it (and clean up).
    #[test]
    fn thread_exit_fired_callback_may_repin() {
        let fired = Arc::new(AtomicUsize::new(0));
        let other = Collector::new();
        let o = other.clone();
        let f = fired.clone();
        thread::spawn(move || {
            let c = Collector::new();
            let g = c.pin(); // caches a handle to `c` in this thread's TLS
            g.defer(move || {
                let _g = o.pin();
                f.fetch_add(1, SeqCst);
            });
            drop(g);
            drop(c);
            // The thread now exits owning `c` only through its TLS cache;
            // the cache destructor drops the last reference and
            // `Inner::drop` fires the callback above mid-TLS-destruction.
        })
        .join()
        .unwrap();
        assert_eq!(fired.load(SeqCst), 1);
        // The fallback registration was cleaned up when its guard dropped.
        assert_eq!(other.stats().registered_threads, 0);
    }

    #[test]
    fn clone_eq_identity() {
        let a = Collector::new();
        let b = a.clone();
        let c = Collector::new();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
