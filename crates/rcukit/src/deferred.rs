//! Storage for deferred reclamation callbacks.

use std::fmt;

/// A deferred unit of work executed after a grace period.
///
/// Internally this is a boxed `FnOnce`; the indirection costs one allocation
/// per retirement, which is acceptable because retirements are write-side
/// operations (the Bonsai tree retires one batch — the whole replaced
/// root-to-site path — per update).
pub(crate) struct Deferred {
    call: Box<dyn FnOnce() + Send>,
}

impl Deferred {
    /// Wraps a callback for later execution.
    pub(crate) fn new<F: FnOnce() + Send + 'static>(f: F) -> Self {
        Self { call: Box::new(f) }
    }

    /// Runs the callback, consuming the deferred unit.
    pub(crate) fn call(self) {
        (self.call)();
    }
}

impl fmt::Debug for Deferred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Deferred").finish_non_exhaustive()
    }
}

/// A batch of deferred callbacks retired during the same epoch.
#[derive(Debug, Default)]
pub(crate) struct Bag {
    /// Epoch in which the contents were retired.
    pub(crate) epoch: u64,
    /// The retired callbacks.
    pub(crate) items: Vec<Deferred>,
}

impl Bag {
    /// Creates an empty bag tagged with `epoch`.
    pub(crate) fn new(epoch: u64) -> Self {
        Self {
            epoch,
            items: Vec::new(),
        }
    }

    /// Number of retired callbacks held by the bag.
    pub(crate) fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the bag holds no callbacks.
    pub(crate) fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Executes every callback in the bag.
    pub(crate) fn fire(self) -> usize {
        let n = self.items.len();
        for d in self.items {
            d.call();
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn deferred_runs_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        let d = Deferred::new(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 0);
        d.call();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn bag_fires_all_items() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut bag = Bag::new(7);
        assert!(bag.is_empty());
        for _ in 0..10 {
            let c = counter.clone();
            bag.items.push(Deferred::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        assert_eq!(bag.len(), 10);
        assert_eq!(bag.epoch, 7);
        assert_eq!(bag.fire(), 10);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn debug_is_nonempty() {
        let d = Deferred::new(|| {});
        assert!(!format!("{d:?}").is_empty());
        let b = Bag::new(0);
        assert!(!format!("{b:?}").is_empty());
    }
}
