//! Storage for deferred reclamation callbacks.
//!
//! Two kinds of deferred work travel through the collector's bags:
//!
//! * [`Deferred::Call`] — a boxed `FnOnce`, the general
//!   [`Guard::defer`](crate::Guard::defer) path. The indirection costs one
//!   allocation per retirement.
//! * [`Deferred::Recycle`] — an allocation-free batch handed to a
//!   [`Recycler`] via [`Guard::defer_recycle`](crate::Guard::defer_recycle):
//!   no closure is boxed, the pointer buffer travels by value and is
//!   returned to its owner for reuse, and the recycler is an `Arc` clone
//!   (a reference-count bump, not a heap allocation). This is what lets an
//!   arena-backed writer retire a whole update without touching the heap.

use std::fmt;
use std::sync::Arc;

/// A batch of type-erased pointers travelling through deferred reclamation
/// to a [`Recycler`].
///
/// The batch owns only its buffer; the pointed-to blocks belong to the
/// recycler that will reclaim them. The buffer is ordinary `Vec` storage,
/// so a recycler that retains it (see [`Recycler::recycle`]) gives the
/// next retirement a warm, already-sized buffer — the steady-state
/// zero-allocation property of the recycle path.
#[derive(Default)]
pub struct RecycleBatch {
    ptrs: Vec<*mut ()>,
}

// Safety: batches are built only through `Guard::defer_recycle`, whose
// contract requires every pointer's pointed-to data to be reclaimable from
// any thread (`Send` payloads); the buffer itself is plain storage.
unsafe impl Send for RecycleBatch {}

impl RecycleBatch {
    /// Creates an empty batch with no buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a pointer to the batch.
    pub fn push(&mut self, ptr: *mut ()) {
        self.ptrs.push(ptr);
    }

    /// Number of pointers in the batch.
    pub fn len(&self) -> usize {
        self.ptrs.len()
    }

    /// Whether the batch holds no pointers.
    pub fn is_empty(&self) -> bool {
        self.ptrs.is_empty()
    }

    /// Buffer capacity (diagnostic for allocation-diet tests).
    pub fn capacity(&self) -> usize {
        self.ptrs.capacity()
    }

    /// Removes and returns all pointers, keeping the buffer's capacity —
    /// how a [`Recycler`] consumes the batch before pooling the buffer.
    pub fn drain(&mut self) -> std::vec::Drain<'_, *mut ()> {
        self.ptrs.drain(..)
    }
}

impl fmt::Debug for RecycleBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecycleBatch")
            .field("len", &self.ptrs.len())
            .finish_non_exhaustive()
    }
}

/// A reclamation target for [`Guard::defer_recycle`]: typically a slab
/// arena that takes retired blocks back instead of freeing them.
///
/// Implementations must be shareable across threads — the collector may
/// run [`recycle`](Self::recycle) on whichever thread drives reclamation —
/// and are held by `Arc`, so a pending batch keeps its recycler (and the
/// memory it manages) alive until the batch fires.
///
/// [`Guard::defer_recycle`]: crate::Guard::defer_recycle
pub trait Recycler: Send + Sync {
    /// Reclaims every pointer in `batch` (dropping payloads, returning
    /// blocks to the free store) and may retain `batch`'s buffer for the
    /// next retirement.
    ///
    /// # Safety
    ///
    /// Called only by the collector, exactly once per batch, strictly
    /// after the grace period of the [`defer_recycle`] call that created
    /// it — at which point the batch's pointers are unreachable to every
    /// reader and exclusively owned by the recycler, per that call's
    /// contract.
    ///
    /// [`defer_recycle`]: crate::Guard::defer_recycle
    unsafe fn recycle(&self, batch: RecycleBatch);

    /// Reclaims a single pointer. Reclamation backends that decide per
    /// pointer whether a retirement may run (the hazard-pointer scan frees
    /// each unprotected pointer individually) call this instead of
    /// [`recycle`](Self::recycle). The default wraps the pointer in a
    /// one-element batch; arena-style recyclers override it to return the
    /// block directly, keeping the per-pointer path allocation-free.
    ///
    /// # Safety
    ///
    /// Same contract as [`recycle`](Self::recycle), applied to the single
    /// pointer `ptr`.
    unsafe fn recycle_one(&self, ptr: *mut ()) {
        let mut batch = RecycleBatch::new();
        batch.push(ptr);
        // Safety: forwarded contract — `ptr` is unreachable and exclusively
        // owned, exactly as `recycle` requires of every batch entry.
        unsafe { self.recycle(batch) };
    }
}

/// A deferred unit of work executed after a grace period.
pub(crate) enum Deferred {
    /// A boxed callback (the general `defer` path; one allocation each).
    Call(Box<dyn FnOnce() + Send>),
    /// An allocation-free pointer batch bound for a recycler.
    Recycle(Arc<dyn Recycler>, RecycleBatch),
}

impl Deferred {
    /// Wraps a callback for later execution.
    pub(crate) fn new<F: FnOnce() + Send + 'static>(f: F) -> Self {
        Deferred::Call(Box::new(f))
    }

    /// Wraps a recycle batch for later execution.
    pub(crate) fn recycle(target: Arc<dyn Recycler>, batch: RecycleBatch) -> Self {
        Deferred::Recycle(target, batch)
    }

    /// Runs the deferred work, consuming the unit.
    pub(crate) fn call(self) {
        match self {
            Deferred::Call(f) => {
                crate::faults::maybe_panic(crate::faults::site::DEFERRED_CALLBACK);
                f()
            }
            // Safety: `call` runs only at reclamation points, after the
            // grace period of the defer that queued this unit — exactly
            // the contract `Recycler::recycle` requires.
            Deferred::Recycle(target, batch) => unsafe { target.recycle(batch) },
        }
    }
}

impl fmt::Debug for Deferred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Deferred").finish_non_exhaustive()
    }
}

/// A retired unit plus its accounting: how many heap objects it stands for
/// and the retirer's byte estimate. Carrying the counts through the bag is
/// what keeps the collector's object/byte counters accurate whatever shape
/// the retirement took — one opaque closure, one boxed allocation, or a
/// whole recycle batch (whose entries each count as an object).
pub(crate) struct Retired {
    pub(crate) d: Deferred,
    /// Heap objects this unit reclaims. A recycle batch counts every
    /// pointer; an opaque `Call` closure counts as one.
    pub(crate) objects: usize,
    /// Retirer-supplied estimate of the bytes reclaimed; `0` when unknown
    /// (an opaque closure carries no byte estimate).
    pub(crate) bytes: usize,
}

impl fmt::Debug for Retired {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Retired")
            .field("objects", &self.objects)
            .field("bytes", &self.bytes)
            .finish_non_exhaustive()
    }
}

/// A batch of deferred retirements made during the same epoch.
#[derive(Debug, Default)]
pub(crate) struct Bag {
    /// Epoch in which the contents were retired.
    pub(crate) epoch: u64,
    /// The retired units.
    pub(crate) items: Vec<Retired>,
}

impl Bag {
    /// Creates an empty bag tagged with `epoch`.
    pub(crate) fn new(epoch: u64) -> Self {
        Self {
            epoch,
            items: Vec::new(),
        }
    }

    /// Creates a bag tagged with `epoch` over a recycled (empty but
    /// warm-capacity) item buffer — see the collector's bag pool.
    pub(crate) fn with_buffer(epoch: u64, items: Vec<Retired>) -> Self {
        debug_assert!(items.is_empty());
        Self { epoch, items }
    }

    /// Number of retired units held by the bag (the seal-threshold gauge;
    /// see [`objects`](Self::objects) for the object count).
    pub(crate) fn len(&self) -> usize {
        self.items.len()
    }

    /// Number of heap objects the bag's units stand for.
    pub(crate) fn objects(&self) -> usize {
        self.items.iter().map(|r| r.objects).sum()
    }

    /// Whether the bag holds no retirements.
    pub(crate) fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Executes every retirement in the bag, returning how many objects and
    /// bytes were reclaimed, how many `Call` callbacks panicked, plus the
    /// drained item buffer (for the caller to pool).
    ///
    /// A panicking callback is caught here rather than unwinding into the
    /// reclaim loop: the rest of the bag still drains (a buggy destructor
    /// must not turn into a leak of every later retirement), and the panic
    /// count is surfaced through `CollectorStats::callback_panics`. The
    /// unit still counts as reclaimed — its heap object was consumed by the
    /// unwinding closure.
    pub(crate) fn fire(mut self) -> (usize, usize, u64, Vec<Retired>) {
        let mut objects = 0;
        let mut bytes = 0;
        let mut panics = 0;
        for r in self.items.drain(..) {
            objects += r.objects;
            bytes += r.bytes;
            // AssertUnwindSafe: the closure is consumed whether or not it
            // unwinds, and the bag shares no state with it.
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r.d.call())).is_err() {
                panics += 1;
            }
        }
        (objects, bytes, panics, self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn deferred_runs_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        let d = Deferred::new(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 0);
        d.call();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn bag_fires_all_items() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut bag = Bag::new(7);
        assert!(bag.is_empty());
        for _ in 0..10 {
            let c = counter.clone();
            bag.items.push(Retired {
                d: Deferred::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }),
                objects: 2,
                bytes: 8,
            });
        }
        assert_eq!(bag.len(), 10);
        assert_eq!(bag.objects(), 20);
        assert_eq!(bag.epoch, 7);
        let (objects, bytes, panics, buffer) = bag.fire();
        assert_eq!(objects, 20);
        assert_eq!(bytes, 80);
        assert_eq!(panics, 0);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        // The drained buffer keeps its capacity for pooling.
        assert!(buffer.is_empty() && buffer.capacity() >= 10);
    }

    #[test]
    fn bag_keeps_draining_past_a_panicking_callback() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut bag = Bag::new(0);
        for i in 0..6 {
            let c = counter.clone();
            bag.items.push(Retired {
                d: Deferred::new(move || {
                    if i % 2 == 0 {
                        panic!("deliberate callback panic");
                    }
                    c.fetch_add(1, Ordering::SeqCst);
                }),
                objects: 1,
                bytes: 4,
            });
        }
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        let (objects, bytes, panics, _) = bag.fire();
        std::panic::set_hook(prev);
        assert_eq!(objects, 6);
        assert_eq!(bytes, 24);
        assert_eq!(panics, 3);
        // Every non-panicking callback after a panicking one still ran.
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn recycle_deferred_reaches_its_recycler() {
        struct Sink {
            seen: AtomicUsize,
        }
        impl Recycler for Sink {
            unsafe fn recycle(&self, mut batch: RecycleBatch) {
                self.seen.fetch_add(batch.drain().count(), Ordering::SeqCst);
            }
        }
        let sink = Arc::new(Sink {
            seen: AtomicUsize::new(0),
        });
        let mut batch = RecycleBatch::new();
        // Never-dereferenced markers: the sink only counts.
        let marks = [0u8; 2];
        batch.push(std::ptr::from_ref(&marks[0]).cast_mut().cast());
        batch.push(std::ptr::from_ref(&marks[1]).cast_mut().cast());
        assert_eq!(batch.len(), 2);
        let d = Deferred::recycle(sink.clone() as Arc<dyn Recycler>, batch);
        d.call();
        assert_eq!(sink.seen.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn debug_is_nonempty() {
        let d = Deferred::new(|| {});
        assert!(!format!("{d:?}").is_empty());
        let b = Bag::new(0);
        assert!(!format!("{b:?}").is_empty());
        let r = RecycleBatch::new();
        assert!(!format!("{r:?}").is_empty());
    }
}
