//! Deterministic fault injection (failpoints) for the reclamation
//! protocol and its dependents.
//!
//! A *failpoint* is a named probe compiled into a protocol edge — an
//! allocation, a commit CAS, a deferred callback — that a test can arm to
//! fail deterministically. The subsystem exists only under the `faults`
//! cargo feature: without it every probe below is an `#[inline(always)]`
//! constant-false stub, so production builds carry no branch, no registry,
//! and no string comparisons. Dependent crates (`bonsai`) forward the
//! feature, so one `--features faults` switch arms the whole stack.
//!
//! # Determinism and replay
//!
//! Armed faults fire as a pure function of `(seed, site, hit-index)` — no
//! clocks, no global RNG — so a failing run is reproducible bit-for-bit
//! from its **replay token**. The chaos harnesses print the token as
//! `FAULT_REPLAY=<token>` on failure (mirroring `LOOMETTE_REPLAY` from the
//! model-checking tier); re-arm with `arm_token` to replay exactly the
//! schedule that fired, independent of probability mode:
//!
//! ```text
//! FAULT_REPLAY=seed=42,pm=30;tree.post_cas@17,arena.alloc@203
//! ```
//!
//! The part before `;` records how the run was armed (diagnostic); the
//! part after is the fired-site schedule the replay re-injects.
//!
//! # Probes
//!
//! * [`should_fail`] — decision probe: "does this site fail now?" The
//!   caller implements the failure (return an error path, skip a CAS).
//! * [`maybe_panic`] — panics with an `injected fault:` message when the
//!   site fires; the standard probe for allocation-failure and
//!   mid-protocol-crash sites.
//! * [`maybe_stall`] — burns a bounded busy-wait when the site fires; the
//!   probe for reader-stall/slow-down sites.
//!
//! Probes on unarmed sites count hits but never fire; probes while the
//! registry is disarmed are free of side effects entirely.

#[cfg(feature = "faults")]
pub use imp::{arm, arm_schedule, arm_token, disarm, fired, hits, replay_token};

/// Canonical failpoint site names, one per instrumented protocol edge (the
/// table lives in `docs/CONCURRENCY.md` §10). Sites are plain strings so
/// dependent crates can add their own without touching this registry.
pub mod site {
    /// Arena block allocation in the copy-on-write rebuild
    /// (`bonsai::Arena::alloc`): fires as a panic, modelling allocation
    /// failure mid-update.
    pub const ARENA_ALLOC: &str = "arena.alloc";
    /// Forced root-CAS failure in `BonsaiTree::{insert,remove}_with`: the
    /// attempt takes the contention path (discard + rebuild) even though
    /// no concurrent writer exists.
    pub const TREE_CAS: &str = "tree.cas";
    /// Panic immediately before the commit CAS, after the speculative
    /// path is fully built (nothing published yet).
    pub const TREE_PRE_PUBLISH: &str = "tree.pre_publish";
    /// Panic immediately after a successful commit CAS, before the
    /// reference-count accounting ran — the hardest window: the new root
    /// is live but unaccounted.
    pub const TREE_POST_CAS: &str = "tree.post_cas";
    /// Panic inside a deferred `Call` callback as the reclaimer drains a
    /// bag (the `callback_panics` regression).
    pub const DEFERRED_CALLBACK: &str = "deferred.callback";
    /// Reader-side stall: a bounded busy-wait inside read protection.
    pub const READER_STALL: &str = "reader.stall";
    /// Panic mid-discovery in `RangeMap::unmap_range`, before any
    /// mutation of the map.
    pub const UNMAP_DISCOVERY: &str = "range_map.discovery";
}

/// Decision probe: whether the armed plan fires `site` at this hit.
/// Always `false` when the registry is disarmed (or the feature is off).
#[cfg(not(feature = "faults"))]
#[inline(always)]
pub fn should_fail(_site: &'static str) -> bool {
    false
}

/// Panic probe: panics with `injected fault: <site>@<hit>` when the site
/// fires. No-op when disarmed (or the feature is off).
#[cfg(not(feature = "faults"))]
#[inline(always)]
pub fn maybe_panic(_site: &'static str) {}

/// Stall probe: burns a bounded busy-wait when the site fires. No-op when
/// disarmed (or the feature is off).
#[cfg(not(feature = "faults"))]
#[inline(always)]
pub fn maybe_stall(_site: &'static str) {}

#[cfg(feature = "faults")]
pub use imp::{maybe_panic, maybe_stall, should_fail};

#[cfg(feature = "faults")]
mod imp {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    /// How an armed registry decides whether a `(site, hit)` fires.
    enum Plan {
        /// Bernoulli per hit: fires with probability `per_mille`/1000,
        /// decided by a hash of `(seed, site, hit)` — stateless, so the
        /// same arming replays identically whatever the interleaving of
        /// *other* sites.
        Random { seed: u64, per_mille: u32 },
        /// Fire exactly at the listed hit indices per site.
        Schedule(HashMap<String, Vec<u64>>),
    }

    struct Registry {
        plan: Option<Plan>,
        /// Armed-run descriptor for the replay token's prefix.
        armed_as: String,
        /// Per-site hit counters (counted while armed).
        hits: HashMap<&'static str, u64>,
        /// Every `(site, hit)` that fired, in firing order.
        fired: Vec<(&'static str, u64)>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
        REG.get_or_init(|| {
            Mutex::new(Registry {
                plan: None,
                armed_as: String::new(),
                hits: HashMap::new(),
                fired: Vec::new(),
            })
        })
    }

    /// SplitMix64 finalizer over `(seed, site, hit)` — a stateless,
    /// well-mixed decision function.
    fn mix(seed: u64, site: &str, hit: u64) -> u64 {
        let mut z = seed ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for b in site.bytes() {
            z = (z ^ u64::from(b)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        }
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Arms Bernoulli injection: every probe hit fires with probability
    /// `per_mille`/1000, decided deterministically from `seed`. Resets
    /// hit counters and the fired log.
    pub fn arm(seed: u64, per_mille: u32) {
        let mut reg = registry().lock().unwrap();
        reg.plan = Some(Plan::Random { seed, per_mille });
        reg.armed_as = format!("seed={seed},pm={per_mille}");
        reg.hits.clear();
        reg.fired.clear();
    }

    /// Arms a fixed schedule: site `s` fires exactly at the hit indices
    /// listed for it (0-based). Resets hit counters and the fired log.
    pub fn arm_schedule(schedule: &[(&str, u64)]) {
        let mut reg = registry().lock().unwrap();
        let mut map: HashMap<String, Vec<u64>> = HashMap::new();
        for (site, hit) in schedule {
            map.entry((*site).to_string()).or_default().push(*hit);
        }
        reg.armed_as = format!(
            "schedule={}",
            schedule
                .iter()
                .map(|(s, h)| format!("{s}@{h}"))
                .collect::<Vec<_>>()
                .join("+")
        );
        reg.plan = Some(Plan::Schedule(map));
        reg.hits.clear();
        reg.fired.clear();
    }

    /// Re-arms from a replay token's fired-site schedule (everything after
    /// the `;`), reproducing exactly the faults of the recorded run.
    ///
    /// # Panics
    ///
    /// Panics on a malformed token.
    pub fn arm_token(token: &str) {
        let sched = token.rsplit(';').next().unwrap_or("");
        let mut pairs = Vec::new();
        for part in sched.split(',').filter(|p| !p.is_empty()) {
            let (site, hit) = part
                .rsplit_once('@')
                .unwrap_or_else(|| panic!("malformed FAULT_REPLAY entry {part:?}"));
            let hit: u64 = hit
                .parse()
                .unwrap_or_else(|_| panic!("malformed FAULT_REPLAY hit index {part:?}"));
            pairs.push((site.to_string(), hit));
        }
        let borrowed: Vec<(&str, u64)> = pairs.iter().map(|(s, h)| (s.as_str(), *h)).collect();
        arm_schedule(&borrowed);
    }

    /// Disarms every site; probes become side-effect-free again.
    pub fn disarm() {
        let mut reg = registry().lock().unwrap();
        reg.plan = None;
    }

    /// The replay token for the current armed run:
    /// `<armed-as>;<site>@<hit>,...` — print as `FAULT_REPLAY=<token>` on
    /// failure and feed back through [`arm_token`].
    pub fn replay_token() -> String {
        let reg = registry().lock().unwrap();
        let fired = reg
            .fired
            .iter()
            .map(|(s, h)| format!("{s}@{h}"))
            .collect::<Vec<_>>()
            .join(",");
        format!("{};{}", reg.armed_as, fired)
    }

    /// Hit count for `site` in the current armed run.
    pub fn hits(site: &'static str) -> u64 {
        registry()
            .lock()
            .unwrap()
            .hits
            .get(site)
            .copied()
            .unwrap_or(0)
    }

    /// Number of faults fired in the current armed run.
    pub fn fired() -> usize {
        registry().lock().unwrap().fired.len()
    }

    /// Probes `site`: counts the hit and decides (and records) firing.
    fn probe(site: &'static str) -> Option<u64> {
        let mut reg = registry().lock().unwrap();
        reg.plan.as_ref()?;
        let hit = {
            let h = reg.hits.entry(site).or_insert(0);
            let hit = *h;
            *h += 1;
            hit
        };
        let fire = match reg.plan.as_ref().unwrap() {
            Plan::Random { seed, per_mille } => {
                mix(*seed, site, hit) % 1000 < u64::from(*per_mille)
            }
            Plan::Schedule(map) => map.get(site).is_some_and(|hits| hits.contains(&hit)),
        };
        if fire {
            reg.fired.push((site, hit));
            Some(hit)
        } else {
            None
        }
    }

    /// See the crate-level stub docs: decision probe.
    pub fn should_fail(site: &'static str) -> bool {
        probe(site).is_some()
    }

    /// See the crate-level stub docs: panic probe.
    pub fn maybe_panic(site: &'static str) {
        if let Some(hit) = probe(site) {
            panic!("injected fault: {site}@{hit}");
        }
    }

    /// See the crate-level stub docs: stall probe (a bounded busy-wait, so
    /// stalls stay deterministic in duration-free tests).
    pub fn maybe_stall(site: &'static str) {
        if probe(site).is_some() {
            for _ in 0..1 << 12 {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(all(test, feature = "faults"))]
mod tests {
    use super::*;

    // The registry is process-global, so these tests serialize on a lock
    // rather than racing each other's arm/disarm.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_probes_never_fire() {
        let _s = serial();
        disarm();
        for _ in 0..100 {
            assert!(!should_fail(site::ARENA_ALLOC));
        }
        maybe_panic(site::TREE_POST_CAS); // must not panic
    }

    #[test]
    fn random_plan_is_deterministic_and_replayable() {
        let _s = serial();
        arm(42, 200);
        let run: Vec<bool> = (0..200).map(|_| should_fail(site::TREE_CAS)).collect();
        let token = replay_token();
        assert!(run.iter().any(|&b| b), "pm=200 over 200 hits fired nothing");
        // Same seed → same decisions.
        arm(42, 200);
        let again: Vec<bool> = (0..200).map(|_| should_fail(site::TREE_CAS)).collect();
        assert_eq!(run, again);
        // Replaying the token's schedule fires the same hits.
        arm_token(&token);
        let replay: Vec<bool> = (0..200).map(|_| should_fail(site::TREE_CAS)).collect();
        assert_eq!(run, replay);
        disarm();
    }

    #[test]
    fn schedule_fires_exact_hits_and_panics() {
        let _s = serial();
        arm_schedule(&[(site::ARENA_ALLOC, 2)]);
        assert!(!should_fail(site::ARENA_ALLOC)); // hit 0
        assert!(!should_fail(site::ARENA_ALLOC)); // hit 1
        let err = std::panic::catch_unwind(|| maybe_panic(site::ARENA_ALLOC)) // hit 2
            .expect_err("scheduled hit must panic");
        let msg = err.downcast_ref::<String>().expect("panic payload");
        assert!(msg.contains("injected fault: arena.alloc@2"), "{msg}");
        assert!(!should_fail(site::ARENA_ALLOC)); // hit 3
        assert_eq!(hits(site::ARENA_ALLOC), 4);
        assert!(
            replay_token().ends_with(";arena.alloc@2"),
            "{}",
            replay_token()
        );
        disarm();
    }

    #[test]
    fn distinct_sites_count_independently() {
        let _s = serial();
        arm(7, 0); // armed but never fires
        should_fail(site::TREE_CAS);
        should_fail(site::TREE_CAS);
        should_fail(site::READER_STALL);
        maybe_stall(site::READER_STALL);
        assert_eq!(hits(site::TREE_CAS), 2);
        assert_eq!(hits(site::READER_STALL), 2);
        assert_eq!(fired(), 0);
        disarm();
    }
}
