//! A lazily-initialized process-wide default collector.
//!
//! Most programs need exactly one reclamation domain; these free functions
//! mirror the [`Collector`] API against a global instance, the way the
//! kernel's `rcu_read_lock()` / `synchronize_rcu()` are domain-less.

use std::sync::OnceLock;

use crate::collector::Collector;
use crate::guard::Guard;

static DEFAULT: OnceLock<Collector> = OnceLock::new();

/// The process-wide default collector, created on first use.
pub fn default_collector() -> &'static Collector {
    DEFAULT.get_or_init(Collector::new)
}

/// Pins the current thread against the default collector, registering the
/// thread on first use (the paper's `rcu_read_begin`).
///
/// The guard borrows the (static) default collector, so its lifetime is
/// `'static` — unlike a guard from
/// [`LocalHandle::pin`](crate::LocalHandle::pin), which borrows its handle.
pub fn pin() -> Guard<'static> {
    default_collector().pin()
}

/// Waits for a full grace period on the default collector (the paper's
/// `synchronize_rcu`). The calling thread must not be pinned.
pub fn synchronize() {
    default_collector().synchronize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
    use std::sync::Arc;

    #[test]
    fn default_collector_is_a_singleton() {
        assert_eq!(default_collector(), default_collector());
    }

    #[test]
    fn free_function_roundtrip() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let guard = pin();
            let n = counter.clone();
            guard.defer(move || {
                n.fetch_add(1, SeqCst);
            });
        }
        synchronize();
        assert_eq!(counter.load(SeqCst), 1);
    }
}
