//! RAII read-side critical sections.

use std::cell::Cell;
use std::fmt;
use std::marker::PhantomData;
#[cfg(not(loomette_weaken))]
use std::sync::atomic::Ordering::Release;
use std::sync::atomic::Ordering::{Relaxed, SeqCst};
use std::sync::Arc;

use crate::collector::{pack, unpack, Collector, LocalState};
use crate::deferred::{Deferred, RecycleBatch};
use crate::sync::atomic::fence;

thread_local! {
    /// Number of live guards on this thread, across all collectors and
    /// handles (cached or explicitly registered).
    static LIVE_GUARDS: Cell<usize> = const { Cell::new(0) };
}

/// How many guards the current thread holds. `Collector::pin` consults this
/// before running eviction callbacks inline: a callback may block on a grace
/// period, which can never elapse while this thread stays pinned. Reports
/// "pinned" when the TLS value is unavailable (thread exit) — the
/// conservative answer.
pub(crate) fn live_guards() -> usize {
    LIVE_GUARDS.try_with(Cell::get).unwrap_or(1)
}

/// How the guard reaches its per-thread state.
///
/// The hot path is `Borrowed`: [`LocalHandle::pin`] hands out a plain
/// reference, so pin/unpin performs no reference-count update at all. The
/// TLS-cached [`Collector::pin`] path and the thread-exit orphan path hold
/// the state by `Arc` instead — that clone is an uncontended RMW on the
/// thread's own state allocation, never on a line other threads write.
///
/// [`LocalHandle::pin`]: crate::LocalHandle::pin
/// [`Collector::pin`]: crate::Collector::pin
enum LocalRef<'a> {
    Borrowed(&'a LocalState),
    Owned(Arc<LocalState>),
}

impl LocalRef<'_> {
    #[inline]
    fn get(&self) -> &LocalState {
        match self {
            LocalRef::Borrowed(l) => l,
            LocalRef::Owned(l) => l,
        }
    }
}

/// A pinned read-side critical section (the paper's `rcu_read_begin` /
/// `rcu_read_end` pair).
///
/// While a `Guard` is live, the global epoch cannot advance more than one
/// step past the guard's pinned epoch, so no object retired while the guard
/// could observe it is reclaimed. Dropping the guard ends the critical
/// section.
///
/// The guard *borrows* its origin — the [`LocalHandle`] it was pinned
/// through, or the [`Collector`] for the TLS-cached
/// [`Collector::pin`](Collector::pin) path — which is what makes pinning
/// free of shared-line atomics: nothing is cloned, so no reference count on
/// a cache line shared between threads is touched. It also means a guard
/// cannot outlive its handle; see [`LocalHandle::pin`] for the
/// compile-time rejection.
///
/// Guards are re-entrant per thread (nested pins share the outermost epoch)
/// and are neither `Send` nor `Sync`: a critical section belongs to the
/// thread that opened it.
///
/// [`LocalHandle`]: crate::LocalHandle
/// [`LocalHandle::pin`]: crate::LocalHandle::pin
pub struct Guard<'a> {
    collector: &'a Collector,
    local: LocalRef<'a>,
    /// Keeps the guard `!Send + !Sync`; unpinning must happen on the pinning
    /// thread for the epoch protocol to be meaningful.
    _not_send: PhantomData<*mut ()>,
}

impl<'a> Guard<'a> {
    /// Publishes `local`'s pinned epoch (outermost pin only). Shared tail
    /// of the two constructors.
    fn pin_status(collector: &Collector, local: &LocalState) {
        let _ = LIVE_GUARDS.try_with(|c| c.set(c.get() + 1));
        // ordering: Relaxed — owner-thread nesting counter: only this
        // thread's guards touch it (the handle is `!Sync`), and the collector
        // never reads it.
        let prev = local.guard_count.fetch_add(1, Relaxed);
        if prev == 0 {
            // Publish our pinned epoch, re-reading the global epoch until it
            // is stable across the store. This guarantees that at some
            // instant after the store the global epoch equalled our pinned
            // epoch, which is what bounds the epoch to `pinned + 1` while we
            // stay pinned (any later advance re-scans the registry and sees
            // us).
            loop {
                // ordering: Relaxed — this sample is validated by the fence
                // + re-read below before the pin counts as published.
                let e = collector.inner.epoch.load(Relaxed);
                // ordering: Relaxed — the publication itself is ordered by
                // the fence that follows; the advance scan's Acquire load
                // pairs with the *unpin* store, not this one.
                local.status.store(pack(e), Relaxed);
                // ordering: SeqCst fence (StoreLoad) — the pin-publication
                // fence, paired with the fence in `Inner::try_advance`: it
                // forces the status store out before the epoch re-read, so
                // in the SC order of fences either a concurrent advance's
                // scan sees our pin, or our re-read sees its advance and we
                // retry. It also keeps the critical section's pointer loads
                // from starting before the pin is visible.
                fence(SeqCst);
                // ordering: Relaxed — the fence above makes this re-read at
                // least as new as any advance whose scan missed our store.
                if collector.inner.epoch.load(Relaxed) == e {
                    break;
                }
            }
        }
    }

    /// Pins through a borrowed [`LocalState`] (the [`LocalHandle::pin`]
    /// hot path: zero reference-count updates).
    ///
    /// [`LocalHandle::pin`]: crate::LocalHandle::pin
    pub(crate) fn enter_borrowed(collector: &'a Collector, local: &'a LocalState) -> Guard<'a> {
        Self::pin_status(collector, local);
        Guard {
            collector,
            local: LocalRef::Borrowed(local),
            _not_send: PhantomData,
        }
    }

    /// Pins through an owned [`LocalState`] (the TLS-cached
    /// [`Collector::pin`](Collector::pin) and orphan paths).
    pub(crate) fn enter_owned(collector: &'a Collector, local: Arc<LocalState>) -> Guard<'a> {
        Self::pin_status(collector, &local);
        Guard {
            collector,
            local: LocalRef::Owned(local),
            _not_send: PhantomData,
        }
    }

    /// The epoch this guard is pinned at.
    pub fn epoch(&self) -> u64 {
        // ordering: Relaxed — reading our own thread's status word.
        unpack(self.local.get().status.load(Relaxed))
    }

    /// The collector this guard is pinned against.
    pub fn collector(&self) -> &Collector {
        self.collector
    }

    /// Defers `f` until after a grace period: it runs only once every thread
    /// that was pinned when `defer` was called has unpinned.
    ///
    /// This is the general form of the paper's `rcu_free`; use
    /// [`defer_free`](Self::defer_free) to retire a `Box` allocation.
    ///
    /// # Callback context
    ///
    /// `f` may run inline on any participating thread — at an explicit
    /// [`collect`](Collector::collect)/[`synchronize`](Collector::synchronize),
    /// when the last reference to an abandoned collector dies, or when a
    /// thread drops its last guard. At the *implicit* points (unpin,
    /// pin-time cache eviction) the runtime guarantees `f` never runs while
    /// the executing thread holds a guard, so `f` may pin or wait on a
    /// grace period; the *explicit* `collect`/`synchronize` calls run ready
    /// callbacks in the caller's context unconditionally — do not make them
    /// while pinned if any retired callback may wait on a grace period.
    /// The runtime also cannot know about caller locks: `f` must not
    /// acquire a non-reentrant lock that callers hold around pin/unpin or
    /// collect/synchronize points.
    pub fn defer<F: FnOnce() + Send + 'static>(&self, f: F) {
        // Accounting: an opaque closure counts as one retired object with
        // no byte estimate (see `CollectorStats`).
        self.collector
            .inner
            .defer(self.local.get(), Deferred::new(f), 1, 0);
    }

    /// Retires a heap allocation: after a grace period, `ptr` is reclaimed
    /// as a `Box<T>` (running `T`'s destructor).
    ///
    /// # Safety
    ///
    /// * `ptr` must have been produced by [`Box::into_raw`] and must not be
    ///   freed by any other path (no double retire).
    /// * `ptr` must be unreachable for readers that pin *after* this call —
    ///   i.e. it has been unlinked from every shared structure.
    pub unsafe fn defer_free<T: Send + 'static>(&self, ptr: *mut T) {
        debug_assert!(!ptr.is_null());
        let addr = ptr as usize;
        self.collector.inner.defer(
            self.local.get(),
            Deferred::new(move || {
                // Safety: per the contract above, this is the sole owner of
                // the allocation once the grace period has elapsed.
                unsafe { drop(Box::from_raw(addr as *mut T)) };
            }),
            1,
            std::mem::size_of::<T>(),
        );
    }

    /// Defers recycling `batch` to `recycler` after a grace period — the
    /// allocation-free sibling of [`defer`](Self::defer): no closure is
    /// boxed (the batch travels by value inside the bag entry) and the
    /// recycler is an `Arc` clone, so an arena-backed writer can retire a
    /// whole update without touching the heap. After the grace period the
    /// collector calls [`crate::Recycler::recycle`] with the batch, on whichever
    /// thread drives reclamation (same execution contract as
    /// [`defer`](Self::defer)'s callback context).
    ///
    /// # Safety
    ///
    /// * Every pointer in `batch` must be unreachable for readers that pin
    ///   *after* this call (unlinked from every shared structure) and must
    ///   not be reclaimed by any other path (no double retire).
    /// * Every pointer must be valid for `recycler` — pointing at a block
    ///   it manages, still holding an initialized value if `recycle` drops
    ///   payloads — and the pointed-to data must be safe to reclaim from
    ///   any thread (`Send` payloads).
    ///
    /// `bytes` is the caller's estimate of the heap bytes the batch stands
    /// for (feeding the collector's byte counters; every batch pointer
    /// counts as one retired object).
    pub unsafe fn defer_recycle(
        &self,
        recycler: Arc<dyn crate::Recycler>,
        batch: RecycleBatch,
        bytes: usize,
    ) {
        let objects = batch.len();
        self.collector.inner.defer(
            self.local.get(),
            Deferred::recycle(recycler, batch),
            objects,
            bytes,
        );
    }

    /// Moves this thread's pending retirements into the collector's global
    /// queue so another thread's `collect`/`synchronize` can reclaim them
    /// without waiting for this guard to drop.
    pub fn flush(&self) {
        if self.collector.inner.seal_bag(self.local.get()) {
            // The local bag is empty now, so the unpin's `had_garbage`
            // check won't see this garbage; arm the pending flag so the
            // next guard-free unpin still collects it (as `Inner::defer`
            // does for its full/stale-bag seals).
            // ordering: Relaxed — owner-thread flag: only this thread's
            // guards read or write it.
            self.local.get().collect_pending.store(true, Relaxed);
        }
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        let _ = LIVE_GUARDS.try_with(|c| c.set(c.get().saturating_sub(1)));
        let local = self.local.get();
        // ordering: Relaxed — owner-thread nesting counter (see
        // `pin_status`).
        let prev = local.guard_count.fetch_sub(1, Relaxed);
        debug_assert!(prev >= 1);
        if prev == 1 {
            // `seal_bag` checks emptiness itself, so the bag lock is taken
            // exactly once on this hot path.
            let had_garbage = self.collector.inner.seal_bag(local);
            // ordering: Release — ends the critical section: pairs with the
            // advance scan's Acquire load, so every read this section made
            // happens-before an advance that observes us unpinned (and hence
            // before any free that advance unlocks).
            #[cfg(not(loomette_weaken))]
            local.status.store(0, Release);
            // Seeded bug for the model-checker meta-test (never in release
            // builds): weakening this Release to Relaxed severs the unpin →
            // advance happens-before edge, and the AcqRel loom leg must
            // find the resulting message-passing violation.
            #[cfg(loomette_weaken)]
            local.status.store(0, Relaxed);
            // ordering: Relaxed — same-thread flag: set by this thread's own
            // handle drop or orphan pin.
            if local.orphaned.load(Relaxed) {
                if let LocalRef::Owned(local) = &self.local {
                    self.collector.inner.unregister(local);
                }
            }
            // Opportunistic advance + reclaim keeps garbage bounded for
            // writer threads without a dedicated reclaimer. Gated on the
            // thread holding no guard (ours is already decremented):
            // reclaim fires user callbacks inline, and a callback that
            // blocks on a grace period — of any collector this thread is
            // still pinned on — would never return.
            //
            // Two triggers, with different contracts:
            //
            // * `collect_pending` — armed by liveness-gate skips (unpin
            //   under other live guards), mid-critical-section bag seals,
            //   and `flush`, and re-armed while a pending-driven collect
            //   leaves bags queued. A pending handle collects at its next
            //   guard-free unpin *unconditionally*: these are the cases
            //   where the `had_garbage` check below can no longer see the
            //   garbage, so the flag is the only thing keeping it alive.
            // * `had_garbage` — this unpin itself sealed a bag. These
            //   collects are *throttled* (`unpin_collect_due`): every Nth
            //   garbage-bearing unpin, or sooner under shard-queue
            //   pressure, this handle runs a collect; in between, sealed
            //   bags just queue. A throttle skip deliberately does NOT arm
            //   `collect_pending` — doing so would make the next unpin
            //   collect and defeat the throttle. The cost is a weaker
            //   tail guarantee: garbage sealed by a handle's final few
            //   (< period) unpins waits for another trigger (any handle's
            //   due collect, queue pressure, or an explicit
            //   collect/synchronize).
            if live_guards() == 0 {
                // The flag is consumed up front and only ever re-SET after
                // the collect, never cleared: a callback fired inside
                // `collect()` may re-enter this collector, defer, and arm
                // the flag for its own freshly sealed bag — a blind
                // `store(remaining)` with the pre-callback snapshot would
                // clobber that and strand the bag.
                // ordering: Relaxed — owner-thread flag (see `flush`); the
                // RMW is for the consume-then-re-arm shape, not for
                // cross-thread ordering.
                let pending = local.collect_pending.swap(false, Relaxed);
                if pending || (had_garbage && self.collector.inner.unpin_collect_due(local)) {
                    let (_, remaining) = self.collector.inner.collect();
                    if remaining && pending {
                        // Only the pending chain re-arms on an incomplete
                        // drain: it carries the liveness contract (flushed
                        // or gate-skipped garbage MUST reclaim via later
                        // unpins alone). Throttled collects instead rely on
                        // the steady unpin stream that triggered them.
                        // ordering: Relaxed — owner-thread flag, as above.
                        self.local.get().collect_pending.store(true, Relaxed);
                    }
                }
            } else if had_garbage {
                // ordering: Relaxed — owner-thread flag, as above.
                local.collect_pending.store(true, Relaxed);
            }
        }
    }
}

impl fmt::Debug for Guard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Guard")
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn nested_guards_share_epoch() {
        let c = Collector::new();
        let h = c.register();
        let g1 = h.pin();
        let e = g1.epoch();
        // Force epoch movement attempts; the outer pin keeps us at `e`.
        c.collect();
        let g2 = h.pin();
        assert_eq!(g2.epoch(), e);
        drop(g2);
        assert!(h.is_pinned());
        drop(g1);
        assert!(!h.is_pinned());
    }

    #[test]
    fn defer_runs_after_grace_period_only() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        let h = c.register();
        {
            let g = h.pin();
            let n = counter.clone();
            g.defer(move || {
                n.fetch_add(1, SeqCst);
            });
            // Still pinned: a grace period cannot complete.
            for _ in 0..10 {
                c.collect();
            }
            assert_eq!(counter.load(SeqCst), 0);
        }
        c.synchronize();
        assert_eq!(counter.load(SeqCst), 1);
    }

    /// `defer_recycle` honours the same grace-period contract as `defer`
    /// and hands the batch (with its buffer) to the recycler exactly once.
    #[test]
    fn defer_recycle_runs_after_grace_period() {
        struct Sink {
            seen: AtomicUsize,
        }
        impl crate::Recycler for Sink {
            unsafe fn recycle(&self, mut batch: RecycleBatch) {
                self.seen.fetch_add(batch.drain().count(), SeqCst);
            }
        }
        let sink = Arc::new(Sink {
            seen: AtomicUsize::new(0),
        });
        let c = Collector::new();
        let h = c.register();
        {
            let g = h.pin();
            let mut batch = RecycleBatch::new();
            // Never-dereferenced markers: the sink only counts.
            let marks = [0u8; 2];
            batch.push(std::ptr::from_ref(&marks[0]).cast_mut().cast());
            batch.push(std::ptr::from_ref(&marks[1]).cast_mut().cast());
            // Safety: the sink never dereferences; the markers are retired
            // exactly once and reachable by no reader.
            unsafe { g.defer_recycle(sink.clone(), batch, 2) };
            // Still pinned: the grace period cannot complete.
            for _ in 0..10 {
                c.collect();
            }
            assert_eq!(sink.seen.load(SeqCst), 0);
        }
        c.synchronize();
        assert_eq!(sink.seen.load(SeqCst), 2);
        let s = c.stats();
        // Object units: every batch pointer counts (the PR 1 regression
        // counted the whole batch as one), and the caller's byte estimate
        // flows through to the byte counters.
        assert_eq!(s.objects_retired, 2);
        assert_eq!(s.objects_freed, 2);
        assert_eq!(s.bytes_retired, 2);
        assert_eq!(s.bytes_freed, 2);
        assert_eq!(s.peak_unreclaimed_bytes, 2);
    }

    #[test]
    fn defer_free_reclaims_allocation() {
        let c = Collector::new();
        let h = c.register();
        let b = Box::into_raw(Box::new(42u64));
        {
            let g = h.pin();
            // Safety: `b` is never reachable elsewhere and never re-freed.
            unsafe { g.defer_free(b) };
        }
        c.synchronize();
        let s = c.stats();
        assert_eq!(s.objects_retired, 1);
        assert_eq!(s.objects_freed, 1);
        // `defer_free` knows the payload size.
        assert_eq!(s.bytes_retired, std::mem::size_of::<u64>() as u64);
        assert_eq!(s.bytes_freed, std::mem::size_of::<u64>() as u64);
    }

    /// The tentpole regression test for the borrow-based redesign: reader
    /// pin/unpin cycles on a registered handle must not touch any shared
    /// reference count (the collector's `Arc` strong count stays flat),
    /// must not take any registry lock (the lock-acquisition counter stays
    /// flat), and — since the ordering audit — must not perform a single
    /// SeqCst atomic RMW (the pin's only sequentially consistent point is
    /// the explicit publication fence; the facade's debug census stays
    /// flat). This is the paper's "readers never contend" property in
    /// checkable form.
    #[test]
    fn reader_pins_touch_no_shared_refcount_and_no_registry_lock() {
        let c = Collector::new();
        let h = c.register();
        // Warm up: the handle exists, nothing else is happening.
        drop(h.pin());
        let handles_before = c.handle_count();
        let locks_before = c.stats().registry_locks;
        #[cfg(all(not(loom), debug_assertions))]
        let rmws_before = crate::sync::atomic::seqcst_rmw_count();
        const PINS: usize = 10_000;
        for _ in 0..PINS {
            let g = h.pin();
            std::hint::black_box(g.epoch());
            drop(g);
        }
        assert_eq!(
            c.handle_count(),
            handles_before,
            "reader pins moved the collector's strong count (shared-line RMW on the hot path)"
        );
        #[cfg(all(not(loom), debug_assertions))]
        assert_eq!(
            crate::sync::atomic::seqcst_rmw_count(),
            rmws_before,
            "reader pins performed a SeqCst atomic RMW — the guard path's only \
             sequentially consistent operation must be the explicit pin fence"
        );
        // `stats()` itself takes registry locks (one per shard), so compare
        // against exactly that overhead: the pins in between contributed 0.
        // The counter only ticks in debug builds (see `Inner::registry`);
        // in release it must simply stay 0.
        let per_stats = c.stats().registry_shards as u64;
        let locks_after = c.stats().registry_locks;
        let expected = if cfg!(debug_assertions) {
            locks_before + 2 * per_stats
        } else {
            0
        };
        assert_eq!(
            locks_after, expected,
            "reader pins acquired a registry lock"
        );
    }

    /// The TLS-cached `Collector::pin` path must also keep the collector's
    /// strong count flat on cache hits (it borrows the collector and clones
    /// only the thread-local state Arc).
    #[test]
    fn tls_cached_pins_keep_collector_refcount_flat() {
        let c = Collector::new();
        drop(c.pin()); // register + cache (this clones once, into the cache)
        let handles_before = c.handle_count();
        for _ in 0..1_000 {
            drop(c.pin());
        }
        assert_eq!(c.handle_count(), handles_before);
    }

    /// Unpinning must not fire deferred callbacks while the thread still
    /// holds a guard on another collector: a callback blocking on that
    /// collector's grace period (here, `synchronize`) would deadlock under
    /// the thread's own pin.
    #[test]
    fn unpin_defers_callbacks_while_other_guards_live() {
        let fired = Arc::new(AtomicUsize::new(0));
        let x = Collector::new();
        let y = Collector::new();
        let hy = y.register();
        let gx = x.pin();
        {
            let gy = hy.pin();
            let f = fired.clone();
            let x2 = x.clone();
            gy.defer(move || {
                x2.synchronize(); // completes only if the thread is unpinned
                f.fetch_add(1, SeqCst);
            });
        }
        {
            // A second retire/unpin cycle would advance y's epoch far enough
            // to fire the first callback — were the inline collect not gated
            // on the thread holding zero guards.
            let gy = hy.pin();
            gy.defer(|| {});
        }
        assert_eq!(fired.load(SeqCst), 0);
        drop(gx);
        // The skipped collect is pending on the handle: guard-free unpins
        // that seal nothing still retry it until the queue drains, without
        // needing an explicit collect/synchronize.
        for _ in 0..3 {
            drop(hy.pin());
        }
        assert_eq!(fired.load(SeqCst), 1);
    }

    /// `flush` empties the local bag, so the unpin's `had_garbage` check
    /// alone would never reclaim it; the pending flag must carry it.
    #[test]
    fn flushed_garbage_is_collected_by_later_unpins() {
        let fired = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        let h = c.register();
        {
            let g = h.pin();
            let f = fired.clone();
            g.defer(move || {
                f.fetch_add(1, SeqCst);
            });
            g.flush();
        }
        for _ in 0..3 {
            drop(h.pin());
        }
        assert_eq!(fired.load(SeqCst), 1);
    }

    /// The collect throttle: a mutation-heavy loop (every unpin seals
    /// garbage) must run the opportunistic advance-and-reclaim only every
    /// Nth unpin, not every time — observable in debug builds as far fewer
    /// registry-lock takes (each collect's advance scan takes one lock per
    /// shard), the shard-lock traffic the ROADMAP item exists to cut.
    #[test]
    fn unpin_collects_are_throttled() {
        let c = Collector::with_shards(1);
        let h = c.register();
        drop(h.pin()); // warm up
        const ITERS: u64 = 64;
        let locks_before = c.stats().registry_locks;
        for _ in 0..ITERS {
            let g = h.pin();
            g.defer(|| {});
            drop(g);
        }
        let locks_after = c.stats().registry_locks;
        c.synchronize();
        let s = c.stats();
        assert_eq!(s.objects_retired, ITERS);
        assert_eq!(s.objects_freed, ITERS);
        if cfg!(debug_assertions) {
            // One shard: each collect's advance scan takes exactly one
            // registry lock, and each `stats()` call takes one. Without the
            // throttle every one of the 64 unpins would collect (>= 64
            // takes); with it, collects run at most every-8th unpin plus
            // queue-pressure extras — comfortably under half.
            let taken = locks_after - locks_before - 1; // minus the stats() call
            assert!(
                taken < ITERS / 2,
                "mutation-heavy loop took {taken} registry locks over {ITERS} unpins \
                 — the collect throttle is not throttling"
            );
            assert!(taken > 0, "no collect ever ran despite queued garbage");
        }
    }

    /// With the throttle period forced to 1, every garbage-bearing unpin
    /// collects — the pre-throttle behaviour tests and model scenarios can
    /// opt back into.
    #[test]
    fn throttle_period_one_collects_every_unpin() {
        let c = Collector::with_shards(1);
        c.set_unpin_collect_period(1);
        let h = c.register();
        drop(h.pin());
        let locks_before = c.stats().registry_locks;
        for _ in 0..8 {
            let g = h.pin();
            g.defer(|| {});
            drop(g);
        }
        if cfg!(debug_assertions) {
            let taken = c.stats().registry_locks - locks_before - 1;
            assert!(
                taken >= 8,
                "period-1 throttle skipped unpin collects ({taken} lock takes over 8 unpins)"
            );
        }
    }

    #[test]
    fn flush_allows_foreign_reclaim() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        let h = c.register();
        let g = h.pin();
        let n = counter.clone();
        g.defer(move || {
            n.fetch_add(1, SeqCst);
        });
        g.flush();
        drop(g);
        c.synchronize();
        assert_eq!(counter.load(SeqCst), 1);
    }
}
