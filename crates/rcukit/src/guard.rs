//! RAII read-side critical sections.

use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::Ordering::SeqCst;
use std::sync::Arc;

use crate::collector::{pack, unpack, Collector, LocalState};
use crate::deferred::Deferred;

/// A pinned read-side critical section (the paper's `rcu_read_begin` /
/// `rcu_read_end` pair).
///
/// While a `Guard` is live, the global epoch cannot advance more than one
/// step past the guard's pinned epoch, so no object retired while the guard
/// could observe it is reclaimed. Dropping the guard ends the critical
/// section.
///
/// Guards are re-entrant per thread (nested pins share the outermost epoch)
/// and are neither `Send` nor `Sync`: a critical section belongs to the
/// thread that opened it.
pub struct Guard {
    collector: Collector,
    local: Arc<LocalState>,
    /// Keeps the guard `!Send + !Sync`; unpinning must happen on the pinning
    /// thread for the epoch protocol to be meaningful.
    _not_send: PhantomData<*mut ()>,
}

impl Guard {
    /// Pins `local` against `collector`'s epoch and returns the guard.
    pub(crate) fn enter(collector: &Collector, local: &Arc<LocalState>) -> Guard {
        let prev = local.guard_count.fetch_add(1, SeqCst);
        if prev == 0 {
            // Publish our pinned epoch, re-reading the global epoch until it
            // is stable across the store. This guarantees that at some
            // instant after the store the global epoch equalled our pinned
            // epoch, which is what bounds the epoch to `pinned + 1` while we
            // stay pinned (any later advance re-scans the registry and sees
            // us). The swap is a full RMW so it orders with the subsequent
            // pointer loads of the critical section.
            loop {
                let e = collector.inner.epoch.load(SeqCst);
                local.status.swap(pack(e), SeqCst);
                if collector.inner.epoch.load(SeqCst) == e {
                    break;
                }
            }
        }
        Guard {
            collector: collector.clone(),
            local: local.clone(),
            _not_send: PhantomData,
        }
    }

    /// The epoch this guard is pinned at.
    pub fn epoch(&self) -> u64 {
        unpack(self.local.status.load(SeqCst))
    }

    /// The collector this guard is pinned against.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Defers `f` until after a grace period: it runs only once every thread
    /// that was pinned when `defer` was called has unpinned.
    ///
    /// This is the general form of the paper's `rcu_free`; use
    /// [`defer_free`](Self::defer_free) to retire a `Box` allocation.
    pub fn defer<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.collector.inner.defer(&self.local, Deferred::new(f));
    }

    /// Retires a heap allocation: after a grace period, `ptr` is reclaimed
    /// as a `Box<T>` (running `T`'s destructor).
    ///
    /// # Safety
    ///
    /// * `ptr` must have been produced by [`Box::into_raw`] and must not be
    ///   freed by any other path (no double retire).
    /// * `ptr` must be unreachable for readers that pin *after* this call —
    ///   i.e. it has been unlinked from every shared structure.
    pub unsafe fn defer_free<T: Send + 'static>(&self, ptr: *mut T) {
        debug_assert!(!ptr.is_null());
        let addr = ptr as usize;
        self.defer(move || {
            // Safety: per the contract above, this is the sole owner of the
            // allocation once the grace period has elapsed.
            unsafe { drop(Box::from_raw(addr as *mut T)) };
        });
    }

    /// Moves this thread's pending retirements into the collector's global
    /// queue so another thread's `collect`/`synchronize` can reclaim them
    /// without waiting for this guard to drop.
    pub fn flush(&self) {
        self.collector.inner.seal_bag(&self.local);
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        let prev = self.local.guard_count.fetch_sub(1, SeqCst);
        debug_assert!(prev >= 1);
        if prev == 1 {
            let had_garbage = !self.local.bag.lock().unwrap().is_empty();
            if had_garbage {
                self.collector.inner.seal_bag(&self.local);
            }
            self.local.status.store(0, SeqCst);
            if self.local.orphaned.load(SeqCst) {
                self.collector.inner.unregister(&self.local);
            }
            if had_garbage {
                // Opportunistic advance + reclaim keeps garbage bounded for
                // writer threads without a dedicated reclaimer.
                self.collector.inner.collect();
            }
        }
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Guard")
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn nested_guards_share_epoch() {
        let c = Collector::new();
        let h = c.register();
        let g1 = h.pin();
        let e = g1.epoch();
        // Force epoch movement attempts; the outer pin keeps us at `e`.
        c.collect();
        let g2 = h.pin();
        assert_eq!(g2.epoch(), e);
        drop(g2);
        assert!(h.is_pinned());
        drop(g1);
        assert!(!h.is_pinned());
    }

    #[test]
    fn defer_runs_after_grace_period_only() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        let h = c.register();
        {
            let g = h.pin();
            let n = counter.clone();
            g.defer(move || {
                n.fetch_add(1, SeqCst);
            });
            // Still pinned: a grace period cannot complete.
            for _ in 0..10 {
                c.collect();
            }
            assert_eq!(counter.load(SeqCst), 0);
        }
        c.synchronize();
        assert_eq!(counter.load(SeqCst), 1);
    }

    #[test]
    fn defer_free_reclaims_allocation() {
        let c = Collector::new();
        let h = c.register();
        let b = Box::into_raw(Box::new(42u64));
        {
            let g = h.pin();
            // Safety: `b` is never reachable elsewhere and never re-freed.
            unsafe { g.defer_free(b) };
        }
        c.synchronize();
        let s = c.stats();
        assert_eq!(s.objects_retired, 1);
        assert_eq!(s.objects_freed, 1);
    }

    #[test]
    fn flush_allows_foreign_reclaim() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        let h = c.register();
        let g = h.pin();
        let n = counter.clone();
        g.defer(move || {
            n.fetch_add(1, SeqCst);
        });
        g.flush();
        drop(g);
        c.synchronize();
        assert_eq!(counter.load(SeqCst), 1);
    }
}
