//! Hazard-pointer reclamation: bounded garbage by construction.
//!
//! Epoch and QSBR reclamation share a failure mode: one stalled reader (a
//! stuck pin, a thread that never announces a quiescent state) blocks
//! *every* pending retirement, so garbage grows without bound for as long
//! as the stall lasts. Hazard pointers invert the protection granularity:
//! a reader protects the **specific pointers** it is using, one per
//! hazard slot, and a retirement is delayed only while some slot holds
//! its exact pointer. A stalled reader therefore pins at most
//! [`HP_SLOTS`] objects — everything else reclaims on the next scan — so
//! unreclaimed garbage is bounded by
//! `scan_threshold + records × HP_SLOTS` objects at all times (see
//! [`HpDomain::garbage_bound_objects`]).
//!
//! # Protection protocol
//!
//! Publishing a pointer into a slot does not by itself make it safe to
//! dereference: the owner may already have unlinked it and a scan may
//! already have read the slot as empty. [`HpSession::protect`] therefore
//! stores the pointer and issues a `SeqCst` fence; the caller must then
//! **re-validate** that the pointer is still reachable (e.g. re-read the
//! tree root it came from) before dereferencing, and restart from scratch
//! if not. The scan side mirrors the fence before reading the slots, so in
//! the total order of `SeqCst` fences one side always sees the other:
//! either the scan observes the protection (and keeps the retirement), or
//! the protector's re-validation observes the unlink (and never uses the
//! pointer).

use std::fmt;
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use std::sync::Arc;

use crate::deferred::RecycleBatch;
use crate::reclaim::note_unreclaimed;
use crate::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize};
use crate::sync::Mutex;
use crate::Recycler;

/// Hazard slots per record: how many distinct pointers one session can
/// protect at once. Hand-over-hand tree traversal needs two (parent and
/// child, alternating) plus one for a retained candidate; four leaves one
/// spare for composed readers.
pub const HP_SLOTS: usize = 4;

/// Default retire-list length that triggers a scan.
const SCAN_THRESHOLD: usize = 64;

/// One thread's published hazard slots. Records live in an append-only
/// lock-free list owned by the domain; a record is *acquired* (its
/// `active` flag CAS'd up) for the lifetime of an [`HpSession`] and
/// released — slots cleared — when the session drops, so the list never
/// shrinks but is recycled across sessions.
struct HpRecord {
    /// The protected pointers; null = empty slot.
    slots: [AtomicPtr<()>; HP_SLOTS],
    /// Whether some live session owns this record.
    active: AtomicBool,
    /// Next record in the domain's list (immutable after publication).
    next: *mut HpRecord,
}

/// How a retired pointer is reclaimed once no hazard slot protects it.
enum HpFree {
    /// A boxed callback (the general `defer` path).
    Call(Box<dyn FnOnce() + Send>),
    /// Hand the pointer back to an arena-style recycler, one pointer at a
    /// time (see [`Recycler::recycle_one`]).
    Recycle(Arc<dyn Recycler>),
}

/// One entry in the domain's retire list.
struct HpRetired {
    /// The pointer guarded against hazards; null for opaque callbacks
    /// (which no reader can protect, so they free at the next scan).
    ptr: *mut (),
    /// Retirer-supplied byte estimate.
    bytes: usize,
    free: HpFree,
}

impl HpRetired {
    /// Runs the reclamation.
    ///
    /// # Safety
    ///
    /// Caller asserts no hazard slot protects `ptr` (scan contract) and
    /// the retire-time contract of `defer_free`/`defer_retire` holds.
    unsafe fn run(self) {
        match self.free {
            HpFree::Call(f) => f(),
            // Safety: forwarded scan contract — the pointer is unprotected
            // and exclusively owned by the recycler now.
            HpFree::Recycle(r) => unsafe { r.recycle_one(self.ptr) },
        }
    }
}

struct HpInner {
    /// Head of the append-only record list.
    head: AtomicPtr<HpRecord>,
    /// Number of records ever published (the garbage-bound term).
    records: AtomicUsize,
    /// Retirements awaiting an unprotected scan.
    retired: Mutex<Vec<HpRetired>>,
    /// Retire-list length that triggers a scan.
    scan_threshold: AtomicUsize,
    retired_objects: AtomicU64,
    freed_objects: AtomicU64,
    retired_bytes: AtomicU64,
    freed_bytes: AtomicU64,
    /// Bytes retired but not yet reclaimed, and its high-water mark — the
    /// gauge whose boundedness is this backend's whole point.
    unreclaimed_bytes: AtomicU64,
    peak_unreclaimed_bytes: AtomicU64,
}

// Safety: the raw pointers inside (`head`'s records, `HpRetired::ptr`) are
// either owned by the domain for its whole lifetime (records, freed only
// in `Drop` with exclusive access) or covered by the retire contract
// (`Send` payloads reclaimable from any thread, exactly one reclaimer).
unsafe impl Send for HpInner {}
unsafe impl Sync for HpInner {}

impl HpInner {
    /// Collects all currently protected pointers and frees every retired
    /// entry not among them. Returns (objects, bytes) freed.
    fn scan(&self) -> (usize, usize) {
        // ordering: SeqCst fence — the scan-side half of the protection
        // Dekker, paired with the fence in `HpSession::protect`: in the SC
        // order of fences, either this fence comes after a protector's —
        // then the slot loads below see its published pointer and the
        // retirement is kept — or it comes before, and the protector's
        // post-fence re-validation sees the unlink that preceded this
        // retirement, so it restarts without dereferencing.
        fence(SeqCst);
        let mut hazards: Vec<*mut ()> = Vec::new();
        // ordering: Acquire — pairs with the Release publication CAS in
        // `acquire_record`: the record's fields (slots, next) are fully
        // initialized before it becomes reachable.
        let mut rec = self.head.load(Acquire);
        while !rec.is_null() {
            // Safety: records are published exactly once and freed only in
            // `Drop` (exclusive access), so the pointer is valid here.
            let r = unsafe { &*rec };
            for slot in &r.slots {
                // ordering: Acquire — pairs with `HpSession`'s Release
                // clears: a slot observed empty means the session's reads
                // through it happen-before the frees this scan performs.
                let p = slot.load(Acquire);
                if !p.is_null() {
                    hazards.push(p);
                }
            }
            rec = r.next;
        }
        // Partition under the lock, free outside it: a reclamation callback
        // may re-enter `defer` (which takes the same lock).
        let ready: Vec<HpRetired> = {
            let mut retired = self.retired.lock().unwrap();
            let mut ready = Vec::new();
            let mut i = 0;
            while i < retired.len() {
                if !retired[i].ptr.is_null() && hazards.contains(&retired[i].ptr) {
                    i += 1;
                } else {
                    ready.push(retired.swap_remove(i));
                }
            }
            ready
        };
        let objects = ready.len();
        let mut bytes = 0;
        for r in ready {
            bytes += r.bytes;
            // Safety: the post-fence slot collection proved no session
            // protects `r.ptr`; ownership is exclusively the reclaimer's.
            unsafe { r.run() };
        }
        // ordering: Relaxed (all) — statistics counters.
        self.freed_objects.fetch_add(objects as u64, Relaxed);
        self.freed_bytes.fetch_add(bytes as u64, Relaxed);
        self.unreclaimed_bytes.fetch_sub(bytes as u64, Relaxed);
        (objects, bytes)
    }

    /// Queues one retirement and scans if the list crossed the threshold.
    fn retire(&self, entry: HpRetired) {
        let bytes = entry.bytes;
        // ordering: Relaxed (all) — statistics counters.
        self.retired_objects.fetch_add(1, Relaxed);
        self.retired_bytes.fetch_add(bytes as u64, Relaxed);
        note_unreclaimed(
            &self.unreclaimed_bytes,
            &self.peak_unreclaimed_bytes,
            bytes as u64,
        );
        let due = {
            let mut retired = self.retired.lock().unwrap();
            retired.push(entry);
            // ordering: Relaxed — config knob; staleness shifts one scan.
            retired.len() >= self.scan_threshold.load(Relaxed)
        };
        if due {
            self.scan();
        }
    }
}

impl Drop for HpInner {
    fn drop(&mut self) {
        // No session can be alive (each holds an Arc to this inner), so
        // every retirement is unprotected and safe to run.
        let retired = std::mem::take(&mut *self.retired.get_mut().unwrap());
        let objects = retired.len();
        let mut bytes = 0;
        for r in retired {
            bytes += r.bytes;
            // Safety: exclusive access — no protector exists.
            unsafe { r.run() };
        }
        // ordering: Relaxed (all) — statistics counters, and `&mut self`
        // proves exclusive access anyway.
        self.freed_objects.fetch_add(objects as u64, Relaxed);
        self.freed_bytes.fetch_add(bytes as u64, Relaxed);
        self.unreclaimed_bytes.fetch_sub(bytes as u64, Relaxed);
        // Free the record list (append-only in life, exclusively ours now).
        // ordering: Relaxed — `&mut self`: no concurrent access exists.
        let mut rec = self.head.load(Relaxed);
        while !rec.is_null() {
            // Safety: each record was published by exactly one
            // `Box::into_raw` and is freed exactly once, here.
            let boxed = unsafe { Box::from_raw(rec) };
            rec = boxed.next;
        }
    }
}

/// A hazard-pointer reclamation domain.
///
/// Cheaply clonable; clones refer to the same domain. Readers protect
/// pointers through an [`HpSession`]; writers retire through
/// [`defer_retire`](Self::defer_retire) /
/// [`defer_recycle`](Self::defer_recycle). Unlike the epoch collector and
/// QSBR there is no grace period: a retirement reclaims at the first scan
/// that finds no slot holding its pointer, which is what bounds garbage
/// under a stalled reader.
pub struct HpDomain {
    inner: Arc<HpInner>,
}

impl HpDomain {
    /// Creates an empty domain with the default scan threshold.
    pub fn new() -> Self {
        Self::with_scan_threshold(SCAN_THRESHOLD)
    }

    /// Creates an empty domain that scans once `threshold` retirements are
    /// queued (minimum 1). Smaller thresholds mean tighter garbage bounds
    /// and more frequent scans.
    pub fn with_scan_threshold(threshold: usize) -> Self {
        Self {
            inner: Arc::new(HpInner {
                head: AtomicPtr::new(ptr::null_mut()),
                records: AtomicUsize::new(0),
                retired: Mutex::new(Vec::new()),
                scan_threshold: AtomicUsize::new(threshold.max(1)),
                retired_objects: AtomicU64::new(0),
                freed_objects: AtomicU64::new(0),
                retired_bytes: AtomicU64::new(0),
                freed_bytes: AtomicU64::new(0),
                unreclaimed_bytes: AtomicU64::new(0),
                peak_unreclaimed_bytes: AtomicU64::new(0),
            }),
        }
    }

    /// Acquires a hazard record: reuses a released one or publishes a new
    /// one onto the append-only list.
    fn acquire_record(&self) -> *const HpRecord {
        // ordering: Acquire — pairs with the publication CAS's Release (the
        // record's fields are initialized before it is reachable).
        let mut rec = self.inner.head.load(Acquire);
        while !rec.is_null() {
            // Safety: records live until domain drop; the session holds a
            // domain clone, so the pointer stays valid for its lifetime.
            let r = unsafe { &*rec };
            // ordering: Acquire success — pairs with the releasing
            // session's Release store of `false`, so its slot clears are
            // visible before we reuse the record; Relaxed failure — an
            // occupied record is just skipped.
            if r.active
                .compare_exchange(false, true, Acquire, Relaxed)
                .is_ok()
            {
                return rec;
            }
            rec = r.next;
        }
        // No free record: publish a fresh one.
        let raw = Box::into_raw(Box::new(HpRecord {
            slots: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
            active: AtomicBool::new(true),
            next: ptr::null_mut(),
        }));
        // ordering: Relaxed — this load seeds the CAS below, which
        // re-validates it on every attempt.
        let mut head = self.inner.head.load(Relaxed);
        loop {
            // Safety: not yet shared — we still exclusively own the
            // allocation until the CAS below succeeds.
            unsafe { (*raw).next = head };
            // ordering: Release success — publishes the initialized record
            // (including `next`) to `scan`'s and `acquire_record`'s Acquire
            // head loads; Acquire failure — re-reads a newer head for the
            // retry, seeing its published fields.
            match self
                .inner
                .head
                .compare_exchange(head, raw, Release, Acquire)
            {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        // ordering: Relaxed — statistics/bound counter.
        self.inner.records.fetch_add(1, Relaxed);
        raw
    }

    /// Opens a protection session: acquires a hazard record whose slots
    /// the session publishes into. Sessions are per-thread (`!Send`);
    /// dropping one clears its slots and releases the record for reuse.
    pub fn session(&self) -> HpSession {
        let record = self.acquire_record();
        HpSession {
            domain: self.clone(),
            record,
            _not_send: PhantomData,
        }
    }

    /// Defers `f` until the next scan. An opaque callback has no pointer a
    /// reader could protect, so it runs at the first scan after retirement
    /// (accounting: one object, zero bytes).
    pub fn defer<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.inner.retire(HpRetired {
            ptr: ptr::null_mut(),
            bytes: 0,
            free: HpFree::Call(Box::new(f)),
        });
    }

    /// Retires a heap allocation: once no hazard slot protects `ptr`, it is
    /// reclaimed as a `Box<T>` (running `T`'s destructor).
    ///
    /// # Safety
    ///
    /// * `ptr` came from [`Box::into_raw`] and is freed by no other path.
    /// * `ptr` is unreachable for sessions that start protecting *after*
    ///   this call — i.e. it has been unlinked from every shared structure
    ///   (a protector that published before the unlink keeps it alive; one
    ///   that re-validates after the unlink must restart and never
    ///   dereference it).
    pub unsafe fn defer_free<T: Send + 'static>(&self, ptr: *mut T) {
        debug_assert!(!ptr.is_null());
        let addr = ptr as usize;
        self.inner.retire(HpRetired {
            ptr: ptr.cast(),
            bytes: std::mem::size_of::<T>(),
            free: HpFree::Call(Box::new(move || {
                // Safety: sole owner per the contract above, and the scan
                // proved no slot protects the pointer.
                unsafe { drop(Box::from_raw(addr as *mut T)) };
            })),
        });
    }

    /// Retires a single pointer to a recycler ([`Recycler::recycle_one`]),
    /// with an explicit byte estimate.
    ///
    /// # Safety
    ///
    /// Same unlink/no-double-retire contract as
    /// [`defer_free`](Self::defer_free), plus `ptr` must be valid for
    /// `recycler` (a block it manages, payload reclaimable from any
    /// thread).
    pub unsafe fn defer_retire(&self, recycler: Arc<dyn Recycler>, ptr: *mut (), bytes: usize) {
        debug_assert!(!ptr.is_null());
        self.inner.retire(HpRetired {
            ptr,
            bytes,
            free: HpFree::Recycle(recycler),
        });
    }

    /// Retires a whole batch to a recycler, splitting it into per-pointer
    /// entries so each pointer reclaims as soon as *it* is unprotected —
    /// the degrade-gracefully form of the epoch collector's
    /// [`defer_recycle`](crate::Guard::defer_recycle) (the batch's
    /// buffer is consumed here; `bytes` is the estimate for the whole
    /// batch).
    ///
    /// # Safety
    ///
    /// Same contract as [`defer_retire`](Self::defer_retire), for every
    /// pointer in the batch.
    pub unsafe fn defer_recycle(
        &self,
        recycler: Arc<dyn Recycler>,
        mut batch: RecycleBatch,
        bytes: usize,
    ) {
        let len = batch.len();
        if len == 0 {
            return;
        }
        let per = bytes / len;
        let mut rem = bytes - per * len;
        for ptr in batch.drain() {
            let extra = std::mem::take(&mut rem);
            self.inner.retire(HpRetired {
                ptr,
                bytes: per + extra,
                free: HpFree::Recycle(Arc::clone(&recycler)),
            });
        }
    }

    /// Runs one scan: frees every retirement no hazard slot protects.
    /// Returns the number of objects freed.
    pub fn scan(&self) -> usize {
        self.inner.scan().0
    }

    /// The hazard-pointer analogue of `synchronize`: there is no grace
    /// period to wait out, so this simply scans — everything unprotected
    /// reclaims immediately; entries a live session protects remain (by
    /// design: that is the bounded set).
    pub fn synchronize(&self) {
        self.scan();
    }

    /// Retirements still queued (protected or below the scan threshold).
    pub fn pending(&self) -> usize {
        self.inner.retired.lock().unwrap().len()
    }

    /// Total objects retired.
    pub fn retired(&self) -> u64 {
        // ordering: Relaxed — statistics snapshot.
        self.inner.retired_objects.load(Relaxed)
    }

    /// Total objects freed.
    pub fn freed(&self) -> u64 {
        // ordering: Relaxed — statistics snapshot.
        self.inner.freed_objects.load(Relaxed)
    }

    /// Total bytes retired (retirer estimates).
    pub fn bytes_retired(&self) -> u64 {
        // ordering: Relaxed — statistics snapshot.
        self.inner.retired_bytes.load(Relaxed)
    }

    /// Total bytes freed.
    pub fn bytes_freed(&self) -> u64 {
        // ordering: Relaxed — statistics snapshot.
        self.inner.freed_bytes.load(Relaxed)
    }

    /// High-water mark of unreclaimed bytes over the domain's lifetime.
    pub fn peak_unreclaimed_bytes(&self) -> u64 {
        // ordering: Relaxed — statistics snapshot.
        self.inner.peak_unreclaimed_bytes.load(Relaxed)
    }

    /// Hazard records ever published (sessions recycle them).
    pub fn records(&self) -> usize {
        // ordering: Relaxed — statistics snapshot.
        self.inner.records.load(Relaxed)
    }

    /// The construction-time garbage bound, in objects: a scan frees
    /// everything except pointers held in hazard slots, and a scan runs at
    /// least every `scan_threshold` retirements, so the retire list never
    /// exceeds `scan_threshold + records × HP_SLOTS` entries.
    pub fn garbage_bound_objects(&self) -> usize {
        // ordering: Relaxed (both) — bound computed from snapshots; the
        // record count only grows, which only loosens the reported bound.
        self.inner.scan_threshold.load(Relaxed) + self.records() * HP_SLOTS
    }
}

impl Default for HpDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for HpDomain {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl PartialEq for HpDomain {
    /// Two handles are equal when they refer to the same domain.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for HpDomain {}

impl fmt::Debug for HpDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HpDomain")
            .field("records", &self.records())
            .field("pending", &self.pending())
            .finish_non_exhaustive()
    }
}

/// A per-thread protection session over an [`HpDomain`]'s hazard record.
///
/// [`protect`](Self::protect) publishes a pointer into a slot; the caller
/// must re-validate reachability afterwards (see the [module docs](self))
/// before dereferencing. Dropping the session clears every slot and
/// releases the record for reuse.
pub struct HpSession {
    domain: HpDomain,
    /// Valid for the session's lifetime: the domain clone above keeps the
    /// record list alive, and `active` keeps other sessions off it.
    record: *const HpRecord,
    /// Sessions are single-thread: slot publication is this thread's
    /// protocol state.
    _not_send: PhantomData<*mut ()>,
}

impl HpSession {
    #[inline]
    fn record(&self) -> &HpRecord {
        // Safety: see the field docs — the record outlives the session.
        unsafe { &*self.record }
    }

    /// Publishes `ptr` into hazard slot `slot` and fences, so a subsequent
    /// re-validation load by the caller decides the race against any
    /// concurrent retire/scan.
    ///
    /// After this call the caller MUST re-read the shared location the
    /// pointer came from; only if it still yields `ptr` (or a structure
    /// root proving `ptr` reachable) may the pointer be dereferenced.
    ///
    /// # Panics
    ///
    /// If `slot >= HP_SLOTS`.
    pub fn protect(&self, slot: usize, ptr: *mut ()) {
        // ordering: Relaxed — the publication is ordered by the fence
        // below; no data is transferred through the slot value itself
        // (scans only compare it against retired pointers).
        self.record().slots[slot].store(ptr, Relaxed);
        // ordering: SeqCst fence — the protect-side half of the protection
        // Dekker, paired with the fence at the top of `HpInner::scan`; see
        // the module docs for the two-sided argument.
        fence(SeqCst);
    }

    /// Clears hazard slot `slot`.
    pub fn clear(&self, slot: usize) {
        // ordering: Release — pairs with the scan's Acquire slot load:
        // every read this session made through the protected pointer
        // happens-before any free the cleared slot permits.
        self.record().slots[slot].store(ptr::null_mut(), Release);
    }

    /// The currently published pointer in `slot` (diagnostic).
    pub fn protected(&self, slot: usize) -> *mut () {
        // ordering: Relaxed — reading our own thread's slot.
        self.record().slots[slot].load(Relaxed)
    }

    /// The domain this session protects against.
    pub fn domain(&self) -> &HpDomain {
        &self.domain
    }
}

impl Drop for HpSession {
    fn drop(&mut self) {
        for slot in 0..HP_SLOTS {
            self.clear(slot);
        }
        // ordering: Release — pairs with `acquire_record`'s Acquire CAS:
        // the slot clears above are visible to whoever reuses the record.
        self.record().active.store(false, Release);
    }
}

impl fmt::Debug for HpSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HpSession").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};

    #[test]
    fn unprotected_retirements_free_at_scan() {
        let d = HpDomain::with_scan_threshold(1000);
        let fired = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let f = Arc::clone(&fired);
            d.defer(move || {
                f.fetch_add(1, SeqCst);
            });
        }
        assert_eq!(fired.load(SeqCst), 0);
        assert_eq!(d.scan(), 3);
        assert_eq!(fired.load(SeqCst), 3);
        assert_eq!(d.retired(), 3);
        assert_eq!(d.freed(), 3);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn protected_pointer_survives_scan_until_cleared() {
        let d = HpDomain::with_scan_threshold(1000);
        let b = Box::into_raw(Box::new(7u64));
        let s = d.session();
        s.protect(0, b.cast());
        // Retire while protected: the scan must keep it.
        // Safety: never dereferenced after retire; retired exactly once.
        unsafe { d.defer_free(b) };
        assert_eq!(d.scan(), 0);
        assert_eq!(d.pending(), 1);
        assert_eq!(d.bytes_retired(), 8);
        assert_eq!(d.bytes_freed(), 0);
        s.clear(0);
        assert_eq!(d.scan(), 1);
        assert_eq!(d.pending(), 0);
        assert_eq!(d.bytes_freed(), 8);
        assert_eq!(d.peak_unreclaimed_bytes(), 8);
    }

    #[test]
    fn session_drop_clears_slots_and_recycles_record() {
        let d = HpDomain::new();
        let b = Box::into_raw(Box::new(1u32));
        {
            let s = d.session();
            s.protect(1, b.cast());
            assert_eq!(s.protected(1), b.cast());
        }
        assert_eq!(d.records(), 1);
        // Safety: sole retire of a live allocation.
        unsafe { d.defer_free(b) };
        assert_eq!(d.scan(), 1, "dropped session left a stale protection");
        // A second session reuses the released record.
        let _s2 = d.session();
        assert_eq!(d.records(), 1);
    }

    #[test]
    fn threshold_scan_bounds_garbage() {
        let d = HpDomain::with_scan_threshold(8);
        for i in 0..100u64 {
            // Safety: each allocation retired exactly once, never reused.
            unsafe { d.defer_free(Box::into_raw(Box::new(i))) };
            assert!(
                d.pending() <= d.garbage_bound_objects(),
                "retire list exceeded the construction-time bound"
            );
        }
        d.synchronize();
        assert_eq!(d.retired(), d.freed());
    }

    #[test]
    fn concurrent_sessions_get_distinct_records() {
        let d = HpDomain::new();
        let s1 = d.session();
        let s2 = d.session();
        s1.protect(0, 0x10 as *mut ());
        s2.protect(0, 0x20 as *mut ());
        assert_eq!(s1.protected(0), 0x10 as *mut ());
        assert_eq!(s2.protected(0), 0x20 as *mut ());
        assert_eq!(d.records(), 2);
        drop(s1);
        drop(s2);
        // Both released: two new sessions reuse, count stays.
        let _s3 = d.session();
        let _s4 = d.session();
        assert_eq!(d.records(), 2);
    }

    #[test]
    fn recycle_one_routes_through_recycler() {
        struct Sink {
            seen: AtomicUsize,
        }
        impl Recycler for Sink {
            unsafe fn recycle(&self, mut batch: RecycleBatch) {
                self.seen.fetch_add(batch.drain().count(), SeqCst);
            }
        }
        let sink = Arc::new(Sink {
            seen: AtomicUsize::new(0),
        });
        let d = HpDomain::with_scan_threshold(1000);
        let mut batch = RecycleBatch::new();
        let marks = [0u8; 3];
        for m in &marks {
            batch.push(std::ptr::from_ref(m).cast_mut().cast());
        }
        // Safety: the sink never dereferences; markers retired once each.
        unsafe { d.defer_recycle(sink.clone() as Arc<dyn Recycler>, batch, 30) };
        assert_eq!(d.retired(), 3);
        assert_eq!(d.bytes_retired(), 30);
        assert_eq!(d.scan(), 3);
        assert_eq!(sink.seen.load(SeqCst), 3);
        assert_eq!(d.bytes_freed(), 30);
    }

    #[test]
    fn domain_drop_fires_pending_garbage() {
        static FIRED: AtomicUsize = AtomicUsize::new(0);
        let d = HpDomain::with_scan_threshold(1000);
        d.defer(|| {
            FIRED.fetch_add(1, SeqCst);
        });
        drop(d);
        assert_eq!(FIRED.load(SeqCst), 1);
    }
}
