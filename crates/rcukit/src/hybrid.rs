//! Hybrid (interval-based) reclamation: epoch-cheap reads that degrade
//! gracefully under a stalled reader.
//!
//! The two grace-period backends fail open under a stalled reader — one
//! stuck pin blocks *every* pending retirement, so garbage grows without
//! bound (the `stalled-reader` benchmark profile shows epoch/QSBR growing
//! ~190 MB while one reader sleeps). Hazard pointers bound garbage by
//! construction but pay per-node protect/validate on traversal. This
//! backend sits between them, after interval-based reclamation (IBR,
//! Wen et al., PPoPP'18): a global monotone **era** counter stamps every
//! allocation (`birth`) and retirement (`retire`), and a pinned reader
//! publishes one **interval** `[lo, hi]` of eras it may be reading in —
//! `lo` fixed at pin time, `hi` advanced by each validated
//! [`protect`](HybridGuard::protect). A retired node is reclaimable once
//! no active interval overlaps its lifetime:
//!
//! ```text
//! free(node)  ⇔  ∀ active pins: ¬(node.birth ≤ pin.hi  ∧  pin.lo ≤ node.retire)
//! ```
//!
//! Readers therefore pay one era load, two reservation stores, and one
//! fence per pin — epoch-class cost, no per-node work during traversal —
//! while a stalled reader blocks only nodes whose lifetime overlaps its
//! frozen interval: the structure's live set *as of the stall*. Everything
//! allocated after the stall has `birth > hi` and reclaims on schedule, so
//! unreclaimed garbage stays flat instead of tracking writer throughput.
//!
//! # Graceful degradation, observable
//!
//! The interval rule degrades by itself; the domain additionally makes the
//! degradation *observable* and *budgeted*. Each domain carries a garbage
//! budget ([`with_budget`](HybridDomain::with_budget)). When a scan finds
//! more than the budget still blocked by active pins, every pin whose `hi`
//! has fallen [`STALL_AGE_ERAS`] eras behind is marked **stalled**
//! ([`stall_events`](HybridDomain::stall_events) counts the transitions),
//! and every retirement performed while a stalled pin exists is counted in
//! [`degraded_ops`](HybridDomain::degraded_ops) — the sweep surfaces both
//! (schema v7). The stalled reader itself stays perfectly safe: marking
//! changes no free decision, it only names the pin that the interval rule
//! is already routing garbage around. The blocked set — the stall-time
//! live set — is released in full by the first scan after the pin drops.
//!
//! # Why a validated interval protects a whole snapshot
//!
//! [`protect`](HybridGuard::protect) publishes `hi = e`, fences, runs the
//! caller's root load, and re-reads the era; it only returns when the era
//! is still `e`. Every node reachable from that root was created *before*
//! the root was published (copy-on-write builds children before parents),
//! so its `birth` is at most the era current at publication, which is at
//! most the validated `e ≤ hi`. The `lo ≤ retire` direction is the same
//! two-sided `SeqCst`-fence argument as the hazard-pointer scan: either
//! the scan's fence follows the reader's (and the scan observes the
//! reservation), or the reader's validated load follows the retirer's
//! unlink (and the reader can never reach the node).

use std::fmt;
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use std::sync::Arc;

use crate::deferred::RecycleBatch;
use crate::reclaim::note_unreclaimed;
use crate::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize};
use crate::sync::Mutex;
use crate::Recycler;

/// Retirements per era tick: the global era advances once every this many
/// retirements, so era resolution tracks mutation rate (an idle structure
/// needs no ticking — nothing is being retired).
const ERA_TICK: u64 = 16;

/// Default retire-list growth that triggers a scan.
const SCAN_THRESHOLD: usize = 64;

/// Eras a pin's `hi` must lag behind the current era before an over-budget
/// scan marks it stalled. At `ERA_TICK` retirements per era this is
/// `8 × 16 = 128` retirements of inactivity — far beyond any live
/// traversal, so only genuinely stuck readers are ever named.
pub const STALL_AGE_ERAS: u64 = 8;

/// Default garbage budget: 1 MiB of blocked bytes before a scan starts
/// marking laggard pins as stalled.
const DEFAULT_BUDGET_BYTES: u64 = 1 << 20;

/// One thread's published era reservation. Records live in an append-only
/// lock-free list owned by the domain; a record is *acquired* (its
/// `active` flag CAS'd up) for the lifetime of a [`HybridGuard`] and
/// released when the guard drops, so the list never shrinks but is
/// recycled across pins.
struct HybridRecord {
    /// Low edge of the reserved interval: the era current at pin time.
    lo: AtomicU64,
    /// High edge: the last era a [`protect`](HybridGuard::protect) call
    /// validated. Only grows while the pin is held.
    hi: AtomicU64,
    /// Whether some live guard owns this record.
    active: AtomicBool,
    /// Whether an over-budget scan has named this pin stalled (reset when
    /// the guard drops). Diagnostic only — never consulted by the free
    /// rule, which routes around a laggard interval arithmetically.
    stalled: AtomicBool,
    /// Next record in the domain's list (immutable after publication).
    next: *mut HybridRecord,
}

/// How a retired pointer is reclaimed once no interval overlaps it.
enum HybridFree {
    /// A boxed callback (the general `defer` path).
    Call(Box<dyn FnOnce() + Send>),
    /// Hand the pointer back to an arena-style recycler, one pointer at a
    /// time (see [`Recycler::recycle_one`]).
    Recycle(Arc<dyn Recycler>),
}

/// One entry in the domain's retire list: a pointer plus the era interval
/// that was its lifetime.
struct HybridRetired {
    ptr: *mut (),
    /// Retirer-supplied byte estimate.
    bytes: usize,
    /// Era the object was allocated in; `0` (before every era — the domain
    /// starts at era 1) when unknown, which degrades this entry to the
    /// epoch rule: blocked by any pin with `lo ≤ retire`.
    birth: u64,
    /// Era current when the object was retired.
    retire: u64,
    free: HybridFree,
}

impl HybridRetired {
    /// Runs the reclamation.
    ///
    /// # Safety
    ///
    /// Caller asserts no active interval overlaps `[birth, retire]` (scan
    /// contract) and the retire-time contract of the `defer_*` call holds.
    unsafe fn run(self) {
        match self.free {
            HybridFree::Call(f) => f(),
            // Safety: forwarded scan contract — the pointer is outside
            // every reservation and exclusively the recycler's now.
            HybridFree::Recycle(r) => unsafe { r.recycle_one(self.ptr) },
        }
    }
}

struct HybridInner {
    /// The global era. Starts at 1 so `birth = 0` reads as "before every
    /// era" for objects whose allocation era is unknown.
    era: AtomicU64,
    /// Retirement pulse driving the era tick (see [`ERA_TICK`]).
    era_pulse: AtomicU64,
    /// Head of the append-only record list.
    head: AtomicPtr<HybridRecord>,
    /// Number of records ever published.
    records: AtomicUsize,
    /// Retirements awaiting an unblocked scan.
    retired: Mutex<Vec<HybridRetired>>,
    /// Retirements since the last scan (the scan trigger — the retire-list
    /// *length* cannot be the trigger here, because entries blocked by a
    /// stalled pin stay queued and would force a scan on every retire).
    since_scan: AtomicUsize,
    /// Retirement count that triggers a scan.
    scan_threshold: AtomicUsize,
    /// Blocked-bytes level above which a scan marks laggard pins stalled.
    budget_bytes: AtomicU64,
    /// Number of currently active pins marked stalled.
    stalled_pins: AtomicU64,
    retired_objects: AtomicU64,
    freed_objects: AtomicU64,
    retired_bytes: AtomicU64,
    freed_bytes: AtomicU64,
    /// Bytes retired but not yet reclaimed, and its high-water mark — the
    /// gauge whose *boundedness under a stalled reader* is this backend's
    /// whole point.
    unreclaimed_bytes: AtomicU64,
    peak_unreclaimed_bytes: AtomicU64,
    /// Pin-became-stalled transitions (degradation entries).
    stall_events: AtomicU64,
    /// Retirements performed while at least one stalled pin was active.
    degraded_ops: AtomicU64,
}

// Safety: the raw pointers inside (`head`'s records, `HybridRetired::ptr`)
// are either owned by the domain for its whole lifetime (records, freed
// only in `Drop` with exclusive access) or covered by the retire contract
// (`Send` payloads reclaimable from any thread, exactly one reclaimer).
unsafe impl Send for HybridInner {}
unsafe impl Sync for HybridInner {}

impl HybridInner {
    /// Collects every active pin's interval and frees each retired entry
    /// no interval overlaps; marks laggard pins stalled when the blocked
    /// residue exceeds the budget. Returns (objects, bytes) freed.
    fn scan(&self) -> (usize, usize) {
        // ordering: SeqCst fence — the scan-side half of the reservation
        // Dekker, paired with the fences in `pin` and `protect`: in the SC
        // order of fences, either this fence comes after a reader's — then
        // the interval loads below see its reservation and overlapping
        // entries are kept — or it comes before, and the reader's
        // post-fence validated root load sees every unlink that preceded
        // the retirements this scan frees, so it can never reach them.
        fence(SeqCst);
        let mut pins: Vec<(u64, u64, *const HybridRecord)> = Vec::new();
        // ordering: Acquire — pairs with the Release publication CAS in
        // `acquire_record`: the record's fields are fully initialized
        // before it becomes reachable.
        let mut rec = self.head.load(Acquire);
        while !rec.is_null() {
            // Safety: records are published exactly once and freed only in
            // `Drop` (exclusive access), so the pointer is valid here.
            let r = unsafe { &*rec };
            // ordering: Acquire — pairs with the guard-drop Release store
            // of `false`: a record observed inactive means its guard's
            // reads happen-before the frees this scan performs.
            if r.active.load(Acquire) {
                // ordering: Relaxed (both) — ordered by the SeqCst fence
                // above against the reader's reservation fence; a stale
                // (pin-time) value only widens the kept set, and the
                // Dekker argument covers the racing-pin window.
                pins.push((r.lo.load(Relaxed), r.hi.load(Relaxed), rec));
            }
            rec = r.next;
        }
        // Partition under the lock, free outside it: a reclamation
        // callback may re-enter `defer` (which takes the same lock).
        let (ready, blocked_bytes) = {
            let mut retired = self.retired.lock().unwrap();
            let mut ready = Vec::new();
            let mut blocked_bytes = 0u64;
            let mut i = 0;
            while i < retired.len() {
                let e = &retired[i];
                // The interval rule: kept only while some active pin's
                // reservation overlaps the entry's `[birth, retire]`
                // lifetime. (`retire < min lo` is the classic epoch fast
                // path; it falls out of the same test.)
                if pins
                    .iter()
                    .any(|&(lo, hi, _)| e.birth <= hi && lo <= e.retire)
                {
                    blocked_bytes += e.bytes as u64;
                    i += 1;
                } else {
                    ready.push(retired.swap_remove(i));
                }
            }
            (ready, blocked_bytes)
        };
        // ordering: Relaxed — config knob; staleness shifts one marking.
        if blocked_bytes > self.budget_bytes.load(Relaxed) {
            // ordering: Relaxed — monotone era sample used for an age
            // heuristic only; staleness under-ages a pin by one tick.
            let now = self.era.load(Relaxed);
            for &(_, hi, rec) in &pins {
                if now.saturating_sub(hi) >= STALL_AGE_ERAS {
                    // Safety: records outlive every scan (freed only in
                    // `Drop`); `rec` came from the live list walk above.
                    let r = unsafe { &*rec };
                    // ordering: Relaxed — diagnostic flag; the free rule
                    // never consults it, and the guard-drop reset is
                    // ordered by the record's `active` Release/Acquire.
                    if r.stalled
                        .compare_exchange(false, true, Relaxed, Relaxed)
                        .is_ok()
                    {
                        // ordering: Relaxed (both) — statistics counters.
                        self.stall_events.fetch_add(1, Relaxed);
                        self.stalled_pins.fetch_add(1, Relaxed);
                    }
                }
            }
        }
        let objects = ready.len();
        let mut bytes = 0;
        for r in ready {
            bytes += r.bytes;
            // Safety: the post-fence interval collection proved no active
            // pin overlaps `r`; ownership is exclusively the reclaimer's.
            unsafe { r.run() };
        }
        // ordering: Relaxed (all) — statistics counters.
        self.freed_objects.fetch_add(objects as u64, Relaxed);
        self.freed_bytes.fetch_add(bytes as u64, Relaxed);
        self.unreclaimed_bytes.fetch_sub(bytes as u64, Relaxed);
        (objects, bytes)
    }

    /// Queues one retirement, stamping its retire era, and scans if enough
    /// retirements have accumulated since the last scan.
    fn retire(&self, ptr: *mut (), bytes: usize, birth: u64, free: HybridFree) {
        // ordering: SeqCst fence — the retire-side half of the reservation
        // Dekker: orders the caller's unlink store before the era sample
        // below, so a reader that pins at a later era (and whose `lo`
        // therefore exceeds this entry's `retire`) provably sees the
        // unlink in its validated root load and can never reach `ptr`.
        fence(SeqCst);
        // ordering: Relaxed — monotone era sample, ordered by the fence.
        let retire = self.era.load(Relaxed);
        // ordering: Relaxed — retirement pulse; the era is a resolution
        // knob, not a synchronization edge (the fences carry the proof).
        let pulse = self.era_pulse.fetch_add(1, Relaxed);
        if pulse % ERA_TICK == ERA_TICK - 1 {
            // ordering: Relaxed — monotone counter, per above.
            self.era.fetch_add(1, Relaxed);
        }
        // ordering: Relaxed (all) — statistics counters.
        self.retired_objects.fetch_add(1, Relaxed);
        self.retired_bytes.fetch_add(bytes as u64, Relaxed);
        // ordering: Relaxed — degradation gauge; a racing unpin at worst
        // counts one extra op as degraded.
        if self.stalled_pins.load(Relaxed) > 0 {
            // ordering: Relaxed — statistics counter.
            self.degraded_ops.fetch_add(1, Relaxed);
        }
        note_unreclaimed(
            &self.unreclaimed_bytes,
            &self.peak_unreclaimed_bytes,
            bytes as u64,
        );
        self.retired.lock().unwrap().push(HybridRetired {
            ptr,
            bytes,
            birth,
            retire,
            free,
        });
        // ordering: Relaxed — scan trigger; a lost increment under a race
        // shifts one scan by one retirement.
        let since = self.since_scan.fetch_add(1, Relaxed) + 1;
        // ordering: Relaxed — config knob; staleness shifts one scan.
        if since >= self.scan_threshold.load(Relaxed) {
            // ordering: Relaxed — trigger reset, per above.
            self.since_scan.store(0, Relaxed);
            self.scan();
        }
    }
}

impl Drop for HybridInner {
    fn drop(&mut self) {
        // No guard can be alive (each holds an Arc to this inner), so
        // every retirement is unblocked and safe to run.
        let retired = std::mem::take(&mut *self.retired.get_mut().unwrap());
        let objects = retired.len();
        let mut bytes = 0;
        for r in retired {
            bytes += r.bytes;
            // Safety: exclusive access — no active pin exists.
            unsafe { r.run() };
        }
        // ordering: Relaxed (all) — statistics counters, and `&mut self`
        // proves exclusive access anyway.
        self.freed_objects.fetch_add(objects as u64, Relaxed);
        self.freed_bytes.fetch_add(bytes as u64, Relaxed);
        self.unreclaimed_bytes.fetch_sub(bytes as u64, Relaxed);
        // Free the record list (append-only in life, exclusively ours now).
        // ordering: Relaxed — `&mut self`: no concurrent access exists.
        let mut rec = self.head.load(Relaxed);
        while !rec.is_null() {
            // Safety: each record was published by exactly one
            // `Box::into_raw` and is freed exactly once, here.
            let boxed = unsafe { Box::from_raw(rec) };
            rec = boxed.next;
        }
    }
}

/// A hybrid (interval-based) reclamation domain — see the [module
/// docs](self) for the protocol and the degradation story.
///
/// Cheaply clonable; clones refer to the same domain. Readers pin an era
/// interval with [`pin`](Self::pin) and validate snapshot roots with
/// [`HybridGuard::protect`]; writers retire through the `defer_*` family,
/// ideally with a birth era ([`defer_recycle_with`](Self::defer_recycle_with))
/// so the interval rule can route retirements around a stalled pin.
pub struct HybridDomain {
    inner: Arc<HybridInner>,
}

impl HybridDomain {
    /// Creates an empty domain with the default budget (1 MiB) and scan
    /// threshold.
    pub fn new() -> Self {
        Self::with_budget(DEFAULT_BUDGET_BYTES)
    }

    /// Creates an empty domain whose scans start marking laggard pins
    /// stalled once more than `budget_bytes` of garbage is blocked by
    /// active pins.
    pub fn with_budget(budget_bytes: u64) -> Self {
        Self {
            inner: Arc::new(HybridInner {
                era: AtomicU64::new(1),
                era_pulse: AtomicU64::new(0),
                head: AtomicPtr::new(ptr::null_mut()),
                records: AtomicUsize::new(0),
                retired: Mutex::new(Vec::new()),
                since_scan: AtomicUsize::new(0),
                scan_threshold: AtomicUsize::new(SCAN_THRESHOLD),
                budget_bytes: AtomicU64::new(budget_bytes),
                stalled_pins: AtomicU64::new(0),
                retired_objects: AtomicU64::new(0),
                freed_objects: AtomicU64::new(0),
                retired_bytes: AtomicU64::new(0),
                freed_bytes: AtomicU64::new(0),
                unreclaimed_bytes: AtomicU64::new(0),
                peak_unreclaimed_bytes: AtomicU64::new(0),
                stall_events: AtomicU64::new(0),
                degraded_ops: AtomicU64::new(0),
            }),
        }
    }

    /// Acquires a reservation record: reuses a released one or publishes a
    /// new one onto the append-only list.
    fn acquire_record(&self) -> *const HybridRecord {
        // ordering: Acquire — pairs with the publication CAS's Release
        // (the record's fields are initialized before it is reachable).
        let mut rec = self.inner.head.load(Acquire);
        while !rec.is_null() {
            // Safety: records live until domain drop; the guard holds a
            // domain clone, so the pointer stays valid for its lifetime.
            let r = unsafe { &*rec };
            // ordering: Acquire success — pairs with the releasing guard's
            // Release store of `false`, so its interval/stall resets are
            // visible before we reuse the record; Relaxed failure — an
            // occupied record is just skipped.
            if r.active
                .compare_exchange(false, true, Acquire, Relaxed)
                .is_ok()
            {
                return rec;
            }
            rec = r.next;
        }
        // No free record: publish a fresh one. An activated record whose
        // interval has not been stored yet carries the previous guard's
        // (or the zero-initial) interval — at worst an over-wide
        // reservation, which only delays frees; see `pin` for why it can
        // never permit an unsafe one.
        let raw = Box::into_raw(Box::new(HybridRecord {
            lo: AtomicU64::new(0),
            hi: AtomicU64::new(0),
            active: AtomicBool::new(true),
            stalled: AtomicBool::new(false),
            next: ptr::null_mut(),
        }));
        // ordering: Relaxed — this load seeds the CAS below, which
        // re-validates it on every attempt.
        let mut head = self.inner.head.load(Relaxed);
        loop {
            // Safety: not yet shared — we still exclusively own the
            // allocation until the CAS below succeeds.
            unsafe { (*raw).next = head };
            // ordering: Release success — publishes the initialized record
            // (including `next`) to `scan`'s and `acquire_record`'s
            // Acquire head loads; Acquire failure — re-reads a newer head
            // for the retry, seeing its published fields.
            match self
                .inner
                .head
                .compare_exchange(head, raw, Release, Acquire)
            {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        // ordering: Relaxed — statistics counter.
        self.inner.records.fetch_add(1, Relaxed);
        raw
    }

    /// Pins an era interval: reserves `[e, e]` at the current era `e`.
    /// The returned guard keeps every node whose lifetime overlaps the
    /// (growing) reservation from being reclaimed; snapshot roots must
    /// still be validated through [`HybridGuard::protect`] before use.
    ///
    /// Guards are per-thread (`!Send`); dropping one releases the record.
    pub fn pin(&self) -> HybridGuard {
        let record = self.acquire_record();
        // Safety: the record stays valid for the guard's lifetime (domain
        // clone below keeps the list alive; `active` keeps others off it).
        let r = unsafe { &*record };
        // ordering: Relaxed — monotone era sample; the SeqCst fence below
        // orders the whole reservation before the guard's first shared
        // load (the reader-side Dekker half).
        let e = self.inner.era.load(Relaxed);
        // ordering: Relaxed (both) — reservation stores, published by the
        // fence below; no data travels through the values themselves.
        r.lo.store(e, Relaxed);
        r.hi.store(e, Relaxed);
        // ordering: SeqCst fence — the reader-side half of the reservation
        // Dekker, paired with the fences in `HybridInner::scan` (which
        // observes the reservation if it fences later) and
        // `HybridInner::retire` (whose later era sample then exceeds `e`,
        // keeping overlapping entries blocked); see the module docs.
        fence(SeqCst);
        HybridGuard {
            domain: self.clone(),
            record,
            _not_send: PhantomData,
        }
    }

    /// Defers `f` until no interval blocks it. An opaque callback carries
    /// no birth era, so it is maximally conservative: blocked by every pin
    /// whose `lo` does not exceed its retire era (the epoch rule), and run
    /// at the first scan after those pins drop (accounting: one object,
    /// zero bytes).
    pub fn defer<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.inner
            .retire(ptr::null_mut(), 0, 0, HybridFree::Call(Box::new(f)));
    }

    /// Retires a heap allocation with an unknown birth era (conservative:
    /// the epoch rule applies — see [`defer`](Self::defer)). Reclaims as a
    /// `Box<T>`, running `T`'s destructor.
    ///
    /// # Safety
    ///
    /// * `ptr` came from [`Box::into_raw`] and is freed by no other path.
    /// * `ptr` has been unlinked from every shared structure before this
    ///   call: a guard pinning *after* this retirement's era sample can
    ///   never reach it through a validated [`HybridGuard::protect`].
    pub unsafe fn defer_free<T: Send + 'static>(&self, ptr: *mut T) {
        // Safety: forwarded contract.
        unsafe { self.defer_free_born(ptr, 0) }
    }

    /// Retires a heap allocation whose birth era the caller recorded at
    /// allocation time (typically [`current_era`](Self::current_era)
    /// sampled then). The tighter the interval, the sooner the entry can
    /// reclaim past a stalled pin.
    ///
    /// # Safety
    ///
    /// Same contract as [`defer_free`](Self::defer_free); additionally
    /// `birth` must not exceed the era current when `ptr` first became
    /// reachable to readers (an under-approximation is always safe).
    pub unsafe fn defer_free_born<T: Send + 'static>(&self, ptr: *mut T, birth: u64) {
        debug_assert!(!ptr.is_null());
        let addr = ptr as usize;
        self.inner.retire(
            ptr.cast(),
            std::mem::size_of::<T>(),
            birth,
            HybridFree::Call(Box::new(move || {
                // Safety: sole owner per the contract above, and the scan
                // proved no interval overlaps the entry.
                unsafe { drop(Box::from_raw(addr as *mut T)) };
            })),
        );
    }

    /// Retires a whole batch to a recycler with unknown birth eras
    /// (conservative; see [`defer`](Self::defer)), splitting it into
    /// per-pointer entries. `bytes` estimates the whole batch.
    ///
    /// # Safety
    ///
    /// The [`defer_free`](Self::defer_free) unlink/no-double-retire
    /// contract for every pointer, each valid for `recycler`.
    pub unsafe fn defer_recycle(
        &self,
        recycler: Arc<dyn Recycler>,
        batch: RecycleBatch,
        bytes: usize,
    ) {
        // Safety: forwarded contract; birth 0 is the conservative floor.
        unsafe { self.defer_recycle_with(recycler, batch, bytes, |_| 0) }
    }

    /// Retires a whole batch to a recycler, asking `birth_of` for each
    /// pointer's birth era — the pointers are still valid at this point
    /// (their grace period starts here), so the callback may read a birth
    /// stamp out of the retired object itself. This is the call that lets
    /// a structure's churn reclaim past a stalled reader.
    ///
    /// # Safety
    ///
    /// Same contract as [`defer_recycle`](Self::defer_recycle), and
    /// `birth_of(p)` must not over-report: for every `p` it must return at
    /// most the era current when `p` first became reachable to readers.
    pub unsafe fn defer_recycle_with(
        &self,
        recycler: Arc<dyn Recycler>,
        mut batch: RecycleBatch,
        bytes: usize,
        birth_of: impl Fn(*mut ()) -> u64,
    ) {
        let len = batch.len();
        if len == 0 {
            return;
        }
        let per = bytes / len;
        let mut rem = bytes - per * len;
        for ptr in batch.drain() {
            let extra = std::mem::take(&mut rem);
            self.inner.retire(
                ptr,
                per + extra,
                birth_of(ptr),
                HybridFree::Recycle(Arc::clone(&recycler)),
            );
        }
    }

    /// Runs one scan: frees every retirement no active interval overlaps.
    /// Returns the number of objects freed.
    pub fn scan(&self) -> usize {
        // ordering: Relaxed — trigger reset; an explicit scan restarts the
        // retire countdown.
        self.inner.since_scan.store(0, Relaxed);
        self.inner.scan().0
    }

    /// The hybrid analogue of `synchronize`: there is no grace period to
    /// wait out, so this simply scans — everything outside every active
    /// interval reclaims immediately; entries a live pin overlaps remain
    /// (by design: that is the blocked set the budget watches).
    pub fn synchronize(&self) {
        self.scan();
    }

    /// The current global era (what a writer records as a node's birth).
    pub fn current_era(&self) -> u64 {
        // ordering: Relaxed — monotone counter snapshot; an
        // under-approximated birth stamp is always safe.
        self.inner.era.load(Relaxed)
    }

    /// Retirements still queued (blocked or below the scan trigger).
    pub fn pending(&self) -> usize {
        self.inner.retired.lock().unwrap().len()
    }

    /// Total objects retired.
    pub fn retired(&self) -> u64 {
        // ordering: Relaxed — statistics snapshot.
        self.inner.retired_objects.load(Relaxed)
    }

    /// Total objects freed.
    pub fn freed(&self) -> u64 {
        // ordering: Relaxed — statistics snapshot.
        self.inner.freed_objects.load(Relaxed)
    }

    /// Total bytes retired (retirer estimates).
    pub fn bytes_retired(&self) -> u64 {
        // ordering: Relaxed — statistics snapshot.
        self.inner.retired_bytes.load(Relaxed)
    }

    /// Total bytes freed.
    pub fn bytes_freed(&self) -> u64 {
        // ordering: Relaxed — statistics snapshot.
        self.inner.freed_bytes.load(Relaxed)
    }

    /// High-water mark of unreclaimed bytes over the domain's lifetime.
    pub fn peak_unreclaimed_bytes(&self) -> u64 {
        // ordering: Relaxed — statistics snapshot.
        self.inner.peak_unreclaimed_bytes.load(Relaxed)
    }

    /// Pin-became-stalled transitions: how many times an over-budget scan
    /// named a laggard pin (see the [module docs](self)).
    pub fn stall_events(&self) -> u64 {
        // ordering: Relaxed — statistics snapshot.
        self.inner.stall_events.load(Relaxed)
    }

    /// Retirements performed while at least one stalled pin was active —
    /// the volume of work the domain absorbed in degraded mode.
    pub fn degraded_ops(&self) -> u64 {
        // ordering: Relaxed — statistics snapshot.
        self.inner.degraded_ops.load(Relaxed)
    }

    /// The configured blocked-bytes budget.
    pub fn budget_bytes(&self) -> u64 {
        // ordering: Relaxed — config snapshot.
        self.inner.budget_bytes.load(Relaxed)
    }

    /// Reservation records ever published (guards recycle them).
    pub fn records(&self) -> usize {
        // ordering: Relaxed — statistics snapshot.
        self.inner.records.load(Relaxed)
    }
}

impl Default for HybridDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for HybridDomain {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl PartialEq for HybridDomain {
    /// Two handles are equal when they refer to the same domain.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for HybridDomain {}

impl fmt::Debug for HybridDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HybridDomain")
            .field("era", &self.current_era())
            .field("records", &self.records())
            .field("pending", &self.pending())
            .field("stall_events", &self.stall_events())
            .finish_non_exhaustive()
    }
}

/// A pinned era reservation over a [`HybridDomain`].
///
/// Holding the guard keeps every node whose lifetime overlaps the
/// reserved interval alive; [`protect`](Self::protect) validates a
/// snapshot root and extends the interval's high edge to cover it.
/// Dropping the guard releases the record (and clears any stalled mark).
pub struct HybridGuard {
    domain: HybridDomain,
    /// Valid for the guard's lifetime: the domain clone above keeps the
    /// record list alive, and `active` keeps other guards off it.
    record: *const HybridRecord,
    /// Guards are single-thread: the reservation is this thread's
    /// protocol state.
    _not_send: PhantomData<*mut ()>,
}

impl HybridGuard {
    #[inline]
    fn record(&self) -> &HybridRecord {
        // Safety: see the field docs — the record outlives the guard.
        unsafe { &*self.record }
    }

    /// Validated snapshot load: publishes the current era as the
    /// interval's high edge, fences, runs `load` (the caller's `Acquire`
    /// root load), and retries until the era is unchanged across the load.
    /// On return, **every node reachable from the returned root** is
    /// covered by the reservation — copy-on-write publishes children
    /// before parents, so each has `birth ≤` the validated era (see the
    /// [module docs](self)) — and stays alive until the guard drops.
    pub fn protect<T>(&self, load: impl FnMut() -> *mut T) -> *mut T {
        let mut load = load;
        let r = self.record();
        // ordering: Relaxed — monotone era sample; the fence in the loop
        // body orders each published reservation before the load.
        let mut e = self.domain.inner.era.load(Relaxed);
        loop {
            // ordering: Relaxed — reservation store, published by the
            // fence below (`hi` only grows: `e` is at least the pin era).
            r.hi.store(e, Relaxed);
            // ordering: SeqCst fence — the reader-side half of the
            // reservation Dekker, paired with the fence in
            // `HybridInner::scan`; see `HybridDomain::pin`.
            fence(SeqCst);
            let p = load();
            // ordering: Relaxed — validation re-read of the monotone era;
            // equality proves the root was loaded inside the reserved era.
            let e2 = self.domain.inner.era.load(Relaxed);
            if e2 == e {
                return p;
            }
            e = e2;
        }
    }

    /// The reserved interval `(lo, hi)` (diagnostic).
    pub fn interval(&self) -> (u64, u64) {
        let r = self.record();
        // ordering: Relaxed (both) — reading our own thread's record.
        (r.lo.load(Relaxed), r.hi.load(Relaxed))
    }

    /// Whether an over-budget scan has marked this pin stalled.
    pub fn is_stalled(&self) -> bool {
        // ordering: Relaxed — diagnostic flag snapshot.
        self.record().stalled.load(Relaxed)
    }

    /// The domain this guard reserves against.
    pub fn domain(&self) -> &HybridDomain {
        &self.domain
    }
}

impl Drop for HybridGuard {
    fn drop(&mut self) {
        // ordering: Relaxed — diagnostic flag; the Release store of
        // `active` below publishes the reset to the record's next owner.
        if self.record().stalled.swap(false, Relaxed) {
            // ordering: Relaxed — statistics counter.
            self.domain.inner.stalled_pins.fetch_sub(1, Relaxed);
        }
        // ordering: Release — pairs with the scan's Acquire `active` load
        // and `acquire_record`'s Acquire CAS: every read this guard made
        // under its reservation happens-before any free that ignoring
        // this record permits.
        self.record().active.store(false, Release);
    }
}

impl fmt::Debug for HybridGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HybridGuard")
            .field("interval", &self.interval())
            .field("stalled", &self.is_stalled())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};

    #[test]
    fn unpinned_retirements_free_at_scan() {
        let d = HybridDomain::new();
        let fired = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let f = Arc::clone(&fired);
            d.defer(move || {
                f.fetch_add(1, SeqCst);
            });
        }
        assert_eq!(fired.load(SeqCst), 0);
        assert_eq!(d.scan(), 3);
        assert_eq!(fired.load(SeqCst), 3);
        assert_eq!(d.retired(), 3);
        assert_eq!(d.freed(), 3);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn pinned_interval_blocks_overlapping_retirement_until_unpin() {
        let d = HybridDomain::new();
        let g = d.pin();
        let b = Box::into_raw(Box::new(7u64));
        // Born inside the pinned interval, retired inside it: blocked.
        // Safety: never dereferenced after retire; retired exactly once.
        unsafe { d.defer_free_born(b, d.current_era()) };
        assert_eq!(d.scan(), 0);
        assert_eq!(d.pending(), 1);
        assert_eq!(d.bytes_retired(), 8);
        assert_eq!(d.bytes_freed(), 0);
        drop(g);
        assert_eq!(d.scan(), 1);
        assert_eq!(d.pending(), 0);
        assert_eq!(d.bytes_freed(), 8);
        assert_eq!(d.peak_unreclaimed_bytes(), 8);
    }

    #[test]
    fn stalled_pin_does_not_block_younger_garbage() {
        // Tiny budget so the degradation machinery engages immediately.
        let d = HybridDomain::with_budget(64);
        let stalled = d.pin(); // era 1, never advances its interval
        let (lo, hi) = stalled.interval();
        assert_eq!((lo, hi), (1, 1));
        // Churn: retire allocations born at the *current* era, like a
        // writer stamping nodes at creation. Once the era has advanced
        // past the stalled pin's interval, each new retirement has
        // `birth > hi` and reclaims despite the held pin.
        let churn: u64 = if cfg!(miri) { 600 } else { 2000 };
        for _ in 0..churn {
            let birth = d.current_era();
            // Safety: each allocation retired exactly once, never reused.
            unsafe { d.defer_free_born(Box::into_raw(Box::new([0u8; 128])), birth) };
        }
        d.synchronize();
        assert!(
            d.freed() > churn - 300,
            "stalled pin blocked young garbage: freed {} of {churn}",
            d.freed()
        );
        // The blocked residue is the stall-time overlap, not the churn.
        assert!(
            d.pending() < 300,
            "blocked set tracked churn: {} pending",
            d.pending()
        );
        // Degradation was observed and attributed.
        assert!(stalled.is_stalled());
        assert_eq!(d.stall_events(), 1);
        assert!(d.degraded_ops() > 0);
        // Unpinning releases the residue in full.
        drop(stalled);
        d.synchronize();
        assert_eq!(d.retired(), d.freed());
        assert_eq!(d.bytes_retired(), d.bytes_freed());
    }

    #[test]
    fn peak_unreclaimed_stays_bounded_under_stalled_pin() {
        // Budget below the stall-time overlap (~1 KB) so stalling engages.
        let d = HybridDomain::with_budget(512);
        let _stalled = d.pin();
        // Warm-up churn that the stalled pin may legitimately block: what
        // overlaps era 1. Then sustained churn whose births keep pace.
        let churn = if cfg!(miri) { 1000 } else { 10_000 };
        for _ in 0..churn {
            let birth = d.current_era();
            // Safety: each allocation retired exactly once, never reused.
            unsafe { d.defer_free_born(Box::into_raw(Box::new([0u8; 64])), birth) };
        }
        // Peak is bounded by: garbage blocked at stall detection (≈ the
        // pre-advance overlap, itself ≤ one era tick of retirements) plus
        // one scan threshold of slack — *not* by total churn (~640 KB).
        let bound = (SCAN_THRESHOLD as u64 + 2 * ERA_TICK) * 64 + 512;
        assert!(
            d.peak_unreclaimed_bytes() <= bound,
            "peak {} exceeded bound {}",
            d.peak_unreclaimed_bytes(),
            bound
        );
        assert!(d.stall_events() >= 1);
    }

    #[test]
    fn protect_returns_validated_root_and_extends_interval() {
        let d = HybridDomain::new();
        let root = AtomicPtr::new(Box::into_raw(Box::new(41u64)));
        // Advance the era a few ticks so the pin and the protect differ.
        for _ in 0..3 * ERA_TICK {
            d.defer(|| {});
        }
        let g = d.pin();
        let before = g.interval();
        for _ in 0..2 * ERA_TICK {
            d.defer(|| {});
        }
        let p = g.protect(|| root.load(Acquire));
        // Safety: nothing retires the root in this test.
        assert_eq!(unsafe { *p }, 41);
        let after = g.interval();
        assert_eq!(before.0, after.0, "lo must stay at the pin era");
        assert!(after.1 > before.1, "hi must cover the validated load");
        drop(g);
        d.synchronize();
        // Safety: sole owner; no guard is live.
        unsafe { drop(Box::from_raw(root.load(Acquire))) };
    }

    #[test]
    fn guard_drop_releases_and_recycles_record() {
        let d = HybridDomain::new();
        {
            let _g = d.pin();
        }
        assert_eq!(d.records(), 1);
        let g2 = d.pin();
        assert_eq!(d.records(), 1, "released record was not reused");
        let g3 = d.pin();
        assert_eq!(d.records(), 2);
        drop(g2);
        drop(g3);
    }

    #[test]
    fn recycle_with_births_routes_through_recycler() {
        struct Sink {
            seen: AtomicUsize,
        }
        impl Recycler for Sink {
            unsafe fn recycle(&self, mut batch: RecycleBatch) {
                self.seen.fetch_add(batch.drain().count(), SeqCst);
            }
        }
        let sink = Arc::new(Sink {
            seen: AtomicUsize::new(0),
        });
        let d = HybridDomain::new();
        let g = d.pin();
        let mut batch = RecycleBatch::new();
        let marks = [0u8; 3];
        for m in &marks {
            batch.push(std::ptr::from_ref(m).cast_mut().cast());
        }
        // Births beyond the pinned interval: the held pin cannot block.
        let future = d.current_era() + 1;
        // Safety: the sink never dereferences; markers retired once each.
        unsafe { d.defer_recycle_with(sink.clone() as Arc<dyn Recycler>, batch, 30, |_| future) };
        assert_eq!(d.retired(), 3);
        assert_eq!(d.bytes_retired(), 30);
        assert_eq!(d.scan(), 3);
        assert_eq!(sink.seen.load(SeqCst), 3);
        assert_eq!(d.bytes_freed(), 30);
        drop(g);
    }

    #[test]
    fn domain_drop_fires_pending_garbage() {
        static FIRED: AtomicUsize = AtomicUsize::new(0);
        let d = HybridDomain::new();
        d.defer(|| {
            FIRED.fetch_add(1, SeqCst);
        });
        drop(d);
        assert_eq!(FIRED.load(SeqCst), 1);
    }

    #[test]
    fn concurrent_readers_and_churn_converge() {
        let d = HybridDomain::with_budget(1 << 16);
        let root = Arc::new(AtomicPtr::new(Box::into_raw(Box::new(0u64))));
        let stop = Arc::new(AtomicUsize::new(0));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let d = d.clone();
                let root = Arc::clone(&root);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while stop.load(SeqCst) == 0 {
                        let g = d.pin();
                        let p = g.protect(|| root.load(Acquire));
                        // Safety: protected by the validated reservation.
                        sum = sum.wrapping_add(unsafe { *p });
                    }
                    sum
                })
            })
            .collect();
        let iters = if cfg!(miri) { 200 } else { 20_000 };
        for i in 1..=iters {
            let birth = d.current_era();
            let new = Box::into_raw(Box::new(i as u64));
            let old = root.swap(new, std::sync::atomic::Ordering::AcqRel);
            // Safety: `old` was just unlinked; retired exactly once.
            unsafe { d.defer_free_born(old, birth) };
        }
        stop.store(1, SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        d.synchronize();
        assert_eq!(d.retired(), d.freed());
        // The published root remains owned by `root`.
        // Safety: all readers joined; sole owner now.
        unsafe { drop(Box::from_raw(root.load(Acquire))) };
    }
}
