//! # rcukit — an epoch-based RCU runtime
//!
//! This crate provides the read-copy-update (RCU) substrate used by the
//! [Bonsai tree](https://pdos.csail.mit.edu/papers/bonsai:asplos12.pdf)
//! reproduction: lock-free read-side critical sections and deferred
//! reclamation of memory that may still be referenced by concurrent readers.
//!
//! The design mirrors classic epoch-based reclamation (EBR):
//!
//! * Readers *pin* the current epoch before touching shared pointers and
//!   *unpin* when done ([`LocalHandle::pin`], the paper's `rcu_read_begin` /
//!   `rcu_read_end`). The guard **borrows** its handle (`Guard<'_>`), so a
//!   pin performs zero shared atomic read-modify-writes and takes no lock:
//!   it is a swap on the thread's own status word plus a read of the global
//!   epoch. Page-fault-style readers never contend on a shared cache line,
//!   however many cores fault at once.
//! * Writers retire garbage with [`Guard::defer`] or [`Guard::defer_free`]
//!   (the paper's `rcu_free`). Retired objects are freed only after a *grace
//!   period*: two epoch advances, which guarantee that every reader that
//!   could have observed the object has unpinned.
//! * [`Collector::synchronize`] blocks until a full grace period has elapsed
//!   (the classic `synchronize_rcu`).
//!
//! The full protocol narrative — this crate's epoch lifecycle and memory
//! ordering together with the `bonsai` crate's writer sessions and range
//! locks built on top — lives in `docs/CONCURRENCY.md` at the repository
//! root.
//!
//! Four reclamation backends are provided, unified behind
//! [`ReclaimBackend`]:
//!
//! * [`Collector`] — epoch-based, pin/unpin per critical section, suitable
//!   for preemptible user space (analogous to Linux's sleepable RCU).
//! * [`qsbr::QsbrDomain`] — quiescent-state-based, where long-running threads
//!   periodically announce a quiescent state (analogous to classic
//!   scheduler-driven kernel RCU).
//! * [`hp::HpDomain`] — hazard pointers, where readers protect individual
//!   pointers and unreclaimed garbage is *bounded by construction* even
//!   under a stalled reader (see the [`reclaim`] module docs for the
//!   comparison table).
//! * [`hybrid::HybridDomain`] — interval-based hybrid: epoch-cheap reads
//!   with per-pin era intervals, degrading gracefully under a stalled
//!   reader by quarantining it instead of halting reclamation (the
//!   `stall_events` / `degraded_ops` counters record the degradation).
//!
//! # Quickstart
//!
//! ```
//! use rcukit::Collector;
//! use std::sync::atomic::{AtomicPtr, Ordering};
//!
//! let collector = Collector::new();
//! let handle = collector.register();
//!
//! // A writer publishes a new value and retires the old one.
//! let shared = AtomicPtr::new(Box::into_raw(Box::new(1u64)));
//! {
//!     let guard = handle.pin();
//!     let new = Box::into_raw(Box::new(2u64));
//!     let old = shared.swap(new, Ordering::AcqRel);
//!     // Safety: `old` was just unlinked and is never freed twice.
//!     unsafe { guard.defer_free(old) };
//! }
//!
//! // A reader dereferences the pointer under a guard.
//! {
//!     let guard = handle.pin();
//!     let p = shared.load(Ordering::Acquire);
//!     // Safety: the pointer was published by the writer above and cannot be
//!     // freed while this guard is live.
//!     assert_eq!(unsafe { *p }, 2);
//!     drop(guard);
//! }
//!
//! // A full grace period reclaims the retired allocation.
//! collector.synchronize();
//! let stats = collector.stats();
//! assert_eq!(stats.objects_retired, 1);
//! assert_eq!(stats.objects_freed, 1);
//!
//! // The currently-published value is still owned by `shared`; clean it up
//! // now that no reader can be running.
//! let p = shared.swap(std::ptr::null_mut(), Ordering::AcqRel);
//! // Safety: `p` was the sole remaining published allocation.
//! unsafe { drop(Box::from_raw(p)) };
//! ```
//!
//! # Lifecycle: epoch → pin → retire → reclaim
//!
//! The collector maintains one global epoch counter; every participating
//! thread owns a registered status word. An object's life as garbage runs
//! through four stages:
//!
//! 1. **Pin.** A thread's outermost [`pin`](LocalHandle::pin) publishes
//!    `(epoch << 1) | 1` into its status word and re-reads the global epoch
//!    until it is stable across the store. From then on the global epoch can
//!    advance at most once past the pinned value: any later
//!    advance re-scans the registry and sees this thread. Nested pins only
//!    bump a thread-local guard count; unpin clears the status word.
//! 2. **Retire.** A writer unlinks an object from the shared structure,
//!    then hands it to [`Guard::defer`]/[`Guard::defer_free`]. The
//!    retirement is tagged with the global epoch *observed at retire time*
//!    and pushed into the thread's local bag; the bag is sealed into the
//!    collector's global queue when it grows past a threshold, when the
//!    epoch tag changes, at the outermost unpin, or at [`Guard::flush`].
//! 3. **Advance.** `try_advance` (run by `collect`, `synchronize`, and
//!    opportunistically at guard-free unpins) scans the registry — sharded
//!    per core, one shard lock at a time, so concurrent advancers and
//!    registrations in other shards never convoy on a global lock — and
//!    moves the global epoch from `E` to `E + 1` only when every pinned
//!    thread's recorded epoch equals `E`. Unpin-driven advances are
//!    *throttled* per handle: only every Nth garbage-bearing unpin (or
//!    sooner under shard-queue pressure) pays the scan, so a
//!    mutation-heavy writer is not on the registry locks every operation.
//! 4. **Reclaim.** A sealed bag tagged `e` fires once the global epoch
//!    reaches `e + `[`GRACE_EPOCHS`]: every reader that could have observed
//!    its contents pinned no later than the retirement, so two advances
//!    prove they have all unpinned.
//!
//! Deferred callbacks run inline on whichever thread drives reclamation.
//! At the *implicit* points (outermost unpin, pin-time cache eviction) the
//! runtime only runs callbacks while the executing thread holds **zero
//! guards**, so a callback may itself pin or block on a grace period; the
//! *explicit* [`Collector::collect`]/[`Collector::synchronize`] calls run
//! ready callbacks in the caller's context unconditionally (see
//! [`Guard::defer`] for the precise contract).
//!
//! # Memory ordering
//!
//! Three orderings carry the proof; everything else is bookkeeping:
//!
//! * **Pin publication** — the status-word publish is a `SeqCst` *swap*
//!   (a full RMW), followed by a re-read of the global epoch, looping until
//!   the epoch is unchanged across the store. The RMW orders the publish
//!   before the critical section's pointer loads, and the stable re-read
//!   guarantees some instant at which the global epoch equalled the
//!   published value — which is what bounds the epoch to `pinned + 1`
//!   while the thread stays pinned.
//! * **The `SeqCst` fence in `defer`** — between the caller's unlink store
//!   and the retirement-tag load sits a StoreLoad fence. Without it, on
//!   TSO hardware the unlink (often a plain `Release` store of a new root)
//!   can linger in the store buffer while this thread reads a stale global
//!   epoch `tag`; the epoch then advances, a reader pins at `tag + 1`,
//!   loads the *old* pointer — still visible, the unlink has not drained —
//!   and outlives the grace period computed from `tag`. The same fence
//!   guards the QSBR flavour's `defer`.
//! * **The guard-free gate** — inline callback execution (unpin-time
//!   collects, pin-time cache eviction) is gated on a thread-local
//!   live-guard count of zero. This is a liveness invariant, not a
//!   visibility one: a callback may block on a grace period, and a grace
//!   period can never elapse while the executing thread itself holds a pin
//!   — the epoch cannot advance past it.
//!
//! Registry scans, bag seals, and statistics ride on per-shard mutexes and
//! `SeqCst` atomics; none of them are on the reader hot path, which touches
//! only the thread's own status word and the global epoch word. The
//! hot-path regression test pins in a loop and asserts both that the
//! collector's `Arc` strong count stays flat (no shared refcount RMW) and
//! that [`CollectorStats::registry_locks`] does not move (no lock).
//!
//! # Testing tiers
//!
//! Three tiers check the protocol, because stress loops alone miss the
//! schedules that matter:
//!
//! * **Tier-1 stress** (`cargo test`): randomized differential tests plus
//!   real-thread mirrors of every model scenario (`tests/model.rs`).
//! * **Model checking** (`RUSTFLAGS="--cfg loom" cargo test -p rcukit
//!   --test loom --release`): the crate's sync primitives (the internal
//!   `sync` facade module) swap to the in-tree `loomette` checker, and
//!   `tests/loom.rs` explores every schedule of the core
//!   scenarios — pin-publication vs. advance, retire-before-publish,
//!   the guard-free callback gate — within a preemption bound, including
//!   a meta-test that re-seeds a known use-after-free and requires the
//!   checker to find it.
//! * **UB detection** (`cargo +nightly miri test -p rcukit -p bonsai`):
//!   the unsafe reclamation paths run under Miri with `cfg(miri)`-scaled
//!   iteration counts.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(unsafe_op_in_unsafe_fn)]

mod collector;
mod deferred;
pub mod faults;
mod global_default;
mod guard;
pub mod hp;
pub mod hybrid;
pub mod qsbr;
pub mod reclaim;
mod stats;
mod sync;

pub use collector::{Collector, LocalHandle};
pub use deferred::{RecycleBatch, Recycler};
pub use global_default::{default_collector, pin, synchronize};
pub use guard::Guard;
pub use hp::{HpDomain, HpSession, HP_SLOTS};
pub use hybrid::{HybridDomain, HybridGuard};
pub use qsbr::QsbrDomain;
pub use reclaim::{ReclaimBackend, ReclaimKind, ReclaimStats};
pub use stats::CollectorStats;

/// Number of epoch advances that constitute a grace period.
///
/// Garbage retired in epoch `e` is reclaimable once the global epoch has
/// reached `e + GRACE_EPOCHS`.
pub const GRACE_EPOCHS: u64 = 2;
