//! # rcukit — an epoch-based RCU runtime
//!
//! This crate provides the read-copy-update (RCU) substrate used by the
//! [Bonsai tree](https://pdos.csail.mit.edu/papers/bonsai:asplos12.pdf)
//! reproduction: lock-free read-side critical sections and deferred
//! reclamation of memory that may still be referenced by concurrent readers.
//!
//! The design mirrors classic epoch-based reclamation (EBR):
//!
//! * Readers *pin* the current epoch before touching shared pointers and
//!   *unpin* when done ([`LocalHandle::pin`], the paper's `rcu_read_begin` /
//!   `rcu_read_end`). Pinning touches only thread-local state, so page-fault
//!   style readers never contend on a shared cache line.
//! * Writers retire garbage with [`Guard::defer`] or [`Guard::defer_free`]
//!   (the paper's `rcu_free`). Retired objects are freed only after a *grace
//!   period*: two epoch advances, which guarantee that every reader that
//!   could have observed the object has unpinned.
//! * [`Collector::synchronize`] blocks until a full grace period has elapsed
//!   (the classic `synchronize_rcu`).
//!
//! Two reclamation flavours are provided:
//!
//! * [`Collector`] — epoch-based, pin/unpin per critical section, suitable
//!   for preemptible user space (analogous to Linux's sleepable RCU).
//! * [`qsbr::QsbrDomain`] — quiescent-state-based, where long-running threads
//!   periodically announce a quiescent state (analogous to classic
//!   scheduler-driven kernel RCU).
//!
//! # Quickstart
//!
//! ```
//! use rcukit::Collector;
//! use std::sync::atomic::{AtomicPtr, Ordering};
//!
//! let collector = Collector::new();
//! let handle = collector.register();
//!
//! // A writer publishes a new value and retires the old one.
//! let shared = AtomicPtr::new(Box::into_raw(Box::new(1u64)));
//! {
//!     let guard = handle.pin();
//!     let new = Box::into_raw(Box::new(2u64));
//!     let old = shared.swap(new, Ordering::AcqRel);
//!     // Safety: `old` was just unlinked and is never freed twice.
//!     unsafe { guard.defer_free(old) };
//! }
//!
//! // A reader dereferences the pointer under a guard.
//! {
//!     let guard = handle.pin();
//!     let p = shared.load(Ordering::Acquire);
//!     // Safety: the pointer was published by the writer above and cannot be
//!     // freed while this guard is live.
//!     assert_eq!(unsafe { *p }, 2);
//!     drop(guard);
//! }
//!
//! // A full grace period reclaims the retired allocation.
//! collector.synchronize();
//! let stats = collector.stats();
//! assert_eq!(stats.objects_retired, 1);
//! assert_eq!(stats.objects_freed, 1);
//!
//! // The currently-published value is still owned by `shared`; clean it up
//! // now that no reader can be running.
//! let p = shared.swap(std::ptr::null_mut(), Ordering::AcqRel);
//! // Safety: `p` was the sole remaining published allocation.
//! unsafe { drop(Box::from_raw(p)) };
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(unsafe_op_in_unsafe_fn)]

mod collector;
mod deferred;
mod global_default;
mod guard;
pub mod qsbr;
mod stats;

pub use collector::{Collector, LocalHandle};
pub use global_default::{default_collector, pin, synchronize};
pub use guard::Guard;
pub use stats::CollectorStats;

/// Number of epoch advances that constitute a grace period.
///
/// Garbage retired in epoch `e` is reclaimable once the global epoch has
/// reached `e + GRACE_EPOCHS`.
pub const GRACE_EPOCHS: u64 = 2;
