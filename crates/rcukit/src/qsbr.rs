//! Quiescent-state-based reclamation (QSBR).
//!
//! The epoch collector in [`crate::Collector`] brackets every read-side
//! critical section with a pin/unpin pair. QSBR inverts the contract:
//! registered threads are assumed to be *inside* a critical section at all
//! times, except when they explicitly announce a quiescent state with
//! [`QsbrHandle::quiescent`] (the analogue of a kernel thread passing
//! through the scheduler). This suits long-running loop threads — e.g. a
//! page-fault handling loop — that would otherwise pay a pin per iteration.
//!
//! Reclamation: garbage retired while the grace counter reads `g` may run
//! once every online thread has observed a counter value of at least
//! `g + 1`, because observing `g + 1` requires a quiescent-state
//! announcement that happened after the retirement.

use std::cell::Cell;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use std::sync::Arc;
use std::thread;

use crate::deferred::{Deferred, RecycleBatch};
use crate::reclaim::note_unreclaimed;
use crate::sync::atomic::{fence, AtomicBool, AtomicU64};
use crate::sync::Mutex;

/// Per-thread QSBR state.
struct QsbrLocal {
    /// The last grace-counter value this thread observed at a quiescent
    /// state.
    seen: AtomicU64,
    /// Offline threads are guaranteed to hold no references and are skipped
    /// when computing grace periods.
    online: AtomicBool,
}

/// One retired unit awaiting its grace period, with its accounting.
struct QsbrRetired {
    /// Grace-counter value whose completion makes the unit safe.
    tag: u64,
    d: Deferred,
    /// Heap objects the unit stands for (batch pointers count
    /// individually; an opaque closure counts as one).
    objects: usize,
    /// Retirer-supplied byte estimate (0 when unknown).
    bytes: usize,
}

struct QsbrInner {
    /// The grace counter, bumped by reclaimers to start a new grace period.
    grace: AtomicU64,
    registry: Mutex<Vec<Arc<QsbrLocal>>>,
    /// Retired units, each tagged with the grace-counter value whose
    /// completion makes it safe.
    garbage: Mutex<Vec<QsbrRetired>>,
    retired: AtomicU64,
    freed: AtomicU64,
    retired_bytes: AtomicU64,
    freed_bytes: AtomicU64,
    /// Bytes retired but not yet reclaimed, and its high-water mark — the
    /// stalled-reader gauge (for QSBR, a silent online thread grows it
    /// without bound, like a stuck epoch pin).
    unreclaimed_bytes: AtomicU64,
    peak_unreclaimed_bytes: AtomicU64,
}

impl QsbrInner {
    /// The grace-counter value every online thread has reached, or the
    /// current counter when no thread is online.
    fn min_seen(&self) -> u64 {
        let registry = self.registry.lock().unwrap();
        registry
            .iter()
            // ordering: Acquire — pairs with `offline`'s Release store:
            // skipping an offline thread is safe only if everything it read
            // before going offline happens-before the frees this scan gates.
            .filter(|l| l.online.load(Acquire))
            // ordering: Acquire — pairs with `quiescent`'s Release store: an
            // announcement of `g` carries the thread's pre-announcement
            // reads, so they happen-before any free of garbage tagged <= g.
            .map(|l| l.seen.load(Acquire))
            .min()
            // ordering: Relaxed — no thread online, so there is no reader
            // to order against; the value only caps the reclaim tag.
            .unwrap_or_else(|| self.grace.load(Relaxed))
    }

    /// Runs every retirement whose tag is at most `upto`. Returns the
    /// object count.
    fn reclaim_upto(&self, upto: u64) -> usize {
        let ready: Vec<QsbrRetired> = {
            let mut garbage = self.garbage.lock().unwrap();
            let mut ready = Vec::new();
            let mut i = 0;
            while i < garbage.len() {
                if garbage[i].tag <= upto {
                    ready.push(garbage.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            ready
        };
        let mut objects = 0;
        let mut bytes = 0;
        for r in ready {
            objects += r.objects;
            bytes += r.bytes;
            r.d.call();
        }
        // ordering: Relaxed (all) — statistics counters.
        self.freed.fetch_add(objects as u64, Relaxed);
        self.freed_bytes.fetch_add(bytes as u64, Relaxed);
        self.unreclaimed_bytes.fetch_sub(bytes as u64, Relaxed);
        objects
    }

    /// Queues one retirement (standing for `objects` objects / `bytes`
    /// bytes) tagged against the next grace period. Shared tail of every
    /// `defer_*` entry point.
    fn push_retired(&self, d: Deferred, objects: usize, bytes: usize) {
        // ordering: SeqCst fence (StoreLoad), as in the epoch collector's
        // `Inner::defer`: the caller's unlink store must be globally visible
        // before the grace counter is sampled, or a reader quiescing at
        // `tag` could still load the stale pointer after the tag's grace
        // period completes. It is also the retire-side half of the
        // quiescent-announcement Dekker (see `QsbrHandle::quiescent`).
        fence(SeqCst);
        // ordering: Relaxed — the fence above orders the unlink before this
        // sample; a stale (lower) value only lengthens the grace period.
        let tag = self.grace.load(Relaxed) + 1;
        self.garbage.lock().unwrap().push(QsbrRetired {
            tag,
            d,
            objects,
            bytes,
        });
        // ordering: Relaxed (both) — statistics counters.
        self.retired.fetch_add(objects as u64, Relaxed);
        self.retired_bytes.fetch_add(bytes as u64, Relaxed);
        note_unreclaimed(
            &self.unreclaimed_bytes,
            &self.peak_unreclaimed_bytes,
            bytes as u64,
        );
    }
}

impl Drop for QsbrInner {
    fn drop(&mut self) {
        // No handle can be alive (each holds an Arc to this inner), so all
        // remaining garbage is unreachable and safe to run.
        let garbage = std::mem::take(&mut *self.garbage.get_mut().unwrap());
        let mut objects = 0;
        let mut bytes = 0;
        for r in garbage {
            objects += r.objects;
            bytes += r.bytes;
            r.d.call();
        }
        // ordering: Relaxed (all) — statistics counters, and `&mut self`
        // proves exclusive access anyway.
        self.freed.fetch_add(objects as u64, Relaxed);
        self.freed_bytes.fetch_add(bytes as u64, Relaxed);
        self.unreclaimed_bytes.fetch_sub(bytes as u64, Relaxed);
    }
}

/// A quiescent-state-based reclamation domain.
///
/// Cheaply clonable; clones refer to the same domain. See the
/// [module docs](self) for the contract.
pub struct QsbrDomain {
    inner: Arc<QsbrInner>,
}

impl QsbrDomain {
    /// Creates an empty domain.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(QsbrInner {
                grace: AtomicU64::new(0),
                registry: Mutex::new(Vec::new()),
                garbage: Mutex::new(Vec::new()),
                retired: AtomicU64::new(0),
                freed: AtomicU64::new(0),
                retired_bytes: AtomicU64::new(0),
                freed_bytes: AtomicU64::new(0),
                unreclaimed_bytes: AtomicU64::new(0),
                peak_unreclaimed_bytes: AtomicU64::new(0),
            }),
        }
    }

    /// Registers the calling thread, initially online and current.
    pub fn register(&self) -> QsbrHandle {
        let local = Arc::new(QsbrLocal {
            // ordering: Relaxed — a stale (lower) initial `seen` only makes
            // reclaimers wait for this thread's first real announcement;
            // the registry mutex publishes the entry itself.
            seen: AtomicU64::new(self.inner.grace.load(Relaxed)),
            online: AtomicBool::new(true),
        });
        self.inner.registry.lock().unwrap().push(local.clone());
        QsbrHandle {
            domain: self.clone(),
            local,
            ticks: Cell::new(0),
            _not_sync: PhantomData,
        }
    }

    /// Defers `f` until every registered online thread has announced a
    /// quiescent state after this call (accounting: one object, zero
    /// bytes — the closure is opaque).
    pub fn defer<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.inner.push_retired(Deferred::new(f), 1, 0);
    }

    /// Retires a heap allocation; the QSBR analogue of
    /// [`Guard::defer_free`](crate::Guard::defer_free).
    ///
    /// # Safety
    ///
    /// Same contract as [`Guard::defer_free`](crate::Guard::defer_free):
    /// `ptr` came from [`Box::into_raw`], is unlinked, and is not freed
    /// elsewhere.
    pub unsafe fn defer_free<T: Send + 'static>(&self, ptr: *mut T) {
        debug_assert!(!ptr.is_null());
        let addr = ptr as usize;
        self.inner.push_retired(
            Deferred::new(move || {
                // Safety: sole owner per the contract above.
                unsafe { drop(Box::from_raw(addr as *mut T)) };
            }),
            1,
            std::mem::size_of::<T>(),
        );
    }

    /// Defers recycling `batch` to `recycler` after a grace period — the
    /// QSBR analogue of
    /// [`Guard::defer_recycle`](crate::Guard::defer_recycle), keeping the
    /// arena path allocation-free on this backend too.
    ///
    /// # Safety
    ///
    /// Same contract as
    /// [`Guard::defer_recycle`](crate::Guard::defer_recycle): every batch
    /// pointer is unlinked, retired exactly once, and valid for
    /// `recycler`. `bytes` is the caller's estimate for the whole batch.
    pub unsafe fn defer_recycle(
        &self,
        recycler: Arc<dyn crate::Recycler>,
        batch: RecycleBatch,
        bytes: usize,
    ) {
        let objects = batch.len();
        self.inner
            .push_retired(Deferred::recycle(recycler, batch), objects, bytes);
    }

    /// Starts a new grace period and reclaims whatever is already safe,
    /// without blocking. Returns the number of callbacks executed.
    pub fn try_reclaim(&self) -> usize {
        // ordering: Relaxed — monotone counter bump; the safety ordering is
        // carried by the defer/quiescent fences and the seen/online
        // Release-Acquire pairs, not by the bump itself.
        self.inner.grace.fetch_add(1, Relaxed);
        self.inner.reclaim_upto(self.inner.min_seen())
    }

    /// Blocks until every online thread passes a quiescent state, then
    /// reclaims all garbage retired before the call.
    ///
    /// The calling thread's own handle (if any) must be offline or have
    /// announced a quiescent state it keeps renewing — in practice, call
    /// this from a thread without a handle, or after
    /// [`QsbrHandle::offline`].
    pub fn synchronize(&self) {
        // ordering: Relaxed — monotone counter bump; see `try_reclaim`.
        let target = self.inner.grace.fetch_add(1, Relaxed) + 1;
        while self.inner.min_seen() < target {
            thread::yield_now();
        }
        self.inner.reclaim_upto(target);
    }

    /// Total objects retired via `defer` / `defer_free`.
    pub fn retired(&self) -> u64 {
        // ordering: Relaxed — statistics snapshot.
        self.inner.retired.load(Relaxed)
    }

    /// Total deferred callbacks executed.
    pub fn freed(&self) -> u64 {
        // ordering: Relaxed — statistics snapshot.
        self.inner.freed.load(Relaxed)
    }

    /// Total bytes retired, per retirer estimates.
    pub fn bytes_retired(&self) -> u64 {
        // ordering: Relaxed — statistics snapshot.
        self.inner.retired_bytes.load(Relaxed)
    }

    /// Total bytes reclaimed.
    pub fn bytes_freed(&self) -> u64 {
        // ordering: Relaxed — statistics snapshot.
        self.inner.freed_bytes.load(Relaxed)
    }

    /// High-water mark of bytes retired but not yet reclaimed.
    pub fn peak_unreclaimed_bytes(&self) -> u64 {
        // ordering: Relaxed — statistics snapshot.
        self.inner.peak_unreclaimed_bytes.load(Relaxed)
    }

    /// Retirements still waiting for a grace period.
    pub fn pending(&self) -> usize {
        self.inner.garbage.lock().unwrap().len()
    }

    /// Number of currently registered threads.
    pub fn registered_threads(&self) -> usize {
        self.inner.registry.lock().unwrap().len()
    }

    /// A process-unique identity for this domain, stable for its lifetime.
    fn id(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// Runs `f` with a per-thread cached handle for this domain,
    /// registering one on first use.
    ///
    /// This is the ergonomic read-side entry point for code that does not
    /// want to thread a [`QsbrHandle`] around (the `bonsai` tree on this
    /// backend). The cached handle stays registered — and therefore
    /// *online, blocking grace periods* — until the thread exits or calls
    /// [`offline_tls`](Self::offline_tls); callers must announce progress
    /// via [`QsbrHandle::quiescent`] or [`QsbrHandle::tick`] inside `f` at
    /// operation boundaries.
    ///
    /// Under the model checker there is no TLS cache (thread-exit
    /// destructors run outside the scheduler, as with `Collector::pin`);
    /// each call registers and drops a fresh handle.
    pub fn with_tls_handle<R>(&self, f: impl FnOnce(&QsbrHandle) -> R) -> R {
        #[cfg(loom)]
        {
            let h = self.register();
            let r = f(&h);
            h.quiescent();
            r
        }
        #[cfg(not(loom))]
        {
            // `Option` dance: if TLS is gone (thread teardown), the closure
            // never runs and `f` survives for the fallback path below.
            let mut f = Some(f);
            let outcome = QSBR_HANDLES.try_with(|cache| {
                let mut cache = cache.borrow_mut();
                let id = self.id();
                let pos = match cache.iter().position(|(i, _)| *i == id) {
                    Some(p) => p,
                    None => {
                        cache.push((id, self.register()));
                        cache.len() - 1
                    }
                };
                // The handle is `!Sync` but never leaves this thread, and
                // the `RefCell` borrow outlives the call.
                (f.take().unwrap())(&cache[pos].1)
            });
            match outcome {
                Ok(r) => r,
                // TLS destructor already ran: fall back to a throwaway
                // registration.
                Err(_) => {
                    let h = self.register();
                    let r = (f.take().unwrap())(&h);
                    h.quiescent();
                    r
                }
            }
        }
    }

    /// Drops the calling thread's cached handle for this domain (if any),
    /// unregistering it so it no longer blocks grace periods.
    ///
    /// Call before [`synchronize`](Self::synchronize) on a thread that has
    /// used [`with_tls_handle`](Self::with_tls_handle): an online cached
    /// handle would make the wait deadlock on its own thread. A later
    /// `with_tls_handle` re-registers transparently.
    pub fn offline_tls(&self) {
        #[cfg(not(loom))]
        {
            let evicted = QSBR_HANDLES.try_with(|cache| {
                let mut cache = cache.borrow_mut();
                let id = self.id();
                cache
                    .iter()
                    .position(|(i, _)| *i == id)
                    .map(|p| cache.swap_remove(p))
            });
            // Dropped outside the `RefCell` borrow; unregistration takes
            // the registry lock.
            drop(evicted);
        }
    }
}

#[cfg(not(loom))]
thread_local! {
    /// Per-thread cache of QSBR handles, keyed by domain identity, backing
    /// [`QsbrDomain::with_tls_handle`].
    static QSBR_HANDLES: std::cell::RefCell<Vec<(usize, QsbrHandle)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl Default for QsbrDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for QsbrDomain {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl PartialEq for QsbrDomain {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for QsbrDomain {}

impl fmt::Debug for QsbrDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QsbrDomain")
            // ordering: Relaxed — diagnostic snapshot.
            .field("grace", &self.inner.grace.load(Relaxed))
            .field("pending", &self.pending())
            .finish_non_exhaustive()
    }
}

/// A thread's registration with a [`QsbrDomain`].
///
/// While online, the thread is assumed to be inside one long read-side
/// critical section, punctuated by [`quiescent`](Self::quiescent) calls.
pub struct QsbrHandle {
    domain: QsbrDomain,
    local: Arc<QsbrLocal>,
    /// Operation counter backing [`tick`](Self::tick).
    ticks: Cell<usize>,
    /// `Cell` is `Send + !Sync`: one thread at a time.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

impl QsbrHandle {
    /// Counts one operation and announces a quiescent state every
    /// `period`-th call (period is clamped to at least 1).
    ///
    /// This is the amortized form of [`quiescent`](Self::quiescent) for
    /// hot loops: the announcement costs a fence, so callers doing
    /// millions of short operations announce only periodically. The
    /// caller must hold no references across the call on the announcing
    /// iteration — which in practice means: hold none across *any* call,
    /// since which iteration announces is an implementation detail.
    ///
    /// Returns `true` on the announcing iterations, so a caller that also
    /// drives reclamation (e.g. a writer loop) can pace
    /// [`QsbrDomain::try_reclaim`] on the same cadence.
    pub fn tick(&self, period: usize) -> bool {
        let n = self.ticks.get() + 1;
        if n >= period.max(1) {
            self.ticks.set(0);
            self.quiescent();
            true
        } else {
            self.ticks.set(n);
            false
        }
    }

    /// Announces a quiescent state: the thread holds no references obtained
    /// before this call (the analogue of `rcu_quiescent_state`).
    pub fn quiescent(&self) {
        // ordering: Relaxed — validated by the fence below: the announced
        // value only matters relative to retirements, and the fence pins
        // down which side of each retirement this sample fell on.
        let g = self.domain.inner.grace.load(Relaxed);
        // ordering: SeqCst fence — the announce-side half of the retire
        // Dekker, paired with the fence in `QsbrDomain::defer`: if this
        // thread announces `seen >= tag` for some retirement, its grace
        // sample observed a counter value the retirer had not yet seen, so
        // in the SC order of fences the retirer's fence comes first and
        // this thread's post-quiescent reads are guaranteed to see the
        // unlink — it can never re-acquire the retired object. Placed
        // before the store so the announcement itself cannot overtake the
        // sample.
        fence(SeqCst);
        // ordering: Release — pairs with `min_seen`'s Acquire load: every
        // read this thread made before the announcement happens-before any
        // free the announcement permits.
        self.local.seen.store(g, Release);
    }

    /// Marks the thread offline: it promises to hold no references and stops
    /// participating in grace periods (the analogue of
    /// `rcu_thread_offline`), e.g. before blocking on I/O.
    pub fn offline(&self) {
        // ordering: Release — pairs with `min_seen`'s Acquire load on the
        // online flag: everything read before going offline happens-before
        // reclaims that skip this thread.
        self.local.online.store(false, Release);
    }

    /// Brings the thread back online. Implies a quiescent state.
    pub fn online(&self) {
        self.quiescent();
        // ordering: Relaxed — the flag itself publishes nothing (the
        // quiescent announcement above carries the Release edge); the
        // fence below is what orders it.
        self.local.online.store(true, Relaxed);
        // ordering: SeqCst fence (StoreLoad) — the online-publication
        // fence, as in urcu's `rcu_thread_online`: the flag store must be
        // globally visible before this thread's first post-online read. A
        // reclaimer's scan either sees us online (and then waits for an
        // announcement newer than the retirement), or ran before the store
        // — in which case the grace counter it used predates our
        // `quiescent` sample above, and the quiescent Dekker already
        // guarantees our post-fence reads see the corresponding unlinks.
        // Without the fence, our first read could overtake the buffered
        // flag store, acquire a reference the scan never knew about, and
        // have it freed underneath us.
        fence(SeqCst);
    }

    /// Whether this thread currently participates in grace periods.
    pub fn is_online(&self) -> bool {
        // ordering: Relaxed — reading our own thread's flag.
        self.local.online.load(Relaxed)
    }

    /// The grace-counter value this thread last observed.
    pub fn last_seen(&self) -> u64 {
        // ordering: Relaxed — reading our own thread's announcement.
        self.local.seen.load(Relaxed)
    }

    /// The domain this handle is registered with.
    pub fn domain(&self) -> &QsbrDomain {
        &self.domain
    }
}

impl Drop for QsbrHandle {
    fn drop(&mut self) {
        let local = &self.local;
        self.domain
            .inner
            .registry
            .lock()
            .unwrap()
            .retain(|l| !Arc::ptr_eq(l, local));
    }
}

impl fmt::Debug for QsbrHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QsbrHandle")
            .field("online", &self.is_online())
            .field("last_seen", &self.last_seen())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn reclaim_waits_for_quiescent_states() {
        let d = QsbrDomain::new();
        let h1 = d.register();
        let h2 = d.register();
        let counter = Arc::new(AtomicUsize::new(0));
        let n = counter.clone();
        d.defer(move || {
            n.fetch_add(1, SeqCst);
        });
        assert_eq!(d.try_reclaim(), 0);
        h1.quiescent();
        // h2 has not passed a quiescent state yet.
        assert_eq!(d.try_reclaim(), 0);
        assert_eq!(counter.load(SeqCst), 0);
        h2.quiescent();
        h1.quiescent();
        assert_eq!(d.try_reclaim(), 1);
        assert_eq!(counter.load(SeqCst), 1);
        assert_eq!(d.retired(), 1);
        assert_eq!(d.freed(), 1);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn offline_threads_do_not_block_grace_periods() {
        let d = QsbrDomain::new();
        let h1 = d.register();
        let h2 = d.register();
        let counter = Arc::new(AtomicUsize::new(0));
        let n = counter.clone();
        d.defer(move || {
            n.fetch_add(1, SeqCst);
        });
        h2.offline();
        assert!(!h2.is_online());
        h1.quiescent();
        // Only h1 is online; one more grace bump and its quiescent state
        // suffice.
        d.try_reclaim();
        h1.quiescent();
        assert_eq!(d.try_reclaim(), 1);
        assert_eq!(counter.load(SeqCst), 1);
        h2.online();
        assert!(h2.is_online());
    }

    #[test]
    fn synchronize_blocks_until_threads_quiesce() {
        let d = QsbrDomain::new();
        let stop = Arc::new(AtomicBool::new(false));
        let counter = Arc::new(AtomicUsize::new(0));
        let worker = {
            let d = d.clone();
            let stop = stop.clone();
            thread::spawn(move || {
                let h = d.register();
                while !stop.load(SeqCst) {
                    h.quiescent();
                    thread::yield_now();
                }
            })
        };
        let n = counter.clone();
        d.defer(move || {
            n.fetch_add(1, SeqCst);
        });
        d.synchronize();
        assert_eq!(counter.load(SeqCst), 1);
        stop.store(true, SeqCst);
        worker.join().unwrap();
        assert_eq!(d.registered_threads(), 0);
    }

    #[test]
    fn tick_announces_every_period() {
        let d = QsbrDomain::new();
        let h = d.register();
        let counter = Arc::new(AtomicUsize::new(0));
        let n = counter.clone();
        d.defer(move || {
            n.fetch_add(1, SeqCst);
        });
        d.try_reclaim();
        // Two sub-period ticks announce nothing...
        h.tick(3);
        h.tick(3);
        assert_eq!(d.try_reclaim(), 0);
        // ...the third crosses the period and announces; one more announced
        // tick after the bump completes the grace period.
        h.tick(3);
        h.tick(1);
        assert_eq!(d.try_reclaim(), 1);
        assert_eq!(counter.load(SeqCst), 1);
    }

    #[test]
    fn tls_handle_is_cached_and_offlined() {
        let d = QsbrDomain::new();
        assert_eq!(d.registered_threads(), 0);
        d.with_tls_handle(|h| h.quiescent());
        d.with_tls_handle(|h| h.quiescent());
        // One cached registration, not one per call.
        assert_eq!(d.registered_threads(), 1);
        // While cached (and online), the handle blocks grace periods unless
        // it keeps announcing; offline_tls unregisters it so synchronize
        // from this same thread cannot deadlock on itself.
        d.offline_tls();
        assert_eq!(d.registered_threads(), 0);
        let counter = Arc::new(AtomicUsize::new(0));
        let n = counter.clone();
        d.defer(move || {
            n.fetch_add(1, SeqCst);
        });
        d.synchronize();
        assert_eq!(counter.load(SeqCst), 1);
        // A later call transparently re-registers.
        d.with_tls_handle(|h| h.quiescent());
        assert_eq!(d.registered_threads(), 1);
        d.offline_tls();
    }

    #[test]
    fn byte_accounting_tracks_defer_free() {
        let d = QsbrDomain::new();
        let p = Box::into_raw(Box::new(7u64));
        // Safety: just unlinked, freed only here.
        unsafe { d.defer_free(p) };
        assert_eq!(d.retired(), 1);
        assert_eq!(d.bytes_retired(), 8);
        assert_eq!(d.peak_unreclaimed_bytes(), 8);
        d.synchronize();
        assert_eq!(d.freed(), 1);
        assert_eq!(d.bytes_freed(), 8);
        assert_eq!(d.peak_unreclaimed_bytes(), 8);
    }

    #[test]
    fn domain_drop_fires_pending_garbage() {
        static FIRED: AtomicUsize = AtomicUsize::new(0);
        let d = QsbrDomain::new();
        let h = d.register();
        d.defer(|| {
            FIRED.fetch_add(1, SeqCst);
        });
        drop(h);
        drop(d);
        assert_eq!(FIRED.load(SeqCst), 1);
    }
}
