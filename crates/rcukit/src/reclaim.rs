//! The pluggable retire/reclaim contract: one handle type over the four
//! reclamation backends, so higher layers (the `bonsai` tree, the bench
//! harness) choose a memory-reclamation strategy at construction time
//! instead of hard-coding the epoch collector.
//!
//! | backend | protection | garbage bound under a stalled reader |
//! |---------|------------|--------------------------------------|
//! | [`Epoch`](ReclaimBackend::Epoch) | pinned critical sections (grace periods) | **unbounded** — one stuck pin blocks every later retirement |
//! | [`Qsbr`](ReclaimBackend::Qsbr) | quiescent-state announcements | **unbounded** — one silent online thread blocks everything |
//! | [`Hp`](ReclaimBackend::Hp) | per-pointer hazard slots | `scan_threshold + records × HP_SLOTS` objects, by construction |
//! | [`Hybrid`](ReclaimBackend::Hybrid) | pinned era intervals (IBR) | the stall-time live set — new retirements route around the stalled pin (budgeted, observable via `stall_events`/`degraded_ops`) |
//!
//! The enum is deliberately not a trait object: the backends' read-side
//! protocols differ too much to hide behind one dynamic interface (epoch
//! readers hold a [`Guard`](crate::Guard), QSBR readers just stay online,
//! HP readers publish-and-validate per pointer), and callers dispatch on
//! the variant exactly where those protocols diverge.
//!
//! # Share-aware retirement (what "retired" promises)
//!
//! Every backend's retire path assumes one thing of its callers: a
//! retired object is **unreachable from every published entry point** at
//! the moment of the retire call, so only readers already inside a
//! critical section can still hold it — the grace condition then covers
//! exactly those readers. Callers whose objects are shared between
//! several entry points (the `bonsai` tree's structurally-shared forks,
//! where one node may be reachable from many roots) must therefore retire
//! an object only when its *last* referent drops it — which is why the
//! tree retires through per-node reference counts and hands a node over
//! only at count zero, never merely "when this lineage replaced it". The
//! backends themselves need no change for sharing: reachability
//! bookkeeping happens above, the grace period below, and this line is
//! the contract between them (`docs/CONCURRENCY.md` §9).

use std::fmt;
use std::sync::atomic::Ordering::Relaxed;

use crate::sync::atomic::AtomicU64;
use crate::{Collector, HpDomain, HybridDomain, QsbrDomain};

/// Tracks a byte-count increase against its high-water mark.
///
/// Shared by all the backends' retire paths. Written as a CAS loop, not
/// `fetch_max`: the sync facade (and the model checker behind it) exposes
/// only the audited RMW surface, and a lost race here merely under-reports
/// a transient peak by one in-flight retirement.
pub(crate) fn note_unreclaimed(cur: &AtomicU64, peak: &AtomicU64, bytes: u64) {
    if bytes == 0 {
        return;
    }
    // ordering: Relaxed — statistics counter; the value feeds no safety
    // decision.
    let now = cur.fetch_add(bytes, Relaxed) + bytes;
    // ordering: Relaxed (all) — monotone max maintenance on a statistics
    // counter; no data is published through it.
    let mut seen = peak.load(Relaxed);
    while seen < now {
        match peak.compare_exchange(seen, now, Relaxed, Relaxed) {
            Ok(_) => break,
            Err(s) => seen = s,
        }
    }
}

/// A unified counter snapshot across backends (each backend's native stats
/// carry more detail; these are the comparable core).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclaimStats {
    /// Total heap objects retired (batch pointers count individually).
    pub objects_retired: u64,
    /// Total heap objects reclaimed.
    pub objects_freed: u64,
    /// Total bytes retired, per retirer estimates.
    pub bytes_retired: u64,
    /// Total bytes reclaimed.
    pub bytes_freed: u64,
    /// High-water mark of `bytes_retired - bytes_freed` — the
    /// bounded-garbage gauge the `stalled-reader` benchmark compares.
    pub peak_unreclaimed_bytes: u64,
    /// Times a reader pin was declared stalled (hybrid backend only; the
    /// other backends report 0 — they have no degradation protocol).
    pub stall_events: u64,
    /// Retirements performed while a stalled pin was active (hybrid
    /// backend only).
    pub degraded_ops: u64,
}

impl ReclaimStats {
    /// Objects retired but not yet reclaimed.
    pub fn outstanding(&self) -> u64 {
        self.objects_retired - self.objects_freed
    }
}

/// A handle to one of the four reclamation backends.
///
/// Cheaply clonable (each variant is itself a cheap handle); clones refer
/// to the same underlying domain.
#[derive(Clone, PartialEq, Eq)]
pub enum ReclaimBackend {
    /// Epoch-based reclamation: readers pin, retirements wait out a grace
    /// period of two epoch advances.
    Epoch(Collector),
    /// Quiescent-state-based reclamation: readers are implicitly inside a
    /// critical section until they announce quiescence.
    Qsbr(QsbrDomain),
    /// Hazard pointers: readers protect specific pointers; garbage is
    /// bounded by construction.
    Hp(HpDomain),
    /// Hybrid interval-based reclamation: epoch-cheap pins that degrade
    /// gracefully (budgeted, observable) under a stalled reader.
    Hybrid(HybridDomain),
}

/// Which backend a [`ReclaimBackend`] wraps (a data-less mirror for match
/// tables and config parsing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReclaimKind {
    /// Epoch-based reclamation ([`Collector`]).
    Epoch,
    /// Quiescent-state-based reclamation ([`QsbrDomain`]).
    Qsbr,
    /// Hazard pointers ([`HpDomain`]).
    Hp,
    /// Hybrid interval-based reclamation ([`HybridDomain`]).
    Hybrid,
}

impl ReclaimKind {
    /// The stable lowercase name used in benchmark output and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            ReclaimKind::Epoch => "epoch",
            ReclaimKind::Qsbr => "qsbr",
            ReclaimKind::Hp => "hp",
            ReclaimKind::Hybrid => "hybrid",
        }
    }
}

impl ReclaimBackend {
    /// A fresh backend of the given kind with default tuning.
    pub fn new(kind: ReclaimKind) -> Self {
        match kind {
            ReclaimKind::Epoch => ReclaimBackend::Epoch(Collector::new()),
            ReclaimKind::Qsbr => ReclaimBackend::Qsbr(QsbrDomain::new()),
            ReclaimKind::Hp => ReclaimBackend::Hp(HpDomain::new()),
            ReclaimKind::Hybrid => ReclaimBackend::Hybrid(HybridDomain::new()),
        }
    }

    /// Which backend this is.
    pub fn kind(&self) -> ReclaimKind {
        match self {
            ReclaimBackend::Epoch(_) => ReclaimKind::Epoch,
            ReclaimBackend::Qsbr(_) => ReclaimKind::Qsbr,
            ReclaimBackend::Hp(_) => ReclaimKind::Hp,
            ReclaimBackend::Hybrid(_) => ReclaimKind::Hybrid,
        }
    }

    /// The backend's stable name (`"epoch"` / `"qsbr"` / `"hp"` /
    /// `"hybrid"`).
    pub fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Drains everything currently drainable, blocking where the backend's
    /// contract requires it:
    ///
    /// * epoch — waits out a full grace period (the calling thread must not
    ///   be pinned);
    /// * QSBR — offlines the calling thread's cached handle (it cannot wait
    ///   on itself), then waits for every other online thread to quiesce;
    /// * hazard pointers — runs one scan (no grace period exists; whatever
    ///   a live session still protects remains, by design);
    /// * hybrid — runs one scan (likewise: whatever a live pin's interval
    ///   overlaps remains — the budgeted blocked set).
    pub fn synchronize(&self) {
        match self {
            ReclaimBackend::Epoch(c) => c.synchronize(),
            ReclaimBackend::Qsbr(d) => {
                d.offline_tls();
                d.synchronize();
            }
            ReclaimBackend::Hp(d) => d.synchronize(),
            ReclaimBackend::Hybrid(d) => d.synchronize(),
        }
    }

    /// One non-blocking reclamation step (epoch advance + reclaim, a grace
    /// bump + reclaim, or a hazard scan). Returns objects freed.
    pub fn collect(&self) -> usize {
        match self {
            ReclaimBackend::Epoch(c) => c.collect(),
            ReclaimBackend::Qsbr(d) => d.try_reclaim(),
            ReclaimBackend::Hp(d) => d.scan(),
            ReclaimBackend::Hybrid(d) => d.scan(),
        }
    }

    /// The unified counter snapshot.
    pub fn stats(&self) -> ReclaimStats {
        match self {
            ReclaimBackend::Epoch(c) => {
                let s = c.stats();
                ReclaimStats {
                    objects_retired: s.objects_retired,
                    objects_freed: s.objects_freed,
                    bytes_retired: s.bytes_retired,
                    bytes_freed: s.bytes_freed,
                    peak_unreclaimed_bytes: s.peak_unreclaimed_bytes,
                    ..Default::default()
                }
            }
            ReclaimBackend::Qsbr(d) => ReclaimStats {
                objects_retired: d.retired(),
                objects_freed: d.freed(),
                bytes_retired: d.bytes_retired(),
                bytes_freed: d.bytes_freed(),
                peak_unreclaimed_bytes: d.peak_unreclaimed_bytes(),
                ..Default::default()
            },
            ReclaimBackend::Hp(d) => ReclaimStats {
                objects_retired: d.retired(),
                objects_freed: d.freed(),
                bytes_retired: d.bytes_retired(),
                bytes_freed: d.bytes_freed(),
                peak_unreclaimed_bytes: d.peak_unreclaimed_bytes(),
                ..Default::default()
            },
            ReclaimBackend::Hybrid(d) => ReclaimStats {
                objects_retired: d.retired(),
                objects_freed: d.freed(),
                bytes_retired: d.bytes_retired(),
                bytes_freed: d.bytes_freed(),
                peak_unreclaimed_bytes: d.peak_unreclaimed_bytes(),
                stall_events: d.stall_events(),
                degraded_ops: d.degraded_ops(),
            },
        }
    }

    /// The epoch collector, if that is the wrapped backend.
    pub fn as_epoch(&self) -> Option<&Collector> {
        match self {
            ReclaimBackend::Epoch(c) => Some(c),
            _ => None,
        }
    }

    /// The QSBR domain, if that is the wrapped backend.
    pub fn as_qsbr(&self) -> Option<&QsbrDomain> {
        match self {
            ReclaimBackend::Qsbr(d) => Some(d),
            _ => None,
        }
    }

    /// The hazard-pointer domain, if that is the wrapped backend.
    pub fn as_hp(&self) -> Option<&HpDomain> {
        match self {
            ReclaimBackend::Hp(d) => Some(d),
            _ => None,
        }
    }

    /// The hybrid domain, if that is the wrapped backend.
    pub fn as_hybrid(&self) -> Option<&HybridDomain> {
        match self {
            ReclaimBackend::Hybrid(d) => Some(d),
            _ => None,
        }
    }
}

impl fmt::Debug for ReclaimBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ReclaimBackend").field(&self.name()).finish()
    }
}

impl From<Collector> for ReclaimBackend {
    fn from(c: Collector) -> Self {
        ReclaimBackend::Epoch(c)
    }
}

impl From<QsbrDomain> for ReclaimBackend {
    fn from(d: QsbrDomain) -> Self {
        ReclaimBackend::Qsbr(d)
    }
}

impl From<HpDomain> for ReclaimBackend {
    fn from(d: HpDomain) -> Self {
        ReclaimBackend::Hp(d)
    }
}

impl From<HybridDomain> for ReclaimBackend {
    fn from(d: HybridDomain) -> Self {
        ReclaimBackend::Hybrid(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
    use std::sync::Arc;

    #[test]
    fn peak_tracks_high_water_mark() {
        let cur = AtomicU64::new(0);
        let peak = AtomicU64::new(0);
        note_unreclaimed(&cur, &peak, 10);
        note_unreclaimed(&cur, &peak, 5);
        assert_eq!(peak.load(Relaxed), 15);
        // Drain and retire less: the peak must hold.
        cur.fetch_sub(15, Relaxed);
        note_unreclaimed(&cur, &peak, 3);
        assert_eq!(peak.load(Relaxed), 15);
        assert_eq!(cur.load(Relaxed), 3);
    }

    #[test]
    fn every_backend_drains_at_synchronize() {
        for kind in [
            ReclaimKind::Epoch,
            ReclaimKind::Qsbr,
            ReclaimKind::Hp,
            ReclaimKind::Hybrid,
        ] {
            let backend = ReclaimBackend::new(kind);
            assert_eq!(backend.kind(), kind);
            let fired = Arc::new(AtomicUsize::new(0));
            for _ in 0..4 {
                let f = Arc::clone(&fired);
                match &backend {
                    ReclaimBackend::Epoch(c) => {
                        let h = c.register();
                        h.pin().defer(move || {
                            f.fetch_add(1, SeqCst);
                        });
                    }
                    ReclaimBackend::Qsbr(d) => d.defer(move || {
                        f.fetch_add(1, SeqCst);
                    }),
                    ReclaimBackend::Hp(d) => d.defer(move || {
                        f.fetch_add(1, SeqCst);
                    }),
                    ReclaimBackend::Hybrid(d) => d.defer(move || {
                        f.fetch_add(1, SeqCst);
                    }),
                }
            }
            backend.synchronize();
            assert_eq!(fired.load(SeqCst), 4, "{} did not drain", backend.name());
            let s = backend.stats();
            assert_eq!(s.objects_retired, 4);
            assert_eq!(s.objects_freed, 4);
            assert_eq!(s.outstanding(), 0);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ReclaimBackend::new(ReclaimKind::Epoch).name(), "epoch");
        assert_eq!(ReclaimBackend::new(ReclaimKind::Qsbr).name(), "qsbr");
        assert_eq!(ReclaimBackend::new(ReclaimKind::Hp).name(), "hp");
        assert_eq!(ReclaimBackend::new(ReclaimKind::Hybrid).name(), "hybrid");
    }
}
