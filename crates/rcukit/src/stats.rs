//! Observability counters for a [`Collector`](crate::Collector).

/// A point-in-time snapshot of a collector's counters, from
/// [`Collector::stats`](crate::Collector::stats).
///
/// All `objects_*` counters are in units of *heap objects*: one
/// `defer_free` retires one allocation, and every pointer in a
/// `defer_recycle` batch counts individually (a PR 1 regression counted
/// the whole batch as one unit; fixed). The one opaque case is a plain
/// `defer` closure, which counts as a single object with a byte estimate
/// of zero — the collector cannot see inside it. `objects_retired -
/// objects_freed` equals the number of objects still waiting for a grace
/// period (also broken out as `pending_objects`). After a
/// [`synchronize`](crate::Collector::synchronize) with no concurrent
/// writers, retired and freed converge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Current value of the global epoch.
    pub global_epoch: u64,
    /// Total number of successful epoch advances since creation.
    pub epochs_advanced: u64,
    /// Total heap objects retired via `defer` / `defer_free` /
    /// `defer_recycle` (see the struct docs: batch pointers count
    /// individually; an opaque closure counts once).
    pub objects_retired: u64,
    /// Total heap objects reclaimed by executed retirements.
    pub objects_freed: u64,
    /// Total bytes retired, per the retirer's estimate: `defer_free`
    /// contributes the payload size, `defer_recycle` the caller's explicit
    /// byte count, an opaque `defer` closure zero.
    pub bytes_retired: u64,
    /// Total bytes reclaimed by executed retirements.
    pub bytes_freed: u64,
    /// High-water mark of `bytes_retired - bytes_freed` over the
    /// collector's lifetime — the bounded-garbage gauge: under a stalled
    /// reader this grows without bound for epoch-based reclamation, which
    /// is exactly what the `stalled-reader` benchmark profile measures.
    pub peak_unreclaimed_bytes: u64,
    /// Deferred `Call` callbacks that panicked while the reclaim loop ran
    /// them. The panic is caught inside the bag drain (the rest of the bag
    /// still reclaims, and the unit still counts as freed — its closure was
    /// consumed); a nonzero value means a retirement destructor is buggy.
    pub callback_panics: u64,
    /// Bags (local and sealed) still holding retirements.
    pub pending_bags: usize,
    /// Heap objects still waiting for their grace period.
    pub pending_objects: usize,
    /// Threads currently registered with the collector.
    pub registered_threads: usize,
    /// Number of registry shards (derived from the machine's available
    /// parallelism unless overridden by `Collector::with_shards`).
    pub registry_shards: usize,
    /// Diagnostic: total registry-lock acquisitions across all shards since
    /// creation (registration, unregistration, epoch-advance scans, and
    /// `stats` itself — one per shard per call). Counted in **debug builds
    /// only** (always 0 in release — a shared counter on the lock path
    /// would reintroduce the cross-shard cache-line traffic the sharding
    /// removed). Reader pin/unpin never moves it; the hot-path regression
    /// test asserts exactly that.
    pub registry_locks: u64,
}

impl CollectorStats {
    /// Retirements not yet reclaimed (`objects_retired - objects_freed`).
    pub fn outstanding(&self) -> u64 {
        self.objects_retired - self.objects_freed
    }
}

#[cfg(test)]
mod tests {
    use crate::Collector;

    #[test]
    fn counters_track_retire_and_free() {
        let c = Collector::new();
        let h = c.register();
        {
            let g = h.pin();
            for _ in 0..5 {
                g.defer(|| {});
            }
        }
        let before = c.stats();
        assert_eq!(before.objects_retired, 5);
        c.synchronize();
        let after = c.stats();
        assert_eq!(after.objects_retired, 5);
        assert_eq!(after.objects_freed, 5);
        assert_eq!(after.outstanding(), 0);
        assert_eq!(after.pending_objects, 0);
        assert_eq!(after.pending_bags, 0);
        assert!(after.epochs_advanced >= 2);
        assert_eq!(after.registered_threads, 1);
        assert!(after.registry_shards >= 1);
        // Registration, advance scans, and the stats calls themselves all
        // take registry locks; the (debug-only) counter must be moving.
        if cfg!(debug_assertions) {
            assert!(after.registry_locks > before.registry_locks);
        }
    }

    #[test]
    fn panicking_callback_is_counted_and_bag_still_drains() {
        let c = Collector::new();
        let h = c.register();
        let ran = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        {
            let g = h.pin();
            let r = ran.clone();
            g.defer(move || {
                r.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
            g.defer(|| panic!("deliberate callback panic"));
            let r = ran.clone();
            g.defer(move || {
                r.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        }
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
        c.synchronize();
        std::panic::set_hook(prev);
        let s = c.stats();
        // The panicking unit did not abort the drain: everything freed.
        assert_eq!(s.objects_retired, 3);
        assert_eq!(s.objects_freed, 3);
        assert_eq!(s.callback_panics, 1);
        assert_eq!(ran.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn default_is_zeroed() {
        let s = super::CollectorStats::default();
        assert_eq!(s.outstanding(), 0);
        assert_eq!(s.global_epoch, 0);
    }
}
