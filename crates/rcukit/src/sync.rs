//! Synchronization-primitive facade: `std` in normal builds, the
//! [`loomette`] model checker's instrumented types under `--cfg loom`.
//!
//! Everything concurrency-relevant in this crate goes through this module,
//! so the model-checking test tier (`tests/loom.rs`, built with
//! `RUSTFLAGS="--cfg loom"`) explores real collector code, not a
//! transliteration. The shimmed surface is exactly what the epoch protocol
//! touches: atomics, fences, and mutexes. `Arc`, `thread_local!`, and
//! `Cell` stay `std` — they are either thread-local or internally
//! synchronized in ways the scheduler does not need to interleave.
//!
//! [`loomette`]: https://docs.rs/loom (API-compatible subset, vendored
//! in-tree as `crates/loomette` because this build environment is offline)

#[cfg(not(loom))]
pub(crate) use std::sync::{Mutex, MutexGuard};

#[cfg(not(loom))]
pub(crate) mod atomic {
    pub(crate) use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize};
}

#[cfg(loom)]
pub(crate) use loomette::sync::{Mutex, MutexGuard};

#[cfg(loom)]
pub(crate) mod atomic {
    pub(crate) use loomette::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize};
}
