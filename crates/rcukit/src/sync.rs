//! Synchronization-primitive facade: `std` in normal builds, the
//! [`loomette`] model checker's instrumented types under `--cfg loom`.
//!
//! Everything concurrency-relevant in this crate goes through this module,
//! so the model-checking test tier (`tests/loom.rs`, built with
//! `RUSTFLAGS="--cfg loom"`) explores real collector code, not a
//! transliteration. The shimmed surface is exactly what the epoch protocol
//! touches: atomics, fences, and mutexes. `Arc`, `thread_local!`, and
//! `Cell` stay `std` — they are either thread-local or internally
//! synchronized in ways the scheduler does not need to interleave.
//!
//! In normal builds the atomic types are thin wrappers over `std`'s that
//! additionally maintain a **debug-only census of SeqCst read-modify-writes**
//! (see [`atomic::seqcst_rmw_count`]). The epoch protocol's invariant after
//! the ordering audit is that no atomic *operation* uses `SeqCst` — every
//! remaining sequentially consistent point is an explicit
//! [`atomic::fence`] — and in particular the read-side pin/unpin path
//! performs zero SeqCst RMWs. The pin-flatness regression test asserts
//! that via this census. Release builds compile the census away; the
//! wrappers are `#[repr(transparent)]` and fully inlined.
//!
//! [`loomette`]: https://docs.rs/loom (API-compatible subset, vendored
//! in-tree as `crates/loomette` because this build environment is offline)

#[cfg(not(loom))]
pub(crate) use std::sync::{Mutex, MutexGuard};

#[cfg(not(loom))]
pub(crate) mod atomic {
    use std::sync::atomic::Ordering;

    pub(crate) use std::sync::atomic::fence;

    /// Debug-only census of atomic read-modify-writes issued with
    /// `Ordering::SeqCst` through this facade, process-wide. The ordering
    /// audit's contract is that there are none anywhere in the crate (all
    /// remaining SeqCst points are explicit fences); the hot-path
    /// regression test pins in a loop and asserts the census stays flat.
    #[cfg(debug_assertions)]
    static SEQCST_RMWS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

    /// Current value of the SeqCst-RMW census. Debug builds only — release
    /// builds omit the bookkeeping entirely.
    #[cfg(debug_assertions)]
    #[cfg_attr(not(test), allow(dead_code))] // consumed by the pin-flatness test
    pub(crate) fn seqcst_rmw_count() -> u64 {
        // ordering: Relaxed — diagnostic counter.
        SEQCST_RMWS.load(Ordering::Relaxed)
    }

    /// Tallies one RMW if it was issued with `SeqCst` (debug builds).
    #[inline]
    fn note_rmw(order: Ordering) {
        #[cfg(debug_assertions)]
        if order == Ordering::SeqCst {
            // ordering: Relaxed — diagnostic counter.
            SEQCST_RMWS.fetch_add(1, Ordering::Relaxed);
        }
        #[cfg(not(debug_assertions))]
        let _ = order;
    }

    /// A `std` atomic wrapper whose RMW entry points feed the census.
    /// Plain loads and stores delegate directly — the census tracks
    /// read-modify-writes, the operations whose `SeqCst` form buys a full
    /// barrier per call.
    macro_rules! counting_atomic {
        ($name:ident, $prim:ty, $std:path) => {
            #[repr(transparent)]
            pub(crate) struct $name($std);

            #[allow(dead_code)] // facade: not every type uses every method
            impl $name {
                #[inline]
                pub(crate) const fn new(v: $prim) -> Self {
                    Self(<$std>::new(v))
                }

                #[inline]
                pub(crate) fn load(&self, order: Ordering) -> $prim {
                    self.0.load(order)
                }

                #[inline]
                pub(crate) fn store(&self, val: $prim, order: Ordering) {
                    self.0.store(val, order);
                }

                #[inline]
                pub(crate) fn swap(&self, val: $prim, order: Ordering) -> $prim {
                    note_rmw(order);
                    self.0.swap(val, order)
                }

                #[inline]
                pub(crate) fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    note_rmw(success);
                    self.0.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    /// Adds the numeric fetch ops to a [`counting_atomic!`] type.
    macro_rules! counting_fetch_arith {
        ($name:ident, $prim:ty) => {
            #[allow(dead_code)] // facade: not every type uses every method
            impl $name {
                #[inline]
                pub(crate) fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                    note_rmw(order);
                    self.0.fetch_add(val, order)
                }

                #[inline]
                pub(crate) fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                    note_rmw(order);
                    self.0.fetch_sub(val, order)
                }
            }
        };
    }

    counting_atomic!(AtomicU64, u64, std::sync::atomic::AtomicU64);
    counting_atomic!(AtomicUsize, usize, std::sync::atomic::AtomicUsize);
    counting_atomic!(AtomicBool, bool, std::sync::atomic::AtomicBool);
    counting_fetch_arith!(AtomicU64, u64);
    counting_fetch_arith!(AtomicUsize, usize);

    /// Generic pointer atomic feeding the same census (the
    /// `counting_atomic!` macro cannot mint a generic type, so this one is
    /// written out by hand).
    #[repr(transparent)]
    pub(crate) struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

    #[allow(dead_code)] // facade: not every user touches every method
    impl<T> AtomicPtr<T> {
        #[inline]
        pub(crate) const fn new(v: *mut T) -> Self {
            Self(std::sync::atomic::AtomicPtr::new(v))
        }

        #[inline]
        pub(crate) fn load(&self, order: Ordering) -> *mut T {
            self.0.load(order)
        }

        #[inline]
        pub(crate) fn store(&self, val: *mut T, order: Ordering) {
            self.0.store(val, order);
        }

        #[inline]
        pub(crate) fn swap(&self, val: *mut T, order: Ordering) -> *mut T {
            note_rmw(order);
            self.0.swap(val, order)
        }

        #[inline]
        pub(crate) fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            note_rmw(success);
            self.0.compare_exchange(current, new, success, failure)
        }
    }
}

#[cfg(loom)]
pub(crate) use loomette::sync::{Mutex, MutexGuard};

#[cfg(loom)]
pub(crate) mod atomic {
    pub(crate) use loomette::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize};
}
