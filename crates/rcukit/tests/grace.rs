//! Cross-thread grace-period safety tests.
//!
//! The property under test: a deferred callback never fires while any guard
//! that was pinned in the retiring epoch (i.e. could have observed the
//! retired object) is still live.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Barrier};
use std::thread;

use rcukit::Collector;

/// A reader thread pins and parks; the writer retires a callback and drives
/// the collector as hard as it can. The callback must not fire until the
/// reader unpins.
#[test]
fn callback_blocked_by_pinned_reader_in_retiring_epoch() {
    let collector = Collector::new();
    let pinned = Arc::new(Barrier::new(2));
    let release = Arc::new(AtomicBool::new(false));

    let reader = {
        let collector = collector.clone();
        let pinned = pinned.clone();
        let release = release.clone();
        thread::spawn(move || {
            let handle = collector.register();
            let guard = handle.pin();
            pinned.wait(); // writer may now retire
            while !release.load(SeqCst) {
                thread::yield_now();
            }
            drop(guard);
        })
    };

    pinned.wait(); // reader is pinned in the current (retiring) epoch
    let fired = Arc::new(AtomicBool::new(false));
    let handle = collector.register();
    {
        let guard = handle.pin();
        let fired = fired.clone();
        guard.defer(move || {
            fired.store(true, SeqCst);
        });
    }
    // Drive the collector aggressively: with the reader still pinned in the
    // retiring epoch, the grace period cannot complete.
    for _ in 0..1000 {
        collector.collect();
        assert!(
            !fired.load(SeqCst),
            "deferred callback fired while a guard pinned in the retiring epoch was live"
        );
    }

    release.store(true, SeqCst);
    reader.join().unwrap();
    collector.synchronize();
    assert!(
        fired.load(SeqCst),
        "callback must fire once the reader unpins"
    );
}

const MAGIC: u64 = 0xA11C_E55E;
const DEAD: u64 = 0xDEAD_DEAD;

/// A published slot carrying a canary. Retirement marks the canary DEAD via
/// `defer` (the allocation itself is freed after the test), so a reader
/// observing DEAD under a pinned guard is a deterministic grace-period
/// violation rather than use-after-free UB.
struct Slot {
    canary: AtomicU64,
}

#[test]
fn stress_readers_never_observe_retired_slot() {
    // Miri interprets ~1000x slower; a few hundred swaps still cross many
    // grace periods and give the UB detector real retire/reclaim traffic.
    const READERS: usize = if cfg!(miri) { 2 } else { 4 };
    const SWAPS: usize = if cfg!(miri) { 300 } else { 20_000 };

    let collector = Collector::new();
    let shared = Arc::new(AtomicU64::new(Box::into_raw(Box::new(Slot {
        canary: AtomicU64::new(MAGIC),
    })) as u64));
    let done = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(READERS + 1));
    let violations = Arc::new(AtomicUsize::new(0));

    let mut threads = Vec::new();
    for _ in 0..READERS {
        let collector = collector.clone();
        let shared = shared.clone();
        let done = done.clone();
        let start = start.clone();
        let violations = violations.clone();
        threads.push(thread::spawn(move || {
            let handle = collector.register();
            start.wait();
            while !done.load(SeqCst) {
                let guard = handle.pin();
                let p = shared.load(SeqCst) as *const Slot;
                // Safety: the slot was published and the pinned guard keeps
                // its retirement callback from running.
                let canary = unsafe { (*p).canary.load(SeqCst) };
                if canary != MAGIC {
                    violations.fetch_add(1, SeqCst);
                }
                drop(guard);
            }
        }));
    }

    start.wait();
    let handle = collector.register();
    let mut all_slots: Vec<u64> = vec![shared.load(SeqCst)];
    for _ in 0..SWAPS {
        let fresh = Box::into_raw(Box::new(Slot {
            canary: AtomicU64::new(MAGIC),
        })) as u64;
        all_slots.push(fresh);
        let old = shared.swap(fresh, SeqCst);
        let guard = handle.pin();
        guard.defer(move || {
            // Safety: the allocation outlives the test body (freed below),
            // so this only marks the canary of an unreachable slot.
            unsafe { (*(old as *const Slot)).canary.store(DEAD, SeqCst) };
        });
        drop(guard);
    }
    done.store(true, SeqCst);
    for t in threads {
        t.join().unwrap();
    }

    assert_eq!(
        violations.load(SeqCst),
        0,
        "a reader observed a retired slot after its grace period"
    );

    drop(handle);
    collector.synchronize();
    let stats = collector.stats();
    assert_eq!(stats.objects_retired, SWAPS as u64);
    assert_eq!(
        stats.objects_freed, SWAPS as u64,
        "all retirements reclaimed"
    );
    assert_eq!(stats.pending_objects, 0);

    // Every slot except the currently-published one must be DEAD (its
    // callback ran); the published one must still be MAGIC.
    let published = shared.load(SeqCst);
    for addr in all_slots {
        // Safety: all slots are still allocated; we free them right after.
        let slot = unsafe { Box::from_raw(addr as *mut Slot) };
        let canary = slot.canary.load(SeqCst);
        if addr == published {
            assert_eq!(canary, MAGIC);
        } else {
            assert_eq!(canary, DEAD, "retired slot's callback never ran");
        }
    }
}

/// `synchronize` returning implies every pre-existing critical section
/// ended: a writer unlinks, synchronizes, and may then free directly
/// (classic `synchronize_rcu` usage, no `defer` involved).
#[test]
fn synchronize_waits_for_live_readers() {
    let collector = Collector::new();
    let reader_in_cs = Arc::new(Barrier::new(2));
    let reader_done = Arc::new(AtomicBool::new(false));

    let reader = {
        let collector = collector.clone();
        let reader_in_cs = reader_in_cs.clone();
        let reader_done = reader_done.clone();
        thread::spawn(move || {
            let handle = collector.register();
            let guard = handle.pin();
            reader_in_cs.wait();
            // Simulate a long critical section.
            for _ in 0..50 {
                thread::yield_now();
            }
            reader_done.store(true, SeqCst);
            drop(guard);
        })
    };

    reader_in_cs.wait();
    collector.synchronize();
    assert!(
        reader_done.load(SeqCst),
        "synchronize returned while a pre-existing reader was still pinned"
    );
    reader.join().unwrap();
}
