//! Model-checked protocol tests: every scenario in `tests/scenarios` is
//! explored under all thread interleavings within loomette's preemption
//! bound, with every atomic access and mutex acquisition a scheduling
//! point (see `crates/loomette` and `rcukit/src/sync.rs`).
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p rcukit --test loom --release
//! ```
//!
//! Under a plain `cargo test` this file compiles to an empty crate; the
//! `std` stress mirrors in `tests/model.rs` cover the same scenarios in
//! tier-1.

#![cfg(loom)]

mod scenarios;

use std::sync::atomic::Ordering::SeqCst;
use std::sync::Arc;

#[test]
fn loom_pin_publication() {
    let runs = loomette::Explorer::default().explore(scenarios::pin_publication);
    assert!(runs > 100, "exploration degenerated to {runs} schedule(s)");
}

#[test]
fn loom_retire_publish_unpin_collect() {
    let runs = loomette::Explorer::default().explore(scenarios::retire_publish_unpin_collect);
    assert!(runs > 100, "exploration degenerated to {runs} schedule(s)");
}

#[test]
fn loom_guard_free_callback_gate() {
    let runs = loomette::Explorer::default().explore(scenarios::guard_free_callback_gate);
    assert!(runs > 100, "exploration degenerated to {runs} schedule(s)");
}

/// Meta-test: the model tier must be able to *find* the bug class it
/// exists for. Seed the PR1 use-after-free — retire **before** the unlink
/// is published — and require the checker to produce a schedule where a
/// pinned reader observes the retired slot. If this test ever fails, the
/// instrumentation has lost the interleavings that matter.
#[test]
fn loom_finds_seeded_retire_before_publish_bug() {
    use loomette::sync::atomic::{AtomicBool, AtomicUsize};
    use loomette::thread::spawn;
    use rcukit::Collector;
    let caught = std::panic::catch_unwind(|| {
        loomette::model(|| {
            let c = Collector::with_shards(1);
            // The seeded violation needs the unpin-driven epoch advance
            // between the (buggy, too-early) retire and the unlink store;
            // the collect throttle would otherwise skip it.
            c.set_unpin_collect_period(1);
            let slot = Arc::new(AtomicUsize::new(0));
            let freed = Arc::new([AtomicBool::new(false), AtomicBool::new(false)]);
            let reader = {
                let c = c.clone();
                let slot = Arc::clone(&slot);
                let freed = Arc::clone(&freed);
                spawn(move || {
                    let h = c.register();
                    let g = h.pin();
                    let idx = slot.load(SeqCst);
                    assert!(!freed[idx].load(SeqCst), "reader observed retired slot");
                    drop(g);
                })
            };
            let h = c.register();
            {
                let g = h.pin();
                let freed = Arc::clone(&freed);
                // BUG under test: retire first ...
                g.defer(move || freed[0].store(true, SeqCst));
            }
            // ... and publish the unlink only afterwards.
            slot.store(1, SeqCst);
            for _ in 0..3 {
                c.collect();
            }
            reader.join().unwrap();
        });
    });
    assert!(
        caught.is_err(),
        "model checker failed to find the seeded retire-before-publish violation"
    );
}
