//! Model-checked protocol tests: every scenario in `tests/scenarios` is
//! explored under all thread interleavings within loomette's preemption
//! bound, with every atomic access and mutex acquisition a scheduling
//! point (see `crates/loomette` and `rcukit/src/sync.rs`).
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p rcukit --test loom --release
//! ```
//!
//! Under a plain `cargo test` this file compiles to an empty crate; the
//! `std` stress mirrors in `tests/model.rs` cover the same scenarios in
//! tier-1.

#![cfg(loom)]

mod scenarios;

use std::sync::atomic::Ordering::SeqCst;
use std::sync::Arc;

#[test]
fn loom_pin_publication() {
    let runs = loomette::Explorer::default().explore(scenarios::pin_publication);
    assert!(runs > 100, "exploration degenerated to {runs} schedule(s)");
}

#[test]
fn loom_pin_advance_store_buffer() {
    let runs = loomette::Explorer::default().explore(scenarios::pin_advance_store_buffer);
    assert!(runs > 100, "exploration degenerated to {runs} schedule(s)");
}

#[test]
fn loom_retire_publish_unpin_collect() {
    let runs = loomette::Explorer::default().explore(scenarios::retire_publish_unpin_collect);
    assert!(runs > 100, "exploration degenerated to {runs} schedule(s)");
}

#[test]
fn loom_guard_free_callback_gate() {
    let runs = loomette::Explorer::default().explore(scenarios::guard_free_callback_gate);
    assert!(runs > 100, "exploration degenerated to {runs} schedule(s)");
}

/// Meta-test: the model tier must be able to *find* the bug class it
/// exists for. Seed the PR1 use-after-free — retire **before** the unlink
/// is published — and require the checker to produce a schedule where a
/// pinned reader observes the retired slot. If this test ever fails, the
/// instrumentation has lost the interleavings that matter.
#[test]
fn loom_finds_seeded_retire_before_publish_bug() {
    use loomette::sync::atomic::{AtomicBool, AtomicUsize};
    use loomette::thread::spawn;
    use rcukit::Collector;
    let caught = std::panic::catch_unwind(|| {
        loomette::model(|| {
            let c = Collector::with_shards(1);
            // The seeded violation needs the unpin-driven epoch advance
            // between the (buggy, too-early) retire and the unlink store;
            // the collect throttle would otherwise skip it.
            c.set_unpin_collect_period(1);
            let slot = Arc::new(AtomicUsize::new(0));
            let freed = Arc::new([AtomicBool::new(false), AtomicBool::new(false)]);
            let reader = {
                let c = c.clone();
                let slot = Arc::clone(&slot);
                let freed = Arc::clone(&freed);
                spawn(move || {
                    let h = c.register();
                    let g = h.pin();
                    let idx = slot.load(SeqCst);
                    assert!(!freed[idx].load(SeqCst), "reader observed retired slot");
                    drop(g);
                })
            };
            let h = c.register();
            {
                let g = h.pin();
                let freed = Arc::clone(&freed);
                // BUG under test: retire first ...
                g.defer(move || freed[0].store(true, SeqCst));
            }
            // ... and publish the unlink only afterwards.
            slot.store(1, SeqCst);
            for _ in 0..3 {
                c.collect();
            }
            reader.join().unwrap();
        });
    });
    assert!(
        caught.is_err(),
        "model checker failed to find the seeded retire-before-publish violation"
    );
}

/// The distilled retire path with `defer`'s StoreLoad fence optionally
/// elided: the writer publishes the unlink (Release store) and then — the
/// step the fence guards — samples the reader-visibility word (standing in
/// for the retire-tag epoch load / advance scan). The reader runs the full
/// pin protocol: publish the status word, `SeqCst` fence, then
/// dereference. Returns via `saw_uaf` whether some schedule had *both*
/// sides miss each other — writer saw "no reader" while the reader missed
/// the unlink — the use-after-free shape.
fn fenceless_retire_litmus(
    fenced: bool,
    saw_uaf: &Arc<std::sync::atomic::AtomicBool>,
) -> impl Fn() + Send + Sync + 'static {
    use loomette::sync::atomic::{fence, AtomicUsize};
    use loomette::thread::spawn;
    use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
    let saw = Arc::clone(saw_uaf);
    move || {
        let unlink = Arc::new(AtomicUsize::new(0)); // writer's unlink publication
        let status = Arc::new(AtomicUsize::new(0)); // reader's pin word
        let (unlink2, status2) = (Arc::clone(&unlink), Arc::clone(&status));
        let reader = spawn(move || {
            status2.store(1, Relaxed);
            fence(std::sync::atomic::Ordering::SeqCst); // the pin fence
            unlink2.load(Acquire)
        });
        unlink.store(1, Release);
        if fenced {
            // `defer`'s StoreLoad fence — the one under test.
            fence(std::sync::atomic::Ordering::SeqCst);
        }
        let r_status = status.load(Relaxed);
        let r_unlink = reader.join().unwrap();
        if r_status == 0 && r_unlink == 0 {
            saw.store(true, SeqCst);
        }
    }
}

/// Meta-test: removing `defer`'s `fence(SeqCst)` must be a bug the
/// store-buffer model can *find*. Without the fence, TSO lets the writer's
/// buffered unlink store pass its reader scan: the writer concludes no
/// reader can hold the object while the reader (whose pin fence already
/// drained) still reads the un-unlinked snapshot — the grace period starts
/// one epoch too early. The same exploration with the fence restored must
/// never reach that outcome: the fence is load-bearing, and the TSO tier
/// is what checks it (SeqCst-exact mode executes the litmus as SC and
/// cannot see the reorder).
#[test]
fn loom_tso_finds_fenceless_retire_publish() {
    // Environment-independent explorers: this test *is* the TSO coverage.
    let explorer = |tso| loomette::Explorer {
        preemption_bound: loomette::DEFAULT_PREEMPTION_BOUND,
        max_runs: loomette::DEFAULT_MAX_RUNS,
        tso,
    };
    let saw = Arc::new(std::sync::atomic::AtomicBool::new(false));
    explorer(true).explore(fenceless_retire_litmus(false, &saw));
    assert!(
        saw.load(SeqCst),
        "TSO exploration failed to find the fence-elided retire reorder"
    );

    let saw = Arc::new(std::sync::atomic::AtomicBool::new(false));
    explorer(true).explore(fenceless_retire_litmus(true, &saw));
    assert!(
        !saw.load(SeqCst),
        "defer's StoreLoad fence failed to forbid the retire reorder under TSO"
    );
}
