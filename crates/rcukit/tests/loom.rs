//! Model-checked protocol tests: every scenario in `tests/scenarios` is
//! explored under all thread interleavings within loomette's preemption
//! bound, with every atomic access and mutex acquisition a scheduling
//! point (see `crates/loomette` and `rcukit/src/sync.rs`).
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p rcukit --test loom --release
//! ```
//!
//! Under a plain `cargo test` this file compiles to an empty crate; the
//! `std` stress mirrors in `tests/model.rs` cover the same scenarios in
//! tier-1.

#![cfg(loom)]

mod scenarios;

use std::sync::atomic::Ordering::SeqCst;
use std::sync::Arc;

/// Schedule-count floor: exploration below this means the search was
/// silently pruned (an instrumentation regression), not that the scenario
/// got simpler. Every model leg must clear it at the CI preemption bounds.
const MIN_SCHEDULES: usize = 500;

/// The stalled-reader scenarios hold their protection across the writer's
/// entire spawn-to-join lifetime, so both ends of each scenario are
/// deliberately sequential and the explorable window is much smaller than
/// the free-running protocol scenarios' (tens of schedules at the local
/// preemption bound, not thousands). The floor still catches degeneration
/// to a handful of schedules.
const MIN_SCHEDULES_STALLED: usize = 25;

#[test]
fn loom_pin_publication() {
    let runs = loomette::Explorer::default().explore(scenarios::pin_publication);
    eprintln!("pin_publication: {runs} schedules");
    assert!(
        runs > MIN_SCHEDULES,
        "exploration degenerated to {runs} schedule(s)"
    );
}

#[test]
fn loom_pin_advance_store_buffer() {
    let runs = loomette::Explorer::default().explore(scenarios::pin_advance_store_buffer);
    eprintln!("pin_advance_store_buffer: {runs} schedules");
    assert!(
        runs > MIN_SCHEDULES,
        "exploration degenerated to {runs} schedule(s)"
    );
}

#[test]
fn loom_retire_publish_unpin_collect() {
    let runs = loomette::Explorer::default().explore(scenarios::retire_publish_unpin_collect);
    eprintln!("retire_publish_unpin_collect: {runs} schedules");
    assert!(
        runs > MIN_SCHEDULES,
        "exploration degenerated to {runs} schedule(s)"
    );
}

#[test]
fn loom_guard_free_callback_gate() {
    let runs = loomette::Explorer::default().explore(scenarios::guard_free_callback_gate);
    eprintln!("guard_free_callback_gate: {runs} schedules");
    assert!(
        runs > MIN_SCHEDULES,
        "exploration degenerated to {runs} schedule(s)"
    );
}

#[test]
fn loom_stalled_reader_epoch() {
    let runs = loomette::Explorer::default().explore(scenarios::stalled_reader_epoch);
    eprintln!("stalled_reader_epoch: {runs} schedules");
    assert!(
        runs > MIN_SCHEDULES_STALLED,
        "exploration degenerated to {runs} schedule(s)"
    );
}

#[test]
fn loom_stalled_reader_qsbr() {
    let runs = loomette::Explorer::default().explore(scenarios::stalled_reader_qsbr);
    eprintln!("stalled_reader_qsbr: {runs} schedules");
    assert!(
        runs > MIN_SCHEDULES_STALLED,
        "exploration degenerated to {runs} schedule(s)"
    );
}

#[test]
fn loom_stalled_reader_hp() {
    let runs = loomette::Explorer::default().explore(scenarios::stalled_reader_hp);
    eprintln!("stalled_reader_hp: {runs} schedules");
    assert!(
        runs > MIN_SCHEDULES_STALLED,
        "exploration degenerated to {runs} schedule(s)"
    );
}

/// Meta-test: the model tier must be able to *find* the bug class it
/// exists for. Seed the PR1 use-after-free — retire **before** the unlink
/// is published — and require the checker to produce a schedule where a
/// pinned reader observes the retired slot. If this test ever fails, the
/// instrumentation has lost the interleavings that matter.
#[test]
fn loom_finds_seeded_retire_before_publish_bug() {
    use loomette::sync::atomic::{AtomicBool, AtomicUsize};
    use loomette::thread::spawn;
    use rcukit::Collector;
    let caught = std::panic::catch_unwind(|| {
        loomette::model(|| {
            let c = Collector::with_shards(1);
            // The seeded violation needs the unpin-driven epoch advance
            // between the (buggy, too-early) retire and the unlink store;
            // the collect throttle would otherwise skip it.
            c.set_unpin_collect_period(1);
            let slot = Arc::new(AtomicUsize::new(0));
            let freed = Arc::new([AtomicBool::new(false), AtomicBool::new(false)]);
            let reader = {
                let c = c.clone();
                let slot = Arc::clone(&slot);
                let freed = Arc::clone(&freed);
                spawn(move || {
                    let h = c.register();
                    let g = h.pin();
                    let idx = slot.load(SeqCst);
                    assert!(!freed[idx].load(SeqCst), "reader observed retired slot");
                    drop(g);
                })
            };
            let h = c.register();
            {
                let g = h.pin();
                let freed = Arc::clone(&freed);
                // BUG under test: retire first ...
                g.defer(move || freed[0].store(true, SeqCst));
            }
            // ... and publish the unlink only afterwards.
            slot.store(1, SeqCst);
            for _ in 0..3 {
                c.collect();
            }
            reader.join().unwrap();
        });
    });
    assert!(
        caught.is_err(),
        "model checker failed to find the seeded retire-before-publish violation"
    );
}

/// The distilled retire path with `defer`'s StoreLoad fence optionally
/// elided: the writer publishes the unlink (Release store) and then — the
/// step the fence guards — samples the reader-visibility word (standing in
/// for the retire-tag epoch load / advance scan). The reader runs the full
/// pin protocol: publish the status word, `SeqCst` fence, then
/// dereference. Returns via `saw_uaf` whether some schedule had *both*
/// sides miss each other — writer saw "no reader" while the reader missed
/// the unlink — the use-after-free shape.
fn fenceless_retire_litmus(
    fenced: bool,
    saw_uaf: &Arc<std::sync::atomic::AtomicBool>,
) -> impl Fn() + Send + Sync + 'static {
    use loomette::sync::atomic::{fence, AtomicUsize};
    use loomette::thread::spawn;
    use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
    let saw = Arc::clone(saw_uaf);
    move || {
        let unlink = Arc::new(AtomicUsize::new(0)); // writer's unlink publication
        let status = Arc::new(AtomicUsize::new(0)); // reader's pin word
        let (unlink2, status2) = (Arc::clone(&unlink), Arc::clone(&status));
        let reader = spawn(move || {
            status2.store(1, Relaxed);
            fence(std::sync::atomic::Ordering::SeqCst); // the pin fence
            unlink2.load(Acquire)
        });
        unlink.store(1, Release);
        if fenced {
            // `defer`'s StoreLoad fence — the one under test.
            fence(std::sync::atomic::Ordering::SeqCst);
        }
        let r_status = status.load(Relaxed);
        let r_unlink = reader.join().unwrap();
        if r_status == 0 && r_unlink == 0 {
            saw.store(true, SeqCst);
        }
    }
}

/// Meta-test: removing `defer`'s `fence(SeqCst)` must be a bug the
/// store-buffer model can *find*. Without the fence, TSO lets the writer's
/// buffered unlink store pass its reader scan: the writer concludes no
/// reader can hold the object while the reader (whose pin fence already
/// drained) still reads the un-unlinked snapshot — the grace period starts
/// one epoch too early. The same exploration with the fence restored must
/// never reach that outcome: the fence is load-bearing, and the TSO tier
/// is what checks it (SeqCst-exact mode executes the litmus as SC and
/// cannot see the reorder).
#[test]
fn loom_tso_finds_fenceless_retire_publish() {
    // Environment-independent explorers: this test *is* the weak-memory
    // coverage. Both weak models — the store buffer and the full
    // acquire/release tier — must find the reorder without the fence and
    // forbid it with the fence (the SC-fence total order is modeled in
    // both).
    for model in [loomette::MemModel::Tso, loomette::MemModel::AcqRel] {
        let saw = Arc::new(std::sync::atomic::AtomicBool::new(false));
        explorer(model).explore(fenceless_retire_litmus(false, &saw));
        assert!(
            saw.load(SeqCst),
            "{} exploration failed to find the fence-elided retire reorder",
            model.name()
        );

        let saw = Arc::new(std::sync::atomic::AtomicBool::new(false));
        explorer(model).explore(fenceless_retire_litmus(true, &saw));
        assert!(
            !saw.load(SeqCst),
            "defer's StoreLoad fence failed to forbid the retire reorder under {}",
            model.name()
        );
    }
}

/// An environment-independent explorer pinned to `mem_model`.
fn explorer(mem_model: loomette::MemModel) -> loomette::Explorer {
    loomette::Explorer {
        preemption_bound: loomette::DEFAULT_PREEMPTION_BOUND,
        max_runs: loomette::DEFAULT_MAX_RUNS,
        mem_model,
        replay: None,
    }
}

/// The full unpin → advance-scan → reclaim path over real rcukit, with the
/// protected data behind a race-checked `loomette::cell::UnsafeCell`: a
/// reader pins, reads the data, and unpins; the writer defers a poison
/// write of the same data and drives `collect` until the grace period
/// expires and the deferred write runs. With the audited orderings the
/// unpin's `Release` store and the scan's `Acquire` load carry the
/// reader's critical-section reads into happens-before, so the deferred
/// write is ordered after them in every schedule.
#[cfg(loomette_weaken)]
fn weakened_unpin_scenario() {
    use loomette::sync::atomic::AtomicUsize;
    use loomette::thread::spawn;
    use rcukit::Collector;
    let c = Collector::with_shards(1);
    let data = Arc::new(loomette::cell::UnsafeCell::new(0u64));
    let unlinked = Arc::new(AtomicUsize::new(0));
    let reader = {
        let c = c.clone();
        let data = Arc::clone(&data);
        let unlinked = Arc::clone(&unlinked);
        spawn(move || {
            let h = c.register();
            let g = h.pin();
            // Only dereference if the unlink is not yet published — then
            // the pin precedes the writer's epoch sample, so the deferred
            // poison write must wait out this critical section.
            if unlinked.load(SeqCst) == 0 {
                let v = data.with(|p| unsafe { *p });
                assert_eq!(v, 0, "reader observed the poison write");
            }
            drop(g);
        })
    };
    let h = c.register();
    {
        let g = h.pin();
        unlinked.store(1, SeqCst);
        let data = Arc::clone(&data);
        g.defer(move || {
            data.with_mut(|p| unsafe { *p = u64::MAX });
        });
    }
    for _ in 0..4 {
        c.collect();
    }
    reader.join().unwrap();
}

/// Meta-test for the `--cfg loomette_weaken` seeded bugs: with the unpin
/// `Release` store and the advance-scan `Acquire` load weakened to
/// `Relaxed`, the grace-period happens-before chain is severed — yet no
/// *value* any interleaving observes changes, so the SC and TSO legs run
/// the scenario green. Only the AcqRel leg, which tracks happens-before
/// and race-checks the protected cell, must find the message-passing
/// violation (as a data race between the reader's access and the deferred
/// poison write).
#[cfg(loomette_weaken)]
#[test]
fn loom_acqrel_finds_weakened_unpin_edge() {
    for model in [loomette::MemModel::Sc, loomette::MemModel::Tso] {
        explorer(model).explore(weakened_unpin_scenario);
    }
    let caught = std::panic::catch_unwind(|| {
        explorer(loomette::MemModel::AcqRel).explore(weakened_unpin_scenario);
    });
    let msg = match caught {
        Ok(_) => panic!(
            "AcqRel exploration failed to find the weakened unpin/scan \
             message-passing violation"
        ),
        Err(e) => e
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into()),
    };
    assert!(
        msg.contains("data race"),
        "AcqRel leg failed for a different reason than the severed edge: {msg}"
    );
}
