//! Plain-`std` stress mirrors of the model-checked protocol scenarios
//! (`tests/loom.rs`), so tier-1 covers the same interactions on every run.
//! Each scenario is deterministic protocol logic with real-thread
//! scheduling noise supplying the interleavings; the loom tier explores
//! the schedules exhaustively instead.

#![cfg(not(loom))]

mod scenarios;

/// Stress iterations per scenario: enough for real-thread schedule noise,
/// scaled down under Miri (each iteration spawns threads, which the
/// interpreter runs ~1000x slower).
const ITERS: usize = if cfg!(miri) { 10 } else { 200 };

#[test]
fn stress_pin_publication() {
    for _ in 0..ITERS {
        scenarios::pin_publication();
    }
}

#[test]
fn stress_pin_advance_store_buffer() {
    for _ in 0..ITERS {
        scenarios::pin_advance_store_buffer();
    }
}

#[test]
fn stress_retire_publish_unpin_collect() {
    for _ in 0..ITERS {
        scenarios::retire_publish_unpin_collect();
    }
}

#[test]
fn stress_guard_free_callback_gate() {
    for _ in 0..ITERS {
        scenarios::guard_free_callback_gate();
    }
}

#[test]
fn stress_stalled_reader_epoch() {
    for _ in 0..ITERS {
        scenarios::stalled_reader_epoch();
    }
}

#[test]
fn stress_stalled_reader_qsbr() {
    for _ in 0..ITERS {
        scenarios::stalled_reader_qsbr();
    }
}

#[test]
fn stress_stalled_reader_hp() {
    for _ in 0..ITERS {
        scenarios::stalled_reader_hp();
    }
}
