//! Protocol scenarios shared by the model-checking tier (`tests/loom.rs`,
//! built with `RUSTFLAGS="--cfg loom"`) and its plain-`std` stress mirror
//! (`tests/model.rs`), so tier-1 always covers the same code paths the
//! model checker explores exhaustively.
//!
//! Each scenario is one deterministic execution of a small two-thread
//! protocol interaction against the real `rcukit` collector:
//!
//! * under loom, `loomette::model` replays it under every schedule within
//!   the preemption bound, with every atomic and mutex a switch point;
//! * under `std`, the mirror test loops it with real threads, relying on
//!   scheduler noise (the classic stress test).
//!
//! Scenarios intentionally avoid `Collector::synchronize` (an unbounded
//! spin the schedule explorer cannot terminate) and the TLS-cached
//! `Collector::pin` (whose sweep machinery would blow up the state space);
//! reclamation is driven by bounded `collect` calls, and pins go through
//! explicitly registered handles — the same hot path the redesign made
//! lock- and RMW-free.

#[cfg(loom)]
use loomette::sync::atomic::{AtomicBool, AtomicUsize};
#[cfg(loom)]
use loomette::thread::spawn;
#[cfg(not(loom))]
use std::sync::atomic::{AtomicBool, AtomicUsize};
#[cfg(not(loom))]
use std::thread::spawn;

use std::cell::Cell;
use std::sync::atomic::Ordering::SeqCst;
use std::sync::Arc;

use rcukit::{Collector, HpDomain, QsbrDomain};

/// Pin publication vs. epoch advance: a reader that observed a slot under
/// a pinned guard must never see that slot's retirement callback fire
/// while still pinned — in *any* schedule of reader pin, writer unlink +
/// retire, and an epoch-advance driver.
///
/// This is the protocol half the status-word publish loop (swap, re-read
/// the epoch until stable) exists for: without it, a reader could publish
/// a stale epoch while the advance scan misses it, the grace period
/// completes early, and `freed[idx]` flips under the reader's feet.
pub fn pin_publication() {
    let c = Collector::with_shards(1);
    // Two "published objects"; `slot` names the currently linked one and
    // `freed[i]` is object i's has-been-reclaimed canary.
    let slot = Arc::new(AtomicUsize::new(0));
    let freed = Arc::new([AtomicBool::new(false), AtomicBool::new(false)]);

    let reader = {
        let c = c.clone();
        let slot = Arc::clone(&slot);
        let freed = Arc::clone(&freed);
        spawn(move || {
            let h = c.register();
            let g = h.pin();
            // "Dereference": load the currently published slot index...
            let idx = slot.load(SeqCst);
            // ...and observe the object while still pinned. If the epoch
            // protocol is right, its grace period cannot have elapsed.
            assert!(
                !freed[idx].load(SeqCst),
                "reader observed a retired slot under a pinned guard"
            );
            drop(g);
        })
    };

    // Writer: unlink object 0 by publishing 1, then retire 0.
    let h = c.register();
    slot.store(1, SeqCst);
    {
        let g = h.pin();
        let freed = Arc::clone(&freed);
        g.defer(move || freed[0].store(true, SeqCst));
    }
    // Epoch-advance driver racing the reader's critical section.
    for _ in 0..2 {
        c.collect();
    }
    reader.join().unwrap();
    // With every guard dropped, a bounded drain must reclaim: two advances
    // past the retirement tag plus one reclaim pass.
    for _ in 0..3 {
        c.collect();
    }
    assert!(
        freed[0].load(SeqCst),
        "retirement never fired after a full drain"
    );
    assert!(!freed[1].load(SeqCst), "live object was reclaimed");
}

/// Pin publication vs. a *dedicated* epoch-advance driver: unlike
/// [`pin_publication`], where the writer thread also drives `collect`, the
/// advance scan here runs on its own thread the whole time the reader is
/// pinning — so the status-word publish (store + `SeqCst` fence + epoch
/// re-read) races the advance side's own fence-then-scan directly, with no
/// happens-before edge through the writer serializing them.
///
/// This is the schedule shape the ordering audit's store-buffer model
/// exists for: after the audit the pin store is `Relaxed`, so under TSO
/// (`LOOMETTE_MODEL=tso`) it sits in the reader's store buffer until the pin
/// fence drains it. The Dekker between that fence and the one in
/// `try_advance` is the *only* thing stopping the driver from advancing
/// two epochs past the retirement while the reader dereferences — exactly
/// the use-after-free this scenario's canary assert would catch.
pub fn pin_advance_store_buffer() {
    let c = Collector::with_shards(1);
    let slot = Arc::new(AtomicUsize::new(0));
    let freed = Arc::new([AtomicBool::new(false), AtomicBool::new(false)]);

    let reader = {
        let c = c.clone();
        let slot = Arc::clone(&slot);
        let freed = Arc::clone(&freed);
        spawn(move || {
            let h = c.register();
            let g = h.pin();
            let idx = slot.load(SeqCst);
            assert!(
                !freed[idx].load(SeqCst),
                "reader observed a retired slot under a pinned guard"
            );
            drop(g);
        })
    };
    // The advance driver: nothing but grace-period machinery, racing the
    // reader's pin publication and the writer's retirement.
    let advancer = {
        let c = c.clone();
        spawn(move || {
            for _ in 0..2 {
                c.collect();
            }
        })
    };

    // Writer (main thread): unlink object 0 by publishing 1, then retire 0.
    let h = c.register();
    slot.store(1, SeqCst);
    {
        let g = h.pin();
        let freed = Arc::clone(&freed);
        g.defer(move || freed[0].store(true, SeqCst));
    }
    reader.join().unwrap();
    advancer.join().unwrap();
    // Bounded drain with every guard gone: the retirement must fire.
    for _ in 0..3 {
        c.collect();
    }
    assert!(
        freed[0].load(SeqCst),
        "retirement never fired after a full drain"
    );
    assert!(!freed[1].load(SeqCst), "live object was reclaimed");
}

/// Retire-before-publish ordering, driven purely by writer unpins: the
/// writer retires only *after* the unlink store, and its outermost unpins
/// (not an explicit driver) run the opportunistic collect. A pinned reader
/// must still never catch a retired slot, and both retirements must drain
/// eventually.
///
/// This exercises the seal-at-unpin path, `collect_pending` re-arming, and
/// the stale-bag seal in `defer` when the second retirement samples a
/// newer epoch tag.
pub fn retire_publish_unpin_collect() {
    let c = Collector::with_shards(1);
    // The scenario's point is the *unpin-driven* collect path; disable the
    // collect throttle so every garbage-bearing unpin runs it, as the
    // pre-throttle protocol did.
    c.set_unpin_collect_period(1);
    let slot = Arc::new(AtomicUsize::new(0));
    let freed = Arc::new([
        AtomicBool::new(false),
        AtomicBool::new(false),
        AtomicBool::new(false),
    ]);

    let reader = {
        let c = c.clone();
        let slot = Arc::clone(&slot);
        let freed = Arc::clone(&freed);
        spawn(move || {
            let h = c.register();
            for _ in 0..2 {
                let g = h.pin();
                let idx = slot.load(SeqCst);
                assert!(
                    !freed[idx].load(SeqCst),
                    "reader observed a retired slot under a pinned guard"
                );
                drop(g);
            }
        })
    };

    let h = c.register();
    // Two publish+retire rounds: 0 -> 1 -> 2. Each unpin seals the bag and
    // opportunistically collects, so the epoch moves without any explicit
    // driver thread.
    for old in 0..2usize {
        slot.store(old + 1, SeqCst);
        let g = h.pin();
        let freed = Arc::clone(&freed);
        g.defer(move || freed[old].store(true, SeqCst));
        drop(g);
    }
    reader.join().unwrap();
    // Bounded drain: everything retired must reclaim once guards are gone.
    for _ in 0..4 {
        c.collect();
    }
    let s = c.stats();
    assert_eq!(s.objects_retired, 2);
    assert_eq!(
        s.objects_freed, 2,
        "writer-unpin collects never drained the queue"
    );
    assert!(!freed[2].load(SeqCst), "live object was reclaimed");
}

/// The stalled-reader window on the epoch backend: the main thread pins a
/// guard *before* the writer exists and holds it across the writer's whole
/// retire-and-collect lifetime. No schedule may free the retirement while
/// the pin is held — the grace period cannot elapse past a pinned reader —
/// and a bounded drain must free it once the pin drops.
///
/// This is the protocol shape behind the sweep's `stalled-reader` profile:
/// on this backend the stalled pin makes unreclaimed garbage grow with the
/// stall window (here: one object, asserted unreclaimed; in the sweep: a
/// peak-bytes gauge that scales with ops).
pub fn stalled_reader_epoch() {
    let c = Collector::with_shards(1);
    let freed = Arc::new(AtomicBool::new(false));
    // The stall: pinned before the writer spawns, held past its join.
    let h = c.register();
    let stall = h.pin();

    let writer = {
        let c = c.clone();
        let freed = Arc::clone(&freed);
        spawn(move || {
            let h = c.register();
            {
                let g = h.pin();
                let freed = Arc::clone(&freed);
                g.defer(move || freed.store(true, SeqCst));
            }
            // Reclaim attempts racing the stall: all must fail to free.
            for _ in 0..4 {
                c.collect();
            }
        })
    };
    writer.join().unwrap();
    assert!(
        !freed.load(SeqCst),
        "epoch reclaim freed a retirement under a stalled reader pin"
    );

    drop(stall);
    for _ in 0..4 {
        c.collect();
    }
    assert!(
        freed.load(SeqCst),
        "retirement never freed after the stalled pin dropped"
    );
}

/// The stalled-reader window on the QSBR backend: the main thread's handle
/// registers before the writer spawns and never announces a quiescent
/// state while the writer retires and drives `try_reclaim`. No schedule
/// may reclaim past the silent handle; once it announces, a bounded
/// quiesce/reclaim drain must free everything.
pub fn stalled_reader_qsbr() {
    let d = QsbrDomain::new();
    let freed = Arc::new(AtomicBool::new(false));
    // The stall: registered (online) and silent for the writer's lifetime.
    let stalled = d.register();

    let writer = {
        let d = d.clone();
        let freed = Arc::clone(&freed);
        spawn(move || {
            let freed = Arc::clone(&freed);
            d.defer(move || freed.store(true, SeqCst));
            // Grace-period bumps racing the stall: `min_seen` is pinned at
            // the stalled handle's registration epoch, so none may free.
            for _ in 0..4 {
                d.try_reclaim();
            }
        })
    };
    writer.join().unwrap();
    assert!(
        !freed.load(SeqCst),
        "qsbr reclaim freed a retirement before the stalled reader quiesced"
    );

    // The stall lifts: two announce+reclaim rounds bound the drain (one
    // announces past the retirement's tag, the next reclaims behind it).
    for _ in 0..2 {
        stalled.quiescent();
        d.try_reclaim();
    }
    assert!(
        freed.load(SeqCst),
        "retirement never freed after the stalled handle quiesced"
    );
}

/// A canary allocation whose drop flips a shared flag — how the HP
/// scenario observes *when* a retired pointer is actually reclaimed.
struct DropCanary(Arc<AtomicBool>);

impl Drop for DropCanary {
    fn drop(&mut self) {
        self.0.store(true, SeqCst);
    }
}

/// The stalled-reader window on the hazard-pointer backend, plus the
/// bounded-garbage guarantee the backend exists for: the main thread
/// protects a node in a hazard slot across the writer's whole lifetime.
/// The writer retires that node *and* a burst of unprotected dummies past
/// the scan threshold. In every schedule:
///
/// * the protected node must survive every scan while the slot holds it;
/// * the unprotected dummies reclaim without any reader progress — unlike
///   epoch/QSBR, the stall does not grow garbage, and the retire queue
///   never exceeds `garbage_bound_objects()`.
pub fn stalled_reader_hp() {
    // Threshold 2: the dummy burst crosses it, forcing auto-scans while
    // the stall holds.
    let d = HpDomain::with_scan_threshold(2);
    let freed = Arc::new(AtomicBool::new(false));
    let node = Box::into_raw(Box::new(DropCanary(Arc::clone(&freed))));
    // The stall: slot 0 protects the node before the writer spawns.
    let session = d.session();
    session.protect(0, node.cast());

    let writer = {
        let d = d.clone();
        let addr = node as usize;
        spawn(move || {
            // Retire the protected node...
            // Safety: `node` came from Box::into_raw, is reachable only
            // through the stalled session's slot, and is retired once.
            unsafe { d.defer_free(addr as *mut DropCanary) };
            // ...and a burst of unprotected dummies crossing the scan
            // threshold, so auto-scans run under the stall.
            for _ in 0..4 {
                // Safety: fresh allocation, never shared, retired once.
                unsafe { d.defer_free(Box::into_raw(Box::new(0u64))) };
            }
            d.scan();
        })
    };
    writer.join().unwrap();
    assert!(
        !freed.load(SeqCst),
        "hp scan freed a pointer while a hazard slot protected it"
    );
    // Bounded garbage under the stall: one deterministic scan leaves only
    // the protected node queued, far inside the construction-time bound.
    d.scan();
    assert_eq!(
        d.pending(),
        1,
        "unprotected retirements survived a scan under the stall"
    );
    assert!(
        d.pending() <= d.garbage_bound_objects(),
        "retire queue exceeded the bounded-garbage guarantee"
    );

    // The stall lifts: the node reclaims at the next scan.
    drop(session);
    d.scan();
    assert!(
        freed.load(SeqCst),
        "protected node never freed after its session dropped"
    );
    assert_eq!(d.pending(), 0);
    assert_eq!(d.retired(), d.freed());
}

thread_local! {
    /// Scenario-maintained count of guards held by the current thread;
    /// every pin site below brackets its guard with inc/dec. The gate
    /// scenario's callback asserts it is zero — i.e. deferred callbacks
    /// only ever run on threads holding no guard.
    static SCENARIO_GUARDS: Cell<usize> = const { Cell::new(0) };
}

/// The guard-free callback gate: a deferred callback must never execute on
/// a thread that is inside a read-side critical section (of *any*
/// collector), in any schedule — otherwise a callback that waits for a
/// grace period would deadlock under the executing thread's own pin.
///
/// The main thread holds a guard on collector `a` across an unpin of
/// collector `b` that has garbage queued (the exact shape that forces the
/// gate to skip and re-arm via `collect_pending`), while a second thread
/// drives `b.collect()` concurrently.
pub fn guard_free_callback_gate() {
    let a = Collector::with_shards(1);
    let b = Collector::with_shards(1);
    let fired = Arc::new(AtomicUsize::new(0));

    let driver = {
        let b = b.clone();
        spawn(move || {
            // Runs the callback in *this* thread's context if ready; this
            // thread holds no guard, so the assertion inside it holds.
            b.collect();
        })
    };

    let ha = a.register();
    let hb = b.register();
    let ga = ha.pin();
    SCENARIO_GUARDS.with(|g| g.set(g.get() + 1));
    {
        let gb = hb.pin();
        SCENARIO_GUARDS.with(|g| g.set(g.get() + 1));
        let fired = Arc::clone(&fired);
        gb.defer(move || {
            SCENARIO_GUARDS.with(|g| {
                assert_eq!(
                    g.get(),
                    0,
                    "deferred callback ran on a thread holding a guard"
                );
            });
            fired.fetch_add(1, SeqCst);
        });
        SCENARIO_GUARDS.with(|g| g.set(g.get() - 1));
        drop(gb);
        // b's unpin sealed the bag but must have skipped the collect:
        // this thread still holds `ga`.
    }
    // Guard-free unpins of b retry the pending collect; while `ga` is
    // held they must keep skipping.
    {
        let gb = hb.pin();
        SCENARIO_GUARDS.with(|g| g.set(g.get() + 1));
        SCENARIO_GUARDS.with(|g| g.set(g.get() - 1));
        drop(gb);
    }
    SCENARIO_GUARDS.with(|g| g.set(g.get() - 1));
    drop(ga);
    // Now guard-free: unpin-driven and explicit collects may fire the
    // callback at will. Drain deterministically.
    driver.join().unwrap();
    for _ in 0..4 {
        b.collect();
    }
    assert_eq!(fired.load(SeqCst), 1, "callback never fired after drain");
}
