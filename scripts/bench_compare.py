#!/usr/bin/env python3
"""Compare two BENCH_addrspace.json trajectories and fail on regressions.

Usage:
    scripts/bench_compare.py OLD.json NEW.json [--threshold PCT] [--metric M]

Matches records across the two files by (profile, threads, backend) and
fails (exit 1) if the chosen metric regressed by more than the threshold
at any matching point. Points present in only one file are reported but do
not fail the comparison (sweep shapes legitimately grow across commits).
Sanity fields (`map_rejects`, `unmap_misses`, `unmap_range_misses`,
`reclaim_ok`) are hard-checked in the NEW file: a nonzero miss count or a
failed reclaim check fails the run regardless of throughput.

Mixed schema versions compare fine: v3 adds `cas_retries` /
`cas_wasted_nodes` (root-CAS commits lost to concurrent writers, and the
speculative nodes they discarded), which are optional — absent in v2
records, hard-checked for well-formedness (non-negative integers, retries
zero at threads=1) when present, and reported as deltas alongside the
throughput line so backoff tuning stays visible across commits without
gating on a contention-dependent number. v4 adds the `read-heavy` profile
and `read_op_ns` (single-thread per-op read-side latency: pin + lookup on
the bonsai backend); both are likewise optional, so a v3 baseline diffs
against a v4 candidate — the new profile's points report as new, and
`read_op_ns` deltas print informationally when both sides carry the field
(latency is inverted: lower is better, so it is never gated by the
throughput threshold). v5 adds the `qsbr` and `hp` backends, the
`stalled-reader` profile, and `peak_unreclaimed_bytes` (high-water mark of
bytes retired but not yet reclaimed). The peak field is optional — absent
in v4 baselines — but hard-checked when present: a non-negative integer,
exactly 0 on the `locked` backend (it retires nothing), and strictly
positive on any reclaiming backend that reported retirements. Pass
`--hp-peak-bound BYTES` to additionally fail if any `hp` record's peak
exceeds the bound — the backend's whole point is that a stalled reader
cannot make its garbage grow, so CI can pin that down with a number.
v6 adds the multi-tenant `fork-storm` profile and per-record fork metrics
(`forks`, `live_spaces_peak`, `fork_p50/p90/p99/max_ns`). The fields are
optional — absent in v2–v5 baselines — but hard-checked when present: a
`fork-storm` record must report `forks > 0`, a positive live-space peak,
and positive, monotone latency percentiles (p50 <= p90 <= p99 <= max),
while every other profile's record must report all six as exactly 0 (a
nonzero value there means the harness forked where it had no business
to). Fork latency, like read latency, prints informationally and is never
gated by the throughput threshold — baselines across machines differ too
much; gate deliberately with `--metric fork_p50_ns` if you want it.
v7 adds the `hybrid` interval-based backend and per-record degradation
telemetry (`stall_events`, `degraded_ops`). Both fields are optional —
absent in older baselines — but hard-checked when present: non-negative
integers, exactly 0 on every backend except `hybrid` (only its scan
declares stalls), and `degraded_ops > 0` requires `stall_events > 0`
(degraded retirements are only counted after a stall was declared). Pass
`--hybrid-peak-bound BYTES` to additionally fail if any `hybrid` record's
`peak_unreclaimed_bytes` exceeds the bound — the degradation protocol's
whole point is that a stalled reader cannot make hybrid garbage grow, so
CI pins that down with a number, mirroring `--hp-peak-bound`.

Intended uses: `bench_compare.py <old-commit's json> BENCH_addrspace.json`
during review, and the CI smoke invocation that diffs the committed
trajectory against the one the CI box just produced — which also keeps
this script from rotting. Absolute numbers vary by machine, so CI uses a
generous threshold; the strict 20% default is for same-machine A/Bs.

A missing, empty, or truncated trajectory file is a clean one-line error
(exit 1), not a traceback — the usual way to hit it is a sweep that died
before writing its output, and the diagnosis should say so. Run with
`--self-test` (no file arguments) to exercise this script against
synthetic trajectories, including those error paths; CI runs it before
trusting the real comparison.

No dependencies outside the standard library.
"""

import argparse
import json
import sys


def load_points(path):
    try:
        with open(path) as f:
            text = f.read()
    except OSError as e:
        sys.exit(f"{path}: cannot read trajectory file ({e.strerror or e}) — did the sweep run?")
    if not text.strip():
        sys.exit(f"{path}: trajectory file is empty — the sweep died before writing results?")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: not valid JSON ({e}) — truncated sweep output?")
    if not isinstance(doc, dict):
        sys.exit(f"{path}: expected a trajectory object, got {type(doc).__name__}")
    schema = doc.get("schema", "")
    if not schema.startswith("rcukit-bench/addrspace-v"):
        sys.exit(f"{path}: unrecognized schema {schema!r}")
    points = {}
    for rec in doc.get("results", []):
        key = (rec["profile"], rec["threads"], rec["backend"])
        if key in points:
            sys.exit(f"{path}: duplicate record for {key}")
        points[key] = rec
    if not points:
        sys.exit(f"{path}: no result records")
    return points


def _record(**overrides):
    """A well-formed v7 record with every hard-checked field populated."""
    rec = {
        "profile": "metis",
        "backend": "bonsai",
        "threads": 2,
        "ops_per_sec": 1_000_000,
        "map_rejects": 0,
        "unmap_misses": 0,
        "unmap_range_misses": 0,
        "reclaim_ok": True,
        "retired": 1000,
        "peak_unreclaimed_bytes": 4096,
        "stall_events": 0,
        "degraded_ops": 0,
        "cas_retries": 5,
        "cas_wasted_nodes": 12,
        "read_op_ns": 120.0,
        "forks": 0,
        "live_spaces_peak": 0,
        "fork_p50_ns": 0,
        "fork_p90_ns": 0,
        "fork_p99_ns": 0,
        "fork_max_ns": 0,
    }
    rec.update(overrides)
    return rec


def self_test():
    """Exercises the CLI — including its graceful-error paths — against
    synthetic trajectories, by re-invoking this script as a subprocess
    (so exit codes and messages are tested exactly as CI sees them)."""
    import os
    import subprocess
    import tempfile

    def doc(records):
        return json.dumps(
            {"schema": "rcukit-bench/addrspace-v7", "results": records}
        )

    def run(argv, want_exit, want_text):
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__), *argv],
            capture_output=True,
            text=True,
        )
        output = proc.stdout + proc.stderr
        assert proc.returncode == want_exit, (
            f"{argv}: exit {proc.returncode}, want {want_exit}\n{output}"
        )
        assert want_text in output, f"{argv}: missing {want_text!r} in:\n{output}"

    with tempfile.TemporaryDirectory() as tmp:
        def path(name, content=None):
            p = os.path.join(tmp, name)
            if content is not None:
                with open(p, "w") as f:
                    f.write(content)
            return p

        base = path("base.json", doc([_record()]))
        path("empty.json", "")
        path("garbage.json", "{not json")

        # Graceful errors, never tracebacks: missing, empty, truncated.
        run([path("missing.json"), base], 1, "cannot read trajectory file")
        run([path("empty.json"), base], 1, "trajectory file is empty")
        run([path("garbage.json"), base], 1, "not valid JSON")
        run([base, path("norecords.json", doc([]))], 1, "no result records")

        # Matching healthy trajectories pass.
        run([base, base], 0, "OK: 1 matching points")

        # A throughput regression past the threshold fails.
        slow = path("slow.json", doc([_record(ops_per_sec=100_000)]))
        run([base, slow, "--threshold", "20"], 1, "regressed")

        # v7 coherence: stall telemetry on a non-hybrid backend fails.
        bad_stall = path("bad_stall.json", doc([_record(stall_events=3)]))
        run([base, bad_stall], 1, "non-hybrid backend reports stall_events")
        # Degraded retirements require a declared stall.
        hybrid = _record(backend="hybrid", cas_retries=0, cas_wasted_nodes=0)
        bad_degraded = path(
            "bad_degraded.json",
            doc([_record(), dict(hybrid, degraded_ops=7)]),
        )
        run([base, bad_degraded], 1, "degradation without a declared stall")

        # The hybrid peak bound gates exactly like the hp one.
        fat = path(
            "fat_hybrid.json",
            doc([_record(), dict(hybrid, peak_unreclaimed_bytes=1 << 30)]),
        )
        run([base, fat, "--hybrid-peak-bound", str(1 << 20)], 1, "exceeds bound")
        ok_hybrid = path("ok_hybrid.json", doc([_record(), hybrid]))
        run([base, ok_hybrid, "--hybrid-peak-bound", str(1 << 20)], 0, "OK:")

    print("self-test: all cases passed")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("old", nargs="?", help="baseline trajectory JSON")
    ap.add_argument("new", nargs="?", help="candidate trajectory JSON")
    ap.add_argument(
        "--threshold",
        type=float,
        default=20.0,
        metavar="PCT",
        help="fail if the metric drops more than this percent (default 20)",
    )
    ap.add_argument(
        "--metric",
        default="ops_per_sec",
        help="record field to compare (default ops_per_sec)",
    )
    ap.add_argument(
        "--hp-peak-bound",
        type=int,
        default=None,
        metavar="BYTES",
        help="fail if any hp record's peak_unreclaimed_bytes exceeds this",
    )
    ap.add_argument(
        "--hybrid-peak-bound",
        type=int,
        default=None,
        metavar="BYTES",
        help="fail if any hybrid record's peak_unreclaimed_bytes exceeds this",
    )
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="run built-in checks against synthetic trajectories and exit",
    )
    args = ap.parse_args()

    if args.self_test:
        self_test()
        return
    if args.old is None or args.new is None:
        ap.error("OLD and NEW trajectory files are required (or pass --self-test)")

    old = load_points(args.old)
    new = load_points(args.new)

    failures = []
    compared = 0
    for key in sorted(old.keys() | new.keys()):
        label = "{}/t{}/{}".format(*key)
        if key not in new:
            print(f"note: {label} only in {args.old}")
            continue
        rec = new[key]
        # Hard sanity gates on the candidate, throughput aside.
        for field in ("map_rejects", "unmap_misses", "unmap_range_misses"):
            if rec.get(field, 0) != 0:
                failures.append(f"{label}: {field} = {rec[field]} (must be 0)")
        if rec.get("reclaim_ok") is False:
            failures.append(f"{label}: reclaim_ok is false")
        # v3 CAS telemetry: optional (absent in v2 files), but when present
        # it must be well-formed, and a single-threaded replay can never
        # lose a root CAS.
        for field in ("cas_retries", "cas_wasted_nodes"):
            if field in rec:
                value = rec[field]
                if not isinstance(value, int) or value < 0:
                    failures.append(f"{label}: {field} = {value!r} (want int >= 0)")
        # v4 read-side latency: optional, but when present it must be a
        # positive number — a zero or negative per-op time means the
        # microbench never ran or the record is corrupt.
        if "read_op_ns" in rec:
            value = rec["read_op_ns"]
            if not isinstance(value, (int, float)) or value <= 0:
                failures.append(f"{label}: read_op_ns = {value!r} (want > 0)")
        if rec.get("threads") == 1 and rec.get("cas_retries", 0) != 0:
            failures.append(
                f"{label}: cas_retries = {rec['cas_retries']} at threads=1"
            )
        # v5 unreclaimed-garbage gauge: optional (absent in v4 files), but
        # when present it must be coherent with the backend: the locked
        # baseline never retires (peak 0), and a reclaiming backend that
        # retired anything must have registered a positive peak.
        if "peak_unreclaimed_bytes" in rec:
            peak = rec["peak_unreclaimed_bytes"]
            if not isinstance(peak, int) or peak < 0:
                failures.append(
                    f"{label}: peak_unreclaimed_bytes = {peak!r} (want int >= 0)"
                )
            elif rec.get("backend") == "locked":
                if peak != 0:
                    failures.append(
                        f"{label}: locked backend reports peak_unreclaimed_bytes"
                        f" = {peak} (must be 0)"
                    )
            else:
                if rec.get("retired", 0) > 0 and peak == 0:
                    failures.append(
                        f"{label}: retired {rec['retired']} objects but"
                        f" peak_unreclaimed_bytes = 0"
                    )
                if (
                    args.hp_peak_bound is not None
                    and rec.get("backend") == "hp"
                    and peak > args.hp_peak_bound
                ):
                    failures.append(
                        f"{label}: hp peak_unreclaimed_bytes = {peak} exceeds"
                        f" bound {args.hp_peak_bound}"
                    )
                if (
                    args.hybrid_peak_bound is not None
                    and rec.get("backend") == "hybrid"
                    and peak > args.hybrid_peak_bound
                ):
                    failures.append(
                        f"{label}: hybrid peak_unreclaimed_bytes = {peak}"
                        f" exceeds bound {args.hybrid_peak_bound}"
                    )
        # v7 degradation telemetry: optional (absent in older files), but
        # when present it must be coherent — only the hybrid backend's scan
        # declares stalls, and degraded retirements are only counted after
        # a stall was declared.
        for field in ("stall_events", "degraded_ops"):
            if field in rec:
                value = rec[field]
                if not isinstance(value, int) or value < 0:
                    failures.append(f"{label}: {field} = {value!r} (want int >= 0)")
                elif rec.get("backend") != "hybrid" and value != 0:
                    failures.append(
                        f"{label}: non-hybrid backend reports {field} = {value}"
                        f" (must be 0)"
                    )
        if rec.get("degraded_ops", 0) > 0 and rec.get("stall_events", 0) == 0:
            failures.append(
                f"{label}: degraded_ops = {rec['degraded_ops']} with"
                f" stall_events = 0 (degradation without a declared stall)"
            )
        # v6 fork metrics: optional (absent in older files), but when
        # present they must match the record's profile — populated and
        # coherent on fork-storm, all-zero everywhere else.
        fork_fields = (
            "forks",
            "live_spaces_peak",
            "fork_p50_ns",
            "fork_p90_ns",
            "fork_p99_ns",
            "fork_max_ns",
        )
        if any(f in rec for f in fork_fields):
            values = {}
            for field in fork_fields:
                value = rec.get(field, 0)
                if not isinstance(value, int) or value < 0:
                    failures.append(f"{label}: {field} = {value!r} (want int >= 0)")
                    value = 0
                values[field] = value
            if rec.get("profile") == "fork-storm":
                if values["forks"] == 0:
                    failures.append(f"{label}: fork-storm record has forks = 0")
                if values["live_spaces_peak"] == 0:
                    failures.append(f"{label}: fork-storm live_spaces_peak = 0")
                if values["fork_p50_ns"] == 0:
                    failures.append(f"{label}: fork-storm fork_p50_ns = 0")
                if not (
                    values["fork_p50_ns"]
                    <= values["fork_p90_ns"]
                    <= values["fork_p99_ns"]
                    <= values["fork_max_ns"]
                ):
                    failures.append(
                        f"{label}: fork latency percentiles not monotone: "
                        f"{values['fork_p50_ns']}/{values['fork_p90_ns']}/"
                        f"{values['fork_p99_ns']}/{values['fork_max_ns']}"
                    )
            else:
                nonzero = [f for f in fork_fields if values[f] != 0]
                if nonzero:
                    failures.append(
                        f"{label}: non-fork-storm record has nonzero {nonzero}"
                    )
        if key not in old:
            print(f"note: {label} only in {args.new}")
            continue
        before = old[key].get(args.metric)
        after = rec.get(args.metric)
        if before is None or after is None:
            failures.append(f"{label}: metric {args.metric!r} missing")
            continue
        compared += 1
        if before <= 0:
            continue
        delta_pct = (after - before) / before * 100.0
        marker = ""
        if delta_pct < -args.threshold:
            failures.append(
                f"{label}: {args.metric} regressed {-delta_pct:.1f}% "
                f"({before:.0f} -> {after:.0f})"
            )
            marker = "  <-- REGRESSION"
        # Informational cas_retries delta alongside the gated metric, so
        # backoff tuning is visible in CI diffs (records lacking the field
        # — v2 baselines — just omit it).
        cas = ""
        if "cas_retries" in rec:
            if "cas_retries" in old[key]:
                cas = f"  cas_retries {old[key]['cas_retries']} -> {rec['cas_retries']}"
            else:
                cas = f"  cas_retries - -> {rec['cas_retries']}"
        # Informational read-latency delta (v4 records; v3 baselines omit
        # it). Lower is better, hence reported but never threshold-gated
        # here — use --metric read_op_ns deliberately if you want to gate
        # on it (and remember the sign flips).
        lat = ""
        if "read_op_ns" in rec:
            if "read_op_ns" in old[key]:
                lat = f"  read_op_ns {old[key]['read_op_ns']:.0f} -> {rec['read_op_ns']:.0f}"
            else:
                lat = f"  read_op_ns - -> {rec['read_op_ns']:.0f}"
        # Informational fork-latency delta on fork-storm records (v6; older
        # baselines omit it). Lower is better, never threshold-gated here.
        fork = ""
        if rec.get("profile") == "fork-storm" and "fork_p50_ns" in rec:
            if "fork_p50_ns" in old[key]:
                fork = f"  fork_p50_ns {old[key]['fork_p50_ns']} -> {rec['fork_p50_ns']}"
            else:
                fork = f"  fork_p50_ns - -> {rec['fork_p50_ns']}"
        print(
            f"{label}: {before:.0f} -> {after:.0f} ({delta_pct:+.1f}%){cas}{lat}{fork}{marker}"
        )

    if compared == 0:
        sys.exit("no matching (profile, threads, backend) points to compare")
    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nOK: {compared} matching points within {args.threshold:.0f}%")


if __name__ == "__main__":
    main()
