#!/usr/bin/env python3
"""Compare two BENCH_addrspace.json trajectories and fail on regressions.

Usage:
    scripts/bench_compare.py OLD.json NEW.json [--threshold PCT] [--metric M]

Matches records across the two files by (profile, threads, backend) and
fails (exit 1) if the chosen metric regressed by more than the threshold
at any matching point. Points present in only one file are reported but do
not fail the comparison (sweep shapes legitimately grow across commits).
Sanity fields (`map_rejects`, `unmap_misses`, `unmap_range_misses`,
`reclaim_ok`) are hard-checked in the NEW file: a nonzero miss count or a
failed reclaim check fails the run regardless of throughput.

Mixed schema versions compare fine: v3 adds `cas_retries` /
`cas_wasted_nodes` (root-CAS commits lost to concurrent writers, and the
speculative nodes they discarded), which are optional — absent in v2
records, hard-checked for well-formedness (non-negative integers, retries
zero at threads=1) when present, and reported as deltas alongside the
throughput line so backoff tuning stays visible across commits without
gating on a contention-dependent number. v4 adds the `read-heavy` profile
and `read_op_ns` (single-thread per-op read-side latency: pin + lookup on
the bonsai backend); both are likewise optional, so a v3 baseline diffs
against a v4 candidate — the new profile's points report as new, and
`read_op_ns` deltas print informationally when both sides carry the field
(latency is inverted: lower is better, so it is never gated by the
throughput threshold). v5 adds the `qsbr` and `hp` backends, the
`stalled-reader` profile, and `peak_unreclaimed_bytes` (high-water mark of
bytes retired but not yet reclaimed). The peak field is optional — absent
in v4 baselines — but hard-checked when present: a non-negative integer,
exactly 0 on the `locked` backend (it retires nothing), and strictly
positive on any reclaiming backend that reported retirements. Pass
`--hp-peak-bound BYTES` to additionally fail if any `hp` record's peak
exceeds the bound — the backend's whole point is that a stalled reader
cannot make its garbage grow, so CI can pin that down with a number.
v6 adds the multi-tenant `fork-storm` profile and per-record fork metrics
(`forks`, `live_spaces_peak`, `fork_p50/p90/p99/max_ns`). The fields are
optional — absent in v2–v5 baselines — but hard-checked when present: a
`fork-storm` record must report `forks > 0`, a positive live-space peak,
and positive, monotone latency percentiles (p50 <= p90 <= p99 <= max),
while every other profile's record must report all six as exactly 0 (a
nonzero value there means the harness forked where it had no business
to). Fork latency, like read latency, prints informationally and is never
gated by the throughput threshold — baselines across machines differ too
much; gate deliberately with `--metric fork_p50_ns` if you want it.

Intended uses: `bench_compare.py <old-commit's json> BENCH_addrspace.json`
during review, and the CI smoke invocation that diffs the committed
trajectory against the one the CI box just produced — which also keeps
this script from rotting. Absolute numbers vary by machine, so CI uses a
generous threshold; the strict 20% default is for same-machine A/Bs.

No dependencies outside the standard library.
"""

import argparse
import json
import sys


def load_points(path):
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema", "")
    if not schema.startswith("rcukit-bench/addrspace-v"):
        sys.exit(f"{path}: unrecognized schema {schema!r}")
    points = {}
    for rec in doc.get("results", []):
        key = (rec["profile"], rec["threads"], rec["backend"])
        if key in points:
            sys.exit(f"{path}: duplicate record for {key}")
        points[key] = rec
    if not points:
        sys.exit(f"{path}: no result records")
    return points


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("old", help="baseline trajectory JSON")
    ap.add_argument("new", help="candidate trajectory JSON")
    ap.add_argument(
        "--threshold",
        type=float,
        default=20.0,
        metavar="PCT",
        help="fail if the metric drops more than this percent (default 20)",
    )
    ap.add_argument(
        "--metric",
        default="ops_per_sec",
        help="record field to compare (default ops_per_sec)",
    )
    ap.add_argument(
        "--hp-peak-bound",
        type=int,
        default=None,
        metavar="BYTES",
        help="fail if any hp record's peak_unreclaimed_bytes exceeds this",
    )
    args = ap.parse_args()

    old = load_points(args.old)
    new = load_points(args.new)

    failures = []
    compared = 0
    for key in sorted(old.keys() | new.keys()):
        label = "{}/t{}/{}".format(*key)
        if key not in new:
            print(f"note: {label} only in {args.old}")
            continue
        rec = new[key]
        # Hard sanity gates on the candidate, throughput aside.
        for field in ("map_rejects", "unmap_misses", "unmap_range_misses"):
            if rec.get(field, 0) != 0:
                failures.append(f"{label}: {field} = {rec[field]} (must be 0)")
        if rec.get("reclaim_ok") is False:
            failures.append(f"{label}: reclaim_ok is false")
        # v3 CAS telemetry: optional (absent in v2 files), but when present
        # it must be well-formed, and a single-threaded replay can never
        # lose a root CAS.
        for field in ("cas_retries", "cas_wasted_nodes"):
            if field in rec:
                value = rec[field]
                if not isinstance(value, int) or value < 0:
                    failures.append(f"{label}: {field} = {value!r} (want int >= 0)")
        # v4 read-side latency: optional, but when present it must be a
        # positive number — a zero or negative per-op time means the
        # microbench never ran or the record is corrupt.
        if "read_op_ns" in rec:
            value = rec["read_op_ns"]
            if not isinstance(value, (int, float)) or value <= 0:
                failures.append(f"{label}: read_op_ns = {value!r} (want > 0)")
        if rec.get("threads") == 1 and rec.get("cas_retries", 0) != 0:
            failures.append(
                f"{label}: cas_retries = {rec['cas_retries']} at threads=1"
            )
        # v5 unreclaimed-garbage gauge: optional (absent in v4 files), but
        # when present it must be coherent with the backend: the locked
        # baseline never retires (peak 0), and a reclaiming backend that
        # retired anything must have registered a positive peak.
        if "peak_unreclaimed_bytes" in rec:
            peak = rec["peak_unreclaimed_bytes"]
            if not isinstance(peak, int) or peak < 0:
                failures.append(
                    f"{label}: peak_unreclaimed_bytes = {peak!r} (want int >= 0)"
                )
            elif rec.get("backend") == "locked":
                if peak != 0:
                    failures.append(
                        f"{label}: locked backend reports peak_unreclaimed_bytes"
                        f" = {peak} (must be 0)"
                    )
            else:
                if rec.get("retired", 0) > 0 and peak == 0:
                    failures.append(
                        f"{label}: retired {rec['retired']} objects but"
                        f" peak_unreclaimed_bytes = 0"
                    )
                if (
                    args.hp_peak_bound is not None
                    and rec.get("backend") == "hp"
                    and peak > args.hp_peak_bound
                ):
                    failures.append(
                        f"{label}: hp peak_unreclaimed_bytes = {peak} exceeds"
                        f" bound {args.hp_peak_bound}"
                    )
        # v6 fork metrics: optional (absent in older files), but when
        # present they must match the record's profile — populated and
        # coherent on fork-storm, all-zero everywhere else.
        fork_fields = (
            "forks",
            "live_spaces_peak",
            "fork_p50_ns",
            "fork_p90_ns",
            "fork_p99_ns",
            "fork_max_ns",
        )
        if any(f in rec for f in fork_fields):
            values = {}
            for field in fork_fields:
                value = rec.get(field, 0)
                if not isinstance(value, int) or value < 0:
                    failures.append(f"{label}: {field} = {value!r} (want int >= 0)")
                    value = 0
                values[field] = value
            if rec.get("profile") == "fork-storm":
                if values["forks"] == 0:
                    failures.append(f"{label}: fork-storm record has forks = 0")
                if values["live_spaces_peak"] == 0:
                    failures.append(f"{label}: fork-storm live_spaces_peak = 0")
                if values["fork_p50_ns"] == 0:
                    failures.append(f"{label}: fork-storm fork_p50_ns = 0")
                if not (
                    values["fork_p50_ns"]
                    <= values["fork_p90_ns"]
                    <= values["fork_p99_ns"]
                    <= values["fork_max_ns"]
                ):
                    failures.append(
                        f"{label}: fork latency percentiles not monotone: "
                        f"{values['fork_p50_ns']}/{values['fork_p90_ns']}/"
                        f"{values['fork_p99_ns']}/{values['fork_max_ns']}"
                    )
            else:
                nonzero = [f for f in fork_fields if values[f] != 0]
                if nonzero:
                    failures.append(
                        f"{label}: non-fork-storm record has nonzero {nonzero}"
                    )
        if key not in old:
            print(f"note: {label} only in {args.new}")
            continue
        before = old[key].get(args.metric)
        after = rec.get(args.metric)
        if before is None or after is None:
            failures.append(f"{label}: metric {args.metric!r} missing")
            continue
        compared += 1
        if before <= 0:
            continue
        delta_pct = (after - before) / before * 100.0
        marker = ""
        if delta_pct < -args.threshold:
            failures.append(
                f"{label}: {args.metric} regressed {-delta_pct:.1f}% "
                f"({before:.0f} -> {after:.0f})"
            )
            marker = "  <-- REGRESSION"
        # Informational cas_retries delta alongside the gated metric, so
        # backoff tuning is visible in CI diffs (records lacking the field
        # — v2 baselines — just omit it).
        cas = ""
        if "cas_retries" in rec:
            if "cas_retries" in old[key]:
                cas = f"  cas_retries {old[key]['cas_retries']} -> {rec['cas_retries']}"
            else:
                cas = f"  cas_retries - -> {rec['cas_retries']}"
        # Informational read-latency delta (v4 records; v3 baselines omit
        # it). Lower is better, hence reported but never threshold-gated
        # here — use --metric read_op_ns deliberately if you want to gate
        # on it (and remember the sign flips).
        lat = ""
        if "read_op_ns" in rec:
            if "read_op_ns" in old[key]:
                lat = f"  read_op_ns {old[key]['read_op_ns']:.0f} -> {rec['read_op_ns']:.0f}"
            else:
                lat = f"  read_op_ns - -> {rec['read_op_ns']:.0f}"
        # Informational fork-latency delta on fork-storm records (v6; older
        # baselines omit it). Lower is better, never threshold-gated here.
        fork = ""
        if rec.get("profile") == "fork-storm" and "fork_p50_ns" in rec:
            if "fork_p50_ns" in old[key]:
                fork = f"  fork_p50_ns {old[key]['fork_p50_ns']} -> {rec['fork_p50_ns']}"
            else:
                fork = f"  fork_p50_ns - -> {rec['fork_p50_ns']}"
        print(
            f"{label}: {before:.0f} -> {after:.0f} ({delta_pct:+.1f}%){cas}{lat}{fork}{marker}"
        )

    if compared == 0:
        sys.exit("no matching (profile, threads, backend) points to compare")
    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nOK: {compared} matching points within {args.threshold:.0f}%")


if __name__ == "__main__":
    main()
