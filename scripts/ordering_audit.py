#!/usr/bin/env python3
"""Audit memory-ordering hygiene in rcukit and bonsai production code.

Two rules, enforced over every `.rs` file under `crates/rcukit/src` and
`crates/bonsai/src` (test modules — everything from the first `#[cfg(test)]`
line down — are exempt):

1. Every atomic operation that names an ordering (`load`/`store`/`swap`/
   `compare_exchange[_weak]`/`fetch_*` with a literal `Relaxed`/`Acquire`/
   `Release`/`AcqRel`/`SeqCst` argument, and every `fence(...)`) must have
   a `// ordering:` justification comment on the same line or within the
   six lines above it. The window is a few lines rather than strictly
   adjacent because one comment legitimately covers a tight cluster of
   ops (e.g. "ordering: Relaxed (both) — ..." above a fetch_add/fetch_sub
   pair), and the justification prose itself often wraps.

2. No atomic operation may use `SeqCst` as its per-op ordering. The
   crates' contract (docs/CONCURRENCY.md §6) is that every remaining
   sequentially-consistent point is an *explicit* `fence(SeqCst)` named
   after the protocol invariant it upholds — per-op SeqCst is either a
   placeholder that was never audited or a silent x86 `xchg`/`mfence` on
   a path that doesn't need one. `fence(SeqCst)` itself is allowed; that
   is the point.

Facade files that merely forward a caller-supplied `order: Ordering`
parameter (rcukit's counting sync facade) pass rule 1 vacuously: an op
with no literal ordering token chose nothing, so there is nothing to
justify at that site.

Sites guarded by `#[cfg(loomette_weaken)]` are exempt from both rules:
those are *deliberately wrong* orderings — seeded bugs the model-checking
meta-tests require the AcqRel loom leg to find — compiled only under the
test-only cfg, never into release builds. Exempting them keeps the audit
from demanding a justification for an ordering whose whole point is to be
unjustifiable. (The `#[cfg(not(loomette_weaken))]` twin is the audited
production site and is *not* exempt.)

Exit status 0 with a per-crate summary on success; 1 with one line per
violation otherwise. `--self-test` runs the audit over built-in synthetic
sources covering both rules, the facade carve-out, and the
`loomette_weaken` exemption. No dependencies outside the standard
library — CI runs it right after clippy.
"""

import pathlib
import re
import sys

ROOTS = ["crates/rcukit/src", "crates/bonsai/src"]
LOOKBACK = 6  # lines above the op that may hold its `// ordering:` comment

ORDERING_TOKEN = re.compile(r"\b(Relaxed|Acquire|Release|AcqRel|SeqCst)\b")
ATOMIC_OP = re.compile(
    r"\.(?:load|store|swap|compare_exchange(?:_weak)?|"
    r"fetch_(?:add|sub|and|or|xor|update))\s*\("
)
FENCE = re.compile(r"\bfence\s*\(")
TEST_MOD = re.compile(r"^\s*#\[cfg\((?:all\()?test\b")
WEAKEN_CFG = re.compile(r"^\s*#\[cfg\(loomette_weaken\)\]")


def code_part(line):
    """The non-comment portion of a source line (naive `//` split; the
    audited sources keep `//` out of string literals)."""
    return line.split("//", 1)[0]


def join_call(lines, start):
    """Join a (possibly multi-line) call starting at `start` until its
    parentheses balance, capped at a handful of lines."""
    depth = 0
    parts = []
    for i in range(start, min(start + 8, len(lines))):
        code = code_part(lines[i])
        parts.append(code)
        depth += code.count("(") - code.count(")")
        if depth <= 0 and i > start:
            break
        if depth <= 0 and "(" in code:
            break
    return " ".join(parts)


def has_ordering_comment(lines, op_idx):
    # Fast path: a comment on the op line or within the short window above
    # it (covers trailing comments and tight "(both)" clusters).
    window = lines[max(0, op_idx - LOOKBACK) : op_idx + 1]
    if any("ordering:" in line for line in window):
        return True
    # Long-prose path: a justification block may run past the window (the
    # fence comments name whole protocol invariants), and one "(all)"
    # comment may cover every load in a multi-line struct literal. Walk
    # upward to the nearest comment, but stop at a blank line or a
    # completed statement — a justification must belong to *this*
    # statement, not an earlier one.
    for i in range(op_idx - 1, max(-1, op_idx - 17), -1):
        line = lines[i]
        if "ordering:" in line and "//" in line:
            return True
        stripped = code_part(line).strip()
        if not line.strip():
            return False
        if stripped.endswith(";") or stripped == "}":
            return False
    return False


def is_weaken_site(lines, op_idx):
    """Whether the op at `op_idx` is guarded by `#[cfg(loomette_weaken)]`:
    the attribute sits on the statement itself, so walk up over comments
    and other attributes only — a blank line or an earlier statement ends
    the attribute stack."""
    for i in range(op_idx - 1, max(-1, op_idx - 9), -1):
        line = lines[i]
        if WEAKEN_CFG.match(line):
            return True
        stripped = line.strip()
        if stripped.startswith("//") or stripped.startswith("#["):
            continue
        return False
    return False


def audit_lines(lines, where_prefix):
    """Audits one file's lines; returns (audited op count, violations)."""
    violations = []

    # Test modules are exempt: SeqCst-everywhere is the right default for
    # test scaffolding, and stress tests need no per-op justification.
    for cut, line in enumerate(lines):
        if TEST_MOD.match(line):
            lines = lines[:cut]
            break

    ops = 0
    for idx, line in enumerate(lines):
        code = code_part(line)
        is_fence = bool(FENCE.search(code))
        is_op = bool(ATOMIC_OP.search(code))
        if not (is_fence or is_op):
            continue
        call = join_call(lines, idx)
        tokens = ORDERING_TOKEN.findall(call)
        if not tokens:
            # Forwards a variable ordering (facade) or names none: no
            # ordering was chosen here, so nothing to justify.
            continue
        if is_weaken_site(lines, idx):
            # Seeded-bug site compiled only under `--cfg loomette_weaken`:
            # deliberately wrong, covered by the loom meta-tests instead.
            continue
        ops += 1
        where = f"{where_prefix}:{idx + 1}"
        if not has_ordering_comment(lines, idx):
            violations.append(
                f"{where}: atomic op with ordering {'/'.join(tokens)} has no "
                f"`// ordering:` comment within {LOOKBACK} lines"
            )
        if "SeqCst" in tokens and not is_fence:
            violations.append(
                f"{where}: per-op SeqCst (only explicit `fence(SeqCst)` may "
                f"be sequentially consistent)"
            )
    return ops, violations


def audit_file(path):
    return audit_lines(path.read_text().splitlines(), str(path))


# Synthetic sources for `--self-test`: each entry is (name, source,
# expected audited-op count, expected violation substrings).
SELF_TEST_CASES = [
    (
        "justified op passes",
        """\
// ordering: Release — publishes the new node to the reader's Acquire.
root.store(node, Release);
""",
        1,
        [],
    ),
    (
        "missing justification fails rule 1",
        """\
let x = 1;

root.store(node, Release);
""",
        1,
        ["no `// ordering:` comment"],
    ),
    (
        "per-op SeqCst fails rule 2",
        """\
// ordering: SeqCst — placeholder.
root.store(node, SeqCst);
""",
        1,
        ["per-op SeqCst"],
    ),
    (
        "fence(SeqCst) is allowed",
        """\
// ordering: SeqCst fence — the pin-publication Dekker.
fence(SeqCst);
""",
        1,
        [],
    ),
    (
        "facade forwarding a variable ordering is vacuous",
        """\
pub fn load(&self, order: Ordering) -> usize {
    self.inner.load(order)
}
""",
        0,
        [],
    ),
    (
        "loomette_weaken site is exempt from both rules",
        """\
// ordering: Release — the audited production pairing.
#[cfg(not(loomette_weaken))]
status.store(0, Release);
// Seeded bug for the model-checker meta-test: deliberately
// unjustified and deliberately wrong.
#[cfg(loomette_weaken)]
status.store(0, Relaxed);
""",
        1,
        [],
    ),
    (
        "weaken exemption does not leak past its statement",
        """\
#[cfg(loomette_weaken)]
status.store(0, Relaxed);

status.store(1, Release);
""",
        1,
        ["no `// ordering:` comment"],
    ),
    (
        "test modules are exempt",
        """\
// ordering: Relaxed — counter.
count.fetch_add(1, Relaxed);
#[cfg(test)]
mod tests {
    fn f() { x.store(1, SeqCst); }
}
""",
        1,
        [],
    ),
]


def self_test():
    failures = []
    for name, source, want_ops, want_substrings in SELF_TEST_CASES:
        ops, violations = audit_lines(source.splitlines(), f"<{name}>")
        if ops != want_ops:
            failures.append(f"{name}: audited {ops} op(s), expected {want_ops}")
        if len(violations) != len(want_substrings):
            failures.append(
                f"{name}: {len(violations)} violation(s) "
                f"{violations}, expected {len(want_substrings)}"
            )
            continue
        for sub, got in zip(want_substrings, violations):
            if sub not in got:
                failures.append(f"{name}: violation {got!r} lacks {sub!r}")
    if failures:
        for f in failures:
            print(f"  self-test FAILED: {f}", file=sys.stderr)
        sys.exit(1)
    print(f"self-test OK: {len(SELF_TEST_CASES)} cases")


def main():
    if "--self-test" in sys.argv[1:]:
        self_test()
        return
    repo = pathlib.Path(__file__).resolve().parent.parent
    total_ops = 0
    failures = []
    for root in ROOTS:
        crate_ops = 0
        for path in sorted((repo / root).rglob("*.rs")):
            ops, violations = audit_file(path)
            crate_ops += ops
            failures.extend(violations)
        print(f"{root}: {crate_ops} justified atomic sites")
        total_ops += crate_ops
    if total_ops == 0:
        sys.exit("audit matched no atomic sites — pattern rot, fix the script")
    if failures:
        print(f"\n{len(failures)} violation(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"OK: {total_ops} atomic sites audited, all justified, no per-op SeqCst")


if __name__ == "__main__":
    main()
